//! Property-based integration tests: random (but feasibility-constrained)
//! problem shapes, block sizes and grid configurations must all produce
//! solutions that agree with the sequential kernels.

use catrsm::it_inv_trsm::{it_inv_trsm, ItInvConfig};
use catrsm::rec_trsm::{rec_trsm, RecTrsmConfig};
use catrsm_suite::prelude::*;
use proptest::prelude::*;

/// Strategy producing feasible (n, k, n0, p1, p2) for a 2×2 grid (4 ranks):
/// the divisibility rules of `It-Inv-TRSM` are encoded here so every sampled
/// configuration must run.
fn itinv_configs() -> impl Strategy<Value = (usize, usize, usize, usize, usize)> {
    // n = 16·a with a in 1..=6, k = 4·b with b in 1..=8.
    (1usize..=6, 1usize..=8, 0usize..3, prop::bool::ANY).prop_map(|(a, b, n0_choice, flat)| {
        let n = 16 * a;
        let k = 4 * b;
        let (p1, p2) = if flat { (2, 1) } else { (1, 4) };
        // n0 must divide n and be a multiple of p1.
        let candidates: Vec<usize> = (1..=n).filter(|c| n % c == 0 && c % p1 == 0).collect();
        let n0 = candidates[n0_choice.min(candidates.len() - 1)];
        (n, k, n0, p1, p2)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The iterative inversion-based TRSM solves every feasible random
    /// configuration on a 4-rank machine.
    #[test]
    fn it_inv_trsm_solves_random_feasible_configs(
        (n, k, n0, p1, p2) in itinv_configs(),
        seed in 0u64..1000,
    ) {
        // k must be divisible by p2.
        prop_assume!(k % p2 == 0);
        let errs = Machine::new(4, MachineParams::unit())
            .run(move |comm| {
                let grid = Grid2D::new(comm, 2, 2).unwrap();
                let l_g = gen::well_conditioned_lower(n, seed);
                let x_g = gen::rhs(n, k, seed + 1);
                let b_g = dense::matmul(&l_g, &x_g);
                let l = DistMatrix::from_global(&grid, &l_g);
                let b = DistMatrix::from_global(&grid, &b_g);
                let cfg = ItInvConfig { p1, p2, n0, inv_base: 8 };
                let (x, _) = it_inv_trsm(&l, &b, &cfg).unwrap();
                let reference = DistMatrix::from_global(&grid, &x_g);
                x.rel_diff(&reference).unwrap()
            })
            .unwrap()
            .results;
        for err in errs {
            prop_assert!(err < 1e-7, "n={n} k={k} n0={n0} p1={p1} p2={p2}: {err}");
        }
    }

    /// The recursive and iterative algorithms agree with each other on random
    /// instances (they may differ from the true solution by rounding, but
    /// must agree to solver accuracy).
    #[test]
    fn recursive_and_iterative_agree(
        a in 1usize..=4,
        b in 1usize..=4,
        seed in 0u64..1000,
    ) {
        let n = 32 * a;
        let k = 8 * b;
        let errs = Machine::new(4, MachineParams::unit())
            .run(move |comm| {
                let grid = Grid2D::new(comm, 2, 2).unwrap();
                let l_g = gen::well_conditioned_lower(n, seed);
                let b_g = gen::rhs(n, k, seed + 1);
                let l = DistMatrix::from_global(&grid, &l_g);
                let b = DistMatrix::from_global(&grid, &b_g);
                let x_rec = rec_trsm(&l, &b, &RecTrsmConfig { base_size: 16, log_latency: true }).unwrap();
                let cfg = ItInvConfig { p1: 2, p2: 1, n0: n / 2, inv_base: 8 };
                let (x_it, _) = it_inv_trsm(&l, &b, &cfg).unwrap();
                x_rec.rel_diff(&x_it).unwrap()
            })
            .unwrap()
            .results;
        for err in errs {
            prop_assert!(err < 1e-7, "n={n} k={k}: {err}");
        }
    }

    /// Collectives keep data consistent for arbitrary payload sizes: an
    /// allgather followed by taking one's own block is the identity, and an
    /// allreduce of rank-constant vectors equals p times the average.
    #[test]
    fn collective_round_trips(words in 1usize..200, p_choice in 0usize..3) {
        let p = [2usize, 4, 8][p_choice];
        let ok = Machine::new(p, MachineParams::unit())
            .run(move |comm| {
                let mine: Vec<f64> = (0..words).map(|w| (comm.rank() * 1000 + w) as f64).collect();
                let all = coll::allgather(comm, &mine).unwrap();
                let start = comm.rank() * words;
                let round_trip_ok = all[start..start + words] == mine[..];
                let reduced = coll::allreduce(comm, &mine, coll::ReduceOp::Sum).unwrap();
                let expect: f64 = (0..comm.size()).map(|r| (r * 1000) as f64).sum();
                let reduce_ok = (reduced[0] - expect).abs() < 1e-9;
                round_trip_ok && reduce_ok
            })
            .unwrap()
            .results;
        prop_assert!(ok.into_iter().all(|v| v));
    }

    /// Distributing a random matrix and collecting it back is the identity,
    /// for any grid shape that fits four ranks.
    #[test]
    fn distribute_collect_identity(
        rows in 1usize..40,
        cols in 1usize..40,
        shape in 0usize..3,
        seed in 0u64..1000,
    ) {
        let (pr, pc) = [(1usize, 4usize), (2, 2), (4, 1)][shape];
        let ok = Machine::new(4, MachineParams::unit())
            .run(move |comm| {
                let grid = Grid2D::new(comm, pr, pc).unwrap();
                let a_g = gen::uniform(rows, cols, seed);
                let a = DistMatrix::from_global(&grid, &a_g);
                a.to_global() == a_g
            })
            .unwrap()
            .results;
        prop_assert!(ok.into_iter().all(|v| v));
    }
}
