//! Integration tests of the example applications: distributed Cholesky and LU
//! built on the communication-avoiding TRSM, plus cross-checks of the
//! distributed multiplication against the sequential kernels.

use catrsm::apps::cholesky::{cholesky_solve, FactorConfig};
use catrsm::apps::lu::lu_solve;
use catrsm::mm3d::mm3d_auto;
use catrsm_suite::prelude::*;

#[test]
fn spd_system_solved_with_iterative_trsm_panels() {
    // Use the paper's iterative TRSM (Algorithm::Auto) inside the Cholesky
    // panel solves and verify the final linear-system solution.
    let out = Machine::new(4, MachineParams::cluster())
        .run(|comm| {
            let grid = Grid2D::new(comm, 2, 2).unwrap();
            let n = 64;
            let k = 8;
            let a_global = gen::spd(n, 71);
            let x_true = gen::rhs(n, k, 72);
            let b_global = dense::matmul(&a_global, &x_true);
            let a = DistMatrix::from_global(&grid, &a_global);
            let b = DistMatrix::from_global(&grid, &b_global);
            let cfg = FactorConfig {
                base_size: 16,
                trsm: Algorithm::Auto,
            };
            let x = cholesky_solve(&a, &b, &cfg).unwrap();
            let x_ref = DistMatrix::from_global(&grid, &x_true);
            x.rel_diff(&x_ref).unwrap()
        })
        .unwrap();
    assert!(out.results.into_iter().all(|d| d < 1e-6));
}

#[test]
fn general_system_solved_with_lu_and_trsm() {
    let out = Machine::new(4, MachineParams::cluster())
        .run(|comm| {
            let grid = Grid2D::new(comm, 2, 2).unwrap();
            let n = 64;
            let k = 16;
            let a_global = gen::diagonally_dominant(n, 81);
            let x_true = gen::rhs(n, k, 82);
            let b_global = dense::matmul(&a_global, &x_true);
            let a = DistMatrix::from_global(&grid, &a_global);
            let b = DistMatrix::from_global(&grid, &b_global);
            let cfg = FactorConfig {
                base_size: 16,
                trsm: Algorithm::Recursive { base_size: 8 },
            };
            let x = lu_solve(&a, &b, &cfg).unwrap();
            let x_ref = DistMatrix::from_global(&grid, &x_true);
            x.rel_diff(&x_ref).unwrap()
        })
        .unwrap();
    assert!(out.results.into_iter().all(|d| d < 1e-6));
}

#[test]
fn distributed_multiplication_matches_sequential_for_assorted_shapes() {
    let out = Machine::new(16, MachineParams::unit())
        .run(|comm| {
            let grid = Grid2D::new(comm, 4, 4).unwrap();
            let mut worst: f64 = 0.0;
            for (n, k, seed) in [(64usize, 16usize, 1u64), (64, 64, 2), (128, 32, 3)] {
                let a_global = gen::uniform(n, n, seed);
                let x_global = gen::uniform(n, k, seed + 10);
                let a = DistMatrix::from_global(&grid, &a_global);
                let x = DistMatrix::from_global(&grid, &x_global);
                let b = mm3d_auto(&a, &x).unwrap();
                let expect = DistMatrix::from_global(&grid, &dense::matmul(&a_global, &x_global));
                worst = worst.max(b.rel_diff(&expect).unwrap());
            }
            worst
        })
        .unwrap();
    assert!(out.results.into_iter().all(|d| d < 1e-10));
}

#[test]
fn factorization_solvers_work_on_a_larger_grid() {
    // 3x3 grid (9 ranks) with a size that is not divisible by the grid at
    // every recursion level: the base-case fallbacks must keep it correct.
    let out = Machine::new(9, MachineParams::unit())
        .run(|comm| {
            let grid = Grid2D::new(comm, 3, 3).unwrap();
            let n = 72;
            let k = 9;
            let a_global = gen::spd(n, 91);
            let x_true = gen::rhs(n, k, 92);
            let b_global = dense::matmul(&a_global, &x_true);
            let a = DistMatrix::from_global(&grid, &a_global);
            let b = DistMatrix::from_global(&grid, &b_global);
            let cfg = FactorConfig {
                base_size: 24,
                trsm: Algorithm::Wavefront,
            };
            let x = cholesky_solve(&a, &b, &cfg).unwrap();
            let x_ref = DistMatrix::from_global(&grid, &x_true);
            x.rel_diff(&x_ref).unwrap()
        })
        .unwrap();
    assert!(out.results.into_iter().all(|d| d < 1e-6));
}
