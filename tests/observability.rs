//! Cross-crate integration tests for the solver-wide tracing layer
//! (`obs`): traced solves attach `TraceReport`s with the expected spans
//! and counters on every backend, the Chrome-trace export validates, the
//! cost-drift report covers the iterative algorithm's phases, and — in
//! release builds — tracing-enabled solves stay inside a wall-clock
//! envelope of the untraced baseline.
//!
//! The recorder's enable flag and buffers are process-global, so every
//! test that toggles tracing serialises on [`trace_lock`].

use catrsm_suite::prelude::*;
use catrsm_suite::{costmodel, obs, sparse};
use std::sync::{Mutex, MutexGuard};

/// Serialises tests that touch the process-global trace recorder.
fn trace_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` with tracing enabled on a clean buffer, returning its result
/// and the trace dump of everything it recorded.
fn with_tracing<T>(f: impl FnOnce() -> T) -> (T, obs::TraceDump) {
    obs::set_enabled(true);
    obs::clear();
    let out = f();
    let dump = obs::collect_all();
    obs::set_enabled(false);
    obs::clear();
    (out, dump)
}

fn sparse_fixture() -> (SparseTri, Vec<f64>) {
    let m = sparse::gen::deep_narrow_lower(20_000, 4, 4, 3);
    let b = sparse::gen::rhs_vec(m.n(), 5);
    (m, b)
}

#[test]
fn traced_dense_solve_attaches_report() {
    let _guard = trace_lock();
    let n = 256;
    let k = 32;
    let l = gen::well_conditioned_lower(n, 7);
    let b = gen::rhs(n, k, 8);
    let (sol, _) = with_tracing(|| {
        SolveRequest::lower()
            .plan_dense(n, k)
            .unwrap()
            .execute_dense(&l, &b)
            .unwrap()
    });
    let trace = sol.report.trace.expect("traced solve attaches a report");
    let exec = trace.span("core", "execute").expect("execute span");
    assert_eq!(exec.count, 1);
    assert_eq!(trace.dropped, 0);
}

#[test]
fn untraced_solve_attaches_no_report() {
    let _guard = trace_lock();
    obs::set_enabled(false);
    let l = gen::well_conditioned_lower(64, 7);
    let b = gen::rhs(64, 8, 8);
    let sol = SolveRequest::lower().solve_dense(&l, &b).unwrap();
    assert!(sol.report.trace.is_none());
}

#[test]
fn traced_sparse_policies_record_executor_spans() {
    let _guard = trace_lock();
    let (m, b) = sparse_fixture();
    for (policy, span_name) in [
        (SchedulePolicy::Level, "level_exec"),
        (SchedulePolicy::Merged, "merged_exec"),
        (SchedulePolicy::SyncFree, "syncfree_exec"),
    ] {
        let (sol, _) = with_tracing(|| {
            SolveRequest::lower()
                .threads(4)
                .policy(policy)
                .plan_sparse(&m, 1)
                .unwrap()
                .execute_sparse_vec(&m, &b)
                .unwrap()
        });
        let trace = sol.report.trace.expect("traced sparse solve");
        assert!(
            trace.span("sparse", span_name).is_some(),
            "{policy:?} should record a {span_name} span"
        );
        match policy {
            SchedulePolicy::Level | SchedulePolicy::Merged => {
                assert!(
                    trace.counter("sparse", "barrier_wait_ns").is_some(),
                    "{policy:?} should record barrier wait time"
                );
            }
            SchedulePolicy::SyncFree => {
                assert!(
                    trace.counter("sparse", "spin_iters").is_some(),
                    "sync-free should record spin iterations"
                );
            }
        }
        if policy == SchedulePolicy::Merged {
            assert!(
                !trace.super_level_rows.is_empty(),
                "merged should surface per-super-level row counts"
            );
            assert_eq!(
                trace.super_level_rows.iter().sum::<u64>(),
                m.n() as u64,
                "super-level rows must partition the matrix"
            );
        }
    }
}

#[test]
fn chrome_export_of_traced_run_validates() {
    let _guard = trace_lock();
    let (m, b) = sparse_fixture();
    let ((), dump) = with_tracing(|| {
        SolveRequest::lower()
            .threads(4)
            .policy(SchedulePolicy::Merged)
            .solve_sparse_vec(&m, &b)
            .unwrap();
    });
    assert!(!dump.is_empty());
    let json = obs::chrome::to_chrome_json(&dump);
    let errors = obs::chrome::validate(&json);
    assert!(
        errors.is_empty(),
        "exported trace must validate: {errors:?}"
    );
}

#[test]
fn drift_report_covers_itinv_phases() {
    let _guard = trace_lock();
    let (n, k, p) = (64usize, 16usize, 4usize);
    let out = Machine::new(p, MachineParams::cluster())
        .run(move |comm| {
            let grid = Grid2D::new(comm, 2, 2).expect("grid");
            let l_global = gen::well_conditioned_lower(n, 21);
            let b_global = gen::rhs(n, k, 22);
            let l = DistMatrix::from_global(&grid, &l_global);
            let b = DistMatrix::from_global(&grid, &b_global);
            let plan = SolveRequest::lower()
                .plan_distributed(n, k, comm.size())
                .expect("plan");
            let sol = plan.execute_distributed(&l, &b).expect("solve");
            plan.drift_report(&sol.report, costmodel::Machine::cluster())
                .render()
        })
        .expect("machine run");
    let table = &out.results[0];
    for needle in ["itinv: inversion", "itinv: solve", "itinv: update", "TOTAL"] {
        assert!(
            table.contains(needle),
            "drift table missing {needle}:\n{table}"
        );
    }
}

/// Release-only wall-clock envelope: a tracing-enabled sparse solve must
/// finish within a small multiple of the untraced baseline.  Debug builds
/// skip this — unoptimised span bookkeeping isn't what ships, and debug
/// timings are noise.
#[cfg(not(debug_assertions))]
#[test]
fn tracing_enabled_stays_in_wall_clock_envelope() {
    let _guard = trace_lock();
    let (m, b) = sparse_fixture();
    let solve = || {
        SolveRequest::lower()
            .threads(4)
            .policy(SchedulePolicy::Merged)
            .solve_sparse_vec(&m, &b)
            .unwrap()
    };
    let best_of = |runs: usize, f: &dyn Fn()| -> std::time::Duration {
        (0..runs)
            .map(|_| {
                let t0 = std::time::Instant::now();
                f();
                t0.elapsed()
            })
            .min()
            .unwrap()
    };
    obs::set_enabled(false);
    solve(); // warm the pool and the page cache
    let untraced = best_of(5, &|| {
        solve();
    });
    obs::set_enabled(true);
    obs::clear();
    let traced = best_of(5, &|| {
        obs::clear();
        solve();
    });
    obs::set_enabled(false);
    obs::clear();
    // Generous envelope: tracing adds per-super-level spans and per-worker
    // counters, not per-nonzero work, so 3x + 5ms absorbs scheduler noise
    // on shared CI runners while still catching accidental hot-loop costs.
    let limit = untraced * 3 + std::time::Duration::from_millis(5);
    assert!(
        traced <= limit,
        "traced solve {traced:?} exceeded envelope {limit:?} (untraced {untraced:?})"
    );
}
