//! Chaos harness: distributed solves under seeded fault plans.
//!
//! Two claims are exercised here, matching the fault taxonomy of
//! `simnet::FaultPlan`:
//!
//! * **transient** plans (drops within the retry budget, delays, duplicates,
//!   reorders, stalls) are *bit-transparent*: every algorithm returns exactly
//!   the solution of the fault-free run, while the `SolveReport` records the
//!   recovery work (retries, drops absorbed, duplicates discarded);
//! * **permanent** plans (rank crashes, retry budgets exhausted) surface as
//!   typed `TrsmError`s on every rank within bounded virtual time — never a
//!   hang, never a panic.
//!
//! Fault schedules are seeded, so every test here is exactly reproducible.

use catrsm::{Algorithm, ItInvConfig, TrsmError};
use catrsm_suite::prelude::*;
use proptest::prelude::*;
use simnet::{FaultPlan, SimError};

const N: usize = 32;
const K: usize = 8;

/// The transport-level error at the root of a solve failure, however many
/// layers (grid redistribution, collectives, algorithm wiring) it crossed.
fn root_sim_error(e: &TrsmError) -> Option<&SimError> {
    match e {
        TrsmError::Sim(s) => Some(s),
        TrsmError::Grid(pgrid::GridError::Sim(s)) => Some(s),
        _ => None,
    }
}

/// The three distributed algorithms, configured for a 4-rank 2×2 grid.
fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::Recursive { base_size: 16 },
        Algorithm::IterativeInversion(ItInvConfig {
            p1: 2,
            p2: 1,
            n0: 16,
            inv_base: 8,
        }),
        Algorithm::Wavefront,
    ]
}

/// Run one distributed solve per rank and return, per rank, the collected
/// global solution plus the report's fault counters.
#[allow(clippy::type_complexity)]
fn solve_on(
    machine: &Machine,
    alg: Algorithm,
    seed: u64,
) -> Vec<Result<(Matrix, u64, u64, u64, u64), String>> {
    machine
        .run(move |comm| {
            let grid = Grid2D::new(comm, 2, 2).unwrap();
            let l_g = gen::well_conditioned_lower(N, seed);
            let x_g = gen::rhs(N, K, seed + 1);
            let b_g = dense::matmul(&l_g, &x_g);
            let l = DistMatrix::from_global(&grid, &l_g);
            let b = DistMatrix::from_global(&grid, &b_g);
            SolveRequest::lower()
                .algorithm(alg)
                .solve_distributed(&l, &b)
                .map(|sol| {
                    (
                        sol.x.to_global(),
                        sol.report.retries(),
                        sol.report.dropped(),
                        sol.report.duplicates(),
                        sol.report.timeouts(),
                    )
                })
                .map_err(|e| e.to_string())
        })
        .expect("machine-level run must not fail: rank errors are typed")
        .results
}

/// Transient plans exercised by the bit-transparency tests: one per fault
/// class plus an everything-at-once plan.
fn transient_plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("drops", FaultPlan::new(0xD0D0).with_drops(0.3, 2)),
        ("duplicates", FaultPlan::new(0xD1D1).with_duplicates(0.3)),
        (
            "reorder+delay",
            FaultPlan::new(0xD2D2)
                .with_reordering(0.25)
                .with_delays(0.25, 3.0),
        ),
        ("stalls", FaultPlan::new(0xD3D3).with_stalls(0.2, 2.0)),
        ("heavy-drops", FaultPlan::new(0xD4D4).with_drops(0.6, 3)),
        (
            "everything",
            FaultPlan::new(0xD5D5)
                .with_drops(0.25, 2)
                .with_duplicates(0.2)
                .with_reordering(0.2)
                .with_delays(0.2, 2.0)
                .with_stalls(0.1, 1.0),
        ),
    ]
}

#[test]
fn transient_plans_are_bit_transparent_for_every_algorithm() {
    let params = MachineParams::unit();
    for alg in algorithms() {
        let clean = solve_on(&Machine::new(4, params), alg, 77);
        for (name, plan) in transient_plans() {
            assert!(plan.is_transient(&params), "{name} must be transient");
            let faulty = solve_on(&Machine::new(4, params).with_fault_plan(plan), alg, 77);
            for (rank, (c, f)) in clean.iter().zip(faulty.iter()).enumerate() {
                let c = c.as_ref().expect("clean run solves");
                let f = f
                    .as_ref()
                    .unwrap_or_else(|e| panic!("{alg:?}/{name} rank {rank} failed: {e}"));
                assert_eq!(
                    c.0, f.0,
                    "{alg:?}/{name} rank {rank}: solution not bit-identical"
                );
                assert_eq!(f.4, 0, "{alg:?}/{name}: transient run logged a timeout");
            }
        }
    }
}

#[test]
fn transient_recovery_work_reaches_the_solve_report() {
    let params = MachineParams::unit();
    let plan = FaultPlan::new(0xBEEF)
        .with_drops(0.4, 2)
        .with_duplicates(0.4);
    for alg in algorithms() {
        let out = solve_on(
            &Machine::new(4, params).with_fault_plan(plan.clone()),
            alg,
            13,
        );
        let (mut retries, mut dropped, mut dups) = (0u64, 0u64, 0u64);
        for res in &out {
            let (_, r, d, u, _) = res.as_ref().expect("transient plan must solve");
            retries += r;
            dropped += d;
            dups += u;
        }
        assert!(
            retries > 0 && dropped > 0,
            "{alg:?}: drop recovery invisible in SolveReport (retries={retries}, dropped={dropped})"
        );
        assert!(dups > 0, "{alg:?}: duplicates invisible in SolveReport");
    }
}

#[test]
fn crashed_rank_fails_every_algorithm_cleanly() {
    let params = MachineParams::unit();
    // Three crash plans: mid-solve, before the very first send, and halfway
    // through the victim's send schedule (derived from a clean run so the
    // crash is guaranteed to fire whatever the algorithm's send count is).
    // Early crashes (before any rank can finish) must fail *every* rank; a
    // late crash may let ranks whose communication already completed return
    // their result — but whoever fails must fail typed, and nobody may hang.
    for alg in algorithms() {
        let clean = Machine::new(4, params)
            .run(move |comm| {
                let grid = Grid2D::new(comm, 2, 2).unwrap();
                let l_g = gen::well_conditioned_lower(N, 5);
                let x_g = gen::rhs(N, K, 6);
                let b_g = dense::matmul(&l_g, &x_g);
                let l = DistMatrix::from_global(&grid, &l_g);
                let b = DistMatrix::from_global(&grid, &b_g);
                SolveRequest::lower()
                    .algorithm(alg)
                    .solve_distributed(&l, &b)
                    .map(|_| ())
            })
            .expect("clean run");
        let halfway = clean.report.per_rank[3].msgs_sent / 2;
        let crash_plans = [(1usize, 3u64, true), (0, 0, true), (3, halfway, false)];
        for (victim, after, early) in crash_plans {
            let plan = FaultPlan::new(0xC4A5).with_crash(victim, after);
            assert!(!plan.is_transient(&params));
            let machine = Machine::new(4, params).with_fault_plan(plan);
            let out = machine
                .run(move |comm| {
                    let grid = Grid2D::new(comm, 2, 2).unwrap();
                    let l_g = gen::well_conditioned_lower(N, 5);
                    let x_g = gen::rhs(N, K, 6);
                    let b_g = dense::matmul(&l_g, &x_g);
                    let l = DistMatrix::from_global(&grid, &l_g);
                    let b = DistMatrix::from_global(&grid, &b_g);
                    SolveRequest::lower()
                        .algorithm(alg)
                        .solve_distributed(&l, &b)
                        .err()
                })
                .expect("crash must surface as rank-level errors, not a run failure");
            let mut failures = 0;
            for (rank, res) in out.results.iter().enumerate() {
                match res {
                    None if early => panic!(
                        "{alg:?}/crash({victim},{after}): rank {rank} solved despite the crash"
                    ),
                    None => {}
                    Some(err) => {
                        failures += 1;
                        assert!(
                            matches!(
                                root_sim_error(err),
                                Some(SimError::RankFailure { rank: r }) if *r == victim
                            ),
                            "{alg:?}/crash({victim},{after}): rank {rank} got {err:?}"
                        );
                    }
                }
            }
            assert!(
                failures > 0,
                "{alg:?}/crash({victim},{after}): the crash plan never fired"
            );
            // Bounded simulated time: the failure cascade unblocks everyone
            // long before the pathological all-timeouts budget.
            assert!(
                out.report.virtual_time().is_finite() && out.report.virtual_time() < 1.0e6,
                "{alg:?}/crash({victim},{after}): virtual time {} not bounded",
                out.report.virtual_time()
            );
        }
    }
}

#[test]
fn exhausted_retry_budget_fails_every_algorithm_cleanly() {
    // Every message is dropped up to 5 times against a budget of 1 retry, so
    // the very first point-to-point transfer exhausts its budget.
    let params = MachineParams::unit().with_retry(1.0e-3, 1);
    for alg in algorithms() {
        let plan = FaultPlan::new(0x7E57).with_drops(1.0, 5);
        assert!(!plan.is_transient(&params));
        let out = solve_on(&Machine::new(4, params).with_fault_plan(plan), alg, 9);
        for (rank, res) in out.iter().enumerate() {
            let err = res
                .as_ref()
                .err()
                .unwrap_or_else(|| panic!("{alg:?}: rank {rank} solved under a permanent plan"));
            assert!(
                err.contains("simulator error"),
                "{alg:?}: rank {rank} error not rooted in the transport: {err}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Satellite: fault-plan determinism.  The same seed produces the same
    /// fault schedule, the same per-rank retry/drop/duplicate counters, the
    /// same virtual finish time and the same (bit-identical) solution, run
    /// after run.
    #[test]
    fn seeded_chaos_runs_reproduce_exactly(seed in 0u64..1_000_000) {
        let params = MachineParams::unit();
        let plan = FaultPlan::new(seed)
            .with_drops(0.3, 2)
            .with_duplicates(0.25)
            .with_reordering(0.2)
            .with_stalls(0.1, 1.5);
        prop_assert!(plan.is_transient(&params));
        let alg = Algorithm::Recursive { base_size: 16 };
        let run = || solve_on(&Machine::new(4, params).with_fault_plan(plan.clone()), alg, seed % 97);
        let first = run();
        let second = run();
        prop_assert_eq!(&first, &second, "same seed diverged across repeats");
        // And the underlying schedule itself is reproducible per rank.
        for rank in 0..4 {
            let mut a = simnet::FaultInjector::new(&plan, rank);
            let mut b = simnet::FaultInjector::new(&plan, rank);
            for _ in 0..64 {
                prop_assert_eq!(a.next_send(), b.next_send());
            }
        }
    }

    /// The dense GEMM worker count is a throughput knob, not a semantics
    /// knob: 1 worker and 4 workers produce bitwise-identical products, so
    /// chaos solutions cannot depend on `DENSE_THREADS` (the CI matrix also
    /// runs this whole suite under `DENSE_THREADS=1` and `=4`).
    #[test]
    fn gemm_worker_count_never_changes_bits(seed in 0u64..1000) {
        let a = gen::uniform(48, 32, seed);
        let b = gen::uniform(32, 24, seed + 1);
        let mut c1 = Matrix::zeros(48, 24);
        let mut c4 = Matrix::zeros(48, 24);
        dense::gemm::gemm_with_threads(1.0, &a, &b, 0.0, &mut c1, 1).unwrap();
        dense::gemm::gemm_with_threads(1.0, &a, &b, 0.0, &mut c4, 4).unwrap();
        prop_assert_eq!(c1, c4);
    }
}
