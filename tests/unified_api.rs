//! Cross-backend properties of the staged `SolveRequest → Plan → Solution`
//! API:
//!
//! * one request with identical options yields **bitwise-identical**
//!   solutions at every worker count (the thread pin is a throughput knob);
//! * the measured [`FlopCount`] of the new API matches the old entry
//!   points it replaced, on every backend;
//! * transposed requests agree with solving the materialized transpose
//!   through the reference kernels, on every backend.

use catrsm_suite::prelude::*;
use proptest::prelude::*;
use sparse::gen as sgen;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sparse: identical requests are bitwise identical across worker pins,
    /// and the report's flops equal the old executors'.
    #[test]
    fn sparse_request_is_bitwise_deterministic_across_threads(
        n in 10usize..400,
        fill in 0usize..8,
        k in 1usize..6,
        transposed in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let m = sgen::random_lower(n, fill, seed);
        let b = Matrix::from_fn(n, k, |i, j| ((i * 7 + j * 29 + 3) % 31) as f64 / 15.5 - 1.0);
        let base = SolveRequest::lower().transpose(if transposed {
            Transpose::Yes
        } else {
            Transpose::No
        });
        let reference = base.threads(1).solve_sparse(&m, &b).unwrap();
        prop_assert_eq!(reference.report.flops, m.solve_flops(k));
        for threads in [2usize, 4, 6] {
            let sol = base.threads(threads).solve_sparse(&m, &b).unwrap();
            prop_assert!(
                sol.x == reference.x,
                "worker pin {} changed the solution bits", threads
            );
            prop_assert_eq!(sol.report.flops, reference.report.flops);
        }
        // Old shim and new API agree bitwise and in flop accounting.
        let mut old = b.clone();
        let old_flops = m.solve_multi_in_place(&mut old).unwrap();
        if !transposed {
            prop_assert!(old == reference.x);
            prop_assert_eq!(old_flops, reference.report.flops);
        }
    }

    /// Dense: the request path is bitwise identical to the old `trsm` /
    /// `trsv` entry points with matching flops, for every triangle/diag,
    /// and transposed requests match the materialized transpose.
    #[test]
    fn dense_request_matches_old_entry_points(
        n in 1usize..150,
        k in 1usize..8,
        upper in any::<bool>(),
        unit in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let l = gen::well_conditioned_lower(n, seed);
        let (tri, a) = if upper {
            (Triangle::Upper, l.transpose())
        } else {
            (Triangle::Lower, l)
        };
        let diag = if unit { Diag::Unit } else { Diag::NonUnit };
        let b = Matrix::from_fn(n, k, |i, j| ((i * 11 + j * 5 + 1) % 17) as f64 - 8.0);
        let req = SolveRequest::new(tri).diag(diag);
        let sol = req.solve_dense(&a, &b).unwrap();
        let old = dense::trsm(tri, diag, &a, &b).unwrap();
        prop_assert!(sol.x == old, "new API diverged from trsm bitwise");
        prop_assert_eq!(sol.report.flops, dense::flops::trsm_flops(n, k));

        // Transposed request vs reference solve on the materialized Aᵀ.
        let solt = req.transposed().solve_dense(&a, &b).unwrap();
        let op_tri = if upper { Triangle::Lower } else { Triangle::Upper };
        let reference = dense::trsm(op_tri, diag, &a.transpose(), &b).unwrap();
        prop_assert!(
            solt.x.max_abs_diff(&reference).unwrap() < 1e-8,
            "transposed dense request diverged from the materialized transpose"
        );
        prop_assert_eq!(solt.report.flops, dense::flops::trsm_flops(n, k));

        // Single-RHS path agrees with the block path column by column.
        let bv: Vec<f64> = (0..n).map(|i| ((i * 3 + 2) % 13) as f64 - 6.0).collect();
        let sv = req.solve_dense_vec(&a, &bv).unwrap();
        let bm = Matrix::from_vec(n, 1, bv.clone()).unwrap();
        let sm = req.solve_dense(&a, &bm).unwrap();
        for i in 0..n {
            prop_assert!((sv.x[i] - sm.x[(i, 0)]).abs() < 1e-9);
        }
    }
}

/// Distributed: a transposed request equals solving the explicitly
/// transposed distributed matrix, and Auto's plan is the configuration it
/// executes.
#[test]
fn distributed_transposed_request_matches_materialized_transpose() {
    let n = 32;
    let k = 8;
    let out = Machine::new(4, MachineParams::unit())
        .run(move |comm| {
            let grid = Grid2D::new(comm, 2, 2).unwrap();
            let l_global = gen::well_conditioned_lower(n, 61);
            let x_true = gen::rhs(n, k, 62);
            let bt_global = dense::gemm::matmul(&l_global.transpose(), &x_true);
            let l = DistMatrix::from_global(&grid, &l_global);
            let bt = DistMatrix::from_global(&grid, &bt_global);
            let alg = Algorithm::Recursive { base_size: 8 };

            // Transposed request on the stored L…
            let sol = SolveRequest::lower()
                .transposed()
                .algorithm(alg)
                .solve_distributed(&l, &bt)
                .unwrap();
            // …vs an upper request on the materialized transpose.
            let lt = catrsm::transpose_dist(&l).unwrap();
            let reference = SolveRequest::upper()
                .algorithm(alg)
                .solve_distributed(&lt, &bt)
                .unwrap();
            (
                sol.x.rel_diff(&reference.x).unwrap(),
                dense::norms::rel_diff(&sol.x.to_global(), &x_true),
            )
        })
        .unwrap();
    for (vs_ref, vs_true) in out.results {
        assert_eq!(vs_ref, 0.0, "both routes must run the identical solve");
        assert!(vs_true < 1e-8);
    }
}

#[test]
fn auto_plan_is_the_configuration_that_executes() {
    let n = 64;
    let k = 16;
    let out = Machine::new(4, MachineParams::unit())
        .run(move |comm| {
            let grid = Grid2D::new(comm, 2, 2).unwrap();
            let l_global = gen::well_conditioned_lower(n, 71);
            let x_true = gen::rhs(n, k, 72);
            let b_global = dense::matmul(&l_global, &x_true);
            let l = DistMatrix::from_global(&grid, &l_global);
            let b = DistMatrix::from_global(&grid, &b_global);

            let plan = SolveRequest::lower()
                .plan_distributed(n, k, comm.size())
                .unwrap();
            let PlanBackend::Distributed { algorithm, .. } = &plan.backend else {
                panic!("expected a distributed plan");
            };
            // Pinning the request to the algorithm Auto chose must execute
            // the identical solve.
            let auto = plan.execute_distributed(&l, &b).unwrap();
            let pinned = SolveRequest::lower()
                .algorithm(*algorithm)
                .solve_distributed(&l, &b)
                .unwrap();
            (
                auto.x.rel_diff(&pinned.x).unwrap(),
                dense::norms::rel_diff(&auto.x.to_global(), &x_true),
                auto.report.phases.is_some(),
            )
        })
        .unwrap();
    for (vs_pinned, vs_true, has_phases) in out.results {
        assert_eq!(vs_pinned, 0.0, "Auto must execute exactly its plan");
        assert!(vs_true < 1e-8);
        assert!(has_phases, "Auto resolves to it_inv, which reports phases");
    }
}
