//! Cross-crate integration tests: the full stack (dense kernels → simulated
//! machine → grids → algorithms → cost model) exercised together the way the
//! experiments and examples use it.

use catrsm::api::Algorithm;
use catrsm::it_inv_trsm::{it_inv_trsm, ItInvConfig};
use catrsm::planner;
use catrsm::rec_trsm::{rec_trsm, RecTrsmConfig};
use catrsm_suite::prelude::*;
use pgrid::redist;
use simnet::coll;

/// Build a solvable instance and return (L, B, X_true) as global matrices.
fn instance(n: usize, k: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
    let l = gen::well_conditioned_lower(n, seed);
    let x = gen::rhs(n, k, seed + 1);
    let b = dense::matmul(&l, &x);
    (l, b, x)
}

#[test]
fn all_trsm_algorithms_agree_with_the_sequential_solution() {
    let n = 128;
    let k = 32;
    let out = Machine::new(16, MachineParams::cluster())
        .run(|comm| {
            let grid = Grid2D::new(comm, 4, 4).unwrap();
            let (l_g, b_g, x_g) = instance(n, k, 77);
            let l = DistMatrix::from_global(&grid, &l_g);
            let b = DistMatrix::from_global(&grid, &b_g);
            let reference = DistMatrix::from_global(&grid, &x_g);

            let mut errors = Vec::new();
            for algorithm in [
                Algorithm::Auto,
                Algorithm::Recursive { base_size: 16 },
                Algorithm::IterativeInversion(ItInvConfig {
                    p1: 2,
                    p2: 4,
                    n0: 32,
                    inv_base: 16,
                }),
                Algorithm::Wavefront,
            ] {
                let sol = SolveRequest::lower()
                    .algorithm(algorithm)
                    .solve_distributed(&l, &b)
                    .unwrap();
                assert!(sol.report.comm.is_some(), "{algorithm:?} must report");
                errors.push(sol.x.rel_diff(&reference).unwrap());
            }
            errors
        })
        .unwrap();
    for per_rank in out.results {
        for err in per_rank {
            assert!(err < 1e-8, "error {err}");
        }
    }
}

#[test]
fn iterative_algorithm_beats_recursive_latency_as_p_grows() {
    // The paper's headline claim, measured end to end: at fixed (n, k) the
    // latency gap between the recursive baseline and the inversion-based
    // algorithm widens as processors are added.
    let n = 256;
    let k = 64;
    let mut ratios = Vec::new();
    for q in [2usize, 4] {
        let p = q * q;
        let plan = planner::plan(n, k, p);
        let run = |alg: Algorithm| {
            Machine::new(p, MachineParams::unit())
                .run(move |comm| {
                    let grid = Grid2D::new(comm, q, q).unwrap();
                    let (l_g, b_g, _) = instance(n, k, 3);
                    let l = DistMatrix::from_global(&grid, &l_g);
                    let b = DistMatrix::from_global(&grid, &b_g);
                    SolveRequest::lower()
                        .algorithm(alg)
                        .solve_distributed(&l, &b)
                        .unwrap();
                })
                .unwrap()
                .report
                .max_messages()
        };
        let rec = run(Algorithm::Recursive { base_size: 32 });
        let itr = run(Algorithm::IterativeInversion(plan.it_inv));
        assert!(
            itr < rec,
            "iterative must need fewer messages (p = {p}: {itr} vs {rec})"
        );
        ratios.push(rec as f64 / itr as f64);
    }
    assert!(
        ratios[1] >= ratios[0],
        "the latency advantage should not shrink with p: {ratios:?}"
    );
}

#[test]
fn both_algorithms_move_the_same_order_of_words() {
    // Section IX: W is asymptotically identical for both methods.
    let n = 256;
    let k = 64;
    let q = 4;
    let p = q * q;
    let plan = planner::plan(n, k, p);
    let words = |alg: Algorithm| {
        Machine::new(p, MachineParams::unit())
            .run(move |comm| {
                let grid = Grid2D::new(comm, q, q).unwrap();
                let (l_g, b_g, _) = instance(n, k, 5);
                let l = DistMatrix::from_global(&grid, &l_g);
                let b = DistMatrix::from_global(&grid, &b_g);
                SolveRequest::lower()
                    .algorithm(alg)
                    .solve_distributed(&l, &b)
                    .unwrap();
            })
            .unwrap()
            .report
            .max_words()
    };
    let rec = words(Algorithm::Recursive { base_size: 32 }) as f64;
    let itr = words(Algorithm::IterativeInversion(plan.it_inv)) as f64;
    let ratio = itr / rec;
    assert!(
        (0.25..4.0).contains(&ratio),
        "bandwidths should be within a small constant factor, got ratio {ratio}"
    );
}

#[test]
fn planner_configurations_are_always_runnable() {
    // Whatever the planner returns for a feasible (n, k, p) must execute and
    // produce a correct solution.
    for (n, k, q) in [
        (64usize, 16usize, 2usize),
        (64, 256, 2),
        (256, 16, 4),
        (128, 128, 4),
    ] {
        let p = q * q;
        let plan = planner::plan(n, k, p);
        let out = Machine::new(p, MachineParams::unit())
            .run(move |comm| {
                let grid = Grid2D::new(comm, q, q).unwrap();
                let (l_g, b_g, x_g) = instance(n, k, 11);
                let l = DistMatrix::from_global(&grid, &l_g);
                let b = DistMatrix::from_global(&grid, &b_g);
                let (x, _) = it_inv_trsm(&l, &b, &plan.it_inv).unwrap();
                let x_ref = DistMatrix::from_global(&grid, &x_g);
                x.rel_diff(&x_ref).unwrap()
            })
            .unwrap();
        for err in out.results {
            assert!(err < 1e-8, "n={n} k={k} p={p}: {err}");
        }
    }
}

#[test]
fn distributed_residual_checks_work_end_to_end() {
    let out = Machine::new(4, MachineParams::unit())
        .run(|comm| {
            let grid = Grid2D::new(comm, 2, 2).unwrap();
            let (l_g, b_g, _) = instance(64, 16, 13);
            let l = DistMatrix::from_global(&grid, &l_g);
            let b = DistMatrix::from_global(&grid, &b_g);
            let x = rec_trsm(&l, &b, &RecTrsmConfig::default()).unwrap();
            catrsm::verify::residual(&l, &x, &b).unwrap()
        })
        .unwrap();
    assert!(out.results.into_iter().all(|r| r < 1e-10));
}

#[test]
fn upper_triangular_systems_solve_via_reversal() {
    let out = Machine::new(4, MachineParams::unit())
        .run(|comm| {
            let grid = Grid2D::new(comm, 2, 2).unwrap();
            let n = 64;
            let k = 8;
            let u_g = gen::well_conditioned_upper(n, 17);
            let x_g = gen::rhs(n, k, 18);
            let b_g = dense::matmul(&u_g, &x_g);
            let u = DistMatrix::from_global(&grid, &u_g);
            let b = DistMatrix::from_global(&grid, &b_g);
            let sol = SolveRequest::upper().solve_distributed(&u, &b).unwrap();
            let x_ref = DistMatrix::from_global(&grid, &x_g);
            sol.x.rel_diff(&x_ref).unwrap()
        })
        .unwrap();
    assert!(out.results.into_iter().all(|r| r < 1e-8));
}

#[test]
fn measured_collective_costs_match_the_cost_model() {
    // The glue between `simnet` and `costmodel`: measured allgather and
    // allreduce word counts equal the Section II-C1 formulas.
    let p = 16;
    let words = 1 << 12;
    let out = Machine::new(p, MachineParams::unit())
        .run(move |comm| {
            let mine = vec![comm.rank() as f64; words / comm.size()];
            coll::allgather(comm, &mine).unwrap();
        })
        .unwrap();
    let model = costmodel::collectives::allgather(words as f64, p as f64);
    assert_eq!(out.report.max_messages() as f64, model.latency);
    assert_eq!(out.report.max_words(), (words - words / p) as u64);

    let out = Machine::new(p, MachineParams::unit())
        .run(move |comm| {
            coll::allreduce(comm, &vec![1.0; words], coll::ReduceOp::Sum).unwrap();
        })
        .unwrap();
    let model = costmodel::collectives::allreduction(words as f64, p as f64);
    assert_eq!(out.report.max_messages() as f64, model.latency);
    // Measured is the exact (p−1)/p fraction of the leading-order 2n model term.
    let expected = 2 * (words - words / p);
    assert_eq!(out.report.max_words(), expected as u64);
}

#[test]
fn redistribution_round_trips_between_grids() {
    // Move a matrix from a 4x1 grid layout to 2x2 ownership and back using
    // the keyed exchange, preserving every element.
    let out = Machine::new(4, MachineParams::unit())
        .run(|comm| {
            let tall = Grid2D::new(comm, 4, 1).unwrap();
            let square = Grid2D::new(comm, 2, 2).unwrap();
            let a = DistMatrix::from_fn(&tall, 12, 8, |i, j| (i * 8 + j) as f64);
            // To the square grid…
            let received =
                redist::remap_elements(&a, |i, j| square.rank_of(i % 2, j % 2), true).unwrap();
            let mut on_square = DistMatrix::zeros(&square, 12, 8);
            for (i, j, v) in received {
                on_square.local_mut()[(i / 2, j / 2)] = v;
            }
            // …and back to the tall grid.
            let back =
                redist::remap_elements(&on_square, |i, _j| tall.rank_of(i % 4, 0), true).unwrap();
            let mut again = DistMatrix::zeros(&tall, 12, 8);
            for (i, j, v) in back {
                again.local_mut()[(i / 4, j)] = v;
            }
            again.rel_diff(&a).unwrap()
        })
        .unwrap();
    assert!(out.results.into_iter().all(|d| d == 0.0));
}

#[test]
fn virtual_time_is_consistent_with_counters() {
    // On a unit machine the virtual time can never exceed the counter bound
    // p · (S + W + F) and never be smaller than the per-rank maximum phase.
    let out = Machine::new(4, MachineParams::unit())
        .run(|comm| {
            let grid = Grid2D::new(comm, 2, 2).unwrap();
            let (l_g, b_g, _) = instance(64, 16, 23);
            let l = DistMatrix::from_global(&grid, &l_g);
            let b = DistMatrix::from_global(&grid, &b_g);
            SolveRequest::lower().solve_distributed(&l, &b).unwrap();
        })
        .unwrap();
    let report = out.report;
    let counter_bound = (report.max_messages() + report.max_words() + report.max_flops()) as f64
        * report.num_ranks() as f64;
    assert!(report.virtual_time() <= counter_bound);
    assert!(report.virtual_time() > 0.0);
}

#[test]
#[allow(deprecated)]
fn deprecated_shims_agree_with_the_staged_api() {
    // `solve_lower` / `solve_upper` must keep compiling and keep solving
    // exactly what the SolveRequest path solves.
    let out = Machine::new(4, MachineParams::unit())
        .run(|comm| {
            let grid = Grid2D::new(comm, 2, 2).unwrap();
            let (l_g, b_g, _) = instance(64, 16, 29);
            let l = DistMatrix::from_global(&grid, &l_g);
            let b = DistMatrix::from_global(&grid, &b_g);
            let alg = Algorithm::Recursive { base_size: 16 };
            let old = solve_lower(&l, &b, alg).unwrap();
            let new = SolveRequest::lower()
                .algorithm(alg)
                .solve_distributed(&l, &b)
                .unwrap();
            let d = old.rel_diff(&new.x).unwrap();

            let u_g = gen::well_conditioned_upper(32, 33);
            let xu = gen::rhs(32, 8, 34);
            let bu_g = dense::matmul(&u_g, &xu);
            let u = DistMatrix::from_global(&grid, &u_g);
            let bu = DistMatrix::from_global(&grid, &bu_g);
            let old_u = solve_upper(&u, &bu, alg).unwrap();
            let new_u = SolveRequest::upper()
                .algorithm(alg)
                .solve_distributed(&u, &bu)
                .unwrap();
            (d, old_u.rel_diff(&new_u.x).unwrap())
        })
        .unwrap();
    for (d_l, d_u) in out.results {
        assert_eq!(d_l, 0.0, "lower shim must match the staged API bitwise");
        assert_eq!(d_u, 0.0, "upper shim must match the staged API bitwise");
    }
}
