//! Parallel rank execution: the `Machine::with_rank_workers` compute gate
//! must be a pure throughput knob.
//!
//! Three claims, matching the execution-model section of the simnet README:
//!
//! * **determinism matrix** — every distributed algorithm returns
//!   bitwise-identical solutions and identical per-rank α–β–γ counters at
//!   every rank-worker count (the CI `distributed-parallel` job re-runs
//!   this binary under `DENSE_THREADS=1` and `=4` on top);
//! * **chaos under parallel ranks** — the full fault taxonomy keeps its
//!   contract when ranks execute concurrently under a bounded gate:
//!   transient plans stay bit-transparent, permanent plans fail typed on
//!   every affected rank, and nothing ever hangs;
//! * **overlap + trace acceptance** — with `MachineParams::with_overlap`
//!   a recursive-TRSM solve hides compute under posted sends (a nonzero
//!   overlap counter), rank spans land on distinct wall lanes in the obs
//!   trace, and the answer still matches the single-worker run bitwise.

use catrsm::{Algorithm, ItInvConfig, TrsmError};
use catrsm_suite::obs;
use catrsm_suite::prelude::*;
use simnet::{FaultPlan, SimError};

const N: usize = 32;
const K: usize = 8;

/// The transport-level error at the root of a solve failure.
fn root_sim_error(e: &TrsmError) -> Option<&SimError> {
    match e {
        TrsmError::Sim(s) => Some(s),
        TrsmError::Grid(pgrid::GridError::Sim(s)) => Some(s),
        _ => None,
    }
}

/// The three distributed algorithms, configured for a 4-rank 2×2 grid.
fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::Recursive { base_size: 16 },
        Algorithm::IterativeInversion(ItInvConfig {
            p1: 2,
            p2: 1,
            n0: 16,
            inv_base: 8,
        }),
        Algorithm::Wavefront,
    ]
}

/// One distributed solve per rank: the collected global solution plus this
/// rank's measured overlap, or the typed error rendered to a string.
fn solve_on(machine: &Machine, alg: Algorithm, seed: u64) -> Vec<Result<(Matrix, f64), String>> {
    machine
        .run(move |comm| {
            let grid = Grid2D::new(comm, 2, 2).unwrap();
            let l_g = gen::well_conditioned_lower(N, seed);
            let x_g = gen::rhs(N, K, seed + 1);
            let b_g = dense::matmul(&l_g, &x_g);
            let l = DistMatrix::from_global(&grid, &l_g);
            let b = DistMatrix::from_global(&grid, &b_g);
            SolveRequest::lower()
                .algorithm(alg)
                .solve_distributed(&l, &b)
                .map(|sol| (sol.x.to_global(), sol.report.overlap_seconds()))
                .map_err(|e| e.to_string())
        })
        .expect("machine-level run must not fail: rank errors are typed")
        .results
}

/// Satellite: the determinism matrix.  Every algorithm, every rank-worker
/// count — bitwise-identical solutions, identical per-rank counters,
/// identical virtual finish time.
#[test]
fn rank_worker_count_is_bitwise_invisible_for_every_algorithm() {
    let params = MachineParams::cluster();
    for alg in algorithms() {
        let base = Machine::new(4, params)
            .with_rank_workers(1)
            .run(run_one(alg))
            .expect("serial-gate run");
        for workers in [2usize, 4] {
            let out = Machine::new(4, params)
                .with_rank_workers(workers)
                .run(run_one(alg))
                .expect("parallel-gate run");
            assert_eq!(
                base.results, out.results,
                "{alg:?}: solution bits changed at {workers} rank workers"
            );
            assert_eq!(
                base.report.per_rank, out.report.per_rank,
                "{alg:?}: per-rank counters changed at {workers} rank workers"
            );
            assert_eq!(
                base.report.virtual_time(),
                out.report.virtual_time(),
                "{alg:?}: virtual time changed at {workers} rank workers"
            );
        }
    }
}

/// One solve closure for the determinism matrix (returns the global
/// solution's bit pattern).
fn run_one(alg: Algorithm) -> impl Fn(&simnet::Communicator) -> Vec<u64> + Send + Sync + Clone {
    move |comm| {
        let grid = Grid2D::new(comm, 2, 2).unwrap();
        let l_g = gen::well_conditioned_lower(N, 17);
        let x_g = gen::rhs(N, K, 18);
        let b_g = dense::matmul(&l_g, &x_g);
        let l = DistMatrix::from_global(&grid, &l_g);
        let b = DistMatrix::from_global(&grid, &b_g);
        let sol = SolveRequest::lower()
            .algorithm(alg)
            .solve_distributed(&l, &b)
            .expect("clean solve");
        sol.x
            .to_global()
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect()
    }
}

/// Eight transient fault plans — every class plus combinations — for the
/// parallel-rank chaos sweep (the two permanent plans below complete the
/// ten-plan suite).
fn transient_plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("drops", FaultPlan::new(0xA0A0).with_drops(0.3, 2)),
        ("duplicates", FaultPlan::new(0xA1A1).with_duplicates(0.3)),
        ("reorder", FaultPlan::new(0xA2A2).with_reordering(0.25)),
        ("delays", FaultPlan::new(0xA3A3).with_delays(0.4, 2.0)),
        ("stalls", FaultPlan::new(0xA4A4).with_stalls(0.2, 2.0)),
        ("heavy-drops", FaultPlan::new(0xA5A5).with_drops(0.6, 3)),
        (
            "dup+reorder",
            FaultPlan::new(0xA6A6)
                .with_duplicates(0.25)
                .with_reordering(0.25),
        ),
        (
            "everything",
            FaultPlan::new(0xA7A7)
                .with_drops(0.25, 2)
                .with_duplicates(0.2)
                .with_reordering(0.2)
                .with_delays(0.2, 2.0)
                .with_stalls(0.1, 1.0),
        ),
    ]
}

/// Satellite: transient chaos under parallel ranks.  A faulty run with a
/// 4-worker gate must reproduce the fault-free single-worker run bit for
/// bit, for every algorithm and every transient plan.
#[test]
fn chaos_transient_plans_stay_bit_transparent_under_parallel_ranks() {
    let params = MachineParams::unit();
    for alg in algorithms() {
        let clean = solve_on(&Machine::new(4, params).with_rank_workers(1), alg, 41);
        for (name, plan) in transient_plans() {
            assert!(plan.is_transient(&params), "{name} must be transient");
            let faulty = solve_on(
                &Machine::new(4, params)
                    .with_fault_plan(plan)
                    .with_rank_workers(4),
                alg,
                41,
            );
            for (rank, (c, f)) in clean.iter().zip(faulty.iter()).enumerate() {
                let c = c.as_ref().expect("clean run solves");
                let f = f
                    .as_ref()
                    .unwrap_or_else(|e| panic!("{alg:?}/{name} rank {rank} failed: {e}"));
                assert_eq!(
                    c.0, f.0,
                    "{alg:?}/{name} rank {rank}: solution not bit-identical under parallel ranks"
                );
            }
        }
    }
}

/// Satellite: permanent chaos under parallel ranks.  A crashed rank and an
/// exhausted retry budget must fail typed on every affected rank — the
/// compute gate (permits released around blocking receives and on panic)
/// must never convert a failure cascade into a hang.
#[test]
fn chaos_permanent_plans_fail_typed_under_parallel_ranks() {
    for alg in algorithms() {
        // Plan 9/10: rank 1 crashes after its third send.
        let params = MachineParams::unit();
        let crash = FaultPlan::new(0xBAD1).with_crash(1, 3);
        assert!(!crash.is_transient(&params));
        let out = Machine::new(4, params)
            .with_fault_plan(crash)
            .with_rank_workers(2)
            .run(move |comm| {
                let grid = Grid2D::new(comm, 2, 2).unwrap();
                let l_g = gen::well_conditioned_lower(N, 5);
                let x_g = gen::rhs(N, K, 6);
                let b_g = dense::matmul(&l_g, &x_g);
                let l = DistMatrix::from_global(&grid, &l_g);
                let b = DistMatrix::from_global(&grid, &b_g);
                SolveRequest::lower()
                    .algorithm(alg)
                    .solve_distributed(&l, &b)
                    .err()
            })
            .expect("crash must surface as rank-level errors, not a run failure");
        let failures = out
            .results
            .iter()
            .flatten()
            .map(|err| {
                assert!(
                    matches!(root_sim_error(err), Some(SimError::RankFailure { rank: 1 })),
                    "{alg:?}/crash: untyped failure {err:?}"
                );
            })
            .count();
        assert!(failures > 0, "{alg:?}: the crash plan never fired");
        assert!(
            out.report.virtual_time().is_finite() && out.report.virtual_time() < 1.0e6,
            "{alg:?}/crash: virtual time {} not bounded",
            out.report.virtual_time()
        );

        // Plan 10/10: every transfer exhausts a one-retry budget.
        let params = MachineParams::unit().with_retry(1.0e-3, 1);
        let exhaust = FaultPlan::new(0xBAD2).with_drops(1.0, 5);
        assert!(!exhaust.is_transient(&params));
        let out = solve_on(
            &Machine::new(4, params)
                .with_fault_plan(exhaust)
                .with_rank_workers(4),
            alg,
            9,
        );
        for (rank, res) in out.iter().enumerate() {
            let err = res
                .as_ref()
                .err()
                .unwrap_or_else(|| panic!("{alg:?}: rank {rank} solved under a permanent plan"));
            assert!(
                err.contains("simulator error"),
                "{alg:?}: rank {rank} error not rooted in the transport: {err}"
            );
        }
    }
}

/// Acceptance: a 2×2 grid recursive-TRSM solve with a 4-worker gate and
/// the overlap timing model (a) runs rank spans on more than one wall
/// lane, (b) hides a nonzero amount of compute under posted sends, and
/// (c) still matches the 1-worker run bitwise.
#[test]
fn overlap_and_distinct_lanes_with_parallel_rank_workers() {
    let alg = Algorithm::Recursive { base_size: 16 };
    let params = MachineParams::cluster().with_overlap(true);

    obs::set_enabled(true);
    let mark = obs::mark();
    let traced = solve_on(&Machine::new(4, params).with_rank_workers(4), alg, 77);
    let dump = obs::collect_since(&mark);
    obs::set_enabled(false);

    // (a) rank spans on more than one wall lane: with 4 workers admitted,
    // every rank thread records its own wall buffer.
    let rank_lanes = dump
        .threads
        .iter()
        .filter(|t| {
            matches!(t.lane, obs::Lane::Wall)
                && t.events
                    .iter()
                    .any(|e| e.cat == "simnet" && e.name == "rank")
        })
        .count();
    assert!(
        rank_lanes > 1,
        "expected rank spans on >1 wall lane, got {rank_lanes}"
    );

    // (b) the overlap model hid compute under at least one posted send,
    // and the hiding shows up both in the report counter and the trace.
    let total_overlap: f64 = traced
        .iter()
        .map(|r| r.as_ref().expect("traced solve").1)
        .sum();
    assert!(
        total_overlap > 0.0,
        "recursive TRSM under overlap params must hide some compute"
    );
    let overlap_instants = dump
        .threads
        .iter()
        .flat_map(|t| &t.events)
        .filter(|e| e.cat == "simnet" && e.name == "overlap")
        .count();
    assert!(
        overlap_instants > 0,
        "overlap instants missing from the sim lanes"
    );

    // (c) bitwise identical to the single-worker run on the same machine.
    let serial = solve_on(&Machine::new(4, params).with_rank_workers(1), alg, 77);
    for (rank, (a, b)) in traced.iter().zip(serial.iter()).enumerate() {
        assert_eq!(
            a.as_ref().expect("traced").0,
            b.as_ref().expect("serial").0,
            "rank {rank}: worker count changed overlap-mode bits"
        );
    }
}
