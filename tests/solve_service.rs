//! The distributed leg of the solve-service cache tests.  A distributed
//! plan depends only on the shape `(n, k, p)` and the request options, so
//! the service can cache it without an operand fingerprint; executing the
//! cached `Arc<SolvePlan>` inside the simulated machine must be bitwise
//! the solve a freshly lowered plan performs.

use catrsm_suite::prelude::*;
use std::sync::Arc;

#[test]
fn cached_distributed_plan_executes_bitwise_like_fresh() {
    let n = 96;
    let k = 24;
    let p = 4;
    let svc = SolveService::new(ServiceConfig::default());
    let req = SolveRequest::lower();

    let builds_before = catrsm::plan_build_count();
    let cold: Arc<SolvePlan> = svc.plan_distributed(&req, n, k, p).unwrap();
    let builds_after_miss = catrsm::plan_build_count();
    assert!(builds_after_miss > builds_before, "cold path must lower");

    // Same shape again: a cache hit, same plan object, zero new builds.
    let hit = svc.plan_distributed(&req, n, k, p).unwrap();
    assert!(Arc::ptr_eq(&cold, &hit), "hit must return the cached plan");
    assert_eq!(catrsm::plan_build_count(), builds_after_miss);
    let stats = svc.stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);

    // A different shape is a different key.
    let other = svc.plan_distributed(&req, n, k + 1, p).unwrap();
    assert!(!Arc::ptr_eq(&cold, &other));
    assert_eq!(svc.stats().misses, 2);

    // Execute the cached plan and a freshly lowered one inside the
    // machine: bitwise-identical solutions, and correct ones.
    let cached = Arc::clone(&hit);
    let out = Machine::new(p, MachineParams::unit())
        .run(move |comm| {
            let grid = Grid2D::new(comm, 2, 2).unwrap();
            let l_global = gen::well_conditioned_lower(n, 901);
            let x_true = gen::rhs(n, k, 902);
            let b_global = dense::matmul(&l_global, &x_true);
            let l = DistMatrix::from_global(&grid, &l_global);
            let b = DistMatrix::from_global(&grid, &b_global);

            let fresh_plan = SolveRequest::lower()
                .plan_distributed(n, k, comm.size())
                .unwrap();
            let fresh = fresh_plan.execute_distributed(&l, &b).unwrap();
            let served = cached.execute_distributed(&l, &b).unwrap();
            (
                served.x.rel_diff(&fresh.x).unwrap(),
                dense::norms::rel_diff(&served.x.to_global(), &x_true),
            )
        })
        .unwrap();
    for (vs_fresh, vs_true) in out.results {
        assert_eq!(vs_fresh, 0.0, "cached plan must run the identical solve");
        assert!(vs_true < 1e-8);
    }
}

#[test]
fn distributed_plans_share_the_cache_with_local_plans() {
    // Distributed pseudo-fingerprints must not collide with dense/sparse
    // keys: fill the cache with a mix and check every entry survives.
    let svc = SolveService::new(ServiceConfig {
        plan_cache_capacity: 8,
        admission_window: 4,
    });
    let req = SolveRequest::lower();
    svc.plan_distributed(&req, 64, 16, 4).unwrap();
    svc.plan_distributed(&req, 64, 16, 9).unwrap();

    let m = Arc::new(sparse::gen::random_lower(64, 3, 5));
    let b = sparse::gen::rhs_vec(64, 6);
    svc.solve_vec(&req, &Operand::Sparse(Arc::clone(&m)), &b)
        .unwrap();

    assert_eq!(svc.cached_plans(), 3);
    // Re-requesting each is a hit, not a collision-miss.
    svc.plan_distributed(&req, 64, 16, 4).unwrap();
    svc.plan_distributed(&req, 64, 16, 9).unwrap();
    svc.solve_vec(&req, &Operand::Sparse(m), &b).unwrap();
    let stats = svc.stats();
    assert_eq!(stats.misses, 3);
    assert_eq!(stats.hits, 3);
}
