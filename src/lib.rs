//! Umbrella crate for the communication-avoiding TRSM reproduction.
//!
//! This crate only exists to host the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); the actual functionality lives
//! in the workspace crates, re-exported here for convenience:
//!
//! * [`obs`] — the solver-wide tracing and metrics layer (span recorder,
//!   Chrome-trace exporter, aggregated `TraceReport`s),
//! * [`dense`] — local dense kernels (the BLAS substitute),
//! * [`sparse`] — level-scheduled parallel sparse triangular solves
//!   (CSR storage, dependency-DAG analysis, multi-RHS executors),
//! * [`simnet`] — the simulated distributed-memory machine (the MPI
//!   substitute) with α–β–γ cost accounting,
//! * [`pgrid`] — processor grids, cyclic layouts and distributed matrices,
//! * [`costmodel`] — the paper's analytic cost model and parameter tuning,
//! * [`catrsm`] — the paper's algorithms: 3D matrix multiplication,
//!   recursive TRSM, distributed triangular inversion, the block-diagonal
//!   inverter, the iterative inversion-based TRSM, and the Cholesky/LU
//!   applications,
//! * [`serve`] — the long-lived solve service: a fingerprint-keyed plan
//!   cache with canonical-operand pinning plus a batching engine that
//!   fuses compatible single-RHS requests.

pub use catrsm;
pub use costmodel;
pub use dense;
pub use obs;
pub use pgrid;
pub use serve;
pub use simnet;
pub use sparse;

/// Convenience prelude for the examples and integration tests.
///
/// The primary solver surface is the staged API re-exported here:
/// [`SolveRequest`](catrsm::SolveRequest) →
/// [`SolvePlan`](catrsm::SolvePlan) → [`Solution`](catrsm::Solution); the
/// deprecated [`solve_lower`](catrsm::api::solve_lower) /
/// [`solve_upper`](catrsm::api::solve_upper) shims stay importable for
/// older code.
pub mod prelude {
    pub use catrsm::api::Algorithm;
    #[allow(deprecated)]
    pub use catrsm::api::{solve_lower, solve_upper};
    pub use catrsm::it_inv_trsm::{it_inv_trsm, ItInvConfig};
    pub use catrsm::rec_trsm::{rec_trsm, RecTrsmConfig};
    pub use catrsm::{LevelReport, PlanBackend, Solution, SolvePlan, SolveReport, SolveRequest};
    pub use dense::{gen, Diag, Matrix, Side, Transpose, Triangle};
    pub use pgrid::{DistMatrix, Grid2D};
    pub use serve::{Operand, ServiceConfig, ServiceRequest, SolveService};
    pub use simnet::{coll, Machine, MachineParams};
    pub use sparse::{MergedSchedule, Schedule, SchedulePolicy, SparseTri};
}

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_are_wired() {
        // A smoke test that the re-exported crates are usable together.
        let plan = costmodel::plan(1024, 256, 64);
        assert!(plan.p1 >= 1.0);
        let m = dense::Matrix::identity(3);
        assert_eq!(m[(2, 2)], 1.0);
    }
}
