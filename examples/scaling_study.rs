//! A small strong-scaling study on the simulated machine: fix the problem
//! and grow the processor count, comparing the measured critical-path costs
//! of the recursive baseline and the iterative inversion-based algorithm,
//! and extending the curve with the analytic model beyond what is practical
//! to simulate.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use catrsm::planner;
use catrsm_suite::prelude::*;

fn measure(n: usize, k: usize, grid_dim: usize, algorithm: Algorithm) -> (u64, u64, f64) {
    let request = SolveRequest::lower().algorithm(algorithm);
    let out = Machine::new(grid_dim * grid_dim, MachineParams::cluster())
        .run(move |comm| {
            let grid = Grid2D::new(comm, grid_dim, grid_dim).expect("grid");
            let l_global = gen::well_conditioned_lower(n, 1);
            let x_true = gen::rhs(n, k, 2);
            let b_global = dense::matmul(&l_global, &x_true);
            let l = DistMatrix::from_global(&grid, &l_global);
            let b = DistMatrix::from_global(&grid, &b_global);
            let sol = request.solve_distributed(&l, &b).expect("solve");
            let x_ref = DistMatrix::from_global(&grid, &x_true);
            assert!(sol.x.rel_diff(&x_ref).expect("conformal") < 1e-8);
            assert!(sol.report.comm.is_some(), "report carries the counters");
        })
        .expect("machine run");
    (
        out.report.max_messages(),
        out.report.max_words(),
        out.report.virtual_time(),
    )
}

fn main() {
    let n = 256;
    let k = 64;
    println!("strong scaling on the simulated machine: n = {n}, k = {k}");
    println!(
        "{:>5} | {:>28} | {:>28} | S ratio",
        "p", "recursive (S, W, T)", "inversion-based (S, W, T)"
    );
    for grid_dim in [1usize, 2, 4] {
        let p = grid_dim * grid_dim;
        let plan = planner::plan(n, k, p);
        let rec = measure(n, k, grid_dim, Algorithm::Recursive { base_size: 32 });
        let new = measure(n, k, grid_dim, Algorithm::IterativeInversion(plan.it_inv));
        println!(
            "{:>5} | S={:>6} W={:>9} T={:>8.2e} | S={:>6} W={:>9} T={:>8.2e} | {:>5.2}x",
            p,
            rec.0,
            rec.1,
            rec.2,
            new.0,
            new.1,
            new.2,
            rec.0 as f64 / new.0.max(1) as f64
        );
    }

    println!("\nanalytic model beyond simulation scale (same n/k ratio, larger n and p):");
    println!(
        "{:>9} {:>11} {:>11} | {:>13} {:>13} | ratio",
        "p", "n", "k", "S standard", "S new"
    );
    for (p, n, k) in [
        (256usize, 1usize << 14, 1usize << 12),
        (4096, 1 << 16, 1 << 14),
        (65536, 1 << 18, 1 << 16),
        (1 << 20, 1 << 20, 1 << 18),
    ] {
        let row = costmodel::compare::conclusion_row(n as f64, k as f64, p as f64);
        println!(
            "{:>9} {:>11} {:>11} | {:>13.3e} {:>13.3e} | {:>7.1}x",
            p,
            n,
            k,
            row.standard.latency,
            row.new.latency,
            row.standard.latency / row.new.latency
        );
    }
    println!(
        "\nThe measured ratios at small p and the model ratios at large p follow the\n\
         same trend: the synchronization advantage of the inversion-based algorithm\n\
         grows with the processor count (Section IX of the paper)."
    );
}
