//! Solve a symmetric positive-definite linear system with a distributed
//! Cholesky factorization whose panel solves are communication-avoiding
//! TRSMs — the first workload the paper's introduction motivates.
//!
//! ```text
//! cargo run --release --example cholesky_solver
//! ```

use catrsm::apps::cholesky::{cholesky_factor, cholesky_solve, FactorConfig};
use catrsm_suite::prelude::*;

fn main() {
    let n = 128;
    let k = 16;
    let grid_dim = 2;
    let machine = Machine::new(grid_dim * grid_dim, MachineParams::cluster());

    let cfg = FactorConfig {
        base_size: 32,
        trsm: Algorithm::Recursive { base_size: 16 },
    };

    let output = machine
        .run(|comm| {
            let grid = Grid2D::new(comm, grid_dim, grid_dim).expect("grid");
            // A well-conditioned SPD system with a known solution.
            let a_global = gen::spd(n, 99);
            let x_true = gen::rhs(n, k, 100);
            let b_global = dense::matmul(&a_global, &x_true);

            let a = DistMatrix::from_global(&grid, &a_global);
            let b = DistMatrix::from_global(&grid, &b_global);

            // Factor once, then solve (forward + backward TRSM; the
            // backward pass is a transposed SolveRequest on the stored L).
            let l = cholesky_factor(&a, &cfg).expect("cholesky");
            let x = cholesky_solve(&a, &b, &cfg).expect("solve");

            // The staged API reports per-solve: run the forward
            // substitution explicitly and read the measured counters.
            let fwd = SolveRequest::lower()
                .algorithm(cfg.trsm)
                .with_residual()
                .solve_distributed(&l, &b)
                .expect("forward solve");
            let fwd_residual = fwd.report.residual.expect("requested residual");

            // Check the factor and the solution.
            let l_global = l.to_global();
            let factor_err =
                dense::norms::rel_diff(&dense::matmul(&l_global, &l_global.transpose()), &a_global);
            let x_ref = DistMatrix::from_global(&grid, &x_true);
            let solve_err = x.rel_diff(&x_ref).expect("conformal");
            (factor_err, solve_err, fwd_residual)
        })
        .expect("machine run");

    let factor_err = output.results.iter().map(|r| r.0).fold(0.0, f64::max);
    let solve_err = output.results.iter().map(|r| r.1).fold(0.0, f64::max);
    let fwd_residual = output.results.iter().map(|r| r.2).fold(0.0, f64::max);
    println!("distributed Cholesky solver (SPD system)");
    println!(
        "  problem:              n = {n}, k = {k}, p = {}",
        grid_dim * grid_dim
    );
    println!("  ‖L·Lᵀ − A‖/‖A‖:        {factor_err:.3e}");
    println!("  solution error:        {solve_err:.3e}");
    println!("  L·Y = B residual:      {fwd_residual:.3e} (from the SolveReport)");
    println!(
        "  critical path:         S = {} messages, W = {} words, F = {} flops",
        output.report.max_messages(),
        output.report.max_words(),
        output.report.max_flops()
    );
    println!(
        "  α–β–γ virtual time:    {:.3e} s",
        output.report.virtual_time()
    );
    assert!(factor_err < 1e-8 && solve_err < 1e-6 && fwd_residual < 1e-8);
}
