//! Explore the paper's cost model interactively-ish: for a problem size given
//! on the command line, print the regime, the recommended parameters and the
//! predicted costs of the standard (recursive) and new (inversion-based)
//! algorithms — the "a priori" tuning workflow the paper advocates.
//!
//! ```text
//! cargo run --release --example cost_explorer -- [n] [k] [p]
//! cargo run --release --example cost_explorer -- 1048576 4096 16384
//! ```

use catrsm::SolveRequest;
use costmodel::{compare, predict, tuning, Machine as ModelMachine};

fn parse_arg(idx: usize, default: usize) -> usize {
    std::env::args()
        .nth(idx)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n = parse_arg(1, 1 << 20);
    let k = parse_arg(2, 1 << 12);
    let p = parse_arg(3, 1 << 14);

    println!("cost explorer — L·X = B with n = {n}, k = {k}, p = {p}\n");

    let plan = tuning::plan(n, k, p);
    println!("regime: {}", plan.regime.name());
    println!("recommended parameters (Section VIII):");
    println!(
        "  processor grid   p1 × p1 × p2 = {:.1} × {:.1} × {:.1}",
        plan.p1, plan.p1, plan.p2
    );
    println!(
        "  inverted blocks  n0 = {:.0}  ({} blocks along the diagonal)",
        plan.n0,
        (n as f64 / plan.n0).ceil()
    );
    println!(
        "  inversion grids  r1 × r1 × r2 = {:.1} × {:.1} × {:.1}",
        plan.r1, plan.r1, plan.r2
    );

    let row = compare::conclusion_row(n as f64, k as f64, p as f64);
    println!("\npredicted critical-path costs (leading order):");
    println!(
        "  {:<22} {:>14} {:>16} {:>16}",
        "algorithm", "S (messages)", "W (words)", "F (flops)"
    );
    println!(
        "  {:<22} {:>14.3e} {:>16.3e} {:>16.3e}",
        "standard (recursive)", row.standard.latency, row.standard.bandwidth, row.standard.flops
    );
    println!(
        "  {:<22} {:>14.3e} {:>16.3e} {:>16.3e}",
        "new (inversion-based)", row.new.latency, row.new.bandwidth, row.new.flops
    );
    println!(
        "\nlatency improvement: {:.1}×  (paper's asymptotic factor (n/k)^(1/6)·p^(2/3) = {:.1})",
        compare::latency_improvement(n as f64, k as f64, p as f64),
        compare::asymptotic_improvement_3d(n as f64, k as f64, p as f64)
    );

    println!("\npredicted execution times on reference machines:");
    for (name, machine) in [
        ("commodity cluster", ModelMachine::cluster()),
        ("supercomputer", ModelMachine::supercomputer()),
    ] {
        println!(
            "  {:<20} standard {:>12.4e} s   new {:>12.4e} s   speed-up {:>6.2}x",
            name,
            row.standard.time(&machine),
            row.new.time(&machine),
            row.standard.time(&machine) / row.new.time(&machine)
        );
    }

    println!(
        "\nregime boundaries at this p: 1D below n = {:.0}, 2D above n = {:.0}",
        4.0 * k as f64 / p as f64,
        4.0 * k as f64 * (p as f64).sqrt()
    );

    // The same numbers through the staged API: a plan carries its predicted
    // cost, so the "a priori" workflow is one `plan_distributed` away.
    let plan = SolveRequest::lower()
        .plan_distributed(n, k, p)
        .expect("plan");
    println!("\nstaged API: SolveRequest::lower().plan_distributed({n}, {k}, {p})");
    println!("  {plan}");
    let predicted = plan.predicted_cost.expect("distributed plans predict");
    println!(
        "  predicted S/W/F: {:.3e} / {:.3e} / {:.3e}",
        predicted.latency, predicted.bandwidth, predicted.flops
    );

    // And the wavefront baseline the predict hook also covers, for scale.
    let wf = predict::trsm_cost(
        predict::AlgorithmKind::Wavefront,
        n as f64,
        k as f64,
        p as f64,
    );
    println!(
        "  wavefront baseline would pay S = {:.3e} messages (Θ(n·log p))",
        wf.latency
    );
}
