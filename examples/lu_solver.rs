//! Solve a general (diagonally dominant) linear system with a distributed LU
//! factorization; both panel steps of the factorization are TRSMs.
//!
//! ```text
//! cargo run --release --example lu_solver
//! ```

use catrsm::apps::cholesky::FactorConfig;
use catrsm::apps::lu::{lu_factor, lu_solve};
use catrsm_suite::prelude::*;

fn main() {
    let n = 128;
    let k = 32;
    let grid_dim = 2;
    let machine = Machine::new(grid_dim * grid_dim, MachineParams::cluster());

    let cfg = FactorConfig {
        base_size: 32,
        trsm: Algorithm::Recursive { base_size: 16 },
    };

    let output = machine
        .run(|comm| {
            let grid = Grid2D::new(comm, grid_dim, grid_dim).expect("grid");
            let a_global = gen::diagonally_dominant(n, 555);
            let x_true = gen::rhs(n, k, 556);
            let b_global = dense::matmul(&a_global, &x_true);

            let a = DistMatrix::from_global(&grid, &a_global);
            let b = DistMatrix::from_global(&grid, &b_global);

            let (l, u) = lu_factor(&a, &cfg).expect("lu");
            let x = lu_solve(&a, &b, &cfg).expect("solve");

            // The triangular phases through the staged API, with reports:
            // forward L·Y = B, then backward U·X = Y.
            let fwd = SolveRequest::lower()
                .algorithm(cfg.trsm)
                .solve_distributed(&l, &b)
                .expect("forward solve");
            let bwd = SolveRequest::upper()
                .algorithm(cfg.trsm)
                .with_residual()
                .solve_distributed(&u, &fwd.x)
                .expect("backward solve");
            let bwd_residual = bwd.report.residual.expect("requested residual");

            let rec = dense::matmul(&l.to_global(), &u.to_global());
            let factor_err = dense::norms::rel_diff(&rec, &a_global);
            let x_ref = DistMatrix::from_global(&grid, &x_true);
            let solve_err = x.rel_diff(&x_ref).expect("conformal");
            let staged_err = bwd.x.rel_diff(&x_ref).expect("conformal");
            (factor_err, solve_err.max(staged_err), bwd_residual)
        })
        .expect("machine run");

    let factor_err = output.results.iter().map(|r| r.0).fold(0.0, f64::max);
    let solve_err = output.results.iter().map(|r| r.1).fold(0.0, f64::max);
    let bwd_residual = output.results.iter().map(|r| r.2).fold(0.0, f64::max);
    println!("distributed LU solver (diagonally dominant system)");
    println!(
        "  problem:              n = {n}, k = {k}, p = {}",
        grid_dim * grid_dim
    );
    println!("  ‖L·U − A‖/‖A‖:         {factor_err:.3e}");
    println!("  solution error:        {solve_err:.3e}");
    println!("  U·X = Y residual:      {bwd_residual:.3e} (from the SolveReport)");
    println!(
        "  critical path:         S = {} messages, W = {} words, F = {} flops",
        output.report.max_messages(),
        output.report.max_words(),
        output.report.max_flops()
    );
    println!(
        "  α–β–γ virtual time:    {:.3e} s",
        output.report.virtual_time()
    );
    assert!(factor_err < 1e-8 && solve_err < 1e-6 && bwd_residual < 1e-8);
}
