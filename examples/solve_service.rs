//! Solve-service quickstart: stand up a long-lived `SolveService`, watch
//! the plan cache amortize planning and schedule analysis across repeat
//! traffic, and fuse a burst of single-RHS submissions into one batched
//! execute.
//!
//! ```text
//! cargo run --release --example solve_service
//! ```

use catrsm_suite::prelude::*;
use std::sync::Arc;

fn main() {
    let n = 2_000;
    let svc = SolveService::new(ServiceConfig::default());
    let request = SolveRequest::lower().threads(4);

    // A sparse lower-triangular factor — think "the L of an incomplete
    // factorization that a preconditioner applies thousands of times".
    let factor = Arc::new(sparse::gen::random_lower(n, 6, 42));
    let b = sparse::gen::rhs_vec(n, 7);

    println!("solve-service quickstart (n = {n})");

    // --- Immediate path: miss once, hit forever. -------------------------
    let builds_before = catrsm::plan_build_count();
    let cold = svc
        .solve_vec(&request, &Operand::Sparse(Arc::clone(&factor)), &b)
        .expect("cold solve");
    println!(
        "  cold request:   planned (plan builds {} -> {}), analyzed \
         (analysis_count = {})",
        builds_before,
        catrsm::plan_build_count(),
        factor.analysis_count()
    );

    // Clients often rebuild content-identical operands; the fingerprint
    // sees through the fresh allocation.
    let rebuilt = Arc::new(sparse::gen::random_lower(n, 6, 42));
    let hit = svc
        .solve_vec(&request, &Operand::Sparse(Arc::clone(&rebuilt)), &b)
        .expect("warm solve");
    assert_eq!(hit.x, cold.x, "a cache hit is bitwise the cold answer");
    println!(
        "  warm request:   cache hit, no new plan (builds still {}), the \
         rebuilt operand was never analyzed (analysis_count = {}), answer \
         bitwise identical",
        catrsm::plan_build_count(),
        rebuilt.analysis_count()
    );

    // --- Batched path: submit a burst, flush once. -----------------------
    let width = 8;
    for j in 0..width {
        let rhs = sparse::gen::rhs_vec(n, 100 + j);
        svc.submit(ServiceRequest {
            request,
            operand: Operand::Sparse(Arc::clone(&factor)),
            rhs,
        })
        .expect("submit");
    }
    println!(
        "  submitted:      {width} single-RHS jobs (queue depth {})",
        svc.queue_depth()
    );
    let completions = svc.flush();
    assert!(completions.iter().all(|c| c.result.is_ok()));
    println!(
        "  flushed:        {} completions in ticket order, fused into one \
         {width}-wide multi-RHS execute",
        completions.len()
    );

    let stats = svc.stats();
    println!(
        "  service stats:  hits = {}, misses = {}, hit ratio = {:.2}, plan \
         builds = {}, batches = {}, fused requests = {}, max width = {}",
        stats.hits,
        stats.misses,
        stats.hit_ratio(),
        stats.plan_builds,
        stats.batches,
        stats.fused_requests,
        stats.max_batch_width
    );
    assert_eq!(stats.misses, 1, "one fingerprint, one miss");
    assert_eq!(stats.plan_builds, 1);
    assert_eq!(factor.analysis_count(), 1, "analyzed exactly once, ever");
}
