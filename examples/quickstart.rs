//! Quickstart: describe a triangular solve once with the staged
//! `SolveRequest → Plan → Solution` API, inspect the plan the cost model
//! chose, execute it on a simulated distributed-memory machine, and read
//! the uniform report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use catrsm_suite::prelude::*;

fn main() {
    // Problem: a 256×256 lower-triangular system with 64 right-hand sides,
    // solved on 16 simulated processors arranged as a 4×4 grid.
    let n = 256;
    let k = 64;
    let grid_dim = 4;
    let p = grid_dim * grid_dim;
    let machine = Machine::new(p, MachineParams::cluster());

    // Stage 1 — the request: what to solve, backend-independent.
    let request = SolveRequest::lower().with_residual();

    // Stage 2 — the plan: inspectable *before* anything runs.  With no
    // algorithm pin, the Section VIII cost model resolves `Auto` here.
    let plan = request.plan_distributed(n, k, p).expect("plan");
    println!("communication-avoiding TRSM quickstart");
    println!("  problem:        n = {n}, k = {k}, p = {p}");
    println!("  plan:           {plan}");
    if let PlanBackend::Distributed {
        params: Some(params),
        ..
    } = &plan.backend
    {
        println!(
            "  planner grid:   p1 × p1 × p2 = {} × {} × {}, n0 = {} ({:?})",
            params.it_inv.p1,
            params.it_inv.p1,
            params.it_inv.p2,
            params.it_inv.n0,
            plan.regime.expect("distributed plans carry a regime"),
        );
    }
    if let Some(cost) = &plan.predicted_cost {
        println!(
            "  predicted:      S = {:.2e} messages, W = {:.2e} words, F = {:.2e} flops",
            cost.latency, cost.bandwidth, cost.flops
        );
    }

    // Stage 3 — execution on the simulated machine.
    let output = machine
        .run(|comm| {
            // Every rank builds the same global problem deterministically and
            // keeps only its cyclic piece (in a real application the data
            // would already be distributed).
            let grid = Grid2D::new(comm, grid_dim, grid_dim).expect("grid");
            let l_global = gen::well_conditioned_lower(n, 2024);
            let x_true = gen::rhs(n, k, 7);
            let b_global = dense::matmul(&l_global, &x_true);

            let l = DistMatrix::from_global(&grid, &l_global);
            let b = DistMatrix::from_global(&grid, &b_global);

            let sol = request.solve_distributed(&l, &b).expect("solve");

            // Verify against the known solution without gathering matrices.
            let x_ref = DistMatrix::from_global(&grid, &x_true);
            let err = sol.x.rel_diff(&x_ref).expect("conformal");
            (err, sol.report.residual.unwrap_or(f64::NAN))
        })
        .expect("machine run");

    let worst_error = output.results.iter().map(|r| r.0).fold(0.0, f64::max);
    let worst_residual = output.results.iter().map(|r| r.1).fold(0.0, f64::max);
    println!("  max rel error:  {worst_error:.3e}");
    println!("  max residual:   {worst_residual:.3e} (from the report)");
    println!(
        "  critical path:  S = {} messages",
        output.report.max_messages()
    );
    println!("                  W = {} words", output.report.max_words());
    println!("                  F = {} flops", output.report.max_flops());
    println!(
        "  model time:     {:.3e} s (α–β–γ virtual time)",
        output.report.virtual_time()
    );
    assert!(worst_error < 1e-8, "the solve must be accurate");
    assert!(worst_residual < 1e-8, "the reported residual must be small");

    // Same request, different algorithm pin: the recursive baseline on the
    // same instance, for the paper's latency comparison.
    let baseline = machine
        .run(|comm| {
            let grid = Grid2D::new(comm, grid_dim, grid_dim).expect("grid");
            let l_global = gen::well_conditioned_lower(n, 2024);
            let x_true = gen::rhs(n, k, 7);
            let b_global = dense::matmul(&l_global, &x_true);
            let l = DistMatrix::from_global(&grid, &l_global);
            let b = DistMatrix::from_global(&grid, &b_global);
            let sol = SolveRequest::lower()
                .algorithm(Algorithm::Recursive { base_size: 32 })
                .solve_distributed(&l, &b)
                .expect("solve");
            let x_ref = DistMatrix::from_global(&grid, &x_true);
            assert!(sol.x.rel_diff(&x_ref).expect("conformal") < 1e-8);
        })
        .expect("machine run");
    println!("\nrecursive baseline on the same instance:");
    println!(
        "  critical path:  S = {} messages (iterative used {})",
        baseline.report.max_messages(),
        output.report.max_messages()
    );
    println!(
        "  latency saving: {:.1}x fewer messages with the inversion-based algorithm",
        baseline.report.max_messages() as f64 / output.report.max_messages() as f64
    );

    // The same request shape drives the *local* dense backend too.
    let l_local = gen::well_conditioned_lower(n, 5);
    let x_local = gen::rhs(n, 4, 6);
    let b_local = dense::matmul(&l_local, &x_local);
    let dense_sol = SolveRequest::lower()
        .solve_dense(&l_local, &b_local)
        .expect("dense solve");
    println!(
        "\nsame request on the dense backend: {} flops, error {:.1e}",
        dense_sol.report.flops.get(),
        dense::norms::rel_diff(&dense_sol.x, &x_local)
    );
}
