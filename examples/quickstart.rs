//! Quickstart: solve a triangular system `L·X = B` on a simulated
//! distributed-memory machine and inspect the communication cost.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use catrsm_suite::prelude::*;

fn main() {
    // Problem: a 256×256 lower-triangular system with 64 right-hand sides,
    // solved on 16 simulated processors arranged as a 4×4 grid.
    let n = 256;
    let k = 64;
    let grid_dim = 4;
    let machine = Machine::new(grid_dim * grid_dim, MachineParams::cluster());

    let output = machine
        .run(|comm| {
            // Every rank builds the same global problem deterministically and
            // keeps only its cyclic piece (in a real application the data
            // would already be distributed).
            let grid = Grid2D::new(comm, grid_dim, grid_dim).expect("grid");
            let l_global = gen::well_conditioned_lower(n, 2024);
            let x_true = gen::rhs(n, k, 7);
            let b_global = dense::matmul(&l_global, &x_true);

            let l = DistMatrix::from_global(&grid, &l_global);
            let b = DistMatrix::from_global(&grid, &b_global);

            // Solve with the paper's algorithm; `Algorithm::Auto` picks the
            // processor-grid shape and diagonal block size from the cost
            // model of Section VIII.
            let x = solve_lower(&l, &b, Algorithm::Auto).expect("solve");

            // Verify against the known solution without gathering matrices.
            let x_ref = DistMatrix::from_global(&grid, &x_true);
            x.rel_diff(&x_ref).expect("conformal")
        })
        .expect("machine run");

    let worst_error = output.results.iter().copied().fold(0.0, f64::max);
    println!("communication-avoiding TRSM quickstart");
    println!(
        "  problem:        n = {n}, k = {k}, p = {}",
        grid_dim * grid_dim
    );
    println!("  max rel error:  {worst_error:.3e}");
    println!(
        "  critical path:  S = {} messages",
        output.report.max_messages()
    );
    println!("                  W = {} words", output.report.max_words());
    println!("                  F = {} flops", output.report.max_flops());
    println!(
        "  model time:     {:.3e} s (α–β–γ virtual time)",
        output.report.virtual_time()
    );
    assert!(worst_error < 1e-8, "the solve must be accurate");

    // Compare against the recursive baseline on the same instance.
    let baseline = machine
        .run(|comm| {
            let grid = Grid2D::new(comm, grid_dim, grid_dim).expect("grid");
            let l_global = gen::well_conditioned_lower(n, 2024);
            let x_true = gen::rhs(n, k, 7);
            let b_global = dense::matmul(&l_global, &x_true);
            let l = DistMatrix::from_global(&grid, &l_global);
            let b = DistMatrix::from_global(&grid, &b_global);
            let x = solve_lower(&l, &b, Algorithm::Recursive { base_size: 32 }).expect("solve");
            let x_ref = DistMatrix::from_global(&grid, &x_true);
            x.rel_diff(&x_ref).expect("conformal")
        })
        .expect("machine run");
    println!("\nrecursive baseline on the same instance:");
    println!(
        "  critical path:  S = {} messages (iterative used {})",
        baseline.report.max_messages(),
        output.report.max_messages()
    );
    println!(
        "  latency saving: {:.1}x fewer messages with the inversion-based algorithm",
        baseline.report.max_messages() as f64 / output.report.max_messages() as f64
    );
}
