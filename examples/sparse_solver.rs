//! Sparse triangular solves through the staged `SolveRequest → Plan →
//! Solution` API: the analyze-once / solve-many pattern of preconditioner
//! applies, plan inspection, and transposed applies on the cached
//! transpose.
//!
//! ```text
//! cargo run --release --example sparse_solver
//! ```

use catrsm_suite::prelude::*;
use sparse::gen;

fn main() {
    let n = 20_000;
    let fill = 12; // off-diagonal entries per row
    let applies = 25; // simulated preconditioner applies
    let l = gen::random_lower(n, fill, 2026);

    println!("sparse level-scheduled triangular solve");
    println!(
        "  factor:        n = {n}, nnz = {} ({:.2} per row)",
        l.nnz(),
        l.nnz() as f64 / n as f64
    );

    // One request describes every apply; the plan is inspectable before
    // the first solve runs (planning analyzes the pattern once).
    let request = SolveRequest::lower().threads(4);
    let plan = request.plan_sparse(&l, 1).expect("plan");
    println!("  plan:          {plan}");
    let PlanBackend::Sparse {
        workers,
        levels,
        max_level_width,
        ..
    } = plan.backend
    else {
        panic!("expected a sparse plan");
    };
    println!(
        "  schedule:      {levels} levels (critical path), widest level \
         {max_level_width} rows, {workers} worker(s)"
    );

    // Solve phase: many applies of the same factor.  b is refreshed per
    // apply (as a preconditioner would see), the analysis is not.
    let mut total_flops = 0u64;
    let mut x = vec![0.0; n];
    for apply in 0..applies {
        let b = gen::rhs_vec(n, apply as u64);
        x.copy_from_slice(&b);
        let report = plan.execute_sparse_vec_in_place(&l, &mut x).expect("solve");
        total_flops += report.flops.get();
    }
    println!(
        "  applies:       {applies} solves, {total_flops} flops total, \
         {} pattern analyses",
        l.analysis_count()
    );
    assert_eq!(
        l.analysis_count(),
        1,
        "analysis must be reused across applies"
    );

    // The parallel executor is a throughput knob, not a semantics knob.
    let b = gen::rhs_vec(n, 99);
    let seq = SolveRequest::lower()
        .threads(1)
        .solve_sparse_vec(&l, &b)
        .expect("sequential solve");
    let par = request.solve_sparse_vec(&l, &b).expect("parallel solve");
    assert_eq!(seq.x, par.x, "4-worker solve must be bitwise identical");
    println!("  determinism:   4-worker solve bitwise identical to sequential");

    // Transposed applies (the `Lᵀ` half of a preconditioner) run on the
    // cached transpose: one O(nnz) transposition ever, schedule included.
    let bt = gen::rhs_vec(n, 123);
    let xt = SolveRequest::lower()
        .transposed()
        .threads(4)
        .solve_sparse_vec(&l, &bt)
        .expect("transposed solve");
    let xt2 = SolveRequest::lower()
        .transposed()
        .solve_sparse_vec(&l, &bt)
        .expect("transposed solve");
    assert_eq!(xt.x, xt2.x);
    println!(
        "  transposed:    Lᵀ·x = b solved via the cached transpose \
         ({} analyses on it)",
        l.transposed().analysis_count()
    );

    // Verify against the dense kernels through the densify bridge (small
    // system: densifying a 20k² matrix would need 3.2 GB).  The report can
    // carry the residual directly.
    let small = gen::random_lower(800, 8, 7);
    let bs = gen::rhs_vec(800, 5);
    let sol = SolveRequest::lower()
        .with_residual()
        .solve_sparse_vec(&small, &bs)
        .expect("sparse solve");
    let xd =
        dense::trsv(small.triangle(), small.diag(), &small.to_dense(), &bs).expect("dense solve");
    let err = sol
        .x
        .iter()
        .zip(&xd)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!(
        "  vs dense:      max |x_sparse - x_dense| = {err:.3e}, reported \
         residual {:.3e} (n = 800)",
        sol.report.residual.unwrap()
    );
    assert!(err < 1e-12, "sparse and dense solves must agree");
    assert!(sol.report.residual.unwrap() < 1e-12);

    // Multi-RHS: one plan drives a block of right-hand sides.
    let k = 16;
    let bm = Matrix::from_fn(800, k, |i, j| ((i * 13 + j * 7) % 23) as f64 / 11.5 - 1.0);
    let xm = SolveRequest::lower()
        .solve_sparse(&small, &bm)
        .expect("multi-RHS solve");
    let xm_dense =
        dense::trsm(small.triangle(), small.diag(), &small.to_dense(), &bm).expect("dense trsm");
    let err_m = xm.x.max_abs_diff(&xm_dense).unwrap();
    println!("  multi-RHS:     k = {k}, max diff vs dense trsm = {err_m:.3e}");
    assert!(err_m < 1e-12);

    // Scheduling policy: on a deep narrow DAG (thousands of skinny levels)
    // the DAG-partitioned merged schedule crosses one barrier per
    // *super-level* instead of one per level.  Both policies are bitwise
    // identical; the plan records the barrier count each implies.
    let deep = gen::deep_narrow_lower(40_000, 4, 4, 2026);
    let db = gen::rhs_vec(40_000, 7);
    let mut shapes = Vec::new();
    let mut results = Vec::new();
    for policy in [SchedulePolicy::Level, SchedulePolicy::Merged] {
        let plan = SolveRequest::lower()
            .threads(4)
            .policy(policy)
            .plan_sparse(&deep, 1)
            .expect("plan");
        let sol = plan.execute_sparse_vec(&deep, &db).expect("deep solve");
        let lr = sol.report.levels.unwrap();
        shapes.push(lr);
        results.push(sol.x);
    }
    println!(
        "  deep DAG:      n = 40000, {} levels; barriers level = {}, merged = {} \
         ({}x fewer), results bitwise identical",
        deep.schedule().num_levels(),
        shapes[0].barriers,
        shapes[1].barriers,
        shapes[0].barriers / shapes[1].barriers.max(1)
    );
    assert_eq!(results[0], results[1], "policies must agree bitwise");
    assert!(shapes[1].barriers * 10 <= shapes[0].barriers);
}
