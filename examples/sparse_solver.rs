//! Sparse triangular solves with level scheduling: the analyze-once /
//! solve-many pattern of preconditioner applies.
//!
//! ```text
//! cargo run --release --example sparse_solver
//! ```
//!
//! Builds a random sparse lower-triangular factor, inspects the dependency
//! levels its pattern exposes, then applies it repeatedly — the schedule is
//! analyzed exactly once and reused by every solve, and the level-parallel
//! executor is bitwise identical to the sequential baseline.

use catrsm_suite::prelude::*;
use sparse::gen;

fn main() {
    let n = 20_000;
    let fill = 12; // off-diagonal entries per row
    let applies = 25; // simulated preconditioner applies
    let l = gen::random_lower(n, fill, 2026);

    println!("sparse level-scheduled triangular solve");
    println!(
        "  factor:        n = {n}, nnz = {} ({:.2} per row)",
        l.nnz(),
        l.nnz() as f64 / n as f64
    );

    // Analysis phase: one O(nnz) pass over the pattern.
    let sched = l.schedule();
    println!(
        "  schedule:      {} levels (critical path), widest level {} rows, avg {:.1}",
        sched.num_levels(),
        sched.max_level_width(),
        sched.avg_level_width()
    );

    // Solve phase: many applies of the same factor.  b is refreshed per
    // apply (as a preconditioner would see), the schedule is not.
    let mut total_flops = 0u64;
    let mut x = vec![0.0; n];
    for apply in 0..applies {
        let b = gen::rhs_vec(n, apply as u64);
        x.copy_from_slice(&b);
        let f = l.solve_in_place(&mut x).expect("solve");
        total_flops += f.get();
    }
    println!(
        "  applies:       {applies} solves, {total_flops} flops total, \
         {} pattern analyses",
        l.analysis_count()
    );
    assert_eq!(
        l.analysis_count(),
        1,
        "analysis must be reused across applies"
    );

    // The parallel executor is a throughput knob, not a semantics knob.
    let b = gen::rhs_vec(n, 99);
    let seq = l.solve_seq(&b).expect("sequential solve");
    let mut par = b.clone();
    l.solve_in_place_with_threads(&mut par, 4)
        .expect("parallel solve");
    assert_eq!(seq, par, "4-worker solve must be bitwise identical");
    println!("  determinism:   4-worker solve bitwise identical to sequential");

    // Verify against the dense kernels through the densify bridge (small
    // system: densifying a 20k² matrix would need 3.2 GB).
    let small = gen::random_lower(800, 8, 7);
    let bs = gen::rhs_vec(800, 5);
    let xs = small.solve(&bs).expect("sparse solve");
    let xd =
        dense::trsv(small.triangle(), small.diag(), &small.to_dense(), &bs).expect("dense solve");
    let err = xs
        .iter()
        .zip(&xd)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!("  vs dense:      max |x_sparse - x_dense| = {err:.3e} (n = 800)");
    assert!(err < 1e-12, "sparse and dense solves must agree");

    // Multi-RHS: one schedule drives a block of right-hand sides.
    let k = 16;
    let bm = Matrix::from_fn(800, k, |i, j| ((i * 13 + j * 7) % 23) as f64 / 11.5 - 1.0);
    let xm = small.solve_multi(&bm).expect("multi-RHS solve");
    let xm_dense =
        dense::trsm(small.triangle(), small.diag(), &small.to_dense(), &bm).expect("dense trsm");
    let err_m = xm.max_abs_diff(&xm_dense).unwrap();
    println!("  multi-RHS:     k = {k}, max diff vs dense trsm = {err_m:.3e}");
    assert!(err_m < 1e-12);
}
