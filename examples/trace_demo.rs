//! Traced end-to-end demo: run one solve per backend with the `obs`
//! tracing layer enabled — dense, sparse under all three scheduling
//! policies, and distributed (Recursive and the iterative inversion-based
//! algorithm) — then export everything as one Chrome-trace JSON file,
//! validate it, and print predicted-vs-measured cost-drift tables.
//!
//! ```text
//! cargo run --release --example trace_demo [out.json]
//! ```
//!
//! The resulting file loads in `chrome://tracing` or Perfetto: wall-clock
//! lanes appear under pid 1 (one tid per worker thread), the simulated
//! machine's virtual-clock lanes under pid 2 (one tid per rank).
//!
//! The demo exits nonzero if the exported trace fails validation or any
//! expected backend left no events, so CI can run it as a trace audit.

use catrsm_suite::prelude::*;
use catrsm_suite::{costmodel, obs, sparse};

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace.json".to_string());
    obs::set_enabled(true);
    obs::clear();

    // -- dense backend ------------------------------------------------------
    let n = 512;
    let k = 64;
    let l = gen::well_conditioned_lower(n, 7);
    let x_true = gen::rhs(n, k, 8);
    let b = dense::matmul(&l, &x_true);
    let plan = SolveRequest::lower().plan_dense(n, k).expect("dense plan");
    let sol = plan.execute_dense(&l, &b).expect("dense solve");
    assert!(dense::norms::rel_diff(&sol.x, &x_true) < 1e-8);
    println!("dense: {}", plan);
    if let Some(trace) = &sol.report.trace {
        println!("{}", trace.summary());
    }

    // -- sparse backend: all three scheduling policies ----------------------
    let m = sparse::gen::deep_narrow_lower(20_000, 4, 4, 3);
    let rhs = sparse::gen::rhs_vec(m.n(), 5);
    let mut sparse_drift = None;
    for policy in [
        SchedulePolicy::Level,
        SchedulePolicy::Merged,
        SchedulePolicy::SyncFree,
    ] {
        let plan = SolveRequest::lower()
            .threads(4)
            .policy(policy)
            .plan_sparse(&m, 1)
            .expect("sparse plan");
        let sol = plan.execute_sparse_vec(&m, &rhs).expect("sparse solve");
        println!("sparse {policy:?}: {plan}");
        if policy == SchedulePolicy::Level {
            sparse_drift = Some(
                plan.drift_report(&sol.report, costmodel::Machine::unit())
                    .render(),
            );
        }
    }

    // -- distributed backend: Recursive and iterative inversion -------------
    let (dn, dk, p) = (64usize, 16usize, 4usize);
    let out = Machine::new(p, MachineParams::cluster())
        .run(move |comm| {
            let grid = Grid2D::new(comm, 2, 2).expect("grid");
            let l_global = gen::well_conditioned_lower(dn, 21);
            let x_true = gen::rhs(dn, dk, 22);
            let b_global = dense::matmul(&l_global, &x_true);
            let l = DistMatrix::from_global(&grid, &l_global);
            let b = DistMatrix::from_global(&grid, &b_global);

            let rec_plan = SolveRequest::lower()
                .algorithm(Algorithm::Recursive { base_size: 16 })
                .plan_distributed(dn, dk, comm.size())
                .expect("recursive plan");
            let rec = rec_plan.execute_distributed(&l, &b).expect("recursive");
            assert!(dense::norms::rel_diff(&rec.x.to_global(), &x_true) < 1e-8);
            let rec_drift = rec_plan
                .drift_report(&rec.report, costmodel::Machine::cluster())
                .render();

            let it_plan = SolveRequest::lower()
                .plan_distributed(dn, dk, comm.size())
                .expect("it-inv plan");
            let it = it_plan.execute_distributed(&l, &b).expect("it-inv");
            assert!(dense::norms::rel_diff(&it.x.to_global(), &x_true) < 1e-8);
            let it_drift = it_plan
                .drift_report(&it.report, costmodel::Machine::cluster())
                .render();
            (rec_drift, it_drift)
        })
        .expect("simulated machine run");
    let (rec_drift, it_drift) = out.results.into_iter().next().expect("rank 0");

    // -- cost-drift tables --------------------------------------------------
    println!("\ncost drift — recursive TRSM (cluster constants):");
    println!("{rec_drift}");
    println!("cost drift — iterative inversion-based TRSM (cluster constants):");
    println!("{it_drift}");
    println!("cost drift — sparse level-scheduled sweep (unit constants):");
    println!("{}", sparse_drift.expect("sparse drift recorded"));

    // -- export + audit -----------------------------------------------------
    let dump = obs::collect_all();
    obs::set_enabled(false);
    let json = obs::chrome::to_chrome_json(&dump);
    std::fs::write(&out_path, &json).expect("write trace file");
    println!(
        "wrote {} ({} events across {} threads, {} dropped)",
        out_path,
        dump.len(),
        dump.threads.len(),
        dump.dropped
    );

    let mut failed = false;
    let errors = obs::chrome::validate(&json);
    for e in &errors {
        eprintln!("trace validation error: {e}");
    }
    failed |= !errors.is_empty();

    // Every backend must have left its fingerprint in the trace.
    for needle in [
        "\"cat\":\"planner\"",
        "\"cat\":\"core\"",
        "\"cat\":\"dense\"",
        "\"name\":\"level_exec\"",
        "\"name\":\"merged_exec\"",
        "\"name\":\"syncfree_exec\"",
        "\"cat\":\"simnet\"",
        "\"pid\":2",
    ] {
        if !json.contains(needle) {
            eprintln!("trace audit: expected {needle} in the exported trace");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("trace audit passed");
}
