//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! implements the small subset of the proptest API the workspace's tests
//! use: the [`proptest!`] macro, [`Strategy`] with `prop_map`, range and
//! tuple strategies, [`any`], `prop::bool::ANY`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * cases are generated from a **deterministic** per-test RNG (seeded from
//!   the test name), so failures are reproducible run-to-run;
//! * there is **no shrinking** — a failing case panics with the case index
//!   so it can be replayed by re-running the test.

pub mod runner;
pub mod strategy;

pub use runner::{ProptestConfig, TestRng};
pub use strategy::{any, Strategy};

/// Strategy modules addressed as `prop::…` from the prelude.
pub mod strategies {
    /// Boolean strategies (`prop::bool::ANY`).
    pub mod bool {
        use crate::runner::TestRng;
        use crate::strategy::Strategy;

        /// Strategy producing uniformly random booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct AnyBool;

        /// The canonical boolean strategy.
        pub const ANY: AnyBool = AnyBool;

        impl Strategy for AnyBool {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::runner::ProptestConfig;
    pub use crate::strategies as prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `#[test] fn name(pat in strategy, …) { … }`
/// item becomes a test that runs the body for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::runner::run_cases(config, stringify!($name), |__proptest_rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}
