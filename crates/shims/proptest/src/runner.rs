//! Deterministic case runner and RNG for the proptest shim.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// SplitMix64 generator: tiny, fast, and good enough for test-case
/// generation. Deterministically seeded per test from the test's name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Runs `f` once per case with a per-case deterministic RNG, panicking with
/// the case index on failure so the case can be replayed.
pub fn run_cases<F>(config: ProptestConfig, test_name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    let base = fnv1a(test_name.as_bytes());
    for case in 0..config.cases {
        let mut rng = TestRng::new(base ^ (case as u64).wrapping_mul(0x2545f4914f6cdd1d));
        if let Err(msg) = f(&mut rng) {
            panic!("proptest case {case}/{} failed: {msg}", config.cases);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = TestRng::new(3);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn run_cases_runs_requested_count() {
        let mut count = 0;
        run_cases(ProptestConfig::with_cases(17), "counting", |_| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 17);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn run_cases_panics_on_error() {
        run_cases(ProptestConfig::with_cases(4), "failing", |_| {
            Err("boom".to_string())
        });
    }
}
