//! Value-generation strategies for the proptest shim.

use crate::runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Something that can generate values of type `Value` from an RNG.
///
/// Unlike real proptest there is no value tree / shrinking; `generate`
/// produces the final value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying a bounded number of
    /// times (proptest's `prop_filter` with a whence label).
    fn prop_filter<F>(self, _whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred }
    }
}

/// Strategy adapter applying a function to generated values.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adapter rejecting values that fail a predicate.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter: predicate rejected 1024 consecutive values");
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                lo + rng.below(span + 1) as $ty
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64);

macro_rules! signed_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $ty
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, moderately sized values: tests use these as matrix data.
        (rng.next_f64() - 0.5) * 2.0e3
    }
}

/// Strategy producing arbitrary values of `T`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(11);
        for _ in 0..1000 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (1usize..=6).generate(&mut rng);
            assert!((1..=6).contains(&w));
            let x = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&x));
            let y = (-5i32..-1).generate(&mut rng);
            assert!((-5..-1).contains(&y));
        }
    }

    #[test]
    fn tuple_and_map_compose() {
        let mut rng = TestRng::new(5);
        let strat = (1usize..4, 1usize..4).prop_map(|(a, b)| a * 10 + b);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((11..=33).contains(&v));
        }
    }

    #[test]
    fn filter_rejects() {
        let mut rng = TestRng::new(5);
        let strat = (0usize..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn any_generates_varied_values() {
        let mut rng = TestRng::new(9);
        let a = any::<u64>().generate(&mut rng);
        let b = any::<u64>().generate(&mut rng);
        assert_ne!(a, b);
        let f = any::<f64>().generate(&mut rng);
        assert!(f.is_finite());
    }
}
