//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! provides exactly the surface `simnet` uses: `channel::unbounded`, a
//! cloneable [`channel::Sender`], and a blocking [`channel::Receiver`].
//! Semantics match `crossbeam-channel` for that subset: sends on an
//! unbounded channel never block, `recv` blocks until a message arrives or
//! every sender has been dropped (in which case it returns an error once the
//! queue is drained).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Sending half of an unbounded channel. Cloneable; `send` never blocks.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Appends a message to the queue; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message is available or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Returns a message if one is already queued.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            state.items.pop_front().ok_or(RecvError)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
        }

        #[test]
        fn recv_blocks_until_send() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || rx.recv().unwrap());
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send(42u32).unwrap();
            assert_eq!(handle.join().unwrap(), 42);
        }

        #[test]
        fn disconnect_unblocks_recv() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn clone_keeps_channel_alive() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(7).unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
            drop(tx2);
            assert!(rx.recv().is_err());
        }
    }
}
