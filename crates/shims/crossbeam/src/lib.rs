//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! provides exactly the surface the workspace uses:
//!
//! * `channel::unbounded` with a cloneable [`channel::Sender`] and a blocking
//!   [`channel::Receiver`] (used by `simnet`).  Semantics match
//!   `crossbeam-channel` for that subset: sends on an unbounded channel never
//!   block, `recv` blocks until a message arrives or every sender has been
//!   dropped (in which case it returns an error once the queue is drained).
//! * [`thread::scope`] with borrow-friendly [`thread::Scope::spawn`] (used by
//!   `dense`'s worker pool).  It is implemented on top of
//!   `std::thread::scope`, so — unlike real `crossbeam-utils`, which returns
//!   `Err` when a child panics — a child panic is re-thrown on the spawning
//!   thread after every worker has been joined, and the returned `Result` is
//!   always `Ok`.

pub mod thread {
    //! Scoped threads: spawn workers that may borrow from the caller's stack,
    //! with a guarantee that every worker is joined before `scope` returns.

    use std::thread::Result;

    /// Handle onto a scope passed to the closure of [`scope`]; lets workers
    /// spawn further scoped workers.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped worker, returned by [`Scope::spawn`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a worker that may borrow anything outliving the scope.  The
        /// closure receives the scope again (crossbeam's signature) so it can
        /// spawn nested workers.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the worker to finish and returns its result (`Err` holds
        /// the worker's panic payload).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Runs `f` with a [`Scope`]; every worker spawned in it is joined before
    /// this function returns.
    ///
    /// An unjoined worker's panic is re-thrown here once all workers have
    /// been joined (see the module docs for the difference from real
    /// crossbeam), so on a panic-free run the result is always `Ok`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn workers_can_borrow_from_the_stack() {
            let data = [1u64, 2, 3, 4];
            let total = AtomicUsize::new(0);
            scope(|s| {
                for chunk in data.chunks(2) {
                    s.spawn(|_| {
                        let part: u64 = chunk.iter().sum();
                        total.fetch_add(part as usize, Ordering::Relaxed);
                    });
                }
            })
            .unwrap();
            assert_eq!(total.load(Ordering::Relaxed), 10);
        }

        #[test]
        fn join_returns_worker_result() {
            let answer = scope(|s| s.spawn(|_| 6 * 7).join().unwrap()).unwrap();
            assert_eq!(answer, 42);
        }

        #[test]
        fn nested_spawn_through_the_scope_argument() {
            let n = scope(|s| {
                s.spawn(|s2| s2.spawn(|_| 5).join().unwrap())
                    .join()
                    .unwrap()
            })
            .unwrap();
            assert_eq!(n, 5);
        }
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Sending half of an unbounded channel. Cloneable; `send` never blocks.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Appends a message to the queue; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message is available or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Returns a message if one is already queued.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            state.items.pop_front().ok_or(RecvError)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
        }

        #[test]
        fn recv_blocks_until_send() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || rx.recv().unwrap());
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send(42u32).unwrap();
            assert_eq!(handle.join().unwrap(), 42);
        }

        #[test]
        fn disconnect_unblocks_recv() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn clone_keeps_channel_alive() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(7).unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
            drop(tx2);
            assert!(rx.recv().is_err());
        }
    }
}
