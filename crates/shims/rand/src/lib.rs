//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! provides the surface `dense::gen` uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over integer and
//! float ranges.  The generator is SplitMix64 — deterministic, seedable,
//! and statistically solid for test-matrix generation (it is *not* the
//! ChaCha12 generator real `StdRng` uses, so sequences differ from real
//! rand; everything in this workspace only relies on determinism).

use std::ops::Range;

/// Seedable random generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sample-producing random generators.
pub trait Rng {
    /// Next pseudo-random 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleRange: Sized {
    /// Draws a uniform sample in `[range.start, range.end)`.
    fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleRange for f64 {
    fn sample<R: Rng>(rng: &mut R, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + rng.gen_f64() * (range.end - range.start)
    }
}

macro_rules! impl_sample_int {
    ($($ty:ty),*) => {$(
        impl SampleRange for $ty {
            fn sample<R: Rng>(rng: &mut R, range: Range<$ty>) -> $ty {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

impl_sample_int!(usize, u32, u64);

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator (SplitMix64 in this shim).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(3usize..9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn floats_fill_the_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<f64> = (0..4096).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }
}
