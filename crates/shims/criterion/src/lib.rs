//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! provides the benchmark-definition macros and a straightforward
//! measurement loop: per benchmark it calibrates an iteration count so a
//! sample takes a few milliseconds, collects `sample_size` samples, and
//! reports the minimum / median / maximum time per iteration.  Results are
//! printed to stdout and appended to `target/shim-criterion.csv` so other
//! tools (e.g. the `BENCH_kernels.json` emitter) can consume them.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time for one measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(5);

/// Top-level benchmark driver, configured per `criterion_group!`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of measurement samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a function name and a parameter.
    pub fn new<D1: Display, D2: Display>(name: D1, parameter: D2) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id rendered from the parameter alone.
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_benchmark(&label, self.sample_size, |bencher| f(bencher, input));
    }

    /// Benchmarks `f` without a dedicated input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_benchmark(&label, self.sample_size, |bencher| f(bencher));
    }

    /// Ends the group (kept for API compatibility; measurement is eager).
    pub fn finish(self) {}
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    /// Nanoseconds per iteration for each collected sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Measures `f`, calibrating the per-sample iteration count first.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and calibration: time single runs until the total exceeds
        // the sample target, to pick iterations-per-sample.
        let mut once = Duration::ZERO;
        let mut runs = 0u32;
        let calibration_start = Instant::now();
        while calibration_start.elapsed() < SAMPLE_TARGET && runs < 1000 {
            let t = Instant::now();
            black_box(f());
            once += t.elapsed();
            runs += 1;
        }
        let per_iter = once / runs.max(1);
        let iters = if per_iter >= SAMPLE_TARGET {
            1
        } else {
            (SAMPLE_TARGET.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<40} (no measurement: Bencher::iter never called)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let max = sorted[sorted.len() - 1];
    println!(
        "{label:<40} time: [{} {} {}]",
        format_ns(min),
        format_ns(median),
        format_ns(max)
    );
    append_csv(label, min, median, max);
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn append_csv(label: &str, min: f64, median: f64, max: f64) {
    use std::io::Write as _;
    let path = std::path::Path::new("target");
    if !path.exists() {
        return;
    }
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path.join("shim-criterion.csv"))
    {
        let _ = writeln!(file, "{label},{min},{median},{max}");
    }
}

/// Declares a benchmark group: either `criterion_group!(name, target, …)` or
/// the long form with explicit `config = …`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim_smoke");
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(1), &1u32, |b, _| {
            b.iter(|| {
                calls += 1;
                std::hint::black_box(calls)
            });
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::from_parameter(64).id, "64");
        assert_eq!(BenchmarkId::new("gemm", 64).id, "gemm/64");
    }

    #[test]
    fn format_ns_scales() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_000.0).contains("µs"));
        assert!(format_ns(12_000_000.0).contains("ms"));
        assert!(format_ns(12_000_000_000.0).contains("s"));
    }
}
