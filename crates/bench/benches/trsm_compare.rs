//! Wall-clock comparison of the three TRSM algorithms on the simulated
//! machine (the α–β–γ comparison — the paper's actual claim — is produced by
//! `exp_conclusion_table`; this bench tracks simulator throughput).

use catrsm::it_inv_trsm::ItInvConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harness::{run_trsm, TrsmAlgo, TrsmInstance};
use simnet::MachineParams;

fn bench_trsm(c: &mut Criterion) {
    let mut group = c.benchmark_group("trsm_algorithms");
    let inst = TrsmInstance {
        n: 128,
        k: 32,
        pr: 2,
        pc: 2,
        seed: 7,
    };
    let algos: Vec<(&str, TrsmAlgo)> = vec![
        ("recursive", TrsmAlgo::Recursive { base: 32 }),
        (
            "iterative_inversion",
            TrsmAlgo::Iterative(ItInvConfig {
                p1: 2,
                p2: 1,
                n0: 32,
                inv_base: 16,
            }),
        ),
        ("wavefront", TrsmAlgo::Wavefront),
    ];
    for (name, algo) in algos {
        group.bench_with_input(BenchmarkId::from_parameter(name), &algo, |bench, &algo| {
            bench.iter(|| run_trsm(&inst, algo, MachineParams::unit()));
        });
    }
    group.finish();
}

criterion_group! {
    name = trsm_compare;
    config = Criterion::default().sample_size(10);
    targets = bench_trsm
}
criterion_main!(trsm_compare);
