//! Wall-clock microbenchmarks of the local dense kernels (the BLAS
//! substitute the simulated processors run).
//!
//! The `gemm_naive_vs_packed` group is the acceptance check for the packed
//! microkernel: at 512³ the packed path must beat the naive i-k-j triple
//! loop by at least 2×.  Run with `cargo bench -p bench --bench kernels`;
//! `cargo run --release -p bench --bin emit_bench_baseline` writes the same
//! measurements to `BENCH_kernels.json` for cross-PR comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dense::{gemm, gemm_with_threads, gen, reference, tri_invert, trsm, Diag, Matrix, Triangle};

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_gemm");
    for n in [64usize, 128, 256] {
        let a = gen::uniform(n, n, 1);
        let b = gen::uniform(n, n, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            let mut out = Matrix::zeros(n, n);
            bench.iter(|| {
                gemm(1.0, &a, &b, 0.0, &mut out).unwrap();
            });
        });
    }
    group.finish();
}

fn bench_gemm_naive_vs_packed(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_naive_vs_packed");
    let n = 512usize;
    let a = gen::uniform(n, n, 1);
    let b = gen::uniform(n, n, 2);
    group.bench_with_input(BenchmarkId::new("naive_ikj", n), &n, |bench, _| {
        let mut out = Matrix::zeros(n, n);
        bench.iter(|| {
            reference::gemm_naive_ikj(1.0, &a, &b, 0.0, &mut out);
        });
    });
    group.bench_with_input(BenchmarkId::new("packed", n), &n, |bench, _| {
        let mut out = Matrix::zeros(n, n);
        bench.iter(|| {
            gemm(1.0, &a, &b, 0.0, &mut out).unwrap();
        });
    });
    group.finish();
}

fn bench_gemm_par(c: &mut Criterion) {
    // The multithreaded packed GEMM at a size where the column partitioning
    // pays: compare worker counts at 512³ (plus the machine's own default).
    // Results are bitwise identical across rows; only throughput may differ.
    let mut group = c.benchmark_group("gemm_par");
    let n = 512usize;
    let a = gen::uniform(n, n, 1);
    let b = gen::uniform(n, n, 2);
    let mut counts = vec![1usize, 2, 4];
    let default = dense::dense_threads();
    if !counts.contains(&default) {
        counts.push(default);
    }
    for threads in counts {
        group.bench_with_input(
            BenchmarkId::new(format!("threads_{threads}"), n),
            &n,
            |bench, _| {
                let mut out = Matrix::zeros(n, n);
                bench.iter(|| {
                    gemm_with_threads(1.0, &a, &b, 0.0, &mut out, threads).unwrap();
                });
            },
        );
    }
    group.finish();
}

fn bench_sparse_solve(c: &mut Criterion) {
    // Level-scheduled sparse triangular solve: sequential baseline vs the
    // level-parallel executor at pinned worker counts, plus the blocked
    // multi-RHS executor.  Results are bitwise identical across rows; only
    // throughput may differ (and only on multicore hardware — the committed
    // baseline machine has one core).
    let mut group = c.benchmark_group("sparse_solve");
    let n = 40_000usize;
    let fill = 12usize;
    let l = sparse::gen::random_lower(n, fill, 3);
    let b = sparse::gen::rhs_vec(n, 4);
    let _ = l.schedule(); // analyze once, outside the timed region
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new(format!("threads_{threads}"), n),
            &n,
            |bench, _| {
                let opts = sparse::SolveOpts::new().threads(threads);
                let mut x = vec![0.0; n];
                bench.iter(|| {
                    x.copy_from_slice(&b);
                    l.solve_with(&opts, &mut x).unwrap();
                });
            },
        );
    }
    let k = 16usize;
    let bm = Matrix::from_fn(n, k, |i, j| ((i * 5 + j * 11) % 13) as f64 - 6.0);
    group.bench_with_input(BenchmarkId::new("multi_rhs_16", n), &n, |bench, _| {
        let mut x = bm.clone();
        bench.iter(|| {
            x.as_mut_slice().copy_from_slice(bm.as_slice());
            l.solve_multi_in_place(&mut x).unwrap();
        });
    });
    group.finish();
}

fn bench_sparse_deep_dag(c: &mut Criterion) {
    // The barrier-sensitive shape: a deep narrow DAG (n = 40000, 10000
    // levels of width 4 — band-limited dependencies, like a blocked banded
    // factor).  The level schedule crosses one barrier per level; the
    // DAG-partitioned merged schedule crosses one per super-level (~50),
    // which is the whole point of the policy.  Results are bitwise
    // identical across every row of this group.
    let mut group = c.benchmark_group("sparse_deep_dag");
    let n = 40_000usize;
    let l = sparse::gen::deep_narrow_lower(n, 4, 4, 3);
    let b = sparse::gen::rhs_vec(n, 4);
    let _ = l.schedule(); // analyze once, outside the timed region
    let _ = l.merged_schedule();
    group.bench_with_input(BenchmarkId::new("seq", n), &n, |bench, _| {
        let opts = sparse::SolveOpts::new().threads(1);
        let mut x = vec![0.0; n];
        bench.iter(|| {
            x.copy_from_slice(&b);
            l.solve_with(&opts, &mut x).unwrap();
        });
    });
    for threads in [2usize, 4] {
        for policy in [
            sparse::SchedulePolicy::Level,
            sparse::SchedulePolicy::Merged,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{}_threads_{threads}", policy.name()), n),
                &n,
                |bench, _| {
                    let opts = sparse::SolveOpts::new().threads(threads).policy(policy);
                    let mut x = vec![0.0; n];
                    bench.iter(|| {
                        x.copy_from_slice(&b);
                        l.solve_with(&opts, &mut x).unwrap();
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_sparse_oneshot(c: &mut Criterion) {
    // One-shot solves: the analysis phase runs *inside* the timed region.
    // Each iteration clones a never-analyzed master (cloning copies the
    // O(nnz) arrays but the empty schedule caches), so the barriered
    // policies pay their level/merge analysis plus their barriers per
    // solve, while the sync-free column sweep pays only its CSC storage
    // conversion — the workload `SolveOpts::reuse(1)` routes to
    // `SchedulePolicy::SyncFree`.  The `merged_amortized` row keeps the
    // analysis outside the timed region (the pre-analyzed many-apply
    // steady state) for the one-shot-vs-amortized headline.
    let mut group = c.benchmark_group("sparse_oneshot");
    let n = 40_000usize;
    let l = sparse::gen::deep_narrow_lower(n, 4, 4, 3);
    let b = sparse::gen::rhs_vec(n, 4);
    for (name, opts) in [
        (
            "level",
            sparse::SolveOpts::new()
                .threads(4)
                .policy(sparse::SchedulePolicy::Level),
        ),
        (
            "merged",
            sparse::SolveOpts::new()
                .threads(4)
                .policy(sparse::SchedulePolicy::Merged),
        ),
        ("syncfree", sparse::SolveOpts::new().threads(4).reuse(1)),
    ] {
        group.bench_with_input(BenchmarkId::new(name, n), &n, |bench, _| {
            let mut x = vec![0.0; n];
            bench.iter(|| {
                let fresh = l.clone();
                x.copy_from_slice(&b);
                fresh.solve_with(&opts, &mut x).unwrap();
            });
        });
    }
    let analyzed = l.clone();
    let _ = analyzed.schedule();
    let _ = analyzed.merged_schedule();
    group.bench_with_input(BenchmarkId::new("merged_amortized", n), &n, |bench, _| {
        let opts = sparse::SolveOpts::new()
            .threads(4)
            .policy(sparse::SchedulePolicy::Merged);
        let mut x = vec![0.0; n];
        bench.iter(|| {
            x.copy_from_slice(&b);
            analyzed.solve_with(&opts, &mut x).unwrap();
        });
    });
    group.finish();
}

fn bench_trace_overhead(c: &mut Criterion) {
    // Traced vs untraced rows for the two paths the `obs` layer
    // instruments most densely: the level-scheduled sparse solve
    // (per-level spans, barrier-wait counters) and the multithreaded
    // packed GEMM (per-worker pack/kernel time).  The untraced rows must
    // coincide with the plain `sparse_solve` / `gemm_par` groups — the
    // disabled recorder is one relaxed atomic load per region — while the
    // traced rows price live span recording.
    let mut group = c.benchmark_group("trace_overhead");
    let n = 40_000usize;
    let l = sparse::gen::random_lower(n, 12, 3);
    let b = sparse::gen::rhs_vec(n, 4);
    let _ = l.schedule(); // analyze once, outside the timed region
    let gn = 256usize;
    let a = gen::uniform(gn, gn, 1);
    let gb = gen::uniform(gn, gn, 2);
    for (label, enabled) in [("untraced", false), ("traced", true)] {
        group.bench_with_input(
            BenchmarkId::new(format!("sparse_solve_{label}"), n),
            &n,
            |bench, _| {
                obs::set_enabled(enabled);
                obs::clear();
                let opts = sparse::SolveOpts::new().threads(4);
                let mut x = vec![0.0; n];
                bench.iter(|| {
                    x.copy_from_slice(&b);
                    l.solve_with(&opts, &mut x).unwrap();
                });
                obs::set_enabled(false);
                obs::clear();
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("gemm_par_{label}"), gn),
            &gn,
            |bench, _| {
                obs::set_enabled(enabled);
                obs::clear();
                let mut out = Matrix::zeros(gn, gn);
                bench.iter(|| {
                    gemm_with_threads(1.0, &a, &gb, 0.0, &mut out, 4).unwrap();
                });
                obs::set_enabled(false);
                obs::clear();
            },
        );
    }
    group.finish();
}

fn bench_trsm(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_trsm");
    for n in [64usize, 128, 256] {
        let l = gen::well_conditioned_lower(n, 3);
        let b = gen::rhs(n, 32, 4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| trsm(Triangle::Lower, Diag::NonUnit, &l, &b).unwrap());
        });
    }
    group.finish();
}

fn bench_tri_invert(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_tri_invert");
    for n in [64usize, 128, 256] {
        let l = gen::well_conditioned_lower(n, 5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| tri_invert(Triangle::Lower, &l).unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_gemm, bench_gemm_naive_vs_packed, bench_gemm_par, bench_sparse_solve, bench_sparse_deep_dag, bench_sparse_oneshot, bench_trace_overhead, bench_trsm, bench_tri_invert
}
criterion_main!(kernels);
