//! Wall-clock benchmarks of the simulated collectives (simulator overhead,
//! not network time — the α–β–γ costs are what the exp_* binaries report).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simnet::{coll, Machine, MachineParams};

fn bench_allgather(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_allgather");
    for p in [4usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |bench, &p| {
            bench.iter(|| {
                Machine::new(p, MachineParams::unit())
                    .run(|comm| coll::allgather(comm, &vec![comm.rank() as f64; 256]))
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_allreduce");
    for p in [4usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |bench, &p| {
            bench.iter(|| {
                Machine::new(p, MachineParams::unit())
                    .run(|comm| coll::allreduce(comm, &vec![1.0; 1024], coll::ReduceOp::Sum))
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_alltoallv(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_alltoallv_bruck");
    for p in [4usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |bench, &p| {
            bench.iter(|| {
                Machine::new(p, MachineParams::unit())
                    .run(move |comm| {
                        let blocks: Vec<Vec<f64>> = (0..p).map(|d| vec![d as f64; 64]).collect();
                        coll::alltoallv_bruck(comm, &blocks).unwrap()
                    })
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = collectives;
    config = Criterion::default().sample_size(10);
    targets = bench_allgather, bench_allreduce, bench_alltoallv
}
criterion_main!(collectives);
