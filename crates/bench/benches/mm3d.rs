//! Wall-clock benchmark of the distributed 3D matrix multiplication
//! (Section III) at several grid shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dense::gen;
use pgrid::{DistMatrix, Grid2D};
use simnet::{Machine, MachineParams};

fn bench_mm3d(c: &mut Criterion) {
    let mut group = c.benchmark_group("mm3d");
    for (q, p1, n, k) in [
        (2usize, 2usize, 128usize, 32usize),
        (4, 2, 128, 32),
        (4, 4, 128, 32),
    ] {
        let id = format!("p{}_p1{}_n{}_k{}", q * q, p1, n, k);
        group.bench_with_input(
            BenchmarkId::from_parameter(id),
            &(q, p1, n, k),
            |bench, &(q, p1, n, k)| {
                bench.iter(|| {
                    Machine::new(q * q, MachineParams::unit())
                        .run(move |comm| {
                            let grid = Grid2D::new(comm, q, q).unwrap();
                            let a = DistMatrix::from_fn(&grid, n, n, |i, j| ((i + j) % 17) as f64);
                            let x =
                                DistMatrix::from_fn(&grid, n, k, |i, j| ((i * 3 + j) % 13) as f64);
                            let b = catrsm::mm3d::mm3d(
                                &a,
                                &x,
                                &catrsm::mm3d::MmConfig {
                                    p1,
                                    log_latency: true,
                                },
                            )
                            .unwrap();
                            // Reduce to a Send-able scalar so the machine can
                            // collect the per-rank results.
                            b.local().as_slice().iter().sum::<f64>()
                        })
                        .unwrap()
                });
            },
        );
    }
    group.finish();
    // Keep the generator referenced so the bench exercises realistic inputs
    // if extended (avoids dead-code warnings for the import).
    let _ = gen::uniform(2, 2, 0);
}

criterion_group! {
    name = mm3d;
    config = Criterion::default().sample_size(10);
    targets = bench_mm3d
}
criterion_main!(mm3d);
