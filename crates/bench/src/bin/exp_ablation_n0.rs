//! Experiment A1 (ablation) — effect of the inversion block size `n0`.
//!
//! The paper's algorithm "generalizes the usual way of TRSM computation and
//! the full matrix inversion approach": with `n0 = n` the whole matrix is
//! inverted (maximum parallelism in the solve, maximum inversion flops), with
//! small `n0` it degenerates towards a blocked substitution (many
//! synchronised iterations).  This sweep measures S/W/F for every feasible
//! `n0` at a fixed problem size, showing the latency/flop trade-off the
//! optimal `n0` of Section VIII balances.

use catrsm::it_inv_trsm::ItInvConfig;
use harness::{banner, run_trsm, write_csv, TrsmAlgo, TrsmInstance};
use simnet::MachineParams;

fn main() {
    banner("A1: ablation over the inversion block size n0");
    let n = 512;
    let k = 64;
    let (pr, pc) = (4usize, 4usize);
    let (p1, p2) = (4usize, 1usize);
    println!("n={n} k={k} p={} grid={p1}x{p1}x{p2}", pr * pc);
    println!(
        "{:>6} {:>8} | {:>8} {:>12} {:>14} {:>14}",
        "n0", "n/n0", "S", "W", "F", "virtual T"
    );
    let mut rows = Vec::new();
    let mut n0 = p1;
    let mut best: Option<(usize, f64)> = None;
    while n0 <= n {
        if n % n0 == 0 {
            let cfg = ItInvConfig {
                p1,
                p2,
                n0,
                inv_base: 16,
            };
            let inst = TrsmInstance {
                n,
                k,
                pr,
                pc,
                seed: 41,
            };
            let m = run_trsm(&inst, TrsmAlgo::Iterative(cfg), MachineParams::cluster());
            assert!(m.error < 1e-7);
            println!(
                "{:>6} {:>8} | {:>8} {:>12} {:>14} {:>14.5e}",
                n0,
                n / n0,
                m.latency,
                m.bandwidth,
                m.flops,
                m.time
            );
            rows.push(format!(
                "{n0},{},{},{},{},{}",
                n / n0,
                m.latency,
                m.bandwidth,
                m.flops,
                m.time
            ));
            if best.map(|(_, t)| m.time < t).unwrap_or(true) {
                best = Some((n0, m.time));
            }
        }
        n0 *= 2;
    }
    if let Some((n0_best, _)) = best {
        let model = costmodel::tuning::plan(n, k, pr * pc);
        println!(
            "\nBest measured n0 = {n0_best}; Section VIII recommends n0 = O(min(sqrt(nk), n)) = {:.0}.",
            model.n0
        );
    }
    let path = write_csv("exp_ablation_n0", "n0,blocks,S,W,F,virtual_time", &rows);
    println!("CSV written to {}", path.display());
    println!(
        "\nExpectation (paper): latency S falls as n0 grows (fewer synchronised\n\
         iterations) while the inversion flops rise; the virtual-time optimum\n\
         sits at an intermediate n0, consistent with the Section VIII choice."
    );
}
