//! Experiment F1 — Figure 1 of the paper: the processor-grid layout (1D, 2D
//! or 3D cuboid) selected as a function of the relative matrix sizes.
//!
//! The figure is reproduced as an ASCII strip per processor count: for a
//! sweep of `n/k` ratios the selected regime and the cuboid dimensions
//! `p1 × p1 × p2` are printed (and written to CSV for plotting).
//!
//! The sweep is run under both cost-model revisions — the source paper's
//! Section VIII model (`ipdps17`) and the reexamined bandwidth bound
//! (`tang24`, after arXiv:2407.00871) — and every point where the regime
//! boundary moves between the two is flagged in a side-by-side diff.

use costmodel::tuning;
use costmodel::{CostModelRev, Regime};
use harness::{banner, write_csv};

fn glyph(regime: Regime) -> char {
    match regime {
        Regime::OneLargeDim => '1',
        Regime::ThreeLargeDims => '3',
        Regime::TwoLargeDims => '2',
    }
}

fn cuboid(p1: f64, p2: f64) -> String {
    format!("{:>5.1} x {:>5.1} x {:>6.1}", p1, p1, p2)
}

fn main() {
    banner("F1: layout selection vs. relative matrix size (paper Figure 1)");
    let k = 1 << 14;
    let mut rows = Vec::new();
    let mut moves = Vec::new();
    for p in [64usize, 256, 4096, 65536] {
        println!("\np = {p}   (k = {k}, n sweeps over n/k from 2^-8 to 2^8)");
        println!(
            "{:>10} {:>10} | {:>7} {:>7} | {:>24} | layout (ipdps17)",
            "n", "n/k", "ipdps17", "tang24", "grid p1 x p1 x p2"
        );
        let mut strips = [String::new(), String::new()];
        for exp in -8i32..=8 {
            let n = if exp >= 0 {
                k << exp as usize
            } else {
                k >> (-exp) as usize
            };
            let mut regimes = [Regime::OneLargeDim; 2];
            for (slot, rev) in CostModelRev::ALL.into_iter().enumerate() {
                let plan = tuning::plan_rev(rev, n, k, p);
                regimes[slot] = plan.regime;
                strips[slot].push(glyph(plan.regime));
                rows.push(format!(
                    "{},{p},{n},{k},{},{},{},{},{},{}",
                    rev.name(),
                    n as f64 / k as f64,
                    glyph(plan.regime),
                    plan.p1,
                    plan.p2,
                    plan.n0,
                    plan.r1
                ));
            }
            let plan = tuning::plan_rev(CostModelRev::Ipdps17, n, k, p);
            let moved = regimes[0] != regimes[1];
            println!(
                "{:>10} {:>10.4} | {:>7} {:>7} | {:>24} | {}{}",
                n,
                n as f64 / k as f64,
                glyph(regimes[0]),
                glyph(regimes[1]),
                cuboid(plan.p1, plan.p2),
                plan.regime.name(),
                if moved { "   <-- boundary moved" } else { "" }
            );
            if moved {
                moves.push((p, n, regimes[0], regimes[1]));
            }
        }
        println!(
            "  n/k from 2^-8 to 2^8, ipdps17:  [{}]   (1 = 1D slab, 3 = 3D cuboid, 2 = 2D face)",
            strips[0]
        );
        println!("  n/k from 2^-8 to 2^8, tang24:   [{}]", strips[1]);
    }
    println!(
        "\nASCII rendering of the three layouts (paper Figure 1):\n\
         \n\
         1D (n < 4k/p)            3D (4k/p <= n <= 4k sqrt(p))      2D (n > 4k sqrt(p))\n\
         +--+--+--+--+            +------+------+                  +------+------+\n\
         |##|  |  |  |  B slabs   | p1 x p1 face |  p2 layers      | sqrt(p) x sqrt(p)  |\n\
         |##|  |  |  |            |  (L face)    | of B slabs      |  face holds L and B |\n\
         +--+--+--+--+            +------+------+                  +------+------+\n\
         whole L inverted         diagonal blocks of size n0       small n0 blocks inverted\n"
    );

    banner("F1b: regime-boundary moves, ipdps17 -> tang24");
    if moves.is_empty() {
        println!("no sweep point changed regime between the two revisions");
    } else {
        println!(
            "{:>8} {:>10} | {:>10} -> {:<10}",
            "p", "n", "ipdps17", "tang24"
        );
        for (p, n, from, to) in &moves {
            println!("{p:>8} {n:>10} | {:>10} -> {:<10}", from.name(), to.name());
        }
        println!(
            "{} of {} sweep points moved: tightening the boundary constant from 4\n\
             to 2 shrinks the 3D window from [4k/p, 4k sqrt(p)] to [2k/p, 2k sqrt(p)],\n\
             handing its edges to the 1D slab and 2D face layouts.",
            moves.len(),
            4 * 17
        );
    }

    let path = write_csv(
        "exp_figure1",
        "rev,p,n,k,n_over_k,regime,p1,p2,n0,r1",
        &rows,
    );
    println!("\nCSV written to {}", path.display());
    println!(
        "Expectation (paper): for every p the strip reads 1…1 3…3 2…2 — the\n\
         layout moves from a 1D slab through the 3D cuboid to the 2D face as\n\
         n/k grows, with the 3D window spanning [4/p, 4·sqrt(p)] under the\n\
         source model and [2/p, 2·sqrt(p)] under the tang24 reexamination."
    );
}
