//! Experiment F1 — Figure 1 of the paper: the processor-grid layout (1D, 2D
//! or 3D cuboid) selected as a function of the relative matrix sizes.
//!
//! The figure is reproduced as an ASCII strip per processor count: for a
//! sweep of `n/k` ratios the selected regime and the cuboid dimensions
//! `p1 × p1 × p2` are printed (and written to CSV for plotting).

use costmodel::tuning::{self, Regime};
use harness::{banner, write_csv};

fn glyph(regime: Regime) -> char {
    match regime {
        Regime::OneLargeDim => '1',
        Regime::ThreeLargeDims => '3',
        Regime::TwoLargeDims => '2',
    }
}

fn cuboid(p1: f64, p2: f64) -> String {
    format!("{:>5.1} x {:>5.1} x {:>6.1}", p1, p1, p2)
}

fn main() {
    banner("F1: layout selection vs. relative matrix size (paper Figure 1)");
    let k = 1 << 14;
    let mut rows = Vec::new();
    for p in [64usize, 256, 4096, 65536] {
        println!("\np = {p}   (k = {k}, n sweeps over n/k from 2^-8 to 2^8)");
        println!(
            "{:>10} {:>10} | {:>6} | {:>24} | layout",
            "n", "n/k", "regime", "grid p1 x p1 x p2"
        );
        let mut strip = String::new();
        for exp in -8i32..=8 {
            let n = if exp >= 0 {
                k << exp as usize
            } else {
                k >> (-exp) as usize
            };
            let plan = tuning::plan(n, k, p);
            strip.push(glyph(plan.regime));
            println!(
                "{:>10} {:>10.4} | {:>6} | {:>24} | {}",
                n,
                n as f64 / k as f64,
                glyph(plan.regime),
                cuboid(plan.p1, plan.p2),
                plan.regime.name()
            );
            rows.push(format!(
                "{p},{n},{k},{},{},{},{},{},{}",
                n as f64 / k as f64,
                glyph(plan.regime),
                plan.p1,
                plan.p2,
                plan.n0,
                plan.r1
            ));
        }
        println!("  n/k from 2^-8 to 2^8:  [{strip}]   (1 = 1D slab, 3 = 3D cuboid, 2 = 2D face)");
    }
    println!(
        "\nASCII rendering of the three layouts (paper Figure 1):\n\
         \n\
         1D (n < 4k/p)            3D (4k/p <= n <= 4k sqrt(p))      2D (n > 4k sqrt(p))\n\
         +--+--+--+--+            +------+------+                  +------+------+\n\
         |##|  |  |  |  B slabs   | p1 x p1 face |  p2 layers      | sqrt(p) x sqrt(p)  |\n\
         |##|  |  |  |            |  (L face)    | of B slabs      |  face holds L and B |\n\
         +--+--+--+--+            +------+------+                  +------+------+\n\
         whole L inverted         diagonal blocks of size n0       small n0 blocks inverted\n"
    );
    let path = write_csv("exp_figure1", "p,n,k,n_over_k,regime,p1,p2,n0,r1", &rows);
    println!("CSV written to {}", path.display());
    println!(
        "Expectation (paper): for every p the strip reads 1…1 3…3 2…2 — the\n\
         layout moves from a 1D slab through the 3D cuboid to the 2D face as\n\
         n/k grows, with the 3D window spanning [4/p, 4·sqrt(p)]."
    );
}
