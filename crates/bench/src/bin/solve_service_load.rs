//! Open-loop load generator for the solve service.
//!
//! Drives a seeded Poisson arrival process against a fresh
//! [`serve::SolveService`], drawing from a closed set of hot matrix
//! fingerprints with a configurable target hit ratio, and reports
//! requests/sec, p50/p99 latency, and the service's cache/fusion
//! statistics.
//!
//! ```text
//! solve_service_load [--requests N] [--rate R] [--matrices M]
//!                    [--hit-ratio H] [--window W] [--n N] [--fill F]
//!                    [--seed S] [--assert]
//! ```
//!
//! `--assert` additionally checks the machine-independent invariants
//! (zero request errors, queue depth bounded by the admission window,
//! plan builds bounded by distinct keys, hit ratio near target) and
//! exits non-zero on violation — this is what the CI `service-soak` job
//! runs; wall-clock throughput is deliberately never asserted.

use harness::service_load::{run_load, LoadConfig};

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = LoadConfig::default();
    if let Some(v) = parse_flag(&args, "--requests") {
        cfg.requests = v;
    }
    if let Some(v) = parse_flag(&args, "--rate") {
        cfg.rate = v;
    }
    if let Some(v) = parse_flag(&args, "--matrices") {
        cfg.matrices = v;
    }
    if let Some(v) = parse_flag(&args, "--hit-ratio") {
        cfg.hit_ratio = v;
    }
    if let Some(v) = parse_flag(&args, "--window") {
        cfg.window = v;
    }
    if let Some(v) = parse_flag(&args, "--n") {
        cfg.n = v;
    }
    if let Some(v) = parse_flag(&args, "--fill") {
        cfg.fill = v;
    }
    if let Some(v) = parse_flag(&args, "--seed") {
        cfg.seed = v;
    }

    harness::banner("solve-service open-loop load");
    eprintln!("dense worker count: {}", dense::dense_threads());
    println!(
        "requests={} rate={}/s matrices={} hit_ratio={} window={} n={} fill={} seed={}",
        cfg.requests, cfg.rate, cfg.matrices, cfg.hit_ratio, cfg.window, cfg.n, cfg.fill, cfg.seed
    );

    let report = run_load(&cfg);
    let s = &report.stats;
    println!(
        "throughput: {:.0} req/s over {:.3}s ({} requests)",
        report.rps, report.duration_secs, report.requests
    );
    println!(
        "latency: p50={:.1}us p99={:.1}us",
        report.p50_us, report.p99_us
    );
    println!(
        "cache: hits={} misses={} evictions={} hit_ratio={:.3} plan_builds={} (steady-state {})",
        s.hits,
        s.misses,
        s.evictions,
        s.hit_ratio(),
        s.plan_builds,
        report.steady_plan_builds
    );
    println!(
        "batching: batches={} fused_requests={} max_width={} max_queue_depth={}",
        s.batches, s.fused_requests, s.max_batch_width, s.max_queue_depth
    );
    println!("distinct keys presented: {}", report.distinct_keys);

    if args.iter().any(|a| a == "--assert") {
        match report.check(&cfg) {
            Ok(()) => println!("invariants: OK"),
            Err(why) => {
                eprintln!("invariant violated: {why}");
                std::process::exit(1);
            }
        }
    }
}
