//! Experiment E2 — the matrix-multiplication cost table of Section III.
//!
//! Runs the 3D multiplication `MM(L, X)` from a 2D cyclic layout for several
//! `(n, k, p1)` combinations and compares the measured critical-path
//! bandwidth/flops with the paper's leading-order expression
//! `T_MM = β·(n²/p1²·1_{p2} + 2nk/(p1·p2)) + γ·n²k/p + O(α log p + β nk log p / p)`.

use dense::gen;
use harness::{banner, write_csv};
use pgrid::{DistMatrix, Grid2D};
use simnet::{Machine, MachineParams};

fn run_mm(q: usize, p1: usize, n: usize, k: usize) -> (u64, u64, u64, f64) {
    let out = Machine::new(q * q, MachineParams::unit())
        .run(move |comm| {
            let grid = Grid2D::new(comm, q, q).unwrap();
            let a_global = gen::uniform(n, n, 7);
            let x_global = gen::uniform(n, k, 8);
            let a = DistMatrix::from_global(&grid, &a_global);
            let x = DistMatrix::from_global(&grid, &x_global);
            let b = catrsm::mm3d::mm3d(
                &a,
                &x,
                &catrsm::mm3d::MmConfig {
                    p1,
                    log_latency: true,
                },
            )
            .unwrap();
            let expect = DistMatrix::from_global(&grid, &dense::matmul(&a_global, &x_global));
            b.rel_diff(&expect).unwrap()
        })
        .unwrap();
    let err = out.results.iter().copied().fold(0.0, f64::max);
    (
        out.report.max_messages(),
        out.report.max_words(),
        out.report.max_flops(),
        err,
    )
}

fn main() {
    banner("E2: 3D matrix multiplication from a 2D layout (paper Section III)");
    println!(
        "{:>4} {:>4} {:>4} {:>6} {:>6} | {:>6} {:>10} {:>12} | {:>10} {:>12} | err",
        "p", "p1", "p2", "n", "k", "S", "W meas", "F meas", "W model", "F model"
    );
    let mut rows = Vec::new();
    for (q, n, k) in [
        (2usize, 128usize, 64usize),
        (4, 256, 64),
        (4, 256, 256),
        (8, 256, 64),
    ] {
        let mut p1 = 1;
        while p1 <= q {
            let s = q / p1;
            let p2 = s * s;
            if n % (p1 * p1) == 0 && k % p2 == 0 && n % q == 0 && k % q == 0 {
                let (smeas, wmeas, fmeas, err) = run_mm(q, p1, n, k);
                let model = costmodel::mm::mm_cost(
                    n as f64,
                    k as f64,
                    (q * q) as f64,
                    p1 as f64,
                    p2 as f64,
                );
                println!(
                    "{:>4} {:>4} {:>4} {:>6} {:>6} | {:>6} {:>10} {:>12} | {:>10.0} {:>12.0} | {:.1e}",
                    q * q,
                    p1,
                    p2,
                    n,
                    k,
                    smeas,
                    wmeas,
                    fmeas,
                    model.bandwidth,
                    2.0 * model.flops,
                    err
                );
                rows.push(format!(
                    "{},{},{},{},{},{},{},{},{},{}",
                    q * q,
                    p1,
                    p2,
                    n,
                    k,
                    smeas,
                    wmeas,
                    fmeas,
                    model.bandwidth,
                    2.0 * model.flops
                ));
            }
            p1 *= 2;
        }
    }
    let path = write_csv(
        "exp_mm_table",
        "p,p1,p2,n,k,S_measured,W_measured,F_measured,W_model,F_model",
        &rows,
    );
    println!("\nCSV written to {}", path.display());
    println!(
        "\nExpectation (paper): measured W tracks n²/p1² + 2nk/(p1·p2) (plus the\n\
         lower-order transpose term), flops are the load-balanced 2·n²k/p, and\n\
         S stays a few dozen messages (O(log p)) for every grid shape."
    );
}
