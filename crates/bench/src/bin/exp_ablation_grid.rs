//! Experiment A2 (ablation) — aspect ratio of the inversion sub-grid.
//!
//! Section VII-A states that the bandwidth terms of the triangular inversion
//! balance at `r2 = 4·r1`.  This sweep evaluates the model's inversion
//! bandwidth over the full range of aspect ratios (and cross-checks a few
//! ratios on the simulator via the distributed inversion), showing that the
//! paper's choice sits in the flat region around the optimum — the measured
//! minimum is at `r2 ≈ 2·r1`, within a few percent of ratio 4 (a small
//! discrepancy in the paper's constant, recorded in EXPERIMENTS.md).

use costmodel::inversion;
use dense::gen;
use harness::{banner, write_csv};
use pgrid::{DistMatrix, Grid2D};
use simnet::{Machine, MachineParams};

fn measure_inversion(q: usize, n: usize) -> (u64, u64) {
    let out = Machine::new(q * q, MachineParams::unit())
        .run(move |comm| {
            let grid = Grid2D::new(comm, q, q).unwrap();
            let l_global = gen::well_conditioned_lower(n, 51);
            let l = DistMatrix::from_global(&grid, &l_global);
            catrsm::tri_inv::tri_inv(&l, &catrsm::tri_inv::TriInvConfig::default()).unwrap();
        })
        .unwrap();
    (out.report.max_messages(), out.report.max_words())
}

fn main() {
    banner("A2: ablation over the inversion sub-grid aspect ratio r2/r1");
    let n = 4096.0;
    let q_total = 512.0;
    println!("model inversion bandwidth, n = {n}, q = {q_total} processors");
    println!("{:>8} {:>8} {:>8} | {:>14}", "ratio", "r1", "r2", "W model");
    let mut rows = Vec::new();
    let mut best = f64::INFINITY;
    let mut best_ratio = 0.0;
    let mut ratio: f64 = 0.25;
    while ratio <= 256.0 {
        let r1 = (q_total / ratio).powf(1.0 / 3.0);
        let r2 = q_total / (r1 * r1);
        let w = inversion::inv_bandwidth(n, r1, r2);
        println!("{:>8.2} {:>8.2} {:>8.2} | {:>14.0}", ratio, r1, r2, w);
        rows.push(format!("{ratio},{r1},{r2},{w}"));
        if w < best {
            best = w;
            best_ratio = ratio;
        }
        ratio *= 2.0;
    }
    let (r1p, r2p) = inversion::optimal_inv_grid(q_total);
    let wp = inversion::inv_bandwidth(n, r1p, r2p);
    println!(
        "\npaper's choice r2 = 4·r1: W = {:.0} ({:+.1}% vs. the best sampled ratio {best_ratio})",
        wp,
        100.0 * (wp - best) / best
    );

    banner("A2b: simulator cross-check (square faces, varying processor count)");
    println!("{:>6} {:>8} | {:>8} {:>12}", "p", "n", "S", "W");
    for (q, n) in [(2usize, 256usize), (4, 256), (4, 512)] {
        let (s, w) = measure_inversion(q, n);
        println!("{:>6} {:>8} | {:>8} {:>12}", q * q, n, s, w);
        rows.push(format!("simulated,{},{n},{s},{w}", q * q));
    }
    let path = write_csv(
        "exp_ablation_grid",
        "ratio_or_tag,r1_or_p,r2_or_n,W_model_or_S,W",
        &rows,
    );
    println!("\nCSV written to {}", path.display());
    println!(
        "\nExpectation: the bandwidth curve is flat within a factor ~1.1 between\n\
         ratios 2 and 4 and degrades for extreme aspect ratios; the simulator\n\
         numbers scale like n²/p for the square-face configuration."
    );
}
