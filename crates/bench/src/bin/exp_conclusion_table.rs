//! Experiment T1 — the conclusion table of Section IX: standard (recursive)
//! TRSM versus the new iterative inversion-based method, in all three
//! regimes.
//!
//! For every regime the two algorithms are run on the simulated machine with
//! the parameters the planner (Section VIII) selects, and the measured
//! critical-path S/W/F are printed next to the asymptotic entries of the
//! paper's table.  The paper's claims to check:
//!
//! * both algorithms move the same order of words (W) and do the same order
//!   of flops (F, at most 2× for the new method in the 3D regime);
//! * the new method needs far fewer messages (S) in the 2D and 3D regimes,
//!   with the gap growing as `(n/k)^{1/6}·p^{2/3}`;
//! * in the 1D regime the new method pays a modest extra `log p` in S.
//!
//! Every table is produced under both cost-model revisions — the source
//! paper's model (`ipdps17`) and the reexamined bandwidth bound (`tang24`,
//! after arXiv:2407.00871) — with a closing diff of where the predicted
//! regime and W change between the two.

use catrsm::planner;
use costmodel::{compare, CostModelRev};
use harness::{banner, run_trsm, write_csv, TrsmAlgo, TrsmInstance};
use simnet::MachineParams;

struct Case {
    label: &'static str,
    n: usize,
    k: usize,
    pr: usize,
    pc: usize,
    rec_base: usize,
}

fn main() {
    banner("T1: conclusion table (paper Section IX) — standard vs new method");
    let cases = [
        Case {
            label: "1 large dim  (n < 4k/p)",
            n: 32,
            k: 2048,
            pr: 4,
            pc: 4,
            rec_base: 16,
        },
        Case {
            label: "3 large dims (4k/p<=n<=4k sqrt(p))",
            n: 256,
            k: 64,
            pr: 4,
            pc: 4,
            rec_base: 32,
        },
        Case {
            label: "3 large dims (4k/p<=n<=4k sqrt(p))",
            n: 512,
            k: 128,
            pr: 4,
            pc: 4,
            rec_base: 64,
        },
        Case {
            label: "2 large dims (n > 4k sqrt(p))",
            n: 512,
            k: 16,
            pr: 4,
            pc: 4,
            rec_base: 64,
        },
        Case {
            label: "2 large dims (n > 4k sqrt(p))",
            n: 1024,
            k: 16,
            pr: 4,
            pc: 4,
            rec_base: 64,
        },
    ];
    let mut rows = Vec::new();
    for rev in CostModelRev::ALL {
        banner(&format!("T1 under the {} cost model", rev.name()));
        for case in &cases {
            let p = case.pr * case.pc;
            let plan = planner::plan_rev(rev, case.n, case.k, p);
            let inst = TrsmInstance {
                n: case.n,
                k: case.k,
                pr: case.pr,
                pc: case.pc,
                seed: 29,
            };
            let std = run_trsm(
                &inst,
                TrsmAlgo::Recursive {
                    base: case.rec_base,
                },
                MachineParams::unit(),
            );
            let new = run_trsm(
                &inst,
                TrsmAlgo::Iterative(plan.it_inv),
                MachineParams::unit(),
            );
            assert!(
                std.error < 1e-7 && new.error < 1e-7,
                "both must solve correctly"
            );

            let row_model =
                compare::conclusion_row_rev(rev, case.n as f64, case.k as f64, p as f64);
            println!(
                "\n{}  n={} k={} p={}  (plan: {:?})",
                case.label, case.n, case.k, p, plan.it_inv
            );
            println!("  {:<10} {}", "standard", std.row());
            println!("  {:<10} {}", "new", new.row());
            println!(
                "  measured ratios: S {:.2}x   W {:.2}x   F {:.2}x      model S ratio {:.2}x",
                std.latency as f64 / new.latency as f64,
                std.bandwidth as f64 / new.bandwidth as f64,
                std.flops as f64 / new.flops as f64,
                row_model.standard.latency / row_model.new.latency,
            );
            rows.push(format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{}",
                rev.name(),
                case.label.replace(',', ";"),
                case.n,
                case.k,
                p,
                std.latency,
                std.bandwidth,
                std.flops,
                new.latency,
                new.bandwidth,
                new.flops,
                row_model.standard.latency / row_model.new.latency,
                std.latency as f64 / new.latency as f64,
            ));
        }
    }

    banner("T1b: asymptotic model at paper scale (no simulation), both revisions");
    println!(
        "{:>10} {:>10} {:>10} | {:>12} {:>12} {:>8} | {:>12} {:>12} {:>8} | regimes",
        "n", "k", "p", "S std i17", "S new i17", "S ratio", "S std t24", "S new t24", "S ratio"
    );
    let mut boundary_moves = 0usize;
    for (n, k, p) in [
        (1.0e6, 1.0e6, 1024.0),
        (1.0e6, 1.0e5, 4096.0),
        (1.0e6, 1.0e4, 16384.0),
        (1.0e7, 1.0e4, 65536.0),
        (1.0e5, 1.0e7, 1024.0),
    ] {
        let i17 = compare::conclusion_row_rev(CostModelRev::Ipdps17, n, k, p);
        let t24 = compare::conclusion_row_rev(CostModelRev::Tang24, n, k, p);
        let moved = i17.regime != t24.regime;
        boundary_moves += usize::from(moved);
        println!(
            "{:>10.0e} {:>10.0e} {:>10.0e} | {:>12.3e} {:>12.3e} {:>8.1} | {:>12.3e} {:>12.3e} {:>8.1} | {:?} -> {:?}{}",
            n,
            k,
            p,
            i17.standard.latency,
            i17.new.latency,
            i17.standard.latency / i17.new.latency,
            t24.standard.latency,
            t24.new.latency,
            t24.standard.latency / t24.new.latency,
            i17.regime,
            t24.regime,
            if moved { "   <-- boundary moved" } else { "" }
        );
        println!(
            "{:>32}   W std {:>10.3e} -> {:>10.3e} ({:+.1}%)   W new {:>10.3e} -> {:>10.3e} ({:+.1}%)",
            "tang24 W correction:",
            i17.standard.bandwidth,
            t24.standard.bandwidth,
            100.0 * (t24.standard.bandwidth / i17.standard.bandwidth - 1.0),
            i17.new.bandwidth,
            t24.new.bandwidth,
            100.0 * (t24.new.bandwidth / i17.new.bandwidth - 1.0),
        );
    }
    println!(
        "\n{boundary_moves} of 5 paper-scale points change regime under the tang24\n\
         boundary constant; within a fixed regime the corrected recursive W\n\
         bound only ever grows, so the new method's S advantage is preserved\n\
         or widened (a W drop only appears where the regime itself moves)."
    );
    let path = write_csv(
        "exp_conclusion_table",
        "rev,regime,n,k,p,S_std,W_std,F_std,S_new,W_new,F_new,model_S_ratio,measured_S_ratio",
        &rows,
    );
    println!("\nCSV written to {}", path.display());
    println!(
        "\nExpectation (paper): in the 2D/3D rows the new method wins on S while\n\
         matching W and F (within 2x on F); in the 1D row it pays a small extra\n\
         S. At paper scale (T1b) the S ratio grows like (n/k)^(1/6)·p^(2/3)."
    );
}
