//! Experiment E1 — the collective-cost table of Section II-C1.
//!
//! Runs every collective on the simulated machine and compares the measured
//! message and word counts against the closed-form costs the paper quotes
//! (butterfly / Bruck schedules).  Power-of-two processor counts and
//! divisible message sizes are used, which is exactly the setting of the
//! paper's formulas.

use harness::{banner, write_csv};
use simnet::{coll, Machine, MachineParams};

fn measure(p: usize, words: usize, which: &str) -> (u64, u64) {
    let out = Machine::new(p, MachineParams::unit())
        .run(|comm| {
            let rank = comm.rank() as f64;
            match which {
                "allgather" => {
                    coll::allgather(comm, &vec![rank; words / p]).unwrap();
                }
                "gather" => {
                    coll::gather(comm, 0, &vec![rank; words / p]).unwrap();
                }
                "scatter" => {
                    let data = if comm.rank() == 0 {
                        vec![1.0; words]
                    } else {
                        Vec::new()
                    };
                    coll::scatter(comm, 0, &data, words / p).unwrap();
                }
                "reduce_scatter" => {
                    coll::reduce_scatter(comm, &vec![rank; words], coll::ReduceOp::Sum).unwrap();
                }
                "allreduce" => {
                    coll::allreduce(comm, &vec![rank; words], coll::ReduceOp::Sum).unwrap();
                }
                "bcast" => {
                    let data = if comm.rank() == 0 {
                        vec![1.0; words]
                    } else {
                        Vec::new()
                    };
                    coll::bcast(comm, 0, &data, words).unwrap();
                }
                "alltoall" => {
                    coll::alltoall(comm, &vec![rank; words], words / p).unwrap();
                }
                other => panic!("unknown collective {other}"),
            }
        })
        .unwrap();
    (out.report.max_messages(), out.report.max_words())
}

fn predicted(p: f64, words: f64, which: &str) -> (f64, f64) {
    use costmodel::collectives as c;
    let cost = match which {
        "allgather" => c::allgather(words, p),
        "gather" => c::gather(words, p),
        "scatter" => c::scatter(words, p),
        "reduce_scatter" => c::reduce_scatter(words, p),
        "allreduce" => c::allreduction(words, p),
        "bcast" => c::bcast(words, p),
        "alltoall" => c::alltoall(words, p),
        other => panic!("unknown collective {other}"),
    };
    (cost.latency, cost.bandwidth)
}

fn main() {
    banner("E1: collective communication costs (paper Section II-C1)");
    println!(
        "{:<16} {:>5} {:>9} | {:>8} {:>10} | {:>8} {:>10} | ratio W",
        "collective", "p", "n words", "S meas", "W meas", "S model", "W model"
    );
    let mut rows = Vec::new();
    for which in [
        "allgather",
        "gather",
        "scatter",
        "reduce_scatter",
        "allreduce",
        "bcast",
        "alltoall",
    ] {
        for p in [4usize, 16, 64] {
            for words in [1024usize, 16384] {
                let (s, w) = measure(p, words, which);
                let (ps, pw) = predicted(p as f64, words as f64, which);
                let ratio = w as f64 / pw.max(1.0);
                println!(
                    "{:<16} {:>5} {:>9} | {:>8} {:>10} | {:>8.0} {:>10.0} | {:>6.3}",
                    which, p, words, s, w, ps, pw, ratio
                );
                rows.push(format!("{which},{p},{words},{s},{w},{ps},{pw}"));
            }
        }
    }
    let path = write_csv(
        "exp_collectives",
        "collective,p,words,S_measured,W_measured,S_model,W_model",
        &rows,
    );
    println!("\nCSV written to {}", path.display());
    println!(
        "\nExpectation (paper): measured W matches the formulas exactly for the\n\
         power-of-two sizes above (ratio 1.000); measured S equals the model's\n\
         log-p round counts (composed collectives pay 2·log p)."
    );
}
