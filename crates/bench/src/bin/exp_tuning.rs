//! Experiment E6 — optimal parameter selection (Section VIII).
//!
//! Prints, for a sweep of `n/k` ratios and processor counts, the parameters
//! the cost model recommends (`p1`, `p2`, `n0`, `r1`, `r2`), the regime, and
//! the resulting model cost `T_IT`, next to the concrete integer plan the
//! planner produces and the measured cost of running that plan on the
//! simulated machine (for the sizes small enough to simulate).

use catrsm::planner;
use costmodel::tuning;
use harness::{banner, run_trsm, write_csv, TrsmAlgo, TrsmInstance};
use simnet::MachineParams;

fn main() {
    banner("E6: parameter tuning (paper Section VIII)");
    println!(
        "{:>8} {:>8} {:>6} | {:>22} {:>8} {:>8} {:>8} {:>6} {:>6} | integer plan (p1,p2,n0)",
        "n", "k", "p", "regime", "p1*", "p2*", "n0*", "r1*", "r2*"
    );
    let mut rows = Vec::new();
    for p in [64usize, 4096, 65536] {
        for (n, k) in [
            (1usize << 10, 1usize << 20),
            (1 << 12, 1 << 16),
            (1 << 14, 1 << 14),
            (1 << 16, 1 << 12),
            (1 << 20, 1 << 10),
        ] {
            let model = tuning::plan(n, k, p);
            let plan = planner::plan(n, k, p);
            println!(
                "{:>8} {:>8} {:>6} | {:>22} {:>8.1} {:>8.1} {:>8.0} {:>6.1} {:>6.1} | ({}, {}, {})",
                n,
                k,
                p,
                format!("{:?}", model.regime),
                model.p1,
                model.p2,
                model.n0,
                model.r1,
                model.r2,
                plan.it_inv.p1,
                plan.it_inv.p2,
                plan.it_inv.n0
            );
            rows.push(format!(
                "{n},{k},{p},{:?},{},{},{},{},{},{},{},{}",
                model.regime,
                model.p1,
                model.p2,
                model.n0,
                model.r1,
                model.r2,
                plan.it_inv.p1,
                plan.it_inv.p2,
                plan.it_inv.n0
            ));
        }
    }

    banner("E6b: planned vs. hand-picked parameters on the simulator (p = 16)");
    println!(
        "{:>6} {:>6} | {:<26} | {:>8} {:>12} {:>12}",
        "n", "k", "configuration", "S", "W", "virtual T"
    );
    for (n, k) in [(256usize, 64usize), (512, 16), (64, 1024)] {
        let plan = planner::plan(n, k, 16);
        let inst = TrsmInstance {
            n,
            k,
            pr: 4,
            pc: 4,
            seed: 31,
        };
        let planned = run_trsm(
            &inst,
            TrsmAlgo::Iterative(plan.it_inv),
            MachineParams::cluster(),
        );
        println!(
            "{:>6} {:>6} | planner {:<18?} | {:>8} {:>12} {:>12.4e}",
            n,
            k,
            (plan.it_inv.p1, plan.it_inv.p2, plan.it_inv.n0),
            planned.latency,
            planned.bandwidth,
            planned.time
        );
        // A deliberately mis-shaped configuration for contrast: 1D layout.
        let naive = catrsm::it_inv_trsm::ItInvConfig {
            p1: 1,
            p2: 16,
            n0: n,
            inv_base: 16,
        };
        if k % 16 == 0 {
            let m = run_trsm(&inst, TrsmAlgo::Iterative(naive), MachineParams::cluster());
            println!(
                "{:>6} {:>6} | naive 1D (1, 16, {:>4})       | {:>8} {:>12} {:>12.4e}",
                n, k, n, m.latency, m.bandwidth, m.time
            );
        }
    }
    let path = write_csv(
        "exp_tuning",
        "n,k,p,regime,p1_model,p2_model,n0_model,r1_model,r2_model,p1_plan,p2_plan,n0_plan",
        &rows,
    );
    println!("\nCSV written to {}", path.display());
    println!(
        "\nExpectation (paper): the regime flips 1D → 3D → 2D as n/k grows; the\n\
         planner's integer parameters track the model's; and for the narrow\n\
         (2D-regime) instances the planned configuration beats the naive 1D\n\
         layout in measured bandwidth / virtual time."
    );
}
