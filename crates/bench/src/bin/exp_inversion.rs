//! Experiment E4 — cost of recursive triangular inversion (Section V).
//!
//! Measures the distributed inversion on the simulated machine and compares
//! with `T_RecTriInv`: bandwidth `ν·(n²/(8p1²) + n²/(2p1p2))`, flops
//! `ν·n³/(8p)` and — the key property — `O(log² p)` latency, in contrast to
//! the `Θ(n)`-round wavefront substitution or the `Θ(poly p)` recursive TRSM.

use dense::gen;
use harness::{banner, write_csv};
use pgrid::{DistMatrix, Grid2D};
use simnet::{Machine, MachineParams};

fn run_inv(q: usize, n: usize, base: usize) -> (u64, u64, u64, f64) {
    let out = Machine::new(q * q, MachineParams::unit())
        .run(move |comm| {
            let grid = Grid2D::new(comm, q, q).unwrap();
            let l_global = gen::well_conditioned_lower(n, 5);
            let l = DistMatrix::from_global(&grid, &l_global);
            let inv = catrsm::tri_inv::tri_inv(
                &l,
                &catrsm::tri_inv::TriInvConfig {
                    base_size: base,
                    log_latency: true,
                },
            )
            .unwrap();
            let prod = catrsm::mm3d::mm3d_auto(&inv, &l).unwrap();
            let id = DistMatrix::from_fn(&grid, n, n, |i, j| if i == j { 1.0 } else { 0.0 });
            prod.rel_diff(&id).unwrap()
        })
        .unwrap();
    let err = out.results.iter().copied().fold(0.0, f64::max);
    (
        out.report.max_messages(),
        out.report.max_words(),
        out.report.max_flops(),
        err,
    )
}

fn main() {
    banner("E4: recursive triangular inversion (paper Section V)");
    println!(
        "{:>4} {:>6} {:>6} | {:>8} {:>12} {:>14} | {:>8} {:>12} {:>14} | err",
        "p", "n", "base", "S meas", "W meas", "F meas", "S model", "W model", "F model"
    );
    let mut rows = Vec::new();
    for (q, n, base) in [
        (2usize, 128usize, 32usize),
        (2, 256, 32),
        (4, 128, 16),
        (4, 256, 16),
        (4, 512, 32),
    ] {
        let (s, w, f, err) = run_inv(q, n, base);
        // Model grid: the recursion effectively uses p = q² processors with a
        // square face; report the paper's formula for p1 = q, p2 = 1.
        let model = costmodel::inversion::rec_tri_inv_cost(n as f64, q as f64, 1.0);
        println!(
            "{:>4} {:>6} {:>6} | {:>8} {:>12} {:>14} | {:>8.0} {:>12.0} {:>14.0} | {:.1e}",
            q * q,
            n,
            base,
            s,
            w,
            f,
            model.latency,
            model.bandwidth,
            2.0 * model.flops,
            err
        );
        rows.push(format!(
            "{},{n},{base},{s},{w},{f},{},{},{}",
            q * q,
            model.latency,
            model.bandwidth,
            2.0 * model.flops
        ));
    }
    // Scaling in n at fixed p: bandwidth should grow ~n², flops ~n³, latency ~constant.
    banner("E4b: scaling with n at fixed p = 16");
    let mut prev: Option<(u64, u64, u64)> = None;
    for n in [128usize, 256, 512] {
        let (s, w, f, _) = run_inv(4, n, 16);
        if let Some((ps, pw, pf)) = prev {
            println!(
                "n {:>4} -> {:>4}: S ratio {:>5.2} (expect ~1), W ratio {:>5.2} (expect ~4), F ratio {:>5.2} (expect ~8)",
                n / 2,
                n,
                s as f64 / ps as f64,
                w as f64 / pw as f64,
                f as f64 / pf as f64
            );
        }
        prev = Some((s, w, f));
    }
    let path = write_csv(
        "exp_inversion",
        "p,n,base,S_measured,W_measured,F_measured,S_model,W_model,F_model",
        &rows,
    );
    println!("\nCSV written to {}", path.display());
    println!(
        "\nExpectation (paper): latency stays polylogarithmic in p and nearly flat\n\
         in n, while bandwidth grows ~n² and flops ~n³ — confirming that the\n\
         inversion can be used as a low-synchronization building block."
    );
}
