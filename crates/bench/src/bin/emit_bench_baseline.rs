//! Emits `BENCH_kernels.json`: a machine-readable baseline of the local
//! kernel throughput, so future PRs have a perf trajectory to compare
//! against — and, in `--check` mode, the CI perf-gate that compares a fresh
//! run against the committed baseline.
//!
//! Run with `cargo run --release -p bench --bin emit_bench_baseline` from
//! the repository root.  The JSON is written by hand (no serde in the
//! offline build) with one record per measurement:
//!
//! ```json
//! { "kernel": "gemm_par", "n": 1024, "threads": 4, "median_ms": 81.2, "gflops": 26.4 }
//! ```
//!
//! (`threads` is omitted for single-threaded kernels) plus the top-level
//! fields the acceptance criteria track: `gemm_speedup` (single-thread
//! packed vs naive at the largest size measured) and `gemm_par_speedup`
//! (multithreaded vs single-thread packed at `gemm_par`'s largest size)
//! alongside `hw_threads`, the parallelism the measuring machine actually
//! had.
//!
//! Schema v6 adds a `trace_overhead` object: paired interleaved
//! min-of-samples timings of the staged sparse solve and the parallel
//! GEMM with the `obs` trace recorder disabled vs enabled, plus the
//! asserted `disabled_vs_plain` ratio (disabled-mode tracing must cost
//! ≤ 2% on the instrumented hot path).
//!
//! Schema v7 adds a `solve_service` array: open-loop load-generator runs
//! against the `serve::SolveService` at two target hit ratios, recording
//! requests/sec, p50/p99 latency, the measured cache hit ratio, and the
//! fused-batch statistics, each row stamped with `hw_threads`.  The
//! machine-independent invariants (zero errors, bounded queue depth,
//! plan builds ≤ distinct keys) are asserted on every machine; the
//! absolute-throughput floor only where `hw_threads >= 4`.
//!
//! Schema v8 adds a `dist_parallel` array: wall-clock medians of a full
//! 2×2-grid distributed solve per algorithm with the simulator's rank
//! gate at 1 and at 4 workers (`Machine::with_rank_workers`), plus the
//! resulting speedup, each row stamped with `hw_threads`.  The speedup
//! floor is asserted only in full mode on machines with ≥ 4 hardware
//! threads; elsewhere the rows are recorded for trajectory only.
//!
//! Flags:
//!
//! * `--fast` — CI mode: fewer samples, smaller sizes, no speedup
//!   assertions.  Records keep the same keys so they stay comparable.
//! * `--out <path>` — write the JSON somewhere other than
//!   `BENCH_kernels.json` (CI writes a scratch file and uploads it as an
//!   artifact instead of dirtying the committed baseline).
//! * `--check <path>` — compare the fresh records against a previously
//!   committed baseline: every `(kernel, n, threads)` present in both must
//!   not be more than [`CHECK_TOLERANCE`]× slower than the baseline.
//!   Regressions list to stderr and exit non-zero.

use catrsm::{Algorithm, ItInvConfig, SchedulePolicy, SolveRequest};
use dense::{gemm_with_threads, gen, reference, tri_invert, trmm, trsm, Diag, Matrix, Triangle};
use pgrid::{DistMatrix, Grid2D};
use simnet::{Machine, MachineParams};
use std::fmt::Write as _;
use std::time::Instant;

/// A fresh run may be at most this many times slower than the committed
/// baseline before the gate fails.  Generous on purpose: CI machines differ
/// from the baseline machine; the gate exists to catch order-of-magnitude
/// regressions (a kernel silently falling off its packed path), not noise.
const CHECK_TOLERANCE: f64 = 3.0;

/// Median-of-`samples` wall time of `f`, in seconds.
fn time_median<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    // One warm-up run (fills pack buffers, warms caches).
    f();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

struct Record {
    kernel: &'static str,
    n: usize,
    /// Worker count for multithreaded kernels; `None` for sequential ones.
    threads: Option<usize>,
    median_ms: f64,
    gflops: f64,
    /// Hardware parallelism of the measuring machine, recorded on rows
    /// added by schema v5 and later (older rows keep their v4 shape so
    /// committed baselines stay line-diffable).
    hw_threads: Option<usize>,
}

impl Record {
    fn key(&self) -> (String, usize, usize) {
        (self.kernel.to_string(), self.n, self.threads.unwrap_or(1))
    }
}

struct Options {
    fast: bool,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        fast: false,
        out: "BENCH_kernels.json".to_string(),
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => opts.fast = true,
            "--out" => opts.out = args.next().expect("--out needs a path"),
            "--check" => opts.check = Some(args.next().expect("--check needs a path")),
            other => panic!("unknown argument {other:?} (expected --fast, --out, --check)"),
        }
    }
    opts
}

fn main() {
    let opts = parse_args();
    // Odd counts so the median is a true middle sample (with 2 samples,
    // `times[1]` would be the max and bias the fast gate upward).
    let samples = if opts.fast { 3 } else { 5 };
    let hw_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut records: Vec<Record> = Vec::new();

    // --- GEMM: naive baseline vs packed path, including the 512³ check. ---
    let gemm_sizes: &[usize] = if opts.fast {
        &[128, 256]
    } else {
        &[128, 256, 512]
    };
    // Largest size measured feeds the packed-vs-naive headline (512³ in
    // full mode, 256³ in fast mode).
    let headline_n = *gemm_sizes.last().unwrap();
    let mut naive_headline = 0.0;
    let mut packed_headline = 0.0;
    for &n in gemm_sizes {
        let a = gen::uniform(n, n, 1);
        let b = gen::uniform(n, n, 2);
        let mut c = Matrix::zeros(n, n);
        let flops = 2.0 * (n as f64).powi(3);

        let t = time_median(samples, || {
            reference::gemm_naive_ikj(1.0, &a, &b, 0.0, &mut c);
        });
        if n == headline_n {
            naive_headline = t;
        }
        records.push(Record {
            kernel: "gemm_naive_ikj",
            n,
            threads: None,
            median_ms: t * 1e3,
            gflops: flops / t / 1e9,
            hw_threads: None,
        });

        let t = time_median(samples, || {
            gemm_with_threads(1.0, &a, &b, 0.0, &mut c, 1).unwrap();
        });
        if n == headline_n {
            packed_headline = t;
        }
        records.push(Record {
            kernel: "gemm_packed",
            n,
            threads: None,
            median_ms: t * 1e3,
            gflops: flops / t / 1e9,
            hw_threads: None,
        });
    }

    // --- Multithreaded GEMM: column-partitioned packed kernel. ------------
    // Fast (CI) mode measures 256³ only; the full baseline also keeps 256³
    // rows so the perf gate always has gemm_par overlap with the committed
    // file.  The speedup headline is taken at the largest size measured.
    let par_sizes: &[usize] = if opts.fast { &[256] } else { &[256, 1024] };
    let par_n = *par_sizes.last().unwrap();
    let mut par_t1 = 0.0;
    let mut par_t4 = 0.0;
    for &n in par_sizes {
        let a = gen::uniform(n, n, 5);
        let b = gen::uniform(n, n, 6);
        let mut c = Matrix::zeros(n, n);
        let flops = 2.0 * (n as f64).powi(3);
        for threads in [1usize, 2, 4] {
            let t = time_median(samples, || {
                gemm_with_threads(1.0, &a, &b, 0.0, &mut c, threads).unwrap();
            });
            if n == par_n && threads == 1 {
                par_t1 = t;
            }
            if n == par_n && threads == 4 {
                par_t4 = t;
            }
            records.push(Record {
                kernel: "gemm_par",
                n,
                threads: Some(threads),
                median_ms: t * 1e3,
                gflops: flops / t / 1e9,
                hw_threads: None,
            });
        }
    }
    let par_speedup = par_t1 / par_t4;

    // --- Sparse level-scheduled triangular solve. -------------------------
    // Sequential vs level-parallel executors on a random lower factor (the
    // schedule is analyzed once, outside the timed region, matching the
    // analyze-once / solve-many traffic the crate is built for), plus the
    // blocked multi-RHS executor.
    // Same size in fast mode: the solve is milliseconds, and matching keys
    // keep the CI perf gate's sparse rows overlapping with the committed
    // baseline.
    let (sparse_n, sparse_fill) = (40_000, 12);
    let sl = sparse::gen::random_lower(sparse_n, sparse_fill, 3);
    let sb = sparse::gen::rhs_vec(sparse_n, 4);
    let _ = sl.schedule();
    let sparse_flops = sl.solve_flops(1).get() as f64;
    let mut sparse_t1 = 0.0;
    let mut sparse_t4 = 0.0;
    for threads in [1usize, 2, 4] {
        // Measured through the staged API — the path users call — with the
        // plan built outside the timed region (plan once, apply many).
        let plan = SolveRequest::lower()
            .threads(threads)
            .plan_sparse(&sl, 1)
            .unwrap();
        let mut x = vec![0.0; sparse_n];
        let t = time_median(samples, || {
            x.copy_from_slice(&sb);
            plan.execute_sparse_vec_in_place(&sl, &mut x).unwrap();
        });
        if threads == 1 {
            sparse_t1 = t;
        }
        if threads == 4 {
            sparse_t4 = t;
        }
        records.push(Record {
            kernel: "sparse_solve",
            n: sparse_n,
            threads: Some(threads),
            median_ms: t * 1e3,
            gflops: sparse_flops / t / 1e9,
            hw_threads: None,
        });
    }
    let sparse_speedup = sparse_t1 / sparse_t4;
    // The same matrix under a pinned merged schedule: what the
    // DAG-partition policy costs/buys on a wide pattern (auto prefers
    // Level here; the merged headline below is the deep-DAG shape).
    let sparse_t4_merged = {
        let plan = SolveRequest::lower()
            .threads(4)
            .policy(SchedulePolicy::Merged)
            .plan_sparse(&sl, 1)
            .unwrap();
        let mut x = vec![0.0; sparse_n];
        let t = time_median(samples, || {
            x.copy_from_slice(&sb);
            plan.execute_sparse_vec_in_place(&sl, &mut x).unwrap();
        });
        records.push(Record {
            kernel: "sparse_solve_merged",
            n: sparse_n,
            threads: Some(4),
            median_ms: t * 1e3,
            gflops: sparse_flops / t / 1e9,
            hw_threads: None,
        });
        t
    };
    let sparse_merged_speedup = sparse_t1 / sparse_t4_merged;

    // --- Barrier-sensitive deep DAG: level vs merged scheduling. ----------
    // n = 40000 in 10000 levels of width 4 (band-limited dependencies):
    // the level schedule crosses one barrier per level, the merged one per
    // super-level.  Per-policy barrier counts come from the plans, so the
    // JSON records the synchronization structure alongside the timings.
    let deep_n = 40_000usize;
    let dl = sparse::gen::deep_narrow_lower(deep_n, 4, 4, 3);
    let db = sparse::gen::rhs_vec(deep_n, 4);
    let _ = dl.schedule();
    let _ = dl.merged_schedule();
    let deep_flops = dl.solve_flops(1).get() as f64;
    let mut deep_policy_t = [0.0f64; 2];
    let mut deep_policy_barriers = [0usize; 2];
    {
        let plan = SolveRequest::lower()
            .threads(1)
            .plan_sparse(&dl, 1)
            .unwrap();
        let mut x = vec![0.0; deep_n];
        let t = time_median(samples, || {
            x.copy_from_slice(&db);
            plan.execute_sparse_vec_in_place(&dl, &mut x).unwrap();
        });
        records.push(Record {
            kernel: "sparse_deep_seq",
            n: deep_n,
            threads: Some(1),
            median_ms: t * 1e3,
            gflops: deep_flops / t / 1e9,
            hw_threads: None,
        });
    }
    for (pi, policy) in [SchedulePolicy::Level, SchedulePolicy::Merged]
        .into_iter()
        .enumerate()
    {
        let plan = SolveRequest::lower()
            .threads(4)
            .policy(policy)
            .plan_sparse(&dl, 1)
            .unwrap();
        let catrsm::PlanBackend::Sparse {
            predicted_barriers, ..
        } = plan.backend
        else {
            panic!("expected a sparse plan");
        };
        deep_policy_barriers[pi] = predicted_barriers;
        let mut x = vec![0.0; deep_n];
        let t = time_median(samples, || {
            x.copy_from_slice(&db);
            plan.execute_sparse_vec_in_place(&dl, &mut x).unwrap();
        });
        deep_policy_t[pi] = t;
        records.push(Record {
            kernel: if pi == 0 {
                "sparse_deep_level"
            } else {
                "sparse_deep_merged"
            },
            n: deep_n,
            threads: Some(4),
            median_ms: t * 1e3,
            gflops: deep_flops / t / 1e9,
            hw_threads: None,
        });
    }
    let deep_levels = dl.schedule().num_levels();
    let deep_merged_vs_level = deep_policy_t[0] / deep_policy_t[1];

    // --- One-shot vs amortized: analysis inside the timed region. ---------
    // Each iteration clones a never-analyzed deep-DAG master (the clone
    // copies the O(nnz) arrays but empty schedule caches), so the barriered
    // policies pay their level/merge analysis plus their barriers per
    // solve, while the sync-free column sweep — the `reuse(1)` fast path —
    // pays only its CSC storage conversion.  Measured through the sparse
    // API directly: planning through the staged API would analyze the
    // master once, outside the timed region.  The amortized reference is
    // the pre-analyzed `sparse_deep_merged` steady state measured above.
    let ol = sparse::gen::deep_narrow_lower(deep_n, 4, 4, 3);
    let mut oneshot_ms = [0.0f64; 3];
    for (oi, (name, sopts)) in [
        (
            "sparse_oneshot_level",
            sparse::SolveOpts::new()
                .threads(4)
                .policy(SchedulePolicy::Level),
        ),
        (
            "sparse_oneshot_merged",
            sparse::SolveOpts::new()
                .threads(4)
                .policy(SchedulePolicy::Merged),
        ),
        (
            "sparse_oneshot_syncfree",
            sparse::SolveOpts::new().threads(4).reuse(1),
        ),
    ]
    .into_iter()
    .enumerate()
    {
        let mut x = vec![0.0; deep_n];
        let t = time_median(samples, || {
            let fresh = ol.clone();
            x.copy_from_slice(&db);
            fresh.solve_with(&sopts, &mut x).unwrap();
        });
        oneshot_ms[oi] = t * 1e3;
        records.push(Record {
            kernel: name,
            n: deep_n,
            threads: Some(4),
            median_ms: t * 1e3,
            gflops: deep_flops / t / 1e9,
            hw_threads: Some(hw_threads),
        });
    }
    let oneshot_syncfree_vs_level = oneshot_ms[0] / oneshot_ms[2];
    let amortized_merged_ms = deep_policy_t[1] * 1e3;

    // --- Tracing overhead (schema v6). ------------------------------------
    // Paired interleaved A/B on the staged sparse solve and the 256³
    // multithreaded GEMM: arm A runs with the `obs` recorder disabled (the
    // shipped default — one relaxed atomic load per instrumented region),
    // arm B with it enabled (live span/counter recording).  Interleaving
    // the arms sample-by-sample cancels thermal and scheduler drift, and
    // min-of-samples estimates the noise floor rather than the tail.  The
    // disabled arm is additionally compared against the plain
    // `sparse_solve` measurement taken earlier in this run — instrumented
    // code with tracing off must cost the same as never asking.
    let trace_samples = if opts.fast { 5 } else { 9 };
    let (trace_sparse_off, trace_sparse_on) = {
        let plan = SolveRequest::lower()
            .threads(4)
            .plan_sparse(&sl, 1)
            .unwrap();
        let mut x = vec![0.0; sparse_n];
        let mut run = |enabled: bool| {
            obs::set_enabled(enabled);
            obs::clear();
            let t = Instant::now();
            x.copy_from_slice(&sb);
            plan.execute_sparse_vec_in_place(&sl, &mut x).unwrap();
            t.elapsed().as_secs_f64()
        };
        run(false);
        run(true); // warm both arms
        let (mut t_off, mut t_on) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..trace_samples {
            t_off = t_off.min(run(false));
            t_on = t_on.min(run(true));
        }
        obs::set_enabled(false);
        obs::clear();
        (t_off, t_on)
    };
    let (trace_gemm_off, trace_gemm_on) = {
        let gn = 256usize;
        let a = gen::uniform(gn, gn, 5);
        let b = gen::uniform(gn, gn, 6);
        let mut c = Matrix::zeros(gn, gn);
        let mut run = |enabled: bool| {
            obs::set_enabled(enabled);
            obs::clear();
            let t = Instant::now();
            gemm_with_threads(1.0, &a, &b, 0.0, &mut c, 4).unwrap();
            t.elapsed().as_secs_f64()
        };
        run(false);
        run(true);
        let (mut t_off, mut t_on) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..trace_samples {
            t_off = t_off.min(run(false));
            t_on = t_on.min(run(true));
        }
        obs::set_enabled(false);
        obs::clear();
        (t_off, t_on)
    };
    let trace_sparse_enabled_ratio = trace_sparse_on / trace_sparse_off;
    let trace_gemm_enabled_ratio = trace_gemm_on / trace_gemm_off;
    // Min-of-interleaved disabled arm vs the median `sparse_solve` row at
    // 4 threads from earlier in this run (also tracing-disabled): drift of
    // this ratio above 1 bounds what the disabled recorder could possibly
    // cost on the instrumented hot path.
    let trace_disabled_vs_plain = trace_sparse_off / sparse_t4;

    // --- Solve-service throughput (schema v7). ----------------------------
    // Open-loop load against a fresh SolveService per scenario: a hot
    // workload (90% of requests reuse a closed set of 8 fingerprints) and
    // a colder one (50%).  The arrival rate is set high enough that the
    // service, not the pacing, bounds throughput on slow machines, so the
    // rps figure is a real capacity measurement there and a rate-limited
    // one on fast machines — either way comparable against the same
    // schema.  The machine-independent invariants are asserted on every
    // machine (CI's container has one core); only the absolute floor is
    // gated on `hw_threads >= 4`.
    let service_requests = if opts.fast { 150 } else { 600 };
    let service_scenarios = [("service_hot90", 0.9f64), ("service_mixed50", 0.5f64)];
    let mut service_rows: Vec<String> = Vec::new();
    let mut service_headline_rps = 0.0f64;
    for (scenario, hit_ratio) in service_scenarios {
        let cfg = harness::service_load::LoadConfig {
            requests: service_requests,
            rate: 50_000.0,
            hit_ratio,
            seed: 0xBE7C,
            ..Default::default()
        };
        let report = harness::service_load::run_load(&cfg);
        report
            .check(&cfg)
            .unwrap_or_else(|why| panic!("{scenario}: service invariant violated: {why}"));
        if hit_ratio == 0.9 {
            service_headline_rps = report.rps;
        }
        let s = &report.stats;
        service_rows.push(format!(
            "    {{ \"scenario\": \"{scenario}\", \"requests\": {}, \"n\": {}, \
             \"hit_ratio_target\": {hit_ratio:.2}, \"hit_ratio\": {:.3}, \
             \"rps\": {:.0}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
             \"plan_builds\": {}, \"batches\": {}, \"fused_requests\": {}, \
             \"max_batch_width\": {}, \"hw_threads\": {hw_threads} }}",
            report.requests,
            cfg.n,
            s.hit_ratio(),
            report.rps,
            report.p50_us,
            report.p99_us,
            s.plan_builds,
            s.batches,
            s.fused_requests,
            s.max_batch_width
        ));
    }

    // --- Distributed solve under the rank gate (schema v8). ----------------
    // Wall-clock of a full 2×2-grid solve per algorithm, with the
    // simulator's compute gate admitting 1 rank and then 4 ranks at once.
    // Virtual time and results are bitwise identical either way (the
    // determinism tests own that claim); the rows here price the real-core
    // execution the gate unlocks.
    let dist_n = if opts.fast { 256 } else { 512 };
    let dist_k = 64usize;
    let dist_algos: [(&str, Algorithm); 3] = [
        ("recursive", Algorithm::Recursive { base_size: 64 }),
        (
            "itinv",
            Algorithm::IterativeInversion(ItInvConfig {
                p1: 2,
                p2: 1,
                n0: 128,
                inv_base: 32,
            }),
        ),
        ("wavefront", Algorithm::Wavefront),
    ];
    let mut dist_rows: Vec<String> = Vec::new();
    let mut dist_recursive_speedup = 0.0f64;
    for (name, alg) in dist_algos {
        let solve_wall = |workers: usize| {
            let machine = Machine::new(4, MachineParams::unit()).with_rank_workers(workers);
            machine
                .run(move |comm| {
                    let grid = Grid2D::new(comm, 2, 2).unwrap();
                    let l_g = gen::well_conditioned_lower(dist_n, 21);
                    let b_g = gen::rhs(dist_n, dist_k, 22);
                    let l = DistMatrix::from_global(&grid, &l_g);
                    let b = DistMatrix::from_global(&grid, &b_g);
                    SolveRequest::lower()
                        .algorithm(alg)
                        .solve_distributed(&l, &b)
                        .unwrap();
                })
                .unwrap();
        };
        let t1 = time_median(samples, || solve_wall(1));
        let t4 = time_median(samples, || solve_wall(4));
        let dist_speedup = t1 / t4;
        if name == "recursive" {
            dist_recursive_speedup = dist_speedup;
        }
        dist_rows.push(format!(
            "    {{ \"algorithm\": \"{name}\", \"n\": {dist_n}, \"k\": {dist_k}, \
             \"grid\": \"2x2\", \"t1_ms\": {:.4}, \"t4_ms\": {:.4}, \
             \"speedup\": {dist_speedup:.3}, \"hw_threads\": {hw_threads} }}",
            t1 * 1e3,
            t4 * 1e3
        ));
    }

    {
        let k = 16usize;
        let bm = Matrix::from_fn(sparse_n, k, |i, j| ((i * 5 + j * 11) % 13) as f64 - 6.0);
        let plan = SolveRequest::lower().plan_sparse(&sl, k).unwrap();
        let mut x = bm.clone();
        let t = time_median(samples, || {
            x.as_mut_slice().copy_from_slice(bm.as_slice());
            plan.execute_sparse_in_place(&sl, &mut x).unwrap();
        });
        records.push(Record {
            kernel: "sparse_solve_multi16",
            n: sparse_n,
            threads: None,
            median_ms: t * 1e3,
            gflops: sl.solve_flops(k).get() as f64 / t / 1e9,
            hw_threads: None,
        });
    }

    // --- Blocked triangular kernels (flops per the crate's formulas). -----
    let tri_sizes: &[usize] = if opts.fast { &[256] } else { &[256, 512] };
    for &n in tri_sizes {
        let l = gen::well_conditioned_lower(n, 3);
        let b = gen::rhs(n, 64, 4);

        let t = time_median(samples, || {
            trsm(Triangle::Lower, Diag::NonUnit, &l, &b).unwrap();
        });
        records.push(Record {
            kernel: "trsm_blocked",
            n,
            threads: None,
            median_ms: t * 1e3,
            gflops: (n * n * 64) as f64 / t / 1e9,
            hw_threads: None,
        });

        let t = time_median(samples, || {
            trmm(Triangle::Lower, &l, &b).unwrap();
        });
        records.push(Record {
            kernel: "trmm_blocked",
            n,
            threads: None,
            median_ms: t * 1e3,
            gflops: (n * n * 64) as f64 / t / 1e9,
            hw_threads: None,
        });

        let t = time_median(samples, || {
            tri_invert(Triangle::Lower, &l).unwrap();
        });
        records.push(Record {
            kernel: "tri_invert_blocked",
            n,
            threads: None,
            median_ms: t * 1e3,
            gflops: (n as f64).powi(3) / 3.0 / t / 1e9,
            hw_threads: None,
        });
    }

    // --- Speedup headline: single-thread packed vs naive at the largest
    // size measured (512³ in full mode, 256³ in fast mode, where it is
    // reported but not asserted).  Reuses the medians from the loop above so
    // the headline is always the same measurement as the records.
    let speedup = naive_headline / packed_headline;

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"catrsm-bench-kernels/v8\",");
    let _ = writeln!(json, "  \"hw_threads\": {hw_threads},");
    let _ = writeln!(
        json,
        "  \"gemm_speedup\": {{ \"n\": {headline_n}, \"value\": {speedup:.3} }},"
    );
    let _ = writeln!(
        json,
        "  \"gemm_par_speedup\": {{ \"n\": {par_n}, \"threads\": 4, \"value\": {par_speedup:.3} }},"
    );
    let _ = writeln!(
        json,
        "  \"sparse_par_speedup\": {{ \"n\": {sparse_n}, \"threads\": 4, \"value\": {sparse_speedup:.3} }},"
    );
    let _ = writeln!(
        json,
        "  \"sparse_par_speedup_merged\": {{ \"n\": {sparse_n}, \"threads\": 4, \
         \"value\": {sparse_merged_speedup:.3} }},"
    );
    // Per-policy synchronization structure of the deep DAG: the barrier
    // counts are analysis facts (machine-independent), the ratio is the
    // measured level-vs-merged throughput at 4 workers.
    let _ = writeln!(
        json,
        "  \"sparse_sched\": {{ \"n\": {deep_n}, \"levels\": {deep_levels}, \
         \"barriers_level\": {}, \"barriers_merged\": {}, \
         \"deep_merged_vs_level\": {deep_merged_vs_level:.3} }},",
        deep_policy_barriers[0], deep_policy_barriers[1]
    );
    // One-shot headline: analysis inside the timed region per policy, vs
    // the pre-analyzed merged steady state.  Millisecond figures are
    // machine-dependent context; the ratio is the asserted acceptance
    // number (multicore machines only).
    let _ = writeln!(
        json,
        "  \"sparse_oneshot\": {{ \"n\": {deep_n}, \"hw_threads\": {hw_threads}, \
         \"level_ms\": {:.4}, \"merged_ms\": {:.4}, \"syncfree_ms\": {:.4}, \
         \"amortized_merged_ms\": {amortized_merged_ms:.4}, \
         \"syncfree_vs_level\": {oneshot_syncfree_vs_level:.3} }},",
        oneshot_ms[0], oneshot_ms[1], oneshot_ms[2]
    );
    // Tracing overhead (schema v6): min-of-interleaved-samples per arm.
    // `disabled_vs_plain` is the acceptance number — instrumented code
    // with the recorder off must cost the same as the plain measurement;
    // the `*_enabled_ratio` figures price live recording for context.
    let _ = writeln!(
        json,
        "  \"trace_overhead\": {{ \"sparse_n\": {sparse_n}, \"gemm_n\": 256, \"threads\": 4, \
         \"sparse_disabled_ms\": {:.4}, \"sparse_enabled_ms\": {:.4}, \
         \"sparse_enabled_ratio\": {trace_sparse_enabled_ratio:.3}, \
         \"gemm_disabled_ms\": {:.4}, \"gemm_enabled_ms\": {:.4}, \
         \"gemm_enabled_ratio\": {trace_gemm_enabled_ratio:.3}, \
         \"disabled_vs_plain\": {trace_disabled_vs_plain:.3} }},",
        trace_sparse_off * 1e3,
        trace_sparse_on * 1e3,
        trace_gemm_off * 1e3,
        trace_gemm_on * 1e3
    );
    // Solve-service rows (schema v7): one per load scenario, each stamped
    // with the measuring machine's hardware parallelism.
    json.push_str("  \"solve_service\": [\n");
    for (i, row) in service_rows.iter().enumerate() {
        let comma = if i + 1 < service_rows.len() { "," } else { "" };
        let _ = writeln!(json, "{row}{comma}");
    }
    json.push_str("  ],\n");
    // Distributed rank-gate rows (schema v8): one per algorithm, wall
    // clock at 1 and 4 admitted ranks on the same 4-rank machine.
    json.push_str("  \"dist_parallel\": [\n");
    for (i, row) in dist_rows.iter().enumerate() {
        let comma = if i + 1 < dist_rows.len() { "," } else { "" };
        let _ = writeln!(json, "{row}{comma}");
    }
    json.push_str("  ],\n");
    json.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let threads = r
            .threads
            .map(|t| format!("\"threads\": {t}, "))
            .unwrap_or_default();
        let hw = r
            .hw_threads
            .map(|t| format!("\"hw_threads\": {t}, "))
            .unwrap_or_default();
        let _ = writeln!(
            json,
            "    {{ \"kernel\": \"{}\", \"n\": {}, {}{}\"median_ms\": {:.4}, \"gflops\": {:.3} }}{}",
            r.kernel, r.n, threads, hw, r.median_ms, r.gflops, comma
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&opts.out, &json).unwrap_or_else(|e| panic!("write {}: {e}", opts.out));
    print!("{json}");
    eprintln!(
        "wrote {} (packed vs naive: {speedup:.2}x; gemm_par {par_n}^3, 4 threads vs 1: \
         {par_speedup:.2}x; sparse_solve n={sparse_n}, 4 threads vs 1: {sparse_speedup:.2}x \
         auto / {sparse_merged_speedup:.2}x merged; deep DAG n={deep_n}: {} -> {} barriers, \
         merged vs level at 4 threads: {deep_merged_vs_level:.2}x; one-shot syncfree vs \
         level: {oneshot_syncfree_vs_level:.2}x; tracing disabled/plain \
         {trace_disabled_vs_plain:.3}x, enabled {trace_sparse_enabled_ratio:.2}x sparse \
         {trace_gemm_enabled_ratio:.2}x gemm; dist 2x2 n={dist_n} rank gate 4 vs 1: \
         {dist_recursive_speedup:.2}x recursive; on {hw_threads} hw thread(s))",
        opts.out, deep_policy_barriers[0], deep_policy_barriers[1]
    );

    if let Some(baseline_path) = &opts.check {
        check_against_baseline(baseline_path, &records);
    }

    // The barrier compression is an analysis fact, not a timing: assert it
    // on every machine, fast mode included.
    assert!(
        deep_policy_barriers[0] >= 10 * deep_policy_barriers[1].max(1),
        "acceptance: the merged schedule must cross >=10x fewer barriers than the level \
         schedule on the deep DAG, got {} vs {}",
        deep_policy_barriers[1],
        deep_policy_barriers[0]
    );

    if !opts.fast {
        assert!(
            speedup >= 2.0,
            "acceptance: packed GEMM must beat the naive i-k-j loop by >= 2x at \
             {headline_n}^3, got {speedup:.2}x"
        );
        // The multicore acceptance bound only means something when the
        // hardware can actually run 4 workers; on smaller machines the
        // numbers are recorded but not asserted.
        if hw_threads >= 4 {
            assert!(
                par_speedup >= 2.5,
                "acceptance: multithreaded GEMM must beat single-thread packed by >= 2.5x \
                 at {par_n}^3 with 4 threads, got {par_speedup:.2}x"
            );
            // Level-scheduled sparse solves scale with level width, not
            // n³/p, so the bound is necessarily looser than the GEMM one.
            assert!(
                sparse_speedup >= 1.2,
                "acceptance: level-parallel sparse solve must beat the sequential executor \
                 by >= 1.2x at n={sparse_n} with 4 threads, got {sparse_speedup:.2}x"
            );
            // One-shot: the sync-free sweep skips the analysis *and* the
            // 10k barrier waits the level policy pays on this shape.
            assert!(
                oneshot_syncfree_vs_level >= 1.5,
                "acceptance: the analysis-free sync-free sweep must beat a one-shot \
                 level-scheduled solve by >= 1.5x on the deep DAG, got \
                 {oneshot_syncfree_vs_level:.2}x"
            );
            // Absolute solve-service throughput floor, multicore machines
            // only: the hot workload (n=256, fill=4, 90% cache hits) must
            // clear 500 req/s — a deliberately loose bound that catches
            // the cache or batching path falling off a cliff, not noise.
            assert!(
                service_headline_rps >= 500.0,
                "acceptance: solve service must sustain >= 500 req/s on the hot \
                 workload with {hw_threads} hw threads, got {service_headline_rps:.0}"
            );
            // The rank gate must buy real wall-clock on the distributed
            // path: 4 admitted ranks vs 1 on the compute-heavy recursive
            // solve.  A loose floor — the 2×2 grid caps the ideal at 4x
            // and communication serializes part of the critical path.
            assert!(
                dist_recursive_speedup >= 1.3,
                "acceptance: 4 rank workers must beat 1 by >= 1.3x on the recursive \
                 2x2 solve at n={dist_n}, got {dist_recursive_speedup:.2}x"
            );
        } else {
            eprintln!(
                "note: only {hw_threads} hw thread(s) available — recording gemm_par \
                 ({par_speedup:.2}x) and sparse_solve ({sparse_speedup:.2}x) without \
                 asserting the multicore bounds"
            );
        }
        // Disabled-mode tracing must be free: the interleaved disabled arm
        // may not sit more than 2% above the plain (also untraced)
        // sparse_solve measurement.  Min-of-samples vs median-of-samples
        // biases the ratio *down*, so 1.02 is headroom for drift, not for
        // instrumentation cost.  Fast mode records the ratio but skips the
        // assert, like the other wall-clock acceptance bounds.
        assert!(
            trace_disabled_vs_plain <= 1.02,
            "acceptance: disabled-mode tracing overhead must be <= 2% on the sparse solve, \
             got {trace_disabled_vs_plain:.3}x"
        );
        // Even on one core the merged schedule must clearly beat the level
        // schedule on the deep DAG: the level executor pays thousands of
        // real barrier waits either way.
        assert!(
            deep_merged_vs_level >= 2.0,
            "acceptance: merged scheduling must beat level scheduling by >= 2x on the \
             deep DAG at 4 workers, got {deep_merged_vs_level:.2}x"
        );
    }
}

// ---------------------------------------------------------------------------
// `--check`: compare against a committed baseline.
// ---------------------------------------------------------------------------

/// Pulls a `"name": value` field out of one record line of our own JSON
/// format (one record object per line, see the emitter above).
fn json_field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = line[start..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

/// Parses the `records` array of a baseline file written by this binary.
fn parse_baseline(path: &str) -> Vec<(String, usize, usize, f64)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    text.lines()
        .filter(|l| l.contains("\"kernel\":"))
        .map(|line| {
            let kernel = json_field(line, "kernel").expect("record without kernel");
            let n: usize = json_field(line, "n")
                .and_then(|v| v.parse().ok())
                .expect("record without n");
            let threads: usize = json_field(line, "threads")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1);
            let median_ms: f64 = json_field(line, "median_ms")
                .and_then(|v| v.parse().ok())
                .expect("record without median_ms");
            (kernel.to_string(), n, threads, median_ms)
        })
        .collect()
}

/// Fails (exit 1) if any record shared with the baseline regressed by more
/// than [`CHECK_TOLERANCE`]×.
fn check_against_baseline(baseline_path: &str, fresh: &[Record]) {
    let baseline = parse_baseline(baseline_path);
    assert!(
        !baseline.is_empty(),
        "perf gate: no records found in baseline {baseline_path}"
    );
    let mut compared = 0;
    let mut regressions = Vec::new();
    for r in fresh {
        let key = r.key();
        if let Some((_, _, _, base_ms)) = baseline
            .iter()
            .find(|(k, n, t, _)| (k.clone(), *n, *t) == key)
        {
            compared += 1;
            let ratio = r.median_ms / base_ms;
            eprintln!(
                "perf gate: {} n={} threads={} — {:.3} ms vs baseline {:.3} ms ({ratio:.2}x)",
                key.0, key.1, key.2, r.median_ms, base_ms
            );
            if ratio > CHECK_TOLERANCE {
                regressions.push(format!(
                    "{} n={} threads={}: {:.3} ms vs baseline {:.3} ms ({ratio:.2}x > {CHECK_TOLERANCE}x)",
                    key.0, key.1, key.2, r.median_ms, base_ms
                ));
            }
        }
    }
    assert!(
        compared > 0,
        "perf gate: no overlapping records between this run and {baseline_path}"
    );
    if !regressions.is_empty() {
        eprintln!("perf gate FAILED against {baseline_path}:");
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "perf gate passed: {compared} record(s) within {CHECK_TOLERANCE}x of {baseline_path}"
    );
}
