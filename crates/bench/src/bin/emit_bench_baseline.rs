//! Emits `BENCH_kernels.json`: a machine-readable baseline of the local
//! kernel throughput, so future PRs have a perf trajectory to compare
//! against.
//!
//! Run with `cargo run --release -p bench --bin emit_bench_baseline` from
//! the repository root.  The JSON is written by hand (no serde in the
//! offline build) with one record per measurement:
//!
//! ```json
//! { "kernel": "gemm_packed", "n": 512, "median_ms": 8.9, "gflops": 30.1 }
//! ```
//!
//! plus a top-level `gemm_speedup_512` field — the packed-vs-naive ratio the
//! acceptance criterion tracks.

use dense::{gemm, gen, reference, tri_invert, trmm, trsm, Diag, Matrix, Triangle};
use std::fmt::Write as _;
use std::time::Instant;

/// Median-of-`samples` wall time of `f`, in seconds.
fn time_median<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    // One warm-up run (fills pack buffers, warms caches).
    f();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

struct Record {
    kernel: &'static str,
    n: usize,
    median_ms: f64,
    gflops: f64,
}

fn main() {
    let mut records: Vec<Record> = Vec::new();
    let samples = 5;

    // --- GEMM: naive baseline vs packed path, including the 512³ check. ---
    let mut naive_512 = 0.0;
    let mut packed_512 = 0.0;
    for n in [128usize, 256, 512] {
        let a = gen::uniform(n, n, 1);
        let b = gen::uniform(n, n, 2);
        let mut c = Matrix::zeros(n, n);
        let flops = 2.0 * (n as f64).powi(3);

        let t = time_median(samples, || {
            reference::gemm_naive_ikj(1.0, &a, &b, 0.0, &mut c);
        });
        if n == 512 {
            naive_512 = t;
        }
        records.push(Record {
            kernel: "gemm_naive_ikj",
            n,
            median_ms: t * 1e3,
            gflops: flops / t / 1e9,
        });

        let t = time_median(samples, || {
            gemm(1.0, &a, &b, 0.0, &mut c).unwrap();
        });
        if n == 512 {
            packed_512 = t;
        }
        records.push(Record {
            kernel: "gemm_packed",
            n,
            median_ms: t * 1e3,
            gflops: flops / t / 1e9,
        });
    }

    // --- Blocked triangular kernels (flops per the crate's formulas). -----
    for n in [256usize, 512] {
        let l = gen::well_conditioned_lower(n, 3);
        let b = gen::rhs(n, 64, 4);

        let t = time_median(samples, || {
            trsm(Triangle::Lower, Diag::NonUnit, &l, &b).unwrap();
        });
        records.push(Record {
            kernel: "trsm_blocked",
            n,
            median_ms: t * 1e3,
            gflops: (n * n * 64) as f64 / t / 1e9,
        });

        let t = time_median(samples, || {
            trmm(Triangle::Lower, &l, &b).unwrap();
        });
        records.push(Record {
            kernel: "trmm_blocked",
            n,
            median_ms: t * 1e3,
            gflops: (n * n * 64) as f64 / t / 1e9,
        });

        let t = time_median(samples, || {
            tri_invert(Triangle::Lower, &l).unwrap();
        });
        records.push(Record {
            kernel: "tri_invert_blocked",
            n,
            median_ms: t * 1e3,
            gflops: (n as f64).powi(3) / 3.0 / t / 1e9,
        });
    }

    let speedup = naive_512 / packed_512;

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"catrsm-bench-kernels/v1\",");
    let _ = writeln!(json, "  \"gemm_speedup_512\": {speedup:.3},");
    json.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"kernel\": \"{}\", \"n\": {}, \"median_ms\": {:.4}, \"gflops\": {:.3} }}{}",
            r.kernel, r.n, r.median_ms, r.gflops, comma
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    print!("{json}");
    eprintln!("wrote BENCH_kernels.json (gemm 512^3 packed vs naive: {speedup:.2}x)");
    assert!(
        speedup >= 2.0,
        "acceptance: packed GEMM must beat the naive i-k-j loop by >= 2x at 512^3, got {speedup:.2}x"
    );
}
