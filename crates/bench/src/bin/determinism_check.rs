//! Prints a checksum of a fixed workload of dense kernels and sparse
//! level-scheduled solves so CI can verify that results are **bitwise
//! identical** under different `DENSE_THREADS` settings (the multithreaded
//! GEMM and the sparse level-parallel executors must be throughput knobs,
//! not semantics knobs).
//!
//! CI runs this across a matrix of `DENSE_THREADS` (1 vs 4) **and**
//! `SPARSE_POLICY` (`level` vs `merged` vs unset = auto) settings and diffs
//! the output; any divergence in a single mantissa bit changes the
//! checksum, so the barrier-per-level and DAG-partitioned sparse executors
//! must agree exactly.  The worker count and policy actually used are
//! printed to stderr only, so stdout is comparable across runs.
//!
//! The sync-free executor (`SPARSE_POLICY=syncfree`) is bitwise
//! reproducible only per *fixed* worker count, so CI diffs two identical
//! sync-free runs per `DENSE_THREADS` setting against each other (not
//! against the level baseline) and additionally runs the in-process
//! `--syncfree-tolerance` mode, which solves the sparse workloads under
//! both the level and sync-free policies and asserts they agree to 1e-12
//! — plus bitwise self-consistency of two same-worker-count sync-free
//! solves.
//!
//! The in-process `--trace-transparency` mode runs a representative
//! workload with the `obs` tracing layer disabled and again with it
//! enabled, and asserts every result is bitwise identical: observability
//! must never perturb the numerics.

use catrsm::{SchedulePolicy, SolveRequest};
use dense::{gemm, gen, tri_invert, trsm_in_place, Diag, Matrix, Side, Triangle};

/// FNV-1a over the little-endian bit patterns of every element.
fn checksum_slice(label: &str, data: &[f64]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for v in data {
        for byte in v.to_bits().to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
    }
    format!("{label}: {hash:016x}")
}

fn checksum(label: &str, m: &Matrix) -> String {
    checksum_slice(label, m.as_slice())
}

/// Sparse scheduling-policy pin from the `SPARSE_POLICY` environment
/// variable: `level` / `merged` / `syncfree` pin that executor, anything
/// else (or unset) leaves the auto heuristic in charge.
fn sparse_policy() -> Option<SchedulePolicy> {
    match std::env::var("SPARSE_POLICY").ok().as_deref() {
        Some("level") => Some(SchedulePolicy::Level),
        Some("merged") => Some(SchedulePolicy::Merged),
        Some("syncfree") => Some(SchedulePolicy::SyncFree),
        _ => None,
    }
}

/// Applies the `SPARSE_POLICY` pin to a request.
fn with_policy(req: SolveRequest) -> SolveRequest {
    match sparse_policy() {
        Some(p) => req.policy(p),
        None => req,
    }
}

/// `--syncfree-tolerance`: solve the sparse workloads under the level and
/// sync-free policies in-process and assert they agree to 1e-12 (the
/// FP-reduction-order caveat: sync-free is not bitwise against the
/// barriered executors), plus bitwise self-consistency of two sync-free
/// solves at the same worker count.
fn syncfree_tolerance_check() {
    const TOL: f64 = 1e-12;
    let max_abs_diff = |a: &[f64], b: &[f64]| -> f64 {
        assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0_f64, f64::max)
    };
    let check = |label: &str, level: &[f64], syncfree: &[f64], again: &[f64]| {
        let diff = max_abs_diff(level, syncfree);
        assert!(
            diff < TOL,
            "{label}: sync-free diverged from level by {diff:e} (tolerance {TOL:e})"
        );
        assert!(
            syncfree == again,
            "{label}: two same-worker-count sync-free solves must be bitwise equal"
        );
        println!("{label}: syncfree within {TOL:e} of level (max diff {diff:e})");
    };

    let sl = sparse::gen::random_lower(40_000, 12, 31);
    let sb = sparse::gen::rhs_vec(40_000, 32);
    let dl = sparse::gen::deep_narrow_lower(40_000, 4, 4, 35);
    let db = sparse::gen::rhs_vec(40_000, 36);
    let solve = |m: &sparse::SparseTri, b: &[f64], policy: SchedulePolicy, transposed: bool| {
        let mut req = SolveRequest::lower().threads(4).policy(policy);
        if transposed {
            req = req.transposed();
        }
        req.solve_sparse_vec(m, b).unwrap().x
    };
    for (label, m, b, transposed) in [
        ("sparse_solve_40000x12", &sl, &sb, false),
        ("sparse_solve_t_40000x12", &sl, &sb, true),
        ("sparse_deep_dag_40000w4", &dl, &db, false),
    ] {
        check(
            label,
            &solve(m, b, SchedulePolicy::Level, transposed),
            &solve(m, b, SchedulePolicy::SyncFree, transposed),
            &solve(m, b, SchedulePolicy::SyncFree, transposed),
        );
    }

    let sbm = Matrix::from_fn(8_000, 8, |i, j| ((i * 7 + j * 3) % 17) as f64 - 8.0);
    let su = sparse::gen::random_upper(8_000, 10, 33);
    let multi = |policy: SchedulePolicy| {
        SolveRequest::upper()
            .threads(4)
            .policy(policy)
            .solve_sparse(&su, &sbm)
            .unwrap()
            .x
    };
    check(
        "sparse_solve_multi_upper_8000x8",
        multi(SchedulePolicy::Level).as_slice(),
        multi(SchedulePolicy::SyncFree).as_slice(),
        multi(SchedulePolicy::SyncFree).as_slice(),
    );
    eprintln!("syncfree tolerance check passed");
}

/// `--trace-transparency`: run a representative workload (dense TRSM,
/// sparse solves under all three scheduling policies, a distributed solve
/// on the simulated machine) once with tracing disabled and once with
/// tracing enabled, and assert every result is **bitwise identical** —
/// the observability layer must be a pure observer that never touches
/// floating-point data or scheduling decisions.
fn trace_transparency_check() {
    use catrsm::SolvePlan;
    use pgrid::{DistMatrix, Grid2D};
    use simnet::{Machine, MachineParams};

    fn workload() -> Vec<String> {
        let mut out = Vec::new();

        let l = gen::well_conditioned_lower(384, 21);
        let rhs = gen::rhs(384, 96, 22);
        let x = SolveRequest::lower().solve_dense(&l, &rhs).unwrap().x;
        out.push(checksum("dense_trsm_384x96", &x));

        let sl = sparse::gen::random_lower(20_000, 8, 31);
        let sb = sparse::gen::rhs_vec(20_000, 32);
        for policy in [
            SchedulePolicy::Level,
            SchedulePolicy::Merged,
            SchedulePolicy::SyncFree,
        ] {
            let sx = SolveRequest::lower()
                .threads(4)
                .policy(policy)
                .solve_sparse_vec(&sl, &sb)
                .unwrap()
                .x;
            out.push(checksum_slice(
                &format!("sparse_20000_{}", policy.name()),
                &sx,
            ));
        }

        let (n, k) = (64usize, 16usize);
        let run = Machine::new(4, MachineParams::cluster())
            .run(move |comm| {
                let grid = Grid2D::new(comm, 2, 2).expect("grid");
                let l_global = gen::well_conditioned_lower(n, 41);
                let b_global = gen::rhs(n, k, 42);
                let l = DistMatrix::from_global(&grid, &l_global);
                let b = DistMatrix::from_global(&grid, &b_global);
                let plan: SolvePlan = SolveRequest::lower()
                    .plan_distributed(n, k, comm.size())
                    .expect("distributed plan");
                let sol = plan.execute_distributed(&l, &b).expect("distributed solve");
                sol.x.to_global()
            })
            .expect("machine run");
        let xg = run.results.into_iter().next().expect("rank 0");
        out.push(checksum("distributed_64x16", &xg));
        out
    }

    obs::set_enabled(false);
    obs::clear();
    let baseline = workload();

    obs::set_enabled(true);
    obs::clear();
    let traced = workload();
    let dump = obs::collect_all();
    obs::set_enabled(false);
    obs::clear();

    assert!(
        !dump.is_empty(),
        "the tracing-enabled run must record events"
    );
    assert_eq!(baseline.len(), traced.len());
    for (off, on) in baseline.iter().zip(&traced) {
        assert_eq!(
            off, on,
            "enabling tracing changed a result checksum (must be a pure observer)"
        );
        println!("{on}  [trace-transparent]");
    }
    eprintln!(
        "trace transparency check passed ({} events recorded while tracing)",
        dump.len()
    );
}

fn main() {
    if std::env::args().any(|a| a == "--syncfree-tolerance") {
        syncfree_tolerance_check();
        return;
    }
    if std::env::args().any(|a| a == "--trace-transparency") {
        trace_transparency_check();
        return;
    }
    eprintln!("dense worker count: {}", dense::dense_threads());
    eprintln!(
        "sparse policy: {}",
        sparse_policy().map(|p| p.name()).unwrap_or("auto")
    );

    // Big enough to cross the implicit parallelisation threshold
    // (PAR_MIN_MADDS = 128^3) with ragged panel edges on every dimension.
    let a = gen::uniform(261, 300, 11);
    let b = gen::uniform(300, 517, 12);
    let mut c = gen::uniform(261, 517, 13);
    gemm(1.25, &a, &b, -0.5, &mut c).unwrap();
    println!("{}", checksum("gemm_261x300x517", &c));

    let l = gen::well_conditioned_lower(384, 21);
    let rhs = gen::rhs(384, 96, 22);
    // Through the staged API (bitwise identical to the old dense::trsm
    // entry point it wraps).
    let x = SolveRequest::lower().solve_dense(&l, &rhs).unwrap().x;
    println!("{}", checksum("trsm_left_lower_384x96", &x));

    let xt = SolveRequest::lower()
        .transposed()
        .solve_dense(&l, &rhs)
        .unwrap()
        .x;
    println!("{}", checksum("trsm_left_lower_t_384x96", &xt));

    let mut xr = gen::rhs(96, 384, 23);
    trsm_in_place(
        Side::Right,
        Triangle::Upper,
        Diag::NonUnit,
        &l.transpose(),
        &mut xr,
    )
    .unwrap();
    println!("{}", checksum("trsm_right_upper_96x384", &xr));

    let (inv, _) = tri_invert(Triangle::Lower, &l).unwrap();
    println!("{}", checksum("tri_invert_384", &inv));

    // Sparse level-scheduled solves: big enough that `nnz·k` clears the
    // implicit PAR_MIN_WORK gate, so the DENSE_THREADS=4 CI leg runs the
    // barrier-synchronized parallel executor on the single-RHS solve and
    // the multi-RHS solve alike.
    let sl = sparse::gen::random_lower(40_000, 12, 31);
    let sb = sparse::gen::rhs_vec(40_000, 32);
    let sx = with_policy(SolveRequest::lower())
        .solve_sparse_vec(&sl, &sb)
        .unwrap()
        .x;
    println!("{}", checksum_slice("sparse_solve_40000x12", &sx));

    let sxt = with_policy(SolveRequest::lower().transposed())
        .solve_sparse_vec(&sl, &sb)
        .unwrap()
        .x;
    println!("{}", checksum_slice("sparse_solve_t_40000x12", &sxt));

    let sbm = Matrix::from_fn(8_000, 8, |i, j| ((i * 7 + j * 3) % 17) as f64 - 8.0);
    let su = sparse::gen::random_upper(8_000, 10, 33);
    let sxm = with_policy(SolveRequest::upper())
        .solve_sparse(&su, &sbm)
        .unwrap()
        .x;
    println!("{}", checksum("sparse_solve_multi_upper_8000x8", &sxm));

    // Deep narrow DAG: the shape where the level and merged executors
    // differ most (10000 barriers vs ~50) — their checksums must not
    // differ at all.
    let dl = sparse::gen::deep_narrow_lower(40_000, 4, 4, 35);
    let db = sparse::gen::rhs_vec(40_000, 36);
    let dx = with_policy(SolveRequest::lower().threads(4))
        .solve_sparse_vec(&dl, &db)
        .unwrap()
        .x;
    println!("{}", checksum_slice("sparse_deep_dag_40000w4", &dx));
}
