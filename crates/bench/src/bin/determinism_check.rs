//! Prints a checksum of a fixed dense-kernel workload so CI can verify that
//! results are **bitwise identical** under different `DENSE_THREADS`
//! settings (the multithreaded GEMM must be a throughput knob, not a
//! semantics knob).
//!
//! CI runs this twice — `DENSE_THREADS=1` and `DENSE_THREADS=4` — and diffs
//! the output; any divergence in a single mantissa bit changes the checksum.
//! The worker count actually used is printed to stderr only, so stdout is
//! comparable across runs.

use dense::{gemm, gen, tri_invert, trsm, trsm_in_place, Diag, Matrix, Side, Triangle};

/// FNV-1a over the little-endian bit patterns of every element.
fn checksum(label: &str, m: &Matrix) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for v in m.as_slice() {
        for byte in v.to_bits().to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
    }
    format!("{label}: {hash:016x}")
}

fn main() {
    eprintln!("dense worker count: {}", dense::dense_threads());

    // Big enough to cross the implicit parallelisation threshold
    // (PAR_MIN_MADDS = 128^3) with ragged panel edges on every dimension.
    let a = gen::uniform(261, 300, 11);
    let b = gen::uniform(300, 517, 12);
    let mut c = gen::uniform(261, 517, 13);
    gemm(1.25, &a, &b, -0.5, &mut c).unwrap();
    println!("{}", checksum("gemm_261x300x517", &c));

    let l = gen::well_conditioned_lower(384, 21);
    let rhs = gen::rhs(384, 96, 22);
    let x = trsm(Triangle::Lower, Diag::NonUnit, &l, &rhs).unwrap();
    println!("{}", checksum("trsm_left_lower_384x96", &x));

    let mut xr = gen::rhs(96, 384, 23);
    trsm_in_place(
        Side::Right,
        Triangle::Upper,
        Diag::NonUnit,
        &l.transpose(),
        &mut xr,
    )
    .unwrap();
    println!("{}", checksum("trsm_right_upper_96x384", &xr));

    let (inv, _) = tri_invert(Triangle::Lower, &l).unwrap();
    println!("{}", checksum("tri_invert_384", &inv));
}
