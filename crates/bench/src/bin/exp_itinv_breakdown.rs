//! Experiment E5 — per-phase cost breakdown of `It-Inv-TRSM`
//! (the tables of Section VII: inversion, solve and update costs).
//!
//! For each instance the critical-path counters of every phase are printed
//! next to the corresponding closed-form expressions `W_Inv`, `W_Solve`,
//! `W_Upd` (and their flop counterparts), showing that the inversion phase is
//! never of leading order and that the solve/update phases carry the
//! predicted `n/n0`-proportional costs.

use catrsm::it_inv_trsm::ItInvConfig;
use costmodel::itinv;
use harness::{banner, run_itinv_with_phases, write_csv, TrsmInstance};
use simnet::MachineParams;

fn main() {
    banner("E5: It-Inv-TRSM phase breakdown (paper Section VII)");
    let mut rows = Vec::new();
    let cases = [
        // (n, k, pr, pc, p1, p2, n0)
        (256usize, 64usize, 2usize, 2usize, 2usize, 1usize, 32usize),
        (256, 64, 4, 4, 2, 4, 64),
        (256, 64, 4, 4, 4, 1, 32),
        (512, 128, 4, 4, 4, 1, 64),
        (128, 512, 4, 4, 1, 16, 128),
    ];
    for (n, k, pr, pc, p1, p2, n0) in cases {
        let inst = TrsmInstance {
            n,
            k,
            pr,
            pc,
            seed: 11,
        };
        let cfg = ItInvConfig {
            p1,
            p2,
            n0,
            inv_base: 16,
        };
        let (measured, phases) = run_itinv_with_phases(&inst, cfg, MachineParams::unit());
        assert!(measured.error < 1e-7, "solution must stay correct");

        let inv_model = itinv::inversion_phase(n as f64, n0 as f64, p1 as f64, p2 as f64);
        let solve_model = itinv::solve_phase(n as f64, k as f64, n0 as f64, p1 as f64, p2 as f64);
        let upd_model = itinv::update_phase(n as f64, k as f64, n0 as f64, p1 as f64, p2 as f64);

        println!(
            "\nn={n} k={k} p={} grid={p1}x{p1}x{p2} n0={n0}   (total {})",
            pr * pc,
            measured.row()
        );
        println!(
            "  {:<10} {:<52} | model W {:>12.0}  model F {:>14.0}",
            "phase", "measured", 0.0, 0.0
        );
        println!("  {:<10} {:<52} |", "setup", phases.setup.row());
        println!(
            "  {:<10} {:<52} | model W {:>12.0}  model F {:>14.0}",
            "inversion",
            phases.inversion.row(),
            inv_model.bandwidth,
            2.0 * inv_model.flops
        );
        println!(
            "  {:<10} {:<52} | model W {:>12.0}  model F {:>14.0}",
            "solve",
            phases.solve.row(),
            solve_model.bandwidth,
            2.0 * solve_model.flops
        );
        println!(
            "  {:<10} {:<52} | model W {:>12.0}  model F {:>14.0}",
            "update",
            phases.update.row(),
            upd_model.bandwidth,
            2.0 * upd_model.flops
        );
        println!("  {:<10} {:<52} |", "finalize", phases.finalize.row());

        rows.push(format!(
            "{n},{k},{},{p1},{p2},{n0},inversion,{},{},{},{},{}",
            pr * pc,
            phases.inversion.latency,
            phases.inversion.bandwidth,
            phases.inversion.flops,
            inv_model.bandwidth,
            2.0 * inv_model.flops
        ));
        rows.push(format!(
            "{n},{k},{},{p1},{p2},{n0},solve,{},{},{},{},{}",
            pr * pc,
            phases.solve.latency,
            phases.solve.bandwidth,
            phases.solve.flops,
            solve_model.bandwidth,
            2.0 * solve_model.flops
        ));
        rows.push(format!(
            "{n},{k},{},{p1},{p2},{n0},update,{},{},{},{},{}",
            pr * pc,
            phases.update.latency,
            phases.update.bandwidth,
            phases.update.flops,
            upd_model.bandwidth,
            2.0 * upd_model.flops
        ));
    }
    let path = write_csv(
        "exp_itinv_breakdown",
        "n,k,p,p1,p2,n0,phase,S_measured,W_measured,F_measured,W_model,F_model",
        &rows,
    );
    println!("\nCSV written to {}", path.display());
    println!(
        "\nExpectation (paper): solve and update dominate bandwidth and flops\n\
         with the W_Solve / W_Upd shapes of Section VII; the inversion phase is\n\
         never of leading order; latency per phase is proportional to n/n0\n\
         (solve, update) or polylog (inversion)."
    );
}
