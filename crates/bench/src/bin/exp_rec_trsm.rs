//! Experiment E3 — cost of the recursive TRSM (Section IV).
//!
//! Measures the "standard" baseline in the three regimes and compares
//! against `T_RT1D/2D/3D`.  The interesting columns are the latency (which
//! grows polynomially in `p` in the 2D/3D regimes) and the bandwidth (which
//! carries an extra `log p` factor in the 2D regime — the motivation the
//! paper gives for the iterative reformulation).

use harness::{banner, run_trsm, write_csv, TrsmAlgo, TrsmInstance};
use simnet::MachineParams;

fn main() {
    banner("E3: recursive TRSM (the paper's baseline, Section IV)");
    println!(
        "{:<28} {:>4} {:>6} {:>6} | {:>8} {:>12} {:>13} | {:>9} {:>12}",
        "regime", "p", "n", "k", "S meas", "W meas", "F meas", "S model", "W model"
    );
    let mut rows = Vec::new();
    let cases = [
        // (label, n, k, pr, pc, base)
        (
            "1 large dim (n < 4k/p)",
            32usize,
            2048usize,
            2usize,
            2usize,
            16usize,
        ),
        ("1 large dim (n < 4k/p)", 32, 4096, 4, 4, 16),
        ("3 large dims", 256, 64, 2, 2, 32),
        ("3 large dims", 256, 64, 4, 4, 32),
        ("3 large dims", 512, 128, 4, 4, 64),
        ("2 large dims (n > 4k√p)", 512, 16, 2, 2, 64),
        ("2 large dims (n > 4k√p)", 512, 16, 4, 4, 64),
        ("2 large dims (n > 4k√p)", 1024, 16, 4, 4, 64),
    ];
    for (label, n, k, pr, pc, base) in cases {
        let inst = TrsmInstance {
            n,
            k,
            pr,
            pc,
            seed: 3,
        };
        let m = run_trsm(&inst, TrsmAlgo::Recursive { base }, MachineParams::unit());
        let model = costmodel::rec_trsm::rec_trsm_cost(n as f64, k as f64, (pr * pc) as f64);
        println!(
            "{:<28} {:>4} {:>6} {:>6} | {:>8} {:>12} {:>13} | {:>9.0} {:>12.0}",
            label,
            pr * pc,
            n,
            k,
            m.latency,
            m.bandwidth,
            m.flops,
            model.latency,
            model.bandwidth
        );
        assert!(m.error < 1e-7, "solution must stay correct");
        rows.push(format!(
            "{label},{},{n},{k},{},{},{},{},{}",
            pr * pc,
            m.latency,
            m.bandwidth,
            m.flops,
            model.latency,
            model.bandwidth
        ));
    }
    let path = write_csv(
        "exp_rec_trsm",
        "regime,p,n,k,S_measured,W_measured,F_measured,S_model,W_model",
        &rows,
    );
    println!("\nCSV written to {}", path.display());
    println!(
        "\nExpectation (paper): latency grows with p (and with n/k in the 3D rows),\n\
         unlike the iterative algorithm of E5/T1; bandwidth tracks the model's\n\
         n², nk·log p/√p and (n²k/p)^(2/3) expressions per regime."
    );
}
