//! Open-loop load generator for the [`serve::SolveService`].
//!
//! Requests arrive on a seeded Poisson process (exponential inter-arrival
//! times) *independently of completions* — the open-loop discipline — so
//! queueing delay shows up in the measured latency instead of being
//! hidden by a closed feedback loop.  The workload draws from a closed
//! set of "hot" matrix fingerprints with a configurable target hit ratio:
//! each request reuses a hot factor with probability `hit_ratio` and
//! otherwise presents a fresh, never-seen matrix (a guaranteed plan-cache
//! miss).  The report carries requests/sec and p50/p99 latency alongside
//! the service's own cache and fusion statistics, plus the
//! machine-independent invariants CI asserts on the 1-core container
//! (zero errors, bounded queue depth, plan builds ≤ distinct keys).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::{Operand, ServiceConfig, ServiceRequest, ServiceStats, SolveService};
use sparse::gen as sgen;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one load-generator run.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Total requests to issue (after warm-up).
    pub requests: usize,
    /// Mean arrival rate in requests per second.
    pub rate: f64,
    /// Size of the hot (closed) matrix set.
    pub matrices: usize,
    /// Probability a request draws from the hot set instead of presenting
    /// a fresh matrix.
    pub hit_ratio: f64,
    /// Admission window: the queue is flushed whenever this many requests
    /// are pending.
    pub window: usize,
    /// Triangular dimension of every generated system.
    pub n: usize,
    /// Average sub-diagonal entries per row of the sparse factors.
    pub fill: usize,
    /// Seed for the arrival process and the workload mix.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            requests: 400,
            rate: 4000.0,
            matrices: 8,
            hit_ratio: 0.9,
            window: 16,
            n: 256,
            fill: 4,
            seed: 0x10ad,
        }
    }
}

/// What one load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests issued (and completed).
    pub requests: usize,
    /// Wall-clock duration of the measured phase, seconds.
    pub duration_secs: f64,
    /// Completed requests per second.
    pub rps: f64,
    /// Median request latency (arrival → completion), microseconds.
    pub p50_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
    /// Distinct plan-cache keys the workload presented.
    pub distinct_keys: usize,
    /// Plan builds observed by `catrsm::plan_build_count` during the
    /// measured phase (warm-up excluded).
    pub steady_plan_builds: usize,
    /// The service's own counters at the end of the run.
    pub stats: ServiceStats,
}

impl LoadReport {
    /// The machine-independent invariants CI asserts.  Returns an error
    /// string naming the first violated invariant, if any; throughput and
    /// latency are deliberately *not* checked here (the CI container has
    /// one core).
    pub fn check(&self, cfg: &LoadConfig) -> Result<(), String> {
        if self.stats.errors != 0 {
            return Err(format!("{} request errors", self.stats.errors));
        }
        if self.stats.max_queue_depth > cfg.window as u64 {
            return Err(format!(
                "queue depth {} exceeded the admission window {}",
                self.stats.max_queue_depth, cfg.window
            ));
        }
        if self.stats.plan_builds > self.distinct_keys as u64 {
            return Err(format!(
                "{} plan builds for {} distinct keys — the cache failed to amortize",
                self.stats.plan_builds, self.distinct_keys
            ));
        }
        if self.stats.hits + self.stats.misses < self.requests as u64 {
            return Err(format!(
                "hits {} + misses {} < requests {}",
                self.stats.hits, self.stats.misses, self.requests
            ));
        }
        if cfg.hit_ratio >= 1.0 && self.steady_plan_builds != 0 {
            return Err(format!(
                "pure-hot traffic performed {} steady-state plan builds (must be 0)",
                self.steady_plan_builds
            ));
        }
        let measured_ratio = self.stats.hit_ratio();
        // The target is approximate (first touches of hot matrices miss),
        // but a 0.9-target run collapsing below 0.5 means the fingerprint
        // path is broken.
        if cfg.hit_ratio >= 0.8 && self.requests >= 100 && measured_ratio < cfg.hit_ratio - 0.3 {
            return Err(format!(
                "measured hit ratio {measured_ratio:.3} far below target {:.3}",
                cfg.hit_ratio
            ));
        }
        Ok(())
    }
}

/// Run the open-loop load against a fresh service and report.
pub fn run_load(cfg: &LoadConfig) -> LoadReport {
    assert!(cfg.requests > 0 && cfg.rate > 0.0 && cfg.matrices > 0);
    let svc = SolveService::new(ServiceConfig {
        // Size the cache to the whole key population: this generator
        // measures amortization, not eviction churn.
        plan_cache_capacity: cfg.requests + cfg.matrices,
        admission_window: cfg.window,
    });
    let req = catrsm::SolveRequest::lower();
    let hot: Vec<Arc<sparse::SparseTri>> = (0..cfg.matrices)
        .map(|i| {
            Arc::new(sgen::random_lower(
                cfg.n,
                cfg.fill,
                cfg.seed ^ (i as u64) << 8,
            ))
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Warm-up: touch every hot factor once so the steady state starts
    // with a populated cache and analyzed schedules.
    for m in &hot {
        let b = sgen::rhs_vec(cfg.n, cfg.seed);
        svc.solve_vec(&req, &Operand::Sparse(Arc::clone(m)), &b)
            .expect("warm-up solve");
    }
    let builds_after_warmup = catrsm::plan_build_count();

    // Pre-draw the arrival schedule and workload mix so generation cost
    // stays out of the measured loop.
    let mut arrivals = Vec::with_capacity(cfg.requests);
    let mut t = 0.0f64;
    let mut picks = Vec::with_capacity(cfg.requests);
    let mut fresh_seed = cfg.seed ^ 0xF4E5;
    for _ in 0..cfg.requests {
        // Exponential inter-arrival with mean 1/rate; `1 - u` is in
        // (0, 1], so the log is finite and the increment non-negative.
        let u = rng.gen_f64();
        t += -(1.0 - u).ln() / cfg.rate;
        arrivals.push(Duration::from_secs_f64(t));
        if rng.gen_f64() < cfg.hit_ratio {
            picks.push(None); // hot
        } else {
            fresh_seed = fresh_seed.wrapping_add(1);
            picks.push(Some(Arc::new(sgen::random_lower(
                cfg.n, cfg.fill, fresh_seed,
            ))));
        }
    }
    let cold_count = picks.iter().filter(|p| p.is_some()).count();
    let distinct_keys = cfg.matrices + cold_count;

    let start = Instant::now();
    let mut submitted_at: Vec<Instant> = Vec::with_capacity(cfg.requests);
    let mut latencies_us: Vec<f64> = vec![0.0; cfg.requests];
    let mut hot_idx = 0usize;
    for (i, (arrival, pick)) in arrivals.iter().zip(&picks).enumerate() {
        // Open loop: wait for the scheduled arrival regardless of how the
        // service is doing.
        loop {
            let now = start.elapsed();
            if now >= *arrival {
                break;
            }
            let slack = *arrival - now;
            if slack > Duration::from_micros(200) {
                std::thread::sleep(slack - Duration::from_micros(100));
            } else {
                std::hint::spin_loop();
            }
        }
        let mat = match pick {
            Some(fresh) => Arc::clone(fresh),
            None => {
                hot_idx = (hot_idx + 1) % hot.len();
                Arc::clone(&hot[hot_idx])
            }
        };
        let rhs = sgen::rhs_vec(cfg.n, cfg.seed ^ (i as u64));
        submitted_at.push(Instant::now());
        svc.submit(ServiceRequest {
            request: req,
            operand: Operand::Sparse(mat),
            rhs,
        })
        .expect("submit");
        if svc.queue_depth() >= cfg.window || i + 1 == cfg.requests {
            for done in svc.flush() {
                let idx = done.ticket.0 as usize;
                let lat = submitted_at[idx].elapsed();
                latencies_us[idx] = lat.as_secs_f64() * 1e6;
                assert!(done.result.is_ok(), "request {idx} failed");
            }
        }
    }
    let duration_secs = start.elapsed().as_secs_f64();
    let steady_plan_builds = catrsm::plan_build_count() - builds_after_warmup;

    latencies_us.sort_by(|a, b| a.total_cmp(b));
    LoadReport {
        requests: cfg.requests,
        duration_secs,
        rps: cfg.requests as f64 / duration_secs,
        p50_us: percentile(&latencies_us, 0.50),
        p99_us: percentile(&latencies_us, 0.99),
        distinct_keys,
        steady_plan_builds,
        stats: svc.stats(),
    }
}

/// Nearest-rank percentile over an already-sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> LoadConfig {
        LoadConfig {
            requests: 80,
            rate: 50_000.0,
            matrices: 4,
            hit_ratio: 0.85,
            window: 8,
            n: 96,
            fill: 3,
            seed: 7,
        }
    }

    #[test]
    fn load_run_satisfies_machine_independent_invariants() {
        let cfg = quick_cfg();
        let report = run_load(&cfg);
        report.check(&cfg).expect("invariants");
        assert_eq!(report.requests, 80);
        assert!(report.rps > 0.0);
        assert!(report.p50_us <= report.p99_us);
        // Warm-up planned the hot set, steady state planned only the
        // cold (fresh-matrix) arrivals.
        assert_eq!(
            report.steady_plan_builds as u64 + cfg.matrices as u64,
            report.stats.plan_builds
        );
        assert!(report.stats.plan_builds <= report.distinct_keys as u64);
    }

    #[test]
    fn hit_ratio_zero_forces_all_misses_after_warmup() {
        let cfg = LoadConfig {
            hit_ratio: 0.0,
            requests: 40,
            ..quick_cfg()
        };
        let report = run_load(&cfg);
        report.check(&cfg).expect("invariants");
        // Every steady-state request was a fresh fingerprint.
        assert_eq!(report.steady_plan_builds, 40);
    }

    #[test]
    fn hit_ratio_one_plans_nothing_after_warmup() {
        let cfg = LoadConfig {
            hit_ratio: 1.0,
            requests: 60,
            ..quick_cfg()
        };
        let report = run_load(&cfg);
        report.check(&cfg).expect("invariants");
        assert_eq!(
            report.steady_plan_builds, 0,
            "pure hot traffic must never plan"
        );
        assert_eq!(report.stats.hits, 60);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.5), 2.0);
        assert_eq!(percentile(&v, 0.99), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
