//! Experiment harness shared by the `exp_*` binaries and the Criterion
//! benches.
//!
//! Every experiment follows the same pattern: build a TRSM instance on the
//! simulated machine, run one of the algorithms, collect the critical-path
//! counters (`S`, `W`, `F`, virtual time) from the [`simnet::CostReport`],
//! verify the solution, and print the measurement next to the corresponding
//! prediction of the `costmodel` crate.  The helpers here remove the
//! boilerplate so each binary reads like the experiment it reproduces.

pub mod service_load;

use catrsm::it_inv_trsm::{it_inv_trsm, ItInvConfig, PhaseBreakdown};
use catrsm::rec_trsm::{rec_trsm, RecTrsmConfig};
use catrsm::wavefront::wavefront_trsm;
use dense::gen;
use pgrid::{DistMatrix, Grid2D};
use simnet::{CostCounters, Machine, MachineParams};
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Critical-path measurement of one algorithm run on the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measured {
    /// Messages along the critical path (max over ranks of max(sent, recv)).
    pub latency: u64,
    /// Words along the critical path.
    pub bandwidth: u64,
    /// Flops along the critical path.
    pub flops: u64,
    /// Virtual execution time under the machine parameters used.
    pub time: f64,
    /// Relative error of the computed solution against the known one.
    pub error: f64,
}

impl Measured {
    /// Render as a compact table cell group.
    pub fn row(&self) -> String {
        format!(
            "S={:>9}  W={:>12}  F={:>14}  T={:>12.4e}  err={:.1e}",
            self.latency, self.bandwidth, self.flops, self.time, self.error
        )
    }
}

/// Which TRSM algorithm an experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrsmAlgo {
    /// The recursive baseline of Section IV ("standard").
    Recursive {
        /// Base-case size.
        base: usize,
    },
    /// The iterative inversion-based algorithm of Section VI ("new method").
    Iterative(ItInvConfig),
    /// The row-fan-out baseline.
    Wavefront,
}

/// A TRSM problem instance for the experiments.
#[derive(Debug, Clone, Copy)]
pub struct TrsmInstance {
    /// Triangular matrix dimension.
    pub n: usize,
    /// Number of right-hand sides.
    pub k: usize,
    /// Processor-grid rows.
    pub pr: usize,
    /// Processor-grid columns.
    pub pc: usize,
    /// Random seed for the matrices.
    pub seed: u64,
}

impl TrsmInstance {
    /// Total number of processors.
    pub fn procs(&self) -> usize {
        self.pr * self.pc
    }
}

/// Run one TRSM algorithm on the simulated machine and return the
/// critical-path measurement.
pub fn run_trsm(inst: &TrsmInstance, algo: TrsmAlgo, params: MachineParams) -> Measured {
    let TrsmInstance { n, k, pr, pc, seed } = *inst;
    let machine = Machine::new(pr * pc, params);
    let out = machine
        .run(move |comm| {
            let grid = Grid2D::new(comm, pr, pc).expect("grid shape");
            let l_global = gen::well_conditioned_lower(n, seed);
            let x_true = gen::rhs(n, k, seed ^ 0xabcd);
            let b_global = dense::matmul(&l_global, &x_true);
            let l = DistMatrix::from_global(&grid, &l_global);
            let b = DistMatrix::from_global(&grid, &b_global);
            let x = match algo {
                TrsmAlgo::Recursive { base } => rec_trsm(
                    &l,
                    &b,
                    &RecTrsmConfig {
                        base_size: base,
                        log_latency: true,
                    },
                )
                .expect("recursive TRSM"),
                TrsmAlgo::Iterative(cfg) => it_inv_trsm(&l, &b, &cfg).expect("iterative TRSM").0,
                TrsmAlgo::Wavefront => wavefront_trsm(&l, &b).expect("wavefront TRSM"),
            };
            let x_ref = DistMatrix::from_global(&grid, &x_true);
            x.rel_diff(&x_ref).expect("conformal")
        })
        .expect("machine run");
    let error = out.results.iter().copied().fold(0.0, f64::max);
    Measured {
        latency: out.report.max_messages(),
        bandwidth: out.report.max_words(),
        flops: out.report.max_flops(),
        time: out.report.virtual_time(),
        error,
    }
}

/// Run the iterative algorithm and additionally return the per-phase
/// critical-path counters (max over ranks, per phase).
pub fn run_itinv_with_phases(
    inst: &TrsmInstance,
    cfg: ItInvConfig,
    params: MachineParams,
) -> (Measured, PhaseSummary) {
    let TrsmInstance { n, k, pr, pc, seed } = *inst;
    let machine = Machine::new(pr * pc, params);
    let out = machine
        .run(move |comm| {
            let grid = Grid2D::new(comm, pr, pc).expect("grid shape");
            let l_global = gen::well_conditioned_lower(n, seed);
            let x_true = gen::rhs(n, k, seed ^ 0xabcd);
            let b_global = dense::matmul(&l_global, &x_true);
            let l = DistMatrix::from_global(&grid, &l_global);
            let b = DistMatrix::from_global(&grid, &b_global);
            let (x, phases) = it_inv_trsm(&l, &b, &cfg).expect("iterative TRSM");
            let x_ref = DistMatrix::from_global(&grid, &x_true);
            (x.rel_diff(&x_ref).expect("conformal"), phases)
        })
        .expect("machine run");
    let error = out.results.iter().map(|(e, _)| *e).fold(0.0, f64::max);
    let phases: Vec<PhaseBreakdown> = out.results.iter().map(|(_, p)| *p).collect();
    let measured = Measured {
        latency: out.report.max_messages(),
        bandwidth: out.report.max_words(),
        flops: out.report.max_flops(),
        time: out.report.virtual_time(),
        error,
    };
    (measured, PhaseSummary::from_breakdowns(&phases))
}

/// Critical-path (max over ranks) counters per phase of `It-Inv-TRSM`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseSummary {
    /// Setup redistribution.
    pub setup: PhaseCost,
    /// Diagonal-block inversion.
    pub inversion: PhaseCost,
    /// Solve steps.
    pub solve: PhaseCost,
    /// Update steps.
    pub update: PhaseCost,
    /// Final redistribution.
    pub finalize: PhaseCost,
}

/// One phase's maxima over ranks.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseCost {
    /// Messages.
    pub latency: u64,
    /// Words.
    pub bandwidth: u64,
    /// Flops.
    pub flops: u64,
}

impl PhaseCost {
    fn update_with(&mut self, c: &CostCounters) {
        self.latency = self.latency.max(c.latency());
        self.bandwidth = self.bandwidth.max(c.bandwidth());
        self.flops = self.flops.max(c.flops);
    }

    /// Render as a compact table cell group.
    pub fn row(&self) -> String {
        format!(
            "S={:>8}  W={:>12}  F={:>14}",
            self.latency, self.bandwidth, self.flops
        )
    }
}

impl PhaseSummary {
    /// Aggregate per-rank breakdowns into per-phase critical-path maxima.
    pub fn from_breakdowns(breakdowns: &[PhaseBreakdown]) -> Self {
        let mut s = PhaseSummary::default();
        for b in breakdowns {
            s.setup.update_with(&b.setup);
            s.inversion.update_with(&b.inversion);
            s.solve.update_with(&b.solve);
            s.update.update_with(&b.update);
            s.finalize.update_with(&b.finalize);
        }
        s
    }
}

/// Write a CSV file under `results/` (relative to the current directory),
/// creating the directory if needed.  Returns the path written.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let dir = PathBuf::from("results");
    let _ = fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.csv"));
    if let Ok(mut f) = fs::File::create(&path) {
        let _ = writeln!(f, "{header}");
        for row in rows {
            let _ = writeln!(f, "{row}");
        }
    }
    path
}

/// Print a section banner so the experiment output is easy to scan.
pub fn banner(title: &str) {
    println!();
    println!("==== {title} ====");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_trsm_produces_consistent_measurements() {
        let inst = TrsmInstance {
            n: 32,
            k: 8,
            pr: 2,
            pc: 2,
            seed: 1,
        };
        let rec = run_trsm(
            &inst,
            TrsmAlgo::Recursive { base: 8 },
            MachineParams::unit(),
        );
        assert!(rec.error < 1e-8);
        assert!(rec.latency > 0 && rec.bandwidth > 0 && rec.flops > 0);
        let it = run_trsm(
            &inst,
            TrsmAlgo::Iterative(ItInvConfig {
                p1: 2,
                p2: 1,
                n0: 8,
                inv_base: 8,
            }),
            MachineParams::unit(),
        );
        assert!(it.error < 1e-8);
        let wf = run_trsm(&inst, TrsmAlgo::Wavefront, MachineParams::unit());
        assert!(wf.error < 1e-8);
        // The wavefront baseline must pay far more messages than either paper
        // algorithm at this size.
        assert!(wf.latency > it.latency);
    }

    #[test]
    fn phase_summary_aggregates() {
        let inst = TrsmInstance {
            n: 32,
            k: 8,
            pr: 2,
            pc: 2,
            seed: 2,
        };
        let (m, phases) = run_itinv_with_phases(
            &inst,
            ItInvConfig {
                p1: 2,
                p2: 1,
                n0: 8,
                inv_base: 8,
            },
            MachineParams::unit(),
        );
        assert!(m.error < 1e-8);
        assert!(phases.solve.flops > 0);
        assert!(phases.update.flops > 0);
        assert!(phases.inversion.flops > 0);
        let sum = phases.setup.flops
            + phases.inversion.flops
            + phases.solve.flops
            + phases.update.flops
            + phases.finalize.flops;
        assert!(
            sum <= m.flops * 2,
            "phase sums should be comparable to the total"
        );
    }

    #[test]
    fn measured_row_formats() {
        let m = Measured {
            latency: 1,
            bandwidth: 2,
            flops: 3,
            time: 4.0,
            error: 1e-12,
        };
        assert!(m.row().contains("S="));
        assert!(PhaseCost::default().row().contains("W="));
    }
}
