//! Property-based tests for the sparse triangular solver.
//!
//! Two families of properties pin the acceptance criteria:
//!
//! * **differential vs dense** — on a densified copy of a random sparse
//!   pattern, `sparse::solve` / `solve_multi` must agree with
//!   `dense::trsv` / `dense::trsm` to 1e-12 (the generators keep the
//!   systems well conditioned, so the two summation orders cannot drift);
//! * **bitwise determinism** — the level-parallel executors must equal the
//!   sequential baseline *bit for bit* at every worker count (notably
//!   `DENSE_THREADS` ∈ {1, 4}, the pair CI pins), for lower and upper
//!   triangles, unit and explicit diagonals, single and blocked RHS.

use dense::{Diag, Matrix, Triangle};
use proptest::prelude::*;
use sparse::gen;
use sparse::{SolveOpts, SparseTri};

/// Max |a - b| over two equal-length vectors.
fn vec_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `sparse::solve` agrees with `dense::trsv` on the densified matrix.
    #[test]
    fn solve_matches_dense_trsv_on_densified_pattern(
        n in 1usize..220,
        fill in 0usize..9,
        upper in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let m = if upper {
            gen::random_upper(n, fill, seed)
        } else {
            gen::random_lower(n, fill, seed)
        };
        let b = gen::rhs_vec(n, seed ^ 0xb);
        let xs = m.solve(&b).unwrap();
        let xd = dense::trsv(m.triangle(), m.diag(), &m.to_dense(), &b).unwrap();
        prop_assert!(
            vec_abs_diff(&xs, &xd) < 1e-12,
            "sparse vs dense trsv diverged beyond 1e-12"
        );
    }

    /// `sparse::solve_multi` agrees with `dense::trsm` on the densified
    /// matrix.
    #[test]
    fn solve_multi_matches_dense_trsm_on_densified_pattern(
        n in 1usize..160,
        k in 1usize..12,
        fill in 0usize..7,
        upper in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let m = if upper {
            gen::random_upper(n, fill, seed)
        } else {
            gen::random_lower(n, fill, seed)
        };
        let b = Matrix::from_fn(n, k, |i, j| {
            (((i * 31 + j * 17 + seed as usize) % 23) as f64) / 11.5 - 1.0
        });
        let xs = m.solve_multi(&b).unwrap();
        let xd = dense::trsm(m.triangle(), m.diag(), &m.to_dense(), &b).unwrap();
        prop_assert!(
            xs.max_abs_diff(&xd).unwrap() < 1e-12,
            "sparse vs dense trsm diverged beyond 1e-12"
        );
    }

    /// Level-parallel and sequential executors are bitwise identical at
    /// every worker count, including the CI-pinned pair {1, 4}.
    #[test]
    fn parallel_solve_is_bitwise_identical_to_sequential(
        n in 2usize..400,
        fill in 0usize..10,
        upper in any::<bool>(),
        threads in 2usize..8,
        seed in any::<u64>(),
    ) {
        let m = if upper {
            gen::random_upper(n, fill, seed)
        } else {
            gen::random_lower(n, fill, seed)
        };
        let b = gen::rhs_vec(n, seed ^ 0x5eed);
        let mut seq = b.clone();
        m.solve_with(&SolveOpts::new().threads(1), &mut seq).unwrap();
        for t in [1usize, 4, threads] {
            let mut x = b.clone();
            m.solve_with(&SolveOpts::new().threads(t), &mut x).unwrap();
            prop_assert!(x == seq, "worker count {t} changed the result bits");
        }
    }

    /// Same bitwise guarantee for the blocked right-hand-side executor,
    /// and for unit-diagonal matrices.
    #[test]
    fn parallel_solve_multi_is_bitwise_identical_to_sequential(
        n in 2usize..250,
        k in 1usize..10,
        fill in 0usize..8,
        threads in 2usize..6,
        seed in any::<u64>(),
    ) {
        let lower = gen::random_lower(n, fill, seed);
        // Rebuild as unit-diagonal with the same off-diagonal pattern.
        let mut ents: Vec<(usize, usize, f64)> = Vec::new();
        for i in 0..n {
            let (cols, vals) = lower.row_entries(i);
            for (&j, &v) in cols.iter().zip(vals) {
                ents.push((i, j, v));
            }
        }
        let unit = SparseTri::from_triplets(n, Triangle::Lower, Diag::Unit, &ents).unwrap();
        let b = Matrix::from_fn(n, k, |i, j| ((i * 7 + j * 13 + 1) % 19) as f64 / 9.5 - 1.0);
        for m in [&lower, &unit] {
            let mut seq = b.clone();
            m.solve_multi_with(&SolveOpts::new().threads(1), &mut seq).unwrap();
            for t in [1usize, 4, threads] {
                let mut x = b.clone();
                m.solve_multi_with(&SolveOpts::new().threads(t), &mut x).unwrap();
                prop_assert!(x == seq, "worker count {t} changed multi-RHS bits");
            }
        }
    }

    /// The schedule's defining invariant on random patterns: every
    /// dependency of a row lives in a strictly earlier level, and the
    /// levels partition the rows.
    #[test]
    fn schedule_levels_respect_dependencies(
        n in 1usize..300,
        fill in 0usize..10,
        upper in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let m = if upper {
            gen::random_upper(n, fill, seed)
        } else {
            gen::random_lower(n, fill, seed)
        };
        let s = m.schedule();
        let mut level_of = vec![usize::MAX; n];
        for l in 0..s.num_levels() {
            for &r in s.level_rows(l) {
                prop_assert!(level_of[r] == usize::MAX, "row {r} scheduled twice");
                level_of[r] = l;
            }
        }
        for i in 0..n {
            prop_assert!(level_of[i] != usize::MAX, "row {i} never scheduled");
            let (cols, _) = m.row_entries(i);
            for &j in cols {
                prop_assert!(level_of[j] < level_of[i]);
            }
        }
    }

    /// The dense-fallback path agrees with the sparse executors, and the
    /// banded generator's fully sequential schedule still solves correctly
    /// in parallel mode (degenerates to one worker).
    #[test]
    fn banded_and_dense_fallback_agree(
        n in 1usize..200,
        bw in 0usize..6,
        seed in any::<u64>(),
    ) {
        let m = gen::banded_lower(n, bw, seed);
        let b = gen::rhs_vec(n, seed ^ 0xf00d);
        let xs = m.solve(&b).unwrap();
        let xd = m.solve_via_dense(&b).unwrap();
        prop_assert!(vec_abs_diff(&xs, &xd) < 1e-12);
        let mut xp = b.clone();
        m.solve_with(&SolveOpts::new().threads(4), &mut xp).unwrap();
        prop_assert!(xp == xs);
    }

    /// Transposed sparse solves (`Lᵀ·x = b` on the cached transpose) agree
    /// with the dense transposed kernel on the densified pattern, and stay
    /// bitwise deterministic across worker counts.
    #[test]
    fn transposed_solve_matches_dense_on_densified_pattern(
        n in 1usize..200,
        fill in 0usize..8,
        upper in any::<bool>(),
        threads in 2usize..6,
        seed in any::<u64>(),
    ) {
        let m = if upper {
            gen::random_upper(n, fill, seed)
        } else {
            gen::random_lower(n, fill, seed)
        };
        let b = gen::rhs_vec(n, seed ^ 0x7a);
        let mut xs = b.clone();
        m.solve_with(&SolveOpts::new().transposed(), &mut xs).unwrap();
        // Dense reference: op(A) = Aᵀ through the dense options path.
        let opts = dense::SolveOpts::new(m.triangle()).diag(m.diag()).transposed();
        let mut xd = b.clone();
        dense::trsv_in_place_opts(&opts, &m.to_dense(), &mut xd).unwrap();
        prop_assert!(
            vec_abs_diff(&xs, &xd) < 1e-12,
            "sparse vs dense transposed solve diverged beyond 1e-12"
        );
        for t in [1usize, 4, threads] {
            let mut x = b.clone();
            m.solve_with(&SolveOpts::new().transposed().threads(t), &mut x).unwrap();
            prop_assert!(x == xs, "worker count {t} changed transposed bits");
        }
    }

    /// Multi-RHS transposed solves agree with the dense transposed `trsm`.
    #[test]
    fn transposed_solve_multi_matches_dense_trsm(
        n in 1usize..140,
        k in 1usize..10,
        fill in 0usize..7,
        upper in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let m = if upper {
            gen::random_upper(n, fill, seed)
        } else {
            gen::random_lower(n, fill, seed)
        };
        let b = Matrix::from_fn(n, k, |i, j| {
            (((i * 29 + j * 13 + seed as usize) % 21) as f64) / 10.5 - 1.0
        });
        let mut xs = b.clone();
        m.solve_multi_with(&SolveOpts::new().transposed(), &mut xs).unwrap();
        let opts = dense::SolveOpts::new(m.triangle()).diag(m.diag()).transposed();
        let xd = dense::trsm_opts(&opts, &m.to_dense(), &b).unwrap();
        prop_assert!(
            xs.max_abs_diff(&xd).unwrap() < 1e-12,
            "sparse vs dense transposed trsm diverged beyond 1e-12"
        );
    }
}
