//! Property-based tests for the CSC triangular storage
//! ([`sparse::SparseTriCsc`]): the format the sync-free executor runs on.
//!
//! Three families of properties:
//!
//! * **round trip** — CSR→CSC→CSR and triplet→CSC→dense conversions
//!   preserve every entry exactly (conversions reorder storage, never
//!   values);
//! * **validation** — duplicate triplets, out-of-order raw CSC columns,
//!   and NaN/infinite entries are rejected with their typed
//!   [`sparse::SparseError`] variants;
//! * **structure** — the cached in-degree counts (the sync-free executor's
//!   readiness counters) equal the CSR row lengths, and the transpose
//!   round-trips.

use dense::{Diag, Triangle};
use proptest::prelude::*;
use sparse::{gen, SparseError, SparseTriCsc};

/// Row-major triplets of a generated CSR matrix (diagonal first per row,
/// so the CSC constructor's column-major sort is genuinely exercised).
fn csr_triplets(m: &sparse::SparseTri) -> Vec<(usize, usize, f64)> {
    let mut ents = Vec::with_capacity(m.nnz());
    for i in 0..m.n() {
        ents.push((i, i, m.diag_value(i)));
        let (cols, vals) = m.row_entries(i);
        for (&j, &v) in cols.iter().zip(vals) {
            ents.push((i, j, v));
        }
    }
    ents
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// CSR→CSC→CSR round-trips every entry exactly, for both triangles.
    #[test]
    fn csr_csc_round_trip_is_exact(
        n in 1usize..200,
        fill in 0usize..9,
        upper in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let csr = if upper {
            gen::random_upper(n, fill, seed)
        } else {
            gen::random_lower(n, fill, seed)
        };
        let csc = SparseTriCsc::from_csr(&csr);
        prop_assert_eq!(csc.n(), csr.n());
        prop_assert_eq!(csc.nnz(), csr.nnz());
        prop_assert_eq!(csc.triangle(), csr.triangle());
        prop_assert_eq!(csc.to_dense(), csr.to_dense());
        let back = csc.to_csr();
        prop_assert_eq!(back.to_dense(), csr.to_dense());
        // The values survive bitwise, not just to tolerance: densify both
        // and compare bits via total equality (Matrix PartialEq is ==).
        for i in 0..n {
            prop_assert_eq!(back.diag_value(i).to_bits(), csr.diag_value(i).to_bits());
        }
    }

    /// Triplet construction in row-major order equals the CSR-mirror
    /// construction: the column-major sort is a pure reordering.
    #[test]
    fn triplet_and_csr_constructions_agree(
        n in 1usize..150,
        fill in 0usize..8,
        seed in any::<u64>(),
    ) {
        let csr = gen::random_lower(n, fill, seed);
        let from_csr = SparseTriCsc::from_csr(&csr);
        let from_triplets = SparseTriCsc::from_triplets(
            n,
            Triangle::Lower,
            Diag::NonUnit,
            &csr_triplets(&csr),
        )
        .unwrap();
        prop_assert_eq!(from_triplets.to_dense(), from_csr.to_dense());
        prop_assert_eq!(from_triplets.nnz(), from_csr.nnz());
    }

    /// A duplicated `(row, col)` triplet is rejected with
    /// `DuplicateEntry`, wherever the duplicate lands in input order.
    #[test]
    fn duplicate_triplets_are_rejected(
        n in 2usize..100,
        fill in 1usize..6,
        seed in any::<u64>(),
        dup_sel in any::<u64>(),
    ) {
        let csr = gen::random_lower(n, fill, seed);
        let mut ents = csr_triplets(&csr);
        let dup = ents[dup_sel as usize % ents.len()];
        ents.push((dup.0, dup.1, dup.2 + 1.0));
        let err = SparseTriCsc::from_triplets(n, Triangle::Lower, Diag::NonUnit, &ents)
            .unwrap_err();
        prop_assert!(
            matches!(err, SparseError::DuplicateEntry { index } if index == (dup.0, dup.1)),
            "expected DuplicateEntry at {:?}, got {err:?}",
            (dup.0, dup.1)
        );
    }

    /// Raw CSC input with a column's row indices out of order is rejected
    /// with `UnsortedColumn` naming that column.
    #[test]
    fn out_of_order_raw_csc_is_rejected(
        seed in any::<u64>(),
    ) {
        // Column 0 stores rows {0, 2, 1}: out of order below the diagonal.
        let v = (seed % 7) as f64 + 1.0;
        let col_ptr = vec![0usize, 3, 4, 5];
        let row_idx = vec![0usize, 2, 1, 1, 2];
        let values = vec![2.0, v, 0.5, 2.0, 2.0];
        let err = SparseTriCsc::from_csc(
            3,
            Triangle::Lower,
            Diag::NonUnit,
            &col_ptr,
            &row_idx,
            &values,
        )
        .unwrap_err();
        prop_assert!(
            matches!(err, SparseError::UnsortedColumn { col: 0 }),
            "expected UnsortedColumn {{ col: 0 }}, got {err:?}"
        );
    }

    /// A NaN or infinite value anywhere in the triplets is rejected with
    /// `NonFiniteEntry` before any storage is built.
    #[test]
    fn non_finite_entries_are_rejected(
        n in 1usize..100,
        fill in 0usize..6,
        seed in any::<u64>(),
        poison_sel in any::<u64>(),
        use_nan in any::<bool>(),
    ) {
        let csr = gen::random_lower(n, fill, seed);
        let mut ents = csr_triplets(&csr);
        let p = poison_sel as usize % ents.len();
        ents[p].2 = if use_nan { f64::NAN } else { f64::INFINITY };
        let err = SparseTriCsc::from_triplets(n, Triangle::Lower, Diag::NonUnit, &ents)
            .unwrap_err();
        prop_assert!(
            matches!(err, SparseError::NonFiniteEntry { .. }),
            "expected NonFiniteEntry, got {err:?}"
        );
    }

    /// The cached in-degree counters — the sync-free executor's readiness
    /// counts — equal the off-diagonal CSR row lengths, and the transpose
    /// round-trips exactly.
    #[test]
    fn in_degrees_match_csr_rows_and_transpose_round_trips(
        n in 1usize..150,
        fill in 0usize..8,
        seed in any::<u64>(),
    ) {
        let csr = gen::random_lower(n, fill, seed);
        let csc = SparseTriCsc::from_csr(&csr);
        let indeg = csc.in_degrees();
        for (i, &d) in indeg.iter().enumerate() {
            prop_assert_eq!(
                d as usize,
                csr.row_entries(i).0.len(),
                "row {} in-degree",
                i
            );
        }
        let t = csc.transpose();
        prop_assert_eq!(t.triangle(), Triangle::Upper);
        prop_assert_eq!(t.to_dense(), csc.to_dense().transpose());
        prop_assert_eq!(t.transpose().to_dense(), csc.to_dense());
    }
}
