//! Property-based tests for the DAG-partitioned (merged) schedule.
//!
//! The acceptance properties of the merged executor:
//!
//! * **policy equivalence** — `Merged` and `Level` schedules are *bitwise*
//!   identical at every worker count (notably `DENSE_THREADS` ∈ {1, 4},
//!   the pair CI pins) on the shapes the merged schedule exists for: deep
//!   narrow DAGs (long banded chains, blocked narrow ladders) and random
//!   lower patterns with chain-heavy structure;
//! * **differential vs dense** — merged-policy solves match `dense::trsv`
//!   / `dense::trsm` to 1e-12 on the densified pattern;
//! * **structural invariants** — super-levels are contiguous runs of whole
//!   levels whose dependencies never point forward.

use dense::Matrix;
use proptest::prelude::*;
use sparse::{gen, SchedulePolicy, SolveOpts};

/// Max |a - b| over two equal-length vectors.
fn vec_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// The deep-narrow-DAG family the merged schedule targets: blocked ladders
/// (`width`-wide levels chained block to block), degenerate chains
/// (`width = 1`), and unbroken bands.
fn deep_dag(kind: u32, n: usize, width: usize, deps: usize, seed: u64) -> sparse::SparseTri {
    match kind % 3 {
        0 => gen::deep_narrow_lower(n, width, deps, seed),
        1 => gen::deep_narrow_lower(n, 1, 1, seed), // pure chain, blocked form
        _ => gen::banded_lower(n, deps.max(1), seed), // unbroken band
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Merged and level policies are bitwise identical to the sequential
    /// sweep (and to each other) at every worker count on deep narrow
    /// DAGs, including the transposed executor.
    #[test]
    fn merged_equals_level_bitwise_on_deep_dags(
        kind in 0u32..3,
        blocks in 2usize..400,
        width in 1usize..6,
        deps in 1usize..5,
        threads in 2usize..8,
        transpose in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let m = deep_dag(kind, blocks * width, width, deps, seed);
        let n = m.n();
        let b = gen::rhs_vec(n, seed ^ 0xdead);
        let base = SolveOpts::new().transpose(if transpose {
            dense::Transpose::Yes
        } else {
            dense::Transpose::No
        });
        let mut seq = b.clone();
        m.solve_with(&base.threads(1), &mut seq).unwrap();
        for t in [1usize, 4, threads] {
            for policy in [SchedulePolicy::Level, SchedulePolicy::Merged] {
                let mut x = b.clone();
                m.solve_with(&base.threads(t).policy(policy), &mut x).unwrap();
                prop_assert!(
                    x == seq,
                    "{policy:?} at {t} workers changed the result bits"
                );
            }
        }
    }

    /// Same bitwise guarantee on random lower patterns with chain-heavy
    /// structure (low fill keeps long dependency chains alive), for both
    /// the single- and blocked-RHS executors.
    #[test]
    fn merged_equals_level_bitwise_on_chain_heavy_random(
        n in 2usize..500,
        fill in 1usize..4,
        k in 1usize..6,
        threads in 2usize..8,
        seed in any::<u64>(),
    ) {
        let m = gen::random_lower(n, fill, seed);
        let b = gen::rhs_vec(n, seed ^ 0xc0de);
        let mut seq = b.clone();
        m.solve_with(&SolveOpts::new().threads(1), &mut seq).unwrap();
        let bm = Matrix::from_fn(n, k, |i, j| ((i * 7 + j * 13 + 1) % 19) as f64 / 9.5 - 1.0);
        let mut seq_m = bm.clone();
        m.solve_multi_with(&SolveOpts::new().threads(1), &mut seq_m).unwrap();
        for t in [1usize, 4, threads] {
            for policy in [SchedulePolicy::Level, SchedulePolicy::Merged] {
                let opts = SolveOpts::new().threads(t).policy(policy);
                let mut x = b.clone();
                m.solve_with(&opts, &mut x).unwrap();
                prop_assert!(x == seq, "{policy:?}/{t} changed single-RHS bits");
                let mut xm = bm.clone();
                m.solve_multi_with(&opts, &mut xm).unwrap();
                prop_assert!(xm == seq_m, "{policy:?}/{t} changed multi-RHS bits");
            }
        }
    }

    /// Merged-policy solves agree with the dense kernels on the densified
    /// pattern to 1e-12 (trsv single-RHS, trsm blocked-RHS).
    #[test]
    fn merged_matches_dense_on_densified_patterns(
        kind in 0u32..3,
        blocks in 1usize..60,
        width in 1usize..5,
        deps in 1usize..4,
        k in 1usize..8,
        seed in any::<u64>(),
    ) {
        let m = deep_dag(kind, blocks * width, width, deps, seed);
        let n = m.n();
        let d = m.to_dense();
        let opts = SolveOpts::new().threads(4).policy(SchedulePolicy::Merged);
        let b = gen::rhs_vec(n, seed ^ 0xfeed);
        let mut xs = b.clone();
        m.solve_with(&opts, &mut xs).unwrap();
        let xd = dense::trsv(m.triangle(), m.diag(), &d, &b).unwrap();
        prop_assert!(
            vec_abs_diff(&xs, &xd) < 1e-12,
            "merged vs dense trsv diverged beyond 1e-12"
        );
        let bm = Matrix::from_fn(n, k, |i, j| {
            (((i * 31 + j * 17 + seed as usize) % 23) as f64) / 11.5 - 1.0
        });
        let mut xm = bm.clone();
        m.solve_multi_with(&opts, &mut xm).unwrap();
        let xdm = dense::trsm(m.triangle(), m.diag(), &d, &bm).unwrap();
        prop_assert!(
            xm.max_abs_diff(&xdm).unwrap() < 1e-12,
            "merged vs dense trsm diverged beyond 1e-12"
        );
    }

    /// Structural invariants of the merged analysis on random patterns:
    /// super-levels tile the flattened row list contiguously on level
    /// boundaries, the row → super-level map is consistent, and no
    /// dependency ever points into a *later* super-level.
    #[test]
    fn super_levels_partition_rows_and_respect_dependencies(
        n in 1usize..400,
        fill in 0usize..8,
        upper in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let m = if upper {
            gen::random_upper(n, fill, seed)
        } else {
            gen::random_lower(n, fill, seed)
        };
        let s = m.schedule();
        let g = m.merged_schedule();
        let mut covered = 0usize;
        let mut seen = vec![false; n];
        for sl in 0..g.num_super_levels() {
            let r = g.super_range(sl);
            prop_assert_eq!(r.start, covered, "super-levels must tile contiguously");
            for &i in &s.rows()[r.clone()] {
                prop_assert!(!seen[i], "row scheduled twice");
                seen[i] = true;
                prop_assert_eq!(g.super_of(i), sl as u32);
            }
            covered = r.end;
        }
        prop_assert_eq!(covered, n);
        for i in 0..n {
            let (cols, _) = m.row_entries(i);
            for &j in cols {
                prop_assert!(
                    g.super_of(j) <= g.super_of(i),
                    "dependency {} of row {} lives in a later super-level",
                    j,
                    i
                );
            }
        }
    }
}
