//! Property-based differential suite for the sync-free CSC executor
//! (`SchedulePolicy::SyncFree`): the lock-free column sweep must agree
//! with the sequential CSR sweep and the densified `dense::trsv` to 1e-12
//! on every pattern the generators produce — random fills, deep narrow
//! DAGs, both triangles, transposed applies, multi-RHS blocks — and must
//! be **bitwise repeatable per fixed worker count** (the weaker guarantee
//! it trades for zero analysis and zero barriers).

use dense::Matrix;
use proptest::prelude::*;
use sparse::{gen, SchedulePolicy, SolveOpts};

/// Max |a - b| over two equal-length vectors.
fn vec_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn syncfree_opts(threads: usize) -> SolveOpts {
    SolveOpts::new()
        .threads(threads)
        .policy(SchedulePolicy::SyncFree)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sync-free agrees with the sequential CSR sweep and the densified
    /// `dense::trsv` to 1e-12 at every worker count, and two runs at the
    /// same worker count are bitwise equal.
    #[test]
    fn syncfree_matches_sequential_and_dense(
        n in 2usize..300,
        fill in 0usize..9,
        upper in any::<bool>(),
        threads in 2usize..8,
        seed in any::<u64>(),
    ) {
        let m = if upper {
            gen::random_upper(n, fill, seed)
        } else {
            gen::random_lower(n, fill, seed)
        };
        let b = gen::rhs_vec(n, seed ^ 0x5f);
        let seq = m.solve(&b).unwrap();
        let xd = dense::trsv(m.triangle(), m.diag(), &m.to_dense(), &b).unwrap();
        for t in [1usize, 4, threads] {
            let mut x = b.clone();
            m.solve_with(&syncfree_opts(t), &mut x).unwrap();
            prop_assert!(
                vec_abs_diff(&x, &seq) < 1e-12,
                "sync-free ({t} workers) vs sequential diverged beyond 1e-12"
            );
            prop_assert!(
                vec_abs_diff(&x, &xd) < 1e-12,
                "sync-free ({t} workers) vs dense trsv diverged beyond 1e-12"
            );
            let mut again = b.clone();
            m.solve_with(&syncfree_opts(t), &mut again).unwrap();
            prop_assert!(
                x == again,
                "two sync-free runs at {t} workers must be bitwise equal"
            );
        }
    }

    /// The barrier-sensitive deep narrow DAG: the shape the sync-free
    /// executor exists for (one-shot solves that would otherwise pay one
    /// barrier per skinny level) stays within 1e-12 of sequential.
    #[test]
    fn syncfree_solves_deep_narrow_dags(
        blocks in 2usize..120,
        width in 1usize..6,
        deps in 1usize..5,
        threads in 2usize..8,
        seed in any::<u64>(),
    ) {
        let n = blocks * width;
        let m = gen::deep_narrow_lower(n, width, deps, seed);
        let b = gen::rhs_vec(n, seed ^ 0xdee9);
        let seq = m.solve(&b).unwrap();
        let mut x = b.clone();
        m.solve_with(&syncfree_opts(threads), &mut x).unwrap();
        prop_assert!(
            vec_abs_diff(&x, &seq) < 1e-12,
            "sync-free diverged beyond 1e-12 on a deep narrow DAG"
        );
    }

    /// Transposed sync-free applies (running on the cached CSC transpose)
    /// agree with the sequential transposed solve.
    #[test]
    fn syncfree_transposed_matches_sequential(
        n in 2usize..200,
        fill in 0usize..8,
        upper in any::<bool>(),
        threads in 2usize..6,
        seed in any::<u64>(),
    ) {
        let m = if upper {
            gen::random_upper(n, fill, seed)
        } else {
            gen::random_lower(n, fill, seed)
        };
        let b = gen::rhs_vec(n, seed ^ 0x7a);
        let mut seq = b.clone();
        m.solve_with(&SolveOpts::new().transposed().threads(1), &mut seq).unwrap();
        let mut x = b.clone();
        m.solve_with(&syncfree_opts(threads).transposed(), &mut x).unwrap();
        prop_assert!(
            vec_abs_diff(&x, &seq) < 1e-12,
            "transposed sync-free diverged beyond 1e-12"
        );
    }

    /// Blocked right-hand sides: the multi-RHS sync-free sweep agrees
    /// with the densified `dense::trsm` and with per-column single-RHS
    /// sync-free solves.
    #[test]
    fn syncfree_multi_rhs_matches_dense_trsm(
        n in 2usize..150,
        k in 1usize..10,
        fill in 0usize..7,
        threads in 2usize..6,
        seed in any::<u64>(),
    ) {
        let m = gen::random_lower(n, fill, seed);
        let b = Matrix::from_fn(n, k, |i, j| {
            (((i * 31 + j * 17 + seed as usize) % 23) as f64) / 11.5 - 1.0
        });
        let mut x = b.clone();
        m.solve_multi_with(&syncfree_opts(threads), &mut x).unwrap();
        let xd = dense::trsm(m.triangle(), m.diag(), &m.to_dense(), &b).unwrap();
        prop_assert!(
            x.max_abs_diff(&xd).unwrap() < 1e-12,
            "sync-free multi-RHS vs dense trsm diverged beyond 1e-12"
        );
    }

    /// `SolveOpts::reuse` routing: a declared one-shot lands on the
    /// sync-free shape (zero barriers, zero levels, no analysis), while a
    /// large declared reuse keeps a barriered policy — and both still
    /// solve the system.
    #[test]
    fn reuse_declaration_routes_between_executors(
        n in 8usize..200,
        fill in 1usize..6,
        threads in 2usize..6,
        seed in any::<u64>(),
    ) {
        let m = gen::random_lower(n, fill, seed);
        let b = gen::rhs_vec(n, seed ^ 0x0e5);
        let one_shot = SolveOpts::new().threads(threads).reuse(1);
        let shape = m.execution_shape(&one_shot, 1);
        prop_assert_eq!(shape.policy, SchedulePolicy::SyncFree);
        prop_assert_eq!(shape.barriers, 0);
        prop_assert_eq!(shape.levels, 0);
        let mut x = b.clone();
        m.solve_with(&one_shot, &mut x).unwrap();
        prop_assert_eq!(m.analysis_count(), 0, "one-shot solves must not analyze");
        let seq = m.solve(&b).unwrap();
        prop_assert!(vec_abs_diff(&x, &seq) < 1e-12);
        let many = SolveOpts::new().threads(threads).reuse(100);
        let shape = m.execution_shape(&many, 1);
        prop_assert!(shape.policy != SchedulePolicy::SyncFree);
    }
}
