//! Deterministic sparse test-matrix generators.
//!
//! Like `dense::gen`, these produce reproducible, *well-conditioned*
//! triangular matrices: dominant diagonals, off-diagonal entries scaled by
//! row fill, so residual checks stay meaningful at every size the tests and
//! benches run.  Patterns are drawn from a seeded RNG and are exactly
//! reproducible per `(n, parameters, seed)` tuple — the determinism CI job
//! hashes solves of these matrices across `DENSE_THREADS` settings.

use crate::csc::SparseTriCsc;
use crate::csr::SparseTri;
use dense::{Diag, Triangle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random well-conditioned lower-triangular matrix with about
/// `fill` off-diagonal entries per row (capped by the row index) and a
/// dominant diagonal in `[1, 2)`.
///
/// Column positions are drawn uniformly below the diagonal, so the level
/// structure is irregular — early rows form wide levels, later rows chain
/// deeper — which is the shape level scheduling has to cope with in
/// incomplete-factor traffic.
pub fn random_lower(n: usize, fill: usize, seed: u64) -> SparseTri {
    let mut rng = StdRng::seed_from_u64(seed);
    let scale = 1.0 / (fill.max(1) as f64).sqrt();
    let mut ents: Vec<(usize, usize, f64)> = Vec::with_capacity(n * (fill + 1));
    let mut cols: Vec<usize> = Vec::with_capacity(fill);
    for i in 0..n {
        ents.push((i, i, 1.0 + rng.gen_range(0.0..1.0)));
        let want = fill.min(i);
        if want == 0 {
            continue;
        }
        cols.clear();
        while cols.len() < want {
            let j = rng.gen_range(0..i);
            if !cols.contains(&j) {
                cols.push(j);
            }
        }
        cols.sort_unstable();
        for &j in cols.iter() {
            ents.push((i, j, rng.gen_range(-1.0..1.0) * scale));
        }
    }
    SparseTri::from_triplets(n, Triangle::Lower, Diag::NonUnit, &ents)
        .expect("random_lower: generated structure is valid by construction")
}

/// A random well-conditioned banded lower-triangular matrix: every entry
/// within `bandwidth` below the diagonal is present.
///
/// An unbroken band chains each row to its predecessor, so the level
/// schedule is fully sequential — the worst case for level scheduling and
/// the pattern where the dense-fallback path wins.
pub fn banded_lower(n: usize, bandwidth: usize, seed: u64) -> SparseTri {
    let mut rng = StdRng::seed_from_u64(seed);
    let scale = 1.0 / (bandwidth.max(1) as f64).sqrt();
    let mut ents: Vec<(usize, usize, f64)> = Vec::with_capacity(n * (bandwidth + 1));
    for i in 0..n {
        ents.push((i, i, 1.0 + rng.gen_range(0.0..1.0)));
        for j in i.saturating_sub(bandwidth)..i {
            ents.push((i, j, rng.gen_range(-1.0..1.0) * scale));
        }
    }
    SparseTri::from_triplets(n, Triangle::Lower, Diag::NonUnit, &ents)
        .expect("banded_lower: generated structure is valid by construction")
}

/// A deep, narrow dependency DAG: `n / width` levels of exactly `width`
/// rows each, every row of a block depending on `deps` rows of the
/// previous block (band-limited dependencies, like a blocked banded
/// factor).
///
/// This is the barrier-sensitive shape the DAG-partitioned schedule is
/// built for: with `width` small, the level schedule crosses one barrier
/// per `width` rows — thousands of barriers on a solve whose levels hold a
/// handful of rows each — while the merged schedule aggregates hundreds of
/// these skinny levels per super-level.  (An unbroken band,
/// [`banded_lower`], is the degenerate `width = 1` chain; this generator
/// keeps `width`-way parallelism alive inside every level.)
pub fn deep_narrow_lower(n: usize, width: usize, deps: usize, seed: u64) -> SparseTri {
    let width = width.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let scale = 1.0 / (deps.max(1) as f64).sqrt();
    let mut ents: Vec<(usize, usize, f64)> = Vec::with_capacity(n * (deps + 1));
    for i in 0..n {
        ents.push((i, i, 1.0 + rng.gen_range(0.0..1.0)));
        let block = i / width;
        if block == 0 {
            continue;
        }
        let prev = (block - 1) * width;
        let prev_len = width.min(n - prev);
        let want = deps.min(prev_len);
        // `want` consecutive (wrapped) columns of the previous block,
        // starting at a row-dependent offset — distinct by construction,
        // and staggered so the dependency pattern is not rank-structured.
        let start = (i * 7 + 3) % prev_len;
        for t in 0..want {
            let j = prev + (start + t) % prev_len;
            ents.push((i, j, rng.gen_range(-1.0..1.0) * scale));
        }
    }
    SparseTri::from_triplets(n, Triangle::Lower, Diag::NonUnit, &ents)
        .expect("deep_narrow_lower: generated structure is valid by construction")
}

/// A random well-conditioned upper-triangular matrix: the transpose of
/// [`random_lower`] with the same parameters.
pub fn random_upper(n: usize, fill: usize, seed: u64) -> SparseTri {
    random_lower(n, fill, seed).transpose()
}

/// [`random_lower`] built directly in CSC form — the same matrix per
/// `(n, fill, seed)` tuple, constructed through
/// [`SparseTriCsc::from_triplets`] (row-major generation order, so the
/// constructor's column-major sort is genuinely exercised).
///
/// This is the sync-free executor's native test input; `to_csr()` of the
/// result equals [`random_lower`] exactly.
pub fn random_lower_csc(n: usize, fill: usize, seed: u64) -> SparseTriCsc {
    let csr = random_lower(n, fill, seed);
    let mut ents: Vec<(usize, usize, f64)> = Vec::with_capacity(csr.nnz());
    for i in 0..n {
        ents.push((i, i, csr.diag_value(i)));
        let (cols, vals) = csr.row_entries(i);
        for (&j, &v) in cols.iter().zip(vals) {
            ents.push((i, j, v));
        }
    }
    SparseTriCsc::from_triplets(n, Triangle::Lower, Diag::NonUnit, &ents)
        .expect("random_lower_csc: generated structure is valid by construction")
}

/// A right-hand-side vector with `O(1)` entries, matching `dense::gen::rhs`
/// seeding conventions.
pub fn rhs_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = random_lower(50, 4, 7);
        let b = random_lower(50, 4, 7);
        assert_eq!(a.to_dense(), b.to_dense());
        let c = random_lower(50, 4, 8);
        assert_ne!(a.to_dense(), c.to_dense());
        assert_eq!(rhs_vec(10, 3), rhs_vec(10, 3));
    }

    #[test]
    fn random_lower_has_requested_fill() {
        let n = 200;
        let fill = 6;
        let m = random_lower(n, fill, 1);
        assert_eq!(m.n(), n);
        assert!(m.to_dense().is_lower_triangular());
        // Rows past the warm-up have exactly `fill` off-diagonal entries.
        for i in fill..n {
            assert_eq!(m.row_entries(i).0.len(), fill, "row {i}");
        }
        for i in 0..n {
            assert!(m.diag_value(i) >= 1.0);
        }
    }

    #[test]
    fn banded_lower_is_a_full_band_and_sequential() {
        let m = banded_lower(64, 3, 9);
        for i in 0..64usize {
            let expect: Vec<usize> = (i.saturating_sub(3)..i).collect();
            assert_eq!(m.row_entries(i).0, &expect[..], "row {i}");
        }
        assert!(m.schedule().is_sequential());
        assert_eq!(m.schedule().num_levels(), 64);
    }

    #[test]
    fn deep_narrow_lower_has_exact_level_structure() {
        let (n, width, deps) = (1200usize, 4usize, 3usize);
        let m = deep_narrow_lower(n, width, deps, 2);
        let s = m.schedule();
        assert_eq!(s.num_levels(), n / width, "one level per block");
        assert_eq!(s.max_level_width(), width);
        assert_eq!(s.avg_level_width(), width as f64);
        // Every off-diagonal dependency points into the previous block.
        for i in width..n {
            let block = i / width;
            let (cols, _) = m.row_entries(i);
            assert_eq!(cols.len(), deps, "row {i}");
            for &j in cols {
                assert_eq!(j / width, block - 1, "row {i} dep {j}");
            }
        }
        // Deterministic per seed.
        assert_eq!(
            m.to_dense(),
            deep_narrow_lower(n, width, deps, 2).to_dense()
        );
    }

    #[test]
    fn random_lower_csc_matches_the_csr_generator() {
        let csc = random_lower_csc(150, 5, 13);
        let csr = random_lower(150, 5, 13);
        assert_eq!(csc.to_dense(), csr.to_dense());
        assert_eq!(csc.nnz(), csr.nnz());
        assert_eq!(csc.to_csr().to_dense(), csr.to_dense());
    }

    #[test]
    fn random_upper_transposes_the_lower_pattern() {
        let u = random_upper(40, 5, 11);
        assert_eq!(u.triangle(), Triangle::Upper);
        assert_eq!(u.to_dense(), random_lower(40, 5, 11).to_dense().transpose());
    }

    #[test]
    fn random_patterns_expose_parallelism() {
        // Sparse random fills have far fewer levels than rows.
        let m = random_lower(400, 4, 2);
        let s = m.schedule();
        assert!(
            s.num_levels() < 200,
            "expected level compression, got {} levels",
            s.num_levels()
        );
        assert!(s.max_level_width() > 4);
    }
}
