//! Dependency-DAG analysis: level sets for the parallel solve.
//!
//! A sparse triangular solve is a topological traversal of the dependency
//! DAG induced by the sparsity pattern: in `L x = b`, row `i` may be
//! eliminated once every row `j` with `L[i, j] ≠ 0` (`j < i`) is done.
//! Following the classical *level scheduling* construction (Anderson &
//! Saad; Li's CUDA formulation cited in `PAPERS.md`), rows are grouped into
//! **levels**
//!
//! ```text
//! level(i) = 1 + max{ level(j) : A[i, j] ≠ 0, j ≠ i }      (max ∅ = -1)
//! ```
//!
//! so every row in a level depends only on rows in strictly earlier levels —
//! all rows of one level can be eliminated concurrently, and the solve is a
//! sequence of `num_levels` parallel sweeps separated by barriers.
//!
//! The analysis is an O(nnz) pass over the pattern.  It is *pattern-only*
//! (values never matter), which is why [`crate::SparseTri`] caches one
//! [`Schedule`] per matrix and reuses it across every solve: iterative
//! solvers apply the same factor hundreds of times per outer iteration, and
//! re-analyzing per apply would dwarf the solve itself.

use crate::csr::SparseTri;
use dense::Triangle;

/// A level-set schedule: the rows of a [`SparseTri`], grouped into
/// dependency levels (all rows of level `l` depend only on rows in levels
/// `< l`).
///
/// Stored flattened, CSR-style: `rows[level_ptr[l] .. level_ptr[l + 1]]`
/// are the rows of level `l`, in increasing row order — a fixed,
/// worker-count-independent order, which is part of what keeps the parallel
/// executors bitwise deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    level_ptr: Vec<usize>,
    rows: Vec<usize>,
}

impl Schedule {
    /// Computes the level sets of `mat`'s dependency DAG.
    ///
    /// This is the standalone entry point; most callers want the cached
    /// [`SparseTri::schedule`] instead.  For [`Triangle::Lower`] rows are
    /// visited in increasing order (dependencies point down), for
    /// [`Triangle::Upper`] in decreasing order — either way each row's
    /// dependencies are resolved before the row itself, so one pass
    /// suffices.
    pub fn analyze(mat: &SparseTri) -> Schedule {
        let n = mat.n();
        let row_ptr = mat.row_ptr();
        let col_idx = mat.col_idx();
        let mut level = vec![0usize; n];
        let mut num_levels = 0usize;
        let row_level = |levels: &mut Vec<usize>, i: usize| {
            let mut l = 0usize;
            for &j in &col_idx[row_ptr[i]..row_ptr[i + 1]] {
                l = l.max(levels[j] + 1);
            }
            levels[i] = l;
            l
        };
        match mat.triangle() {
            Triangle::Lower => {
                for i in 0..n {
                    num_levels = num_levels.max(row_level(&mut level, i) + 1);
                }
            }
            Triangle::Upper => {
                for i in (0..n).rev() {
                    num_levels = num_levels.max(row_level(&mut level, i) + 1);
                }
            }
        }
        if n == 0 {
            return Schedule {
                level_ptr: vec![0],
                rows: Vec::new(),
            };
        }

        // Counting sort of rows by level; filling in increasing row order
        // keeps each level's row list sorted.
        let mut level_ptr = vec![0usize; num_levels + 1];
        for &l in &level {
            level_ptr[l + 1] += 1;
        }
        for l in 0..num_levels {
            level_ptr[l + 1] += level_ptr[l];
        }
        let mut fill = level_ptr.clone();
        let mut rows = vec![0usize; n];
        for (i, &l) in level.iter().enumerate() {
            rows[fill[l]] = i;
            fill[l] += 1;
        }
        Schedule { level_ptr, rows }
    }

    /// Number of dependency levels (the critical-path length of the solve).
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.level_ptr.len() - 1
    }

    /// The rows of level `l`, in increasing row order.
    #[inline]
    pub fn level_rows(&self, l: usize) -> &[usize] {
        &self.rows[self.level_ptr[l]..self.level_ptr[l + 1]]
    }

    /// All rows in level order (a permutation of `0..n`).
    #[inline]
    pub fn rows(&self) -> &[usize] {
        &self.rows
    }

    /// Width of the widest level — the peak row-parallelism the pattern
    /// exposes.
    pub fn max_level_width(&self) -> usize {
        (0..self.num_levels())
            .map(|l| self.level_ptr[l + 1] - self.level_ptr[l])
            .max()
            .unwrap_or(0)
    }

    /// Average level width (`n / num_levels`) — the mean parallelism across
    /// the whole solve.
    pub fn avg_level_width(&self) -> f64 {
        if self.num_levels() == 0 {
            return 0.0;
        }
        self.rows.len() as f64 / self.num_levels() as f64
    }

    /// `true` when every level holds a single row, i.e. the pattern chains
    /// every row to the previous one and level scheduling exposes no
    /// parallelism at all (e.g. a dense triangle or an unbroken band).
    pub fn is_sequential(&self) -> bool {
        self.max_level_width() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::{Diag, Triangle};

    fn lower(entries: &[(usize, usize, f64)], n: usize) -> SparseTri {
        let mut all: Vec<(usize, usize, f64)> = entries.to_vec();
        for i in 0..n {
            all.push((i, i, 1.0));
        }
        SparseTri::from_triplets(n, Triangle::Lower, Diag::NonUnit, &all).unwrap()
    }

    #[test]
    fn diagonal_matrix_is_one_level() {
        let m = lower(&[], 5);
        let s = Schedule::analyze(&m);
        assert_eq!(s.num_levels(), 1);
        assert_eq!(s.level_rows(0), &[0, 1, 2, 3, 4]);
        assert_eq!(s.max_level_width(), 5);
        assert!(!s.is_sequential());
    }

    #[test]
    fn bidiagonal_chain_is_fully_sequential() {
        let n = 6;
        let ents: Vec<_> = (1..n).map(|i| (i, i - 1, 1.0)).collect();
        let s = Schedule::analyze(&lower(&ents, n));
        assert_eq!(s.num_levels(), n);
        assert!(s.is_sequential());
        assert_eq!(s.rows(), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(s.avg_level_width(), 1.0);
    }

    #[test]
    fn forest_pattern_levels_match_hand_computation() {
        // Rows 0,1,2 independent; 3 <- {0,1}; 4 <- {2}; 5 <- {3,4}.
        let m = lower(
            &[
                (3, 0, 1.0),
                (3, 1, 1.0),
                (4, 2, 1.0),
                (5, 3, 1.0),
                (5, 4, 1.0),
            ],
            6,
        );
        let s = Schedule::analyze(&m);
        assert_eq!(s.num_levels(), 3);
        assert_eq!(s.level_rows(0), &[0, 1, 2]);
        assert_eq!(s.level_rows(1), &[3, 4]);
        assert_eq!(s.level_rows(2), &[5]);
        assert_eq!(s.max_level_width(), 3);
        assert!((s.avg_level_width() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn upper_triangle_levels_run_bottom_up() {
        // Upper bidiagonal: row i depends on row i+1 -> levels reversed.
        let n = 4;
        let mut ents: Vec<_> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        for i in 0..n {
            ents.push((i, i, 1.0));
        }
        let m = SparseTri::from_triplets(n, Triangle::Upper, Diag::NonUnit, &ents).unwrap();
        let s = Schedule::analyze(&m);
        assert_eq!(s.num_levels(), n);
        assert_eq!(s.level_rows(0), &[3]);
        assert_eq!(s.level_rows(3), &[0]);
    }

    #[test]
    fn every_dependency_lands_in_an_earlier_level() {
        // A denser random-ish pattern: validate the defining invariant.
        let n = 40;
        let mut ents = Vec::new();
        for i in 1..n {
            for j in 0..i {
                if (i * 31 + j * 17) % 7 == 0 {
                    ents.push((i, j, 1.0));
                }
            }
        }
        let m = lower(&ents, n);
        let s = Schedule::analyze(&m);
        let mut level_of = vec![0usize; n];
        for l in 0..s.num_levels() {
            for &r in s.level_rows(l) {
                level_of[r] = l;
            }
        }
        // Every row appears exactly once.
        let mut seen = vec![false; n];
        for &r in s.rows() {
            assert!(!seen[r]);
            seen[r] = true;
        }
        for i in 0..n {
            let (cols, _) = m.row_entries(i);
            for &j in cols {
                assert!(
                    level_of[j] < level_of[i],
                    "dependency {j} of row {i} not in an earlier level"
                );
            }
        }
    }

    #[test]
    fn empty_matrix_has_no_levels() {
        let m = SparseTri::from_triplets(0, Triangle::Lower, Diag::NonUnit, &[]).unwrap();
        let s = Schedule::analyze(&m);
        assert_eq!(s.num_levels(), 0);
        assert_eq!(s.max_level_width(), 0);
        assert_eq!(s.avg_level_width(), 0.0);
    }
}
