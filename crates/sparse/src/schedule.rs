//! Dependency-DAG analysis: level sets (and merged super-levels) for the
//! parallel solve.
//!
//! A sparse triangular solve is a topological traversal of the dependency
//! DAG induced by the sparsity pattern: in `L x = b`, row `i` may be
//! eliminated once every row `j` with `L[i, j] ≠ 0` (`j < i`) is done.
//! Following the classical *level scheduling* construction (Anderson &
//! Saad; Li's CUDA formulation cited in `PAPERS.md`), rows are grouped into
//! **levels**
//!
//! ```text
//! level(i) = 1 + max{ level(j) : A[i, j] ≠ 0, j ≠ i }      (max ∅ = -1)
//! ```
//!
//! so every row in a level depends only on rows in strictly earlier levels —
//! all rows of one level can be eliminated concurrently, and the solve is a
//! sequence of `num_levels` parallel sweeps separated by barriers.
//!
//! Pure level scheduling pays **one barrier per level**, which is ruinous on
//! deep narrow DAGs (banded factors, ILU-style patterns): thousands of
//! skinny levels, a handful of rows each, and the barrier wait dwarfs the
//! row arithmetic.  The DAG-partitioned remedy (Böhnlein et al., *Efficient
//! Parallel Scheduling for Sparse Triangular Solvers*; the sync-free CUDA
//! solvers of Liu et al.) is the second analysis product here: a
//! [`MergedSchedule`] greedily merges *consecutive* levels into coarse
//! **super-levels** until each clears a work threshold
//! ([`SUPER_MIN_WEIGHT`]), so the executor crosses one barrier per
//! super-level instead of one per level, and *within* a super-level tracks
//! readiness **point-to-point**: per-row atomic flags, each worker
//! spinning/yielding only on the rows its own rows actually consume.
//! [`SchedulePolicy`] names the two executors; [`SchedulePolicy::auto`]
//! picks between them from the level-shape statistics.
//!
//! The analysis is an O(nnz) pass over the pattern.  It is *pattern-only*
//! (values never matter), which is why [`crate::SparseTri`] caches one
//! [`Schedule`] (and one [`MergedSchedule`]) per matrix and reuses them
//! across every solve: iterative solvers apply the same factor hundreds of
//! times per outer iteration, and re-analyzing per apply would dwarf the
//! solve itself.

use crate::csr::SparseTri;
use dense::Triangle;

/// A level-set schedule: the rows of a [`SparseTri`], grouped into
/// dependency levels (all rows of level `l` depend only on rows in levels
/// `< l`).
///
/// Stored flattened, CSR-style: `rows[level_ptr[l] .. level_ptr[l + 1]]`
/// are the rows of level `l`, in increasing row order — a fixed,
/// worker-count-independent order, which is part of what keeps the parallel
/// executors bitwise deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    level_ptr: Vec<usize>,
    rows: Vec<usize>,
}

impl Schedule {
    /// Computes the level sets of `mat`'s dependency DAG.
    ///
    /// This is the standalone entry point; most callers want the cached
    /// [`SparseTri::schedule`] instead.  For [`Triangle::Lower`] rows are
    /// visited in increasing order (dependencies point down), for
    /// [`Triangle::Upper`] in decreasing order — either way each row's
    /// dependencies are resolved before the row itself, so one pass
    /// suffices.
    pub fn analyze(mat: &SparseTri) -> Schedule {
        let _span = obs::span_with("sparse", "schedule_analyze", "n", mat.n() as u64);
        let n = mat.n();
        let row_ptr = mat.row_ptr();
        let col_idx = mat.col_idx();
        let mut level = vec![0usize; n];
        let mut num_levels = 0usize;
        let row_level = |levels: &mut Vec<usize>, i: usize| {
            let mut l = 0usize;
            for &j in &col_idx[row_ptr[i]..row_ptr[i + 1]] {
                l = l.max(levels[j] + 1);
            }
            levels[i] = l;
            l
        };
        match mat.triangle() {
            Triangle::Lower => {
                for i in 0..n {
                    num_levels = num_levels.max(row_level(&mut level, i) + 1);
                }
            }
            Triangle::Upper => {
                for i in (0..n).rev() {
                    num_levels = num_levels.max(row_level(&mut level, i) + 1);
                }
            }
        }
        if n == 0 {
            return Schedule {
                level_ptr: vec![0],
                rows: Vec::new(),
            };
        }

        // Counting sort of rows by level; filling in increasing row order
        // keeps each level's row list sorted.
        let mut level_ptr = vec![0usize; num_levels + 1];
        for &l in &level {
            level_ptr[l + 1] += 1;
        }
        for l in 0..num_levels {
            level_ptr[l + 1] += level_ptr[l];
        }
        let mut fill = level_ptr.clone();
        let mut rows = vec![0usize; n];
        for (i, &l) in level.iter().enumerate() {
            rows[fill[l]] = i;
            fill[l] += 1;
        }
        Schedule { level_ptr, rows }
    }

    /// Number of dependency levels (the critical-path length of the solve).
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.level_ptr.len() - 1
    }

    /// The rows of level `l`, in increasing row order.
    #[inline]
    pub fn level_rows(&self, l: usize) -> &[usize] {
        &self.rows[self.level_ptr[l]..self.level_ptr[l + 1]]
    }

    /// All rows in level order (a permutation of `0..n`).
    #[inline]
    pub fn rows(&self) -> &[usize] {
        &self.rows
    }

    /// Width of the widest level — the peak row-parallelism the pattern
    /// exposes.
    pub fn max_level_width(&self) -> usize {
        (0..self.num_levels())
            .map(|l| self.level_ptr[l + 1] - self.level_ptr[l])
            .max()
            .unwrap_or(0)
    }

    /// Average level width (`n / num_levels`) — the mean parallelism across
    /// the whole solve.
    pub fn avg_level_width(&self) -> f64 {
        if self.num_levels() == 0 {
            return 0.0;
        }
        self.rows.len() as f64 / self.num_levels() as f64
    }

    /// `true` when every level holds a single row, i.e. the pattern chains
    /// every row to the previous one and level scheduling exposes no
    /// parallelism at all (e.g. a dense triangle or an unbroken band).
    pub fn is_sequential(&self) -> bool {
        self.max_level_width() <= 1
    }

    /// The range level `l` occupies in the flattened [`Schedule::rows`]
    /// array (what the merged schedule's super-level boundaries index into).
    #[inline]
    pub fn level_range(&self, l: usize) -> std::ops::Range<usize> {
        self.level_ptr[l]..self.level_ptr[l + 1]
    }
}

// ---------------------------------------------------------------------------
// SchedulePolicy & MergedSchedule: DAG-partitioned scheduling.
// ---------------------------------------------------------------------------

/// Which parallel executor a sparse solve runs.
///
/// * [`SchedulePolicy::Level`] — the classical level schedule: one parallel
///   sweep per dependency level, a global barrier between levels
///   (`num_levels` barriers per solve).
/// * [`SchedulePolicy::Merged`] — the DAG-partitioned schedule: consecutive
///   levels merged into super-levels that clear [`SUPER_MIN_WEIGHT`], one
///   barrier per *super-level*, and per-row point-to-point readiness flags
///   inside each super-level.
/// * [`SchedulePolicy::SyncFree`] — the analysis-free CSC column sweep
///   (Liu et al., Euro-Par'16): per-row atomic in-degree counters and
///   per-worker partial-sum accumulators, **zero** levels, **zero**
///   barriers.  Runs on the cached CSC mirror of the matrix.
///
/// The two barriered executors are **bitwise identical** to the sequential
/// sweep (and to each other) at every worker count.  The sync-free executor
/// is bitwise reproducible only *per fixed worker count* — changing the
/// worker count re-associates its per-row floating-point reductions, so it
/// agrees with the others to rounding (1e-12 in the test suites), not
/// bitwise.  Callers normally leave the choice to [`SchedulePolicy::auto`]
/// via `SolveOpts::policy(None)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Barrier-separated level sweeps (one barrier per dependency level).
    Level,
    /// Merged super-levels with point-to-point readiness inside each
    /// (one barrier per super-level).
    Merged,
    /// Analysis-free sync-free CSC column sweep (no levels, no barriers;
    /// deterministic per fixed worker count only).
    SyncFree,
}

impl SchedulePolicy {
    /// Stable lower-case name (`"level"` / `"merged"` / `"syncfree"`), used
    /// by reports, bench labels and the `SPARSE_POLICY` CI knob.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulePolicy::Level => "level",
            SchedulePolicy::Merged => "merged",
            SchedulePolicy::SyncFree => "syncfree",
        }
    }

    /// Picks the executor from the level-shape statistics and the caller's
    /// declared reuse.
    ///
    /// A solve that will be applied fewer than [`ANALYZE_REUSE_MIN`] times
    /// (`reuse: Some(r)` with `r < 4`) cannot amortize a dependency
    /// analysis at all, so it goes straight to the analysis-free
    /// [`SchedulePolicy::SyncFree`] column sweep.  `reuse: None` declares
    /// nothing and is treated as "apply many times" — the historical
    /// behavior, which iterative-solver callers rely on.
    ///
    /// Above the reuse threshold the analyzed schedules pay for themselves
    /// and the choice falls to the level shape: the merged schedule wins
    /// when there are many levels to merge ([`MERGE_MIN_LEVELS`]) and they
    /// are skinny relative to the worker count (mean width below `workers ·`
    /// [`MERGE_WIDTH_FACTOR`] — wide levels amortize their barrier over
    /// lots of parallel rows, skinny ones do not).  Fully sequential
    /// patterns (an unbroken chain) stay on [`SchedulePolicy::Level`],
    /// whose width cap degrades them to the analysis-free sequential sweep.
    ///
    /// Depends only on the cached analysis, `workers` and `reuse`, never on
    /// timing, so the choice is itself deterministic and plan-reportable.
    pub fn auto(schedule: &Schedule, workers: usize, reuse: Option<usize>) -> SchedulePolicy {
        if reuse.is_some_and(|r| r < ANALYZE_REUSE_MIN) {
            return SchedulePolicy::SyncFree;
        }
        if schedule.is_sequential() {
            return SchedulePolicy::Level;
        }
        let skinny = schedule.avg_level_width() < (workers.max(1) * MERGE_WIDTH_FACTOR) as f64;
        if schedule.num_levels() >= MERGE_MIN_LEVELS && skinny {
            SchedulePolicy::Merged
        } else {
            SchedulePolicy::Level
        }
    }
}

/// Minimum aggregate weight (rows + stored off-diagonal entries — roughly
/// half the flops per right-hand side) of one super-level.  Consecutive
/// levels are merged until this clears, so a worker's share of a
/// super-level is substantial enough to amortize the one barrier the
/// super-level costs.  Chosen for the worker counts this crate targets
/// (≤ ~8): ≥ 512 weight units per worker at 8 workers.
pub const SUPER_MIN_WEIGHT: usize = 4096;

/// Below this many levels the barrier count is too small for merging to
/// matter; [`SchedulePolicy::auto`] stays on the level schedule.
pub const MERGE_MIN_LEVELS: usize = 64;

/// [`SchedulePolicy::auto`] calls a level shape *skinny* when the mean
/// level width is below `workers ·` this factor.
pub const MERGE_WIDTH_FACTOR: usize = 16;

/// Minimum declared reuse for a dependency analysis to be worth running:
/// below this many applies of the same matrix, [`SchedulePolicy::auto`]
/// picks the analysis-free [`SchedulePolicy::SyncFree`] sweep.  The level
/// analysis costs roughly one solve's worth of pattern traversal (the
/// merged analysis a second), so a handful of applies amortizes it and
/// anything less does not.
pub const ANALYZE_REUSE_MIN: usize = 4;

/// The DAG-partitioned companion of a [`Schedule`]: consecutive levels
/// merged into **super-levels** whose aggregate row/nnz weight clears
/// [`SUPER_MIN_WEIGHT`].
///
/// A super-level is a contiguous range of the parent schedule's flattened
/// [`Schedule::rows`] array (levels are contiguous there, and merging only
/// ever joins *consecutive* levels), so this analysis stores boundaries
/// into that array plus the inverse `row → super-level` map the executor
/// uses for its point-to-point dependency checks: a dependency in an
/// *earlier* super-level is already complete (the barrier between
/// super-levels guarantees it), so workers spin only on dependencies inside
/// the super-level they are currently sweeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergedSchedule {
    /// Super-level boundaries as indices into the flattened row arrays
    /// (both [`MergedSchedule::rows`] and the parent [`Schedule::rows`] —
    /// the reordering below permutes rows only *within* these boundaries):
    /// super-level `s` covers flat positions `super_ptr[s] .. super_ptr[s +
    /// 1]`.
    super_ptr: Vec<usize>,
    /// The merged executor's own sweep order: the parent schedule's
    /// flattened row array with each super-level's rows reordered by
    /// `(level ascending, fan-out descending, row id)`.  Level stays the
    /// primary key, so every dependency still sits at a strictly earlier
    /// flat position — the executor's deadlock-freedom invariant — while
    /// within a level the rows that unblock the most same-super-level
    /// dependents are eliminated (and their readiness flags published)
    /// first, shortening the point-to-point spins.
    rows: Vec<usize>,
    /// Per row (indexed by row id), the super-level containing it.
    super_of: Vec<u32>,
    /// Levels of the parent schedule (what the merging compressed).
    levels: usize,
}

impl MergedSchedule {
    /// Merges the levels of `schedule` (analyzed from `mat`) into
    /// super-levels.
    ///
    /// Greedy in level order: accumulate consecutive levels until the
    /// running weight (rows + stored off-diagonal entries) reaches
    /// [`SUPER_MIN_WEIGHT`], then close the super-level.  A single level
    /// heavier than the threshold forms its own super-level, so wide-level
    /// patterns degenerate to exactly the level schedule's shape.  O(n +
    /// nnz) given the cached level analysis; most callers want the cached
    /// [`SparseTri::merged_schedule`] instead.
    pub fn build(schedule: &Schedule, mat: &SparseTri) -> MergedSchedule {
        let _span = obs::span_with("sparse", "merged_build", "n", mat.n() as u64);
        let n = mat.n();
        assert!(n < u32::MAX as usize, "row ids must fit in u32");
        let num_levels = schedule.num_levels();
        let mut super_ptr = Vec::with_capacity(16);
        super_ptr.push(0usize);
        let mut super_of = vec![0u32; n];
        let mut level_of = vec![0u32; n];
        let mut weight = 0usize;
        for l in 0..num_levels {
            let range = schedule.level_range(l);
            for &i in &schedule.rows()[range.clone()] {
                let (cols, _) = mat.row_entries(i);
                weight += 1 + cols.len();
            }
            let s = super_ptr.len() - 1;
            for &i in &schedule.rows()[range.clone()] {
                super_of[i] = s as u32;
                level_of[i] = l as u32;
            }
            if weight >= SUPER_MIN_WEIGHT && l + 1 < num_levels {
                super_ptr.push(range.end);
                weight = 0;
            }
        }
        if n > 0 {
            super_ptr.push(n);
        }

        // In-super-level fan-out: how many rows of the *same* super-level
        // consume each row (only those spins exist — earlier super-levels
        // are settled by the barrier).
        let mut fan_out = vec![0u32; n];
        for i in 0..n {
            let (cols, _) = mat.row_entries(i);
            for &j in cols {
                if super_of[j] == super_of[i] {
                    fan_out[j] += 1;
                }
            }
        }

        // The executor's sweep order: within each super-level sort by
        // (level asc, fan-out desc, row id).  The key is a total order, so
        // the permutation — like everything else here — depends only on the
        // pattern.
        let mut rows = schedule.rows().to_vec();
        for s in 0..super_ptr.len().saturating_sub(1) {
            rows[super_ptr[s]..super_ptr[s + 1]]
                .sort_unstable_by_key(|&i| (level_of[i], u32::MAX - fan_out[i], i));
        }

        MergedSchedule {
            super_ptr,
            rows,
            super_of,
            levels: num_levels,
        }
    }

    /// Number of super-levels — the barrier count of one merged-schedule
    /// solve.
    #[inline]
    pub fn num_super_levels(&self) -> usize {
        self.super_ptr.len() - 1
    }

    /// Levels of the parent schedule this analysis merged.
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.levels
    }

    /// The range super-level `s` occupies in the flattened row arrays
    /// (this schedule's reordered [`MergedSchedule::rows`] and the parent
    /// [`Schedule::rows`] — the boundaries are shared).
    #[inline]
    pub fn super_range(&self, s: usize) -> std::ops::Range<usize> {
        self.super_ptr[s]..self.super_ptr[s + 1]
    }

    /// The merged executor's sweep order: all rows, super-level by
    /// super-level, each super-level internally reordered by `(level asc,
    /// in-super-level fan-out desc, row id)`.  A permutation of `0..n` that
    /// keeps every dependency at a strictly earlier flat position.
    #[inline]
    pub fn rows(&self) -> &[usize] {
        &self.rows
    }

    /// The super-level containing row `i`.
    #[inline]
    pub fn super_of(&self, i: usize) -> u32 {
        self.super_of[i]
    }

    /// Rows in the largest super-level — the merged executor's worker
    /// ceiling (more workers than rows in the widest super-level would
    /// never receive a row).
    pub fn max_super_width(&self) -> usize {
        (0..self.num_super_levels())
            .map(|s| self.super_ptr[s + 1] - self.super_ptr[s])
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::{Diag, Triangle};

    fn lower(entries: &[(usize, usize, f64)], n: usize) -> SparseTri {
        let mut all: Vec<(usize, usize, f64)> = entries.to_vec();
        for i in 0..n {
            all.push((i, i, 1.0));
        }
        SparseTri::from_triplets(n, Triangle::Lower, Diag::NonUnit, &all).unwrap()
    }

    #[test]
    fn diagonal_matrix_is_one_level() {
        let m = lower(&[], 5);
        let s = Schedule::analyze(&m);
        assert_eq!(s.num_levels(), 1);
        assert_eq!(s.level_rows(0), &[0, 1, 2, 3, 4]);
        assert_eq!(s.max_level_width(), 5);
        assert!(!s.is_sequential());
    }

    #[test]
    fn bidiagonal_chain_is_fully_sequential() {
        let n = 6;
        let ents: Vec<_> = (1..n).map(|i| (i, i - 1, 1.0)).collect();
        let s = Schedule::analyze(&lower(&ents, n));
        assert_eq!(s.num_levels(), n);
        assert!(s.is_sequential());
        assert_eq!(s.rows(), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(s.avg_level_width(), 1.0);
    }

    #[test]
    fn forest_pattern_levels_match_hand_computation() {
        // Rows 0,1,2 independent; 3 <- {0,1}; 4 <- {2}; 5 <- {3,4}.
        let m = lower(
            &[
                (3, 0, 1.0),
                (3, 1, 1.0),
                (4, 2, 1.0),
                (5, 3, 1.0),
                (5, 4, 1.0),
            ],
            6,
        );
        let s = Schedule::analyze(&m);
        assert_eq!(s.num_levels(), 3);
        assert_eq!(s.level_rows(0), &[0, 1, 2]);
        assert_eq!(s.level_rows(1), &[3, 4]);
        assert_eq!(s.level_rows(2), &[5]);
        assert_eq!(s.max_level_width(), 3);
        assert!((s.avg_level_width() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn upper_triangle_levels_run_bottom_up() {
        // Upper bidiagonal: row i depends on row i+1 -> levels reversed.
        let n = 4;
        let mut ents: Vec<_> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        for i in 0..n {
            ents.push((i, i, 1.0));
        }
        let m = SparseTri::from_triplets(n, Triangle::Upper, Diag::NonUnit, &ents).unwrap();
        let s = Schedule::analyze(&m);
        assert_eq!(s.num_levels(), n);
        assert_eq!(s.level_rows(0), &[3]);
        assert_eq!(s.level_rows(3), &[0]);
    }

    #[test]
    fn every_dependency_lands_in_an_earlier_level() {
        // A denser random-ish pattern: validate the defining invariant.
        let n = 40;
        let mut ents = Vec::new();
        for i in 1..n {
            for j in 0..i {
                if (i * 31 + j * 17) % 7 == 0 {
                    ents.push((i, j, 1.0));
                }
            }
        }
        let m = lower(&ents, n);
        let s = Schedule::analyze(&m);
        let mut level_of = vec![0usize; n];
        for l in 0..s.num_levels() {
            for &r in s.level_rows(l) {
                level_of[r] = l;
            }
        }
        // Every row appears exactly once.
        let mut seen = vec![false; n];
        for &r in s.rows() {
            assert!(!seen[r]);
            seen[r] = true;
        }
        for i in 0..n {
            let (cols, _) = m.row_entries(i);
            for &j in cols {
                assert!(
                    level_of[j] < level_of[i],
                    "dependency {j} of row {i} not in an earlier level"
                );
            }
        }
    }

    #[test]
    fn empty_matrix_has_no_levels() {
        let m = SparseTri::from_triplets(0, Triangle::Lower, Diag::NonUnit, &[]).unwrap();
        let s = Schedule::analyze(&m);
        assert_eq!(s.num_levels(), 0);
        assert_eq!(s.max_level_width(), 0);
        assert_eq!(s.avg_level_width(), 0.0);
        let g = MergedSchedule::build(&s, &m);
        assert_eq!(g.num_super_levels(), 0);
        assert_eq!(g.max_super_width(), 0);
    }

    #[test]
    fn merged_super_levels_partition_rows_on_level_boundaries() {
        // A deep narrow DAG: every super-level must be a contiguous run of
        // whole levels, cover every row exactly once, and agree with the
        // row → super-level inverse map.
        let m = crate::gen::deep_narrow_lower(6000, 3, 2, 5);
        let s = Schedule::analyze(&m);
        let g = MergedSchedule::build(&s, &m);
        let level_ends: std::collections::HashSet<usize> =
            (0..s.num_levels()).map(|l| s.level_range(l).end).collect();
        let mut covered = 0usize;
        for sl in 0..g.num_super_levels() {
            let r = g.super_range(sl);
            assert_eq!(r.start, covered, "super-levels must tile contiguously");
            assert!(r.end > r.start);
            assert!(
                level_ends.contains(&r.end),
                "super-level {sl} ends mid-level at {}",
                r.end
            );
            for &i in &s.rows()[r.clone()] {
                assert_eq!(g.super_of(i), sl as u32, "row {i} super map");
            }
            covered = r.end;
        }
        assert_eq!(covered, m.n());
        assert_eq!(g.num_levels(), s.num_levels());
    }

    #[test]
    fn merged_sweep_order_reorders_within_super_levels_only() {
        let m = crate::gen::deep_narrow_lower(6000, 3, 2, 5);
        let s = Schedule::analyze(&m);
        let g = MergedSchedule::build(&s, &m);
        // Level of each row, for the invariant checks below.
        let mut level_of = vec![0usize; m.n()];
        for l in 0..s.num_levels() {
            for &r in s.level_rows(l) {
                level_of[r] = l;
            }
        }
        let mut flat_pos = vec![0usize; m.n()];
        for (p, &i) in g.rows().iter().enumerate() {
            flat_pos[i] = p;
        }
        for sl in 0..g.num_super_levels() {
            let r = g.super_range(sl);
            // Same row set per super-level as the parent schedule…
            let mut a: Vec<usize> = s.rows()[r.clone()].to_vec();
            let mut b: Vec<usize> = g.rows()[r.clone()].to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "super-level {sl} must be a permutation");
            // …with level still the primary order inside it.
            for w in g.rows()[r].windows(2) {
                assert!(
                    level_of[w[0]] <= level_of[w[1]],
                    "level order violated between rows {} and {}",
                    w[0],
                    w[1]
                );
            }
        }
        // The executor's deadlock-freedom invariant: every dependency sits
        // at a strictly earlier flat position in the sweep order.
        for i in 0..m.n() {
            let (cols, _) = m.row_entries(i);
            for &j in cols {
                assert!(
                    flat_pos[j] < flat_pos[i],
                    "dependency {j} of row {i} not earlier in the sweep"
                );
            }
        }
        // Pattern-only analysis: rebuilding gives the identical permutation.
        assert_eq!(g.rows(), MergedSchedule::build(&s, &m).rows());
    }

    #[test]
    fn high_fan_out_rows_move_to_the_front_of_their_level() {
        // One super-level (total weight << SUPER_MIN_WEIGHT), two levels.
        // Every level-1 row consumes row 9, one also consumes row 0 — so
        // within level 0 the sweep must hoist 9 ahead of 0..=8, while the
        // zero-fan-out rows keep their row-id order behind it.
        let mut ents: Vec<(usize, usize, f64)> = (10..20).map(|i| (i, 9, 1.0)).collect();
        ents.push((10, 0, 1.0));
        let m = lower(&ents, 20);
        let s = Schedule::analyze(&m);
        let g = MergedSchedule::build(&s, &m);
        assert_eq!(g.num_super_levels(), 1);
        assert_eq!(s.level_rows(0), (0..10).collect::<Vec<_>>().as_slice());
        assert_eq!(
            &g.rows()[..10],
            &[9, 0, 1, 2, 3, 4, 5, 6, 7, 8],
            "fan-out 10 beats fan-out 1 beats fan-out 0"
        );
        assert_eq!(&g.rows()[10..], (10..20).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn merging_compresses_deep_dags_but_not_wide_ones() {
        // 2000 skinny levels -> far fewer super-levels.
        let deep = crate::gen::deep_narrow_lower(8000, 4, 3, 7);
        let ds = Schedule::analyze(&deep);
        let dg = MergedSchedule::build(&ds, &deep);
        assert_eq!(ds.num_levels(), 2000);
        assert!(
            dg.num_super_levels() * 10 <= ds.num_levels(),
            "expected >=10x barrier compression, got {} super-levels for {} levels",
            dg.num_super_levels(),
            ds.num_levels()
        );
        assert!(dg.max_super_width() >= SUPER_MIN_WEIGHT / (4 + 1 + 1));
        // A diagonal matrix is one wide level: nothing to merge.
        let wide = lower(&[], 500);
        let ws = Schedule::analyze(&wide);
        let wg = MergedSchedule::build(&ws, &wide);
        assert_eq!(wg.num_super_levels(), 1);
        assert_eq!(wg.max_super_width(), 500);
    }

    #[test]
    fn auto_policy_follows_the_level_shape() {
        // Unbroken chain: no parallelism, stay on Level (which degrades to
        // the sequential sweep through the width cap).
        let chain = crate::gen::banded_lower(2000, 1, 1);
        assert!(chain.schedule().is_sequential());
        assert_eq!(
            SchedulePolicy::auto(chain.schedule(), 4, None),
            SchedulePolicy::Level
        );
        // Deep narrow DAG: many skinny levels -> Merged.
        let deep = crate::gen::deep_narrow_lower(8000, 4, 3, 7);
        assert_eq!(
            SchedulePolicy::auto(deep.schedule(), 4, None),
            SchedulePolicy::Merged
        );
        // One wide level: too few levels to merge -> Level.
        let wide = lower(&[], 500);
        assert_eq!(
            SchedulePolicy::auto(wide.schedule(), 4, None),
            SchedulePolicy::Level
        );
        assert_eq!(SchedulePolicy::Level.name(), "level");
        assert_eq!(SchedulePolicy::Merged.name(), "merged");
        assert_eq!(SchedulePolicy::SyncFree.name(), "syncfree");
    }

    #[test]
    fn auto_policy_prices_analysis_against_reuse() {
        let deep = crate::gen::deep_narrow_lower(8000, 4, 3, 7);
        // One-shot (and anything under the amortization threshold): the
        // analysis can never pay for itself -> SyncFree, whatever the shape.
        for r in [0usize, 1, ANALYZE_REUSE_MIN - 1] {
            assert_eq!(
                SchedulePolicy::auto(deep.schedule(), 4, Some(r)),
                SchedulePolicy::SyncFree
            );
        }
        // At or above the threshold the shape decides again.
        assert_eq!(
            SchedulePolicy::auto(deep.schedule(), 4, Some(ANALYZE_REUSE_MIN)),
            SchedulePolicy::Merged
        );
        assert_eq!(
            SchedulePolicy::auto(deep.schedule(), 4, Some(100)),
            SchedulePolicy::Merged
        );
        // Undeclared reuse keeps the historical many-apply behavior.
        assert_eq!(
            SchedulePolicy::auto(deep.schedule(), 4, None),
            SchedulePolicy::Merged
        );
        // Even a chain goes sync-free on a one-shot: the sequential column
        // sweep it degrades to is still analysis-free.
        let chain = crate::gen::banded_lower(2000, 1, 1);
        assert_eq!(
            SchedulePolicy::auto(chain.schedule(), 4, Some(1)),
            SchedulePolicy::SyncFree
        );
    }
}
