//! # `sparse` — level-scheduled parallel sparse triangular solves
//!
//! The paper's algorithms assume *dense* triangular systems, but most
//! real-world triangular-solve traffic is sparse: applying incomplete
//! factorizations (`ILU`/`IC` preconditioners) inside iterative solvers
//! means solving `L x = b` with an `L` that has a handful of entries per
//! row, thousands of times per run.  This crate opens that workload for the
//! reproduction, following the *level scheduling* literature cited in
//! `PAPERS.md` (Li, *On Parallel Solution of Sparse Triangular Linear
//! Systems in CUDA*; Böhnlein et al., *Efficient Parallel Scheduling for
//! Sparse Triangular Solvers*).
//!
//! The design splits the classical **analyze / solve** phases:
//!
//! * [`SparseTri`] — validated CSR storage for a lower- or upper-triangular
//!   matrix, reusing the dense crate's [`dense::Triangle`] / [`dense::Diag`]
//!   vocabulary, with a densify bridge ([`SparseTri::to_dense`]) to the
//!   dense kernels;
//! * [`Schedule`] — the analysis phase: an O(nnz) pass grouping rows into
//!   dependency *levels* (every row of a level depends only on earlier
//!   levels).  Computed once per matrix and cached
//!   ([`SparseTri::schedule`]), because iterative-solver traffic re-applies
//!   one pattern many times;
//! * [`MergedSchedule`] — the DAG-partitioned companion analysis:
//!   consecutive skinny levels merged into coarse *super-levels*
//!   (cached via [`SparseTri::merged_schedule`]), so deep narrow DAGs pay
//!   one barrier per super-level instead of one per level;
//! * solve executors ([`SparseTri::solve`], [`SparseTri::solve_multi`],
//!   the sequential baselines, and the [`SparseTri::solve_via_dense`]
//!   fallback) on the `dense::threads` worker pool (`DENSE_THREADS`
//!   workers): barrier-separated level sweeps under
//!   [`SchedulePolicy::Level`], super-level sweeps with per-row
//!   point-to-point readiness under [`SchedulePolicy::Merged`]
//!   (auto-chosen from the level-shape statistics and the declared
//!   [`SolveOpts::reuse`], pinnable through [`SolveOpts::policy`]) —
//!   **bitwise identical** at every worker count and under either policy;
//! * [`SparseTriCsc`] — validated CSC storage (the cached
//!   [`SparseTri::csc`] mirror) and the **sync-free** executor behind
//!   [`SchedulePolicy::SyncFree`]: an analysis-free column sweep with
//!   per-row atomic in-degree counters, zero levels and zero barriers —
//!   the one-shot-solve fast path, bitwise reproducible per fixed worker
//!   count (not across worker counts; see [`csc`] for the caveat);
//! * [`gen`] — seeded generators for tests and benches.
//!
//! Every solve reports a [`dense::FlopCount`] under the dense crate's
//! conventions, so sparse applies charge the simulated machine's `γ·F`
//! term consistently with the dense kernels.
//!
//! ## Quick example
//!
//! ```
//! use sparse::{gen, SolveOpts};
//! let l = gen::random_lower(1000, 8, 42);
//! let b = gen::rhs_vec(1000, 7);
//! let sched = l.schedule();                      // analyze once, O(nnz)
//! assert!(sched.num_levels() < 1000);            // level compression
//! let mut x = b.clone();
//! l.solve_with(&SolveOpts::new().threads(4), &mut x).unwrap(); // level-parallel
//! let mut x1 = b.clone();
//! l.solve_with(&SolveOpts::new().threads(1), &mut x1).unwrap();
//! assert_eq!(x, x1);                             // bitwise identical
//! assert_eq!(l.analysis_count(), 1);             // schedule reused, not re-run
//! let mut xt = b.clone();
//! l.solve_with(&SolveOpts::new().transposed(), &mut xt).unwrap(); // Lᵀ·x = b
//! ```

pub mod csc;
pub mod csr;
pub mod error;
pub mod gen;
pub mod schedule;
pub mod solve;

pub use csc::SparseTriCsc;
pub use csr::SparseTri;
pub use error::SparseError;
pub use schedule::{MergedSchedule, Schedule, SchedulePolicy, ANALYZE_REUSE_MIN, SUPER_MIN_WEIGHT};
pub use solve::{ExecutionShape, SolveOpts, PAR_MIN_WORK};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SparseError>;
