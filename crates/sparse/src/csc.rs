//! CSC storage for sparse triangular matrices and the synchronization-free
//! column-sweep executors.
//!
//! [`SparseTriCsc`] is the column-major twin of [`SparseTri`]: the same
//! square lower- or upper-triangular matrix, stored as **compressed sparse
//! columns** with the diagonal held separately.  Construction mirrors the
//! CSR validation exactly — indices in bounds, entries on the declared
//! [`Triangle`], columns sorted without duplicates, every stored value
//! finite, and (for [`Diag::NonUnit`]) an invertible diagonal.
//!
//! Column storage is what the **sync-free** solve of Liu–Li–Hogg–Duff–
//! Vinter (Euro-Par'16; see `SNIPPETS.md`) sweeps: when column `j`'s value
//! `x[j]` is final, the column's entries are exactly the contributions
//! `a_ij · x[j]` owed to later rows, so the solve needs **no dependency
//! analysis and no barriers** — just a per-row atomic counter that says how
//! many contributions have landed.  `SparseTriCsc::run_syncfree` is that
//! executor (also reachable from [`SparseTri`] through
//! `SchedulePolicy::SyncFree`, via the cached [`SparseTri::csc`] mirror):
//!
//! * the columns are split into one contiguous chunk per worker, swept in
//!   dependency order (ascending for [`Triangle::Lower`], descending for
//!   [`Triangle::Upper`]);
//! * before finishing column `j`, its owner spins/yields until the row's
//!   atomic in-degree counter reaches the row's off-diagonal entry count
//!   (every contribution has landed), then reduces the per-worker partial
//!   sums **in fixed worker order**, divides by the diagonal, and pushes
//!   `a_ij · x[j]` into each dependent row's partial-sum slab;
//! * contributions accumulate in *per-worker* slabs (worker `w` only ever
//!   writes slab `w`, in its own deterministic column order), so no
//!   floating-point add ever happens in a timing-dependent order.
//!
//! Deadlock-freedom: every dependency of column `j` is a column `< j`
//! (`> j` for upper), each worker sweeps its chunk in dependency order, and
//! a waiting worker always waits on strictly earlier columns — so the
//! earliest (latest, for upper) unfinished column is always runnable by its
//! owner.
//!
//! **Determinism caveat** (vs. the barriered policies): the chunk split,
//! the per-slab accumulation order and the slab reduction order are all
//! fixed functions of `(n, workers)`, so sync-free solves are **bitwise
//! reproducible for a fixed worker count** — but *changing the worker
//! count re-associates the per-row reduction*, so results across worker
//! counts agree only to rounding (1e-12 in the test suites), not bitwise.
//! The Level/Merged executors keep the stronger bitwise-across-worker-
//! counts guarantee; this executor trades it for zero analysis and zero
//! barriers, which wins on one-shot solves.

use crate::csr::SparseTri;
use crate::error::SparseError;
use crate::solve::{
    chunk_bounds, wait_ready, wait_ready_counted, SharedPtr, SolveOpts, PAR_MIN_WORK,
};
use crate::Result;
// Same pivot tolerance as the CSR constructors, so the two storage forms
// accept exactly the same matrices.
use dense::PIVOT_TOL;
use dense::{dense_threads, run_region, Diag, FlopCount, Matrix, Transpose, Triangle};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

/// A sparse triangular matrix in CSC form.
///
/// Off-diagonal entries live in `(col_ptr, row_idx, values)` arrays with
/// strictly increasing row indices per column; the diagonal is a dense
/// `n`-vector (all ones for [`Diag::Unit`], where stored diagonal input is
/// ignored exactly like the CSR and dense constructors ignore it).
pub struct SparseTriCsc {
    n: usize,
    tri: Triangle,
    diag: Diag,
    /// Off-diagonal CSC column pointer, `n + 1` entries.
    col_ptr: Vec<usize>,
    /// Off-diagonal row indices, strictly increasing within each column.
    row_idx: Vec<usize>,
    /// Off-diagonal values, parallel to `row_idx`.
    values: Vec<f64>,
    /// Dense diagonal, `n` entries (`1.0` everywhere for [`Diag::Unit`]).
    diag_vals: Vec<f64>,
    /// Lazily computed per-row off-diagonal entry counts — the sync-free
    /// executor's in-degree targets.  One O(nnz) counting pass, cached;
    /// this is storage bookkeeping, not a dependency analysis (no level
    /// sets, no DAG traversal).
    in_degrees: OnceLock<Vec<u32>>,
    /// Lazily computed transpose (see [`SparseTriCsc::transposed`]).
    transpose_cache: OnceLock<Box<SparseTriCsc>>,
}

impl SparseTriCsc {
    /// Builds a matrix from `(row, col, value)` triplets in any order,
    /// with validation mirroring [`SparseTri::from_triplets`]: diagonal
    /// triplets populate the diagonal ([`Diag::NonUnit`]) or are ignored
    /// ([`Diag::Unit`]); duplicates, out-of-bounds indices and entries on
    /// the wrong side of the diagonal are errors.
    pub fn from_triplets(
        n: usize,
        tri: Triangle,
        diag: Diag,
        entries: &[(usize, usize, f64)],
    ) -> Result<SparseTriCsc> {
        let mut diag_vals = vec![if diag == Diag::Unit { 1.0 } else { 0.0 }; n];
        let mut diag_seen = vec![false; n];
        let mut off: Vec<(usize, usize, f64)> = Vec::with_capacity(entries.len());
        for &(i, j, v) in entries {
            if i >= n || j >= n {
                return Err(SparseError::EntryOutOfBounds { index: (i, j), n });
            }
            if i == j {
                if diag_seen[i] {
                    return Err(SparseError::DuplicateEntry { index: (i, j) });
                }
                diag_seen[i] = true;
                if diag == Diag::NonUnit {
                    diag_vals[i] = v;
                }
                continue;
            }
            let on_declared_side = match tri {
                Triangle::Lower => j < i,
                Triangle::Upper => j > i,
            };
            if !on_declared_side {
                return Err(SparseError::WrongTriangle { index: (i, j) });
            }
            off.push((i, j, v));
        }
        // Column-major sort: the one structural difference from the CSR
        // constructor.
        off.sort_by_key(|&(i, j, _)| (j, i));
        for w in off.windows(2) {
            if w[0].0 == w[1].0 && w[0].1 == w[1].1 {
                return Err(SparseError::DuplicateEntry {
                    index: (w[1].0, w[1].1),
                });
            }
        }

        let mut col_ptr = vec![0usize; n + 1];
        for &(_, j, _) in &off {
            col_ptr[j + 1] += 1;
        }
        for j in 0..n {
            col_ptr[j + 1] += col_ptr[j];
        }
        let row_idx: Vec<usize> = off.iter().map(|&(i, _, _)| i).collect();
        let values: Vec<f64> = off.iter().map(|&(_, _, v)| v).collect();

        Self::finish(n, tri, diag, col_ptr, row_idx, values, diag_vals)
    }

    /// Builds a matrix from raw CSC arrays, which may include diagonal
    /// entries inline (they are split out; ignored for [`Diag::Unit`]).
    ///
    /// `col_ptr` must have `n + 1` monotone entries ending at
    /// `row_idx.len() == values.len()`, and each column's row indices must
    /// be strictly increasing.
    pub fn from_csc(
        n: usize,
        tri: Triangle,
        diag: Diag,
        col_ptr: &[usize],
        row_idx: &[usize],
        values: &[f64],
    ) -> Result<SparseTriCsc> {
        if col_ptr.len() != n + 1 {
            return Err(SparseError::MalformedCsr {
                reason: format!("col_ptr has {} entries, expected {}", col_ptr.len(), n + 1),
            });
        }
        if row_idx.len() != values.len() {
            return Err(SparseError::MalformedCsr {
                reason: format!(
                    "row_idx has {} entries but values has {}",
                    row_idx.len(),
                    values.len()
                ),
            });
        }
        if col_ptr[0] != 0 || *col_ptr.last().unwrap() != row_idx.len() {
            return Err(SparseError::MalformedCsr {
                reason: "col_ptr must start at 0 and end at the entry count".to_string(),
            });
        }
        let mut diag_vals = vec![if diag == Diag::Unit { 1.0 } else { 0.0 }; n];
        let mut out_ptr = vec![0usize; n + 1];
        let mut out_idx = Vec::with_capacity(row_idx.len());
        let mut out_val = Vec::with_capacity(values.len());
        for j in 0..n {
            let (start, end) = (col_ptr[j], col_ptr[j + 1]);
            if start > end || end > row_idx.len() {
                return Err(SparseError::MalformedCsr {
                    reason: format!("col_ptr not monotone at column {j}"),
                });
            }
            let mut prev: Option<usize> = None;
            for (&i, &v) in row_idx[start..end].iter().zip(&values[start..end]) {
                if i >= n {
                    return Err(SparseError::EntryOutOfBounds { index: (i, j), n });
                }
                if prev == Some(i) {
                    return Err(SparseError::DuplicateEntry { index: (i, j) });
                }
                if prev.is_some_and(|p| i < p) {
                    return Err(SparseError::UnsortedColumn { col: j });
                }
                prev = Some(i);
                if i == j {
                    if diag == Diag::NonUnit {
                        diag_vals[j] = v;
                    }
                    continue;
                }
                let on_declared_side = match tri {
                    Triangle::Lower => j < i,
                    Triangle::Upper => j > i,
                };
                if !on_declared_side {
                    return Err(SparseError::WrongTriangle { index: (i, j) });
                }
                out_idx.push(i);
                out_val.push(v);
            }
            out_ptr[j + 1] = out_idx.len();
        }
        Self::finish(n, tri, diag, out_ptr, out_idx, out_val, diag_vals)
    }

    /// Converts a (validated) CSR matrix into CSC form: one O(nnz)
    /// counting sort, no re-validation.  This is what the cached
    /// [`SparseTri::csc`] mirror builds.
    pub fn from_csr(mat: &SparseTri) -> SparseTriCsc {
        let n = mat.n();
        let mut col_ptr = vec![0usize; n + 1];
        for i in 0..n {
            let (cols, _) = mat.row_entries(i);
            for &j in cols {
                col_ptr[j + 1] += 1;
            }
        }
        for j in 0..n {
            col_ptr[j + 1] += col_ptr[j];
        }
        let mut fill = col_ptr.clone();
        let mut row_idx = vec![0usize; mat.nnz_off_diagonal()];
        let mut values = vec![0.0f64; mat.nnz_off_diagonal()];
        // Sweeping rows in ascending order keeps each column's row list
        // strictly increasing.
        for i in 0..n {
            let (cols, vals) = mat.row_entries(i);
            for (&j, &v) in cols.iter().zip(vals) {
                let slot = fill[j];
                fill[j] += 1;
                row_idx[slot] = i;
                values[slot] = v;
            }
        }
        let diag_vals = (0..n).map(|i| mat.diag_value(i)).collect();
        SparseTriCsc {
            n,
            tri: mat.triangle(),
            diag: mat.diag(),
            col_ptr,
            row_idx,
            values,
            diag_vals,
            in_degrees: OnceLock::new(),
            transpose_cache: OnceLock::new(),
        }
    }

    /// Converts back to CSR form (the round-trip partner of
    /// [`SparseTriCsc::from_csr`]).
    pub fn to_csr(&self) -> SparseTri {
        let mut ents: Vec<(usize, usize, f64)> = Vec::with_capacity(self.row_idx.len() + self.n);
        for j in 0..self.n {
            let (rows, vals) = self.col_entries(j);
            for (&i, &v) in rows.iter().zip(vals) {
                ents.push((i, j, v));
            }
        }
        if self.diag == Diag::NonUnit {
            for (i, &d) in self.diag_vals.iter().enumerate() {
                ents.push((i, i, d));
            }
        }
        SparseTri::from_triplets(self.n, self.tri, self.diag, &ents)
            .expect("to_csr: a validated CSC matrix is a valid CSR matrix")
    }

    /// Shared tail of the validating constructors: numerical-health checks
    /// mirroring [`SparseTri`]'s (every stored value finite, diagonal
    /// invertible at the dense pivot tolerance).
    fn finish(
        n: usize,
        tri: Triangle,
        diag: Diag,
        col_ptr: Vec<usize>,
        row_idx: Vec<usize>,
        values: Vec<f64>,
        diag_vals: Vec<f64>,
    ) -> Result<SparseTriCsc> {
        for j in 0..n {
            for (&i, &v) in row_idx[col_ptr[j]..col_ptr[j + 1]]
                .iter()
                .zip(&values[col_ptr[j]..col_ptr[j + 1]])
            {
                if !v.is_finite() {
                    return Err(SparseError::NonFiniteEntry {
                        index: (i, j),
                        value: v,
                    });
                }
            }
        }
        if diag == Diag::NonUnit {
            for (i, &d) in diag_vals.iter().enumerate() {
                if !d.is_finite() {
                    return Err(SparseError::NonFiniteEntry {
                        index: (i, i),
                        value: d,
                    });
                }
                if d.abs() < PIVOT_TOL {
                    return Err(SparseError::SingularDiagonal { row: i, value: d });
                }
            }
        }
        Ok(SparseTriCsc {
            n,
            tri,
            diag,
            col_ptr,
            row_idx,
            values,
            diag_vals,
            in_degrees: OnceLock::new(),
            transpose_cache: OnceLock::new(),
        })
    }

    /// Matrix dimension `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Which triangle the matrix occupies.
    #[inline]
    pub fn triangle(&self) -> Triangle {
        self.tri
    }

    /// Whether the diagonal is implicit ones.
    #[inline]
    pub fn diag(&self) -> Diag {
        self.diag
    }

    /// Number of stored entries: off-diagonal entries, plus the `n`
    /// diagonal entries when they are explicit ([`Diag::NonUnit`]).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz_off_diagonal()
            + if self.diag == Diag::NonUnit {
                self.n
            } else {
                0
            }
    }

    /// Number of stored off-diagonal entries.
    #[inline]
    pub fn nnz_off_diagonal(&self) -> usize {
        self.values.len()
    }

    /// The off-diagonal entries of column `j` as `(row indices, values)`,
    /// rows strictly increasing.
    #[inline]
    pub fn col_entries(&self, j: usize) -> (&[usize], &[f64]) {
        let (s, e) = (self.col_ptr[j], self.col_ptr[j + 1]);
        (&self.row_idx[s..e], &self.values[s..e])
    }

    /// The diagonal value of row `i` (`1.0` for [`Diag::Unit`]).
    #[inline]
    pub fn diag_value(&self, i: usize) -> f64 {
        self.diag_vals[i]
    }

    /// Densify into a [`dense::Matrix`] (diagonal ones made explicit for
    /// [`Diag::Unit`]) — the differential-test bridge.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.n);
        for j in 0..self.n {
            let (rows, vals) = self.col_entries(j);
            for (&i, &v) in rows.iter().zip(vals) {
                m[(i, j)] = v;
            }
        }
        for (i, &d) in self.diag_vals.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// The transposed matrix (a lower-triangular matrix becomes upper, and
    /// vice versa), in O(nnz): the transpose's columns are this matrix's
    /// rows, so this is the same counting sort as
    /// [`SparseTri::transpose`], column-major.
    pub fn transpose(&self) -> SparseTriCsc {
        let tri = match self.tri {
            Triangle::Lower => Triangle::Upper,
            Triangle::Upper => Triangle::Lower,
        };
        // Row counts of `self` become column counts of the transpose.
        let mut col_ptr = vec![0usize; self.n + 1];
        for &i in &self.row_idx {
            col_ptr[i + 1] += 1;
        }
        for j in 0..self.n {
            col_ptr[j + 1] += col_ptr[j];
        }
        let mut fill = col_ptr.clone();
        let mut row_idx = vec![0usize; self.row_idx.len()];
        let mut values = vec![0.0f64; self.values.len()];
        for j in 0..self.n {
            let (rows, vals) = self.col_entries(j);
            for (&i, &v) in rows.iter().zip(vals) {
                let slot = fill[i];
                fill[i] += 1;
                row_idx[slot] = j;
                values[slot] = v;
            }
        }
        SparseTriCsc {
            n: self.n,
            tri,
            diag: self.diag,
            col_ptr,
            row_idx,
            values,
            diag_vals: self.diag_vals.clone(),
            in_degrees: OnceLock::new(),
            transpose_cache: OnceLock::new(),
        }
    }

    /// The cached transpose, built on first use and reused for the
    /// lifetime of the matrix — same contract as
    /// [`SparseTri::transposed`], so transposed sync-free solves pay one
    /// O(nnz) transposition ever.
    pub fn transposed(&self) -> &SparseTriCsc {
        self.transpose_cache
            .get_or_init(|| Box::new(self.transpose()))
    }

    /// Per-row off-diagonal entry counts — the number of contributions row
    /// `i` must receive before `x[i]` can be finished, i.e. the sync-free
    /// executor's in-degree targets.  Counted once in O(nnz) and cached;
    /// no dependency analysis (levels, DAG traversal) is involved.
    pub fn in_degrees(&self) -> &[u32] {
        self.in_degrees.get_or_init(|| {
            assert!(
                self.row_idx.len() < u32::MAX as usize,
                "entry counts must fit in u32"
            );
            let mut deg = vec![0u32; self.n];
            for &i in &self.row_idx {
                deg[i] += 1;
            }
            deg
        })
    }

    /// Flops of one solve with `k` right-hand sides, under the dense
    /// crate's conventions (identical to [`SparseTri::solve_flops`]).
    pub fn solve_flops(&self, k: usize) -> FlopCount {
        let per_rhs = 2 * self.nnz_off_diagonal() as u64
            + if self.diag == Diag::NonUnit {
                self.n as u64
            } else {
                0
            };
        FlopCount::new(per_rhs * k as u64)
    }

    /// Worker budget for the implicit entry points: the `DENSE_THREADS`
    /// pool size when the solve clears [`PAR_MIN_WORK`], else 1 — the same
    /// gate as [`SparseTri`]'s.
    fn implicit_threads(&self, k: usize) -> usize {
        if self.nnz().saturating_mul(k) >= PAR_MIN_WORK {
            dense_threads()
        } else {
            1
        }
    }

    /// The matrix the executor actually sweeps: `self` for a plain solve,
    /// the cached [`SparseTriCsc::transposed`] for a transposed one.
    #[inline]
    pub fn executor(&self, transpose: Transpose) -> &SparseTriCsc {
        match transpose {
            Transpose::No => self,
            Transpose::Yes => self.transposed(),
        }
    }

    /// Finishes column `j` sequentially: divides `x[j]` by the diagonal
    /// and pushes `a_ij · x[j]` into every dependent row, over `k`
    /// interleaved right-hand sides at row stride `stride`.
    ///
    /// All updates *into* row `j` have already been applied when the sweep
    /// reaches it (its dependencies are earlier columns), and row `i`
    /// receives its updates in sweep order — for [`Triangle::Lower`] that
    /// is ascending column order, the same order as the CSR row kernel, so
    /// the sequential column sweep is bitwise identical to the sequential
    /// row sweep there.
    ///
    /// # Safety
    /// `x` must be valid for reads and writes of `n` rows of `k` elements
    /// at row stride `stride`, with no concurrent access to row `j` or the
    /// column's dependent rows.
    unsafe fn finish_col_seq(&self, x: *mut f64, stride: usize, k: usize, j: usize) {
        let xj = std::slice::from_raw_parts_mut(x.add(j * stride), k);
        if self.diag == Diag::NonUnit {
            let d = self.diag_vals[j];
            for xjc in xj.iter_mut() {
                *xjc /= d;
            }
        }
        let (rows, vals) = self.col_entries(j);
        for (&i, &v) in rows.iter().zip(vals) {
            let xi = std::slice::from_raw_parts_mut(x.add(i * stride), k);
            for (xic, xjc) in xi.iter_mut().zip(xj.iter()) {
                *xic -= v * *xjc;
            }
        }
    }

    /// Runs the solve over `x` (`n` rows × `k` columns at row stride
    /// `stride`, holding `B` on entry and `X` on exit) with the given
    /// worker count: the sequential column sweep at 1 worker, the
    /// sync-free executor above that.
    pub(crate) fn run_syncfree(&self, x: *mut f64, stride: usize, k: usize, workers: usize) {
        let n = self.n;
        if n == 0 || k == 0 {
            return;
        }
        if workers <= 1 {
            match self.tri {
                Triangle::Lower => {
                    for j in 0..n {
                        // SAFETY: single-threaded; column dependency order.
                        unsafe { self.finish_col_seq(x, stride, k, j) };
                    }
                }
                Triangle::Upper => {
                    for j in (0..n).rev() {
                        // SAFETY: single-threaded; column dependency order.
                        unsafe { self.finish_col_seq(x, stride, k, j) };
                    }
                }
            }
            return;
        }
        self.run_syncfree_parallel(x, stride, k, workers);
    }

    /// The parallel sync-free executor: per-row atomic in-degree counters,
    /// per-worker partial-sum slabs, zero analysis, zero barriers.  See
    /// the module docs for the protocol, its deadlock-freedom argument and
    /// the fixed-worker-count determinism guarantee.
    fn run_syncfree_parallel(&self, x: *mut f64, stride: usize, k: usize, workers: usize) {
        let n = self.n;
        let indeg = self.in_degrees();
        // `known[i]` counts contributions that have landed in row `i`'s
        // slab entries; `x[i]` may be finished once it reaches `indeg[i]`.
        let known: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        // Worker `w` accumulates its contributions to row `i`, RHS `c` in
        // `partial[(w·n + i)·k + c]` — no cross-worker writes, so every
        // floating-point sum has a timing-independent order.
        let mut partial = vec![0.0f64; workers * n * k];
        let slab = SharedPtr(partial.as_mut_ptr());
        let shared = SharedPtr(x);
        let tracing = obs::enabled();
        let _span = obs::span_with("sparse", "syncfree_exec", "workers", workers as u64);
        run_region(workers, |w| {
            let (lo, hi) = chunk_bounds(n, workers, w);
            // Spin iterations and slab-segment reductions accumulate
            // locally and are emitted as one counter each per worker at
            // region end (`TraceReport::{spin_iters, slab_reductions}`).
            let mut spins = 0u64;
            let mut reductions = 0u64;
            let sweep = |j: usize| {
                // Wait (acquire) until every contribution to row `j` has
                // landed; the release increments below pair with this, so
                // all slab writes for row `j` are visible.
                if tracing {
                    spins += wait_ready_counted(&known[j], indeg[j]);
                } else {
                    wait_ready(&known[j], indeg[j]);
                }
                // SAFETY: row `j` of `x` is written only by this worker
                // (contiguous chunk ownership of columns = rows); the slab
                // rows reduced here are final per the counter handshake,
                // and each dependent slab row `(w, i)` is written only by
                // this worker.
                unsafe {
                    let xj = std::slice::from_raw_parts_mut(shared.get().add(j * stride), k);
                    // Reduce the per-worker partial sums in fixed worker
                    // order — the reduction order never depends on timing.
                    for w2 in 0..workers {
                        let p = std::slice::from_raw_parts(
                            slab.get().add((w2 * n + j) * k) as *const f64,
                            k,
                        );
                        for (xjc, pc) in xj.iter_mut().zip(p) {
                            *xjc -= pc;
                        }
                    }
                    if tracing {
                        reductions += workers as u64;
                    }
                    if self.diag == Diag::NonUnit {
                        let d = self.diag_vals[j];
                        for xjc in xj.iter_mut() {
                            *xjc /= d;
                        }
                    }
                    let (rows, vals) = self.col_entries(j);
                    for (&i, &v) in rows.iter().zip(vals) {
                        let pi = std::slice::from_raw_parts_mut(slab.get().add((w * n + i) * k), k);
                        for (pic, xjc) in pi.iter_mut().zip(xj.iter()) {
                            *pic += v * *xjc;
                        }
                        // Release publishes the slab write above to the
                        // acquire spin in `wait_ready`.
                        known[i].fetch_add(1, Ordering::Release);
                    }
                }
            };
            // Dependency order within the chunk keeps the wait chains
            // acyclic: a worker only ever waits on columns another worker
            // has already passed or is about to reach.
            match self.tri {
                Triangle::Lower => (lo..hi).for_each(sweep),
                Triangle::Upper => (lo..hi).rev().for_each(sweep),
            }
            if tracing {
                obs::counter("sparse", "spin_iters", "iters", spins, "worker", w as u64);
                obs::counter(
                    "sparse",
                    "slab_reductions",
                    "count",
                    reductions,
                    "worker",
                    w as u64,
                );
            }
        });
    }

    /// Solves `op(A)·x = b` in place under the given [`SolveOpts`]: `x`
    /// holds `b` on entry and the solution on exit.  Returns the flop
    /// count.
    ///
    /// CSC storage has exactly one executor — the sync-free column sweep —
    /// so [`SolveOpts::policy`] is ignored here; `threads` and `transpose`
    /// behave as on [`SparseTri`] (the transposed solve runs on the cached
    /// [`SparseTriCsc::transposed`]).
    pub fn solve_with(&self, opts: &SolveOpts, x: &mut [f64]) -> Result<FlopCount> {
        if x.len() != self.n {
            return Err(SparseError::DimensionMismatch {
                op: "sparse csc solve",
                n: self.n,
                rhs: (x.len(), 1),
            });
        }
        let exec = self.executor(opts.transpose);
        let threads = opts.threads.unwrap_or_else(|| exec.implicit_threads(1));
        exec.run_syncfree(x.as_mut_ptr(), 1, 1, threads.min(exec.n.max(1)));
        Ok(exec.solve_flops(1))
    }

    /// Solves `op(A)·X = B` in place for a block of right-hand sides under
    /// the given [`SolveOpts`]; `x` holds `B` on entry and `X` on exit.
    pub fn solve_multi_with(&self, opts: &SolveOpts, x: &mut Matrix) -> Result<FlopCount> {
        if x.rows() != self.n {
            return Err(SparseError::DimensionMismatch {
                op: "sparse csc solve_multi",
                n: self.n,
                rhs: x.dims(),
            });
        }
        let k = x.cols();
        let exec = self.executor(opts.transpose);
        let threads = opts.threads.unwrap_or_else(|| exec.implicit_threads(k));
        exec.run_syncfree(
            x.as_mut_slice().as_mut_ptr(),
            k,
            k,
            threads.min(exec.n.max(1)),
        );
        Ok(exec.solve_flops(k))
    }

    /// Solves `A · x = b` for one right-hand side; returns the solution.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = b.to_vec();
        self.solve_with(&SolveOpts::new(), &mut x)?;
        Ok(x)
    }

    /// Solves `A · X = B` for a block of right-hand sides.
    pub fn solve_multi(&self, b: &Matrix) -> Result<Matrix> {
        let mut x = b.clone();
        self.solve_multi_with(&SolveOpts::new(), &mut x)?;
        Ok(x)
    }
}

impl Clone for SparseTriCsc {
    /// Clones the matrix *and* its cached in-degrees/transpose (recounting
    /// an identical pattern would be wasted work).
    fn clone(&self) -> SparseTriCsc {
        SparseTriCsc {
            n: self.n,
            tri: self.tri,
            diag: self.diag,
            col_ptr: self.col_ptr.clone(),
            row_idx: self.row_idx.clone(),
            values: self.values.clone(),
            diag_vals: self.diag_vals.clone(),
            in_degrees: self.in_degrees.clone(),
            transpose_cache: self.transpose_cache.clone(),
        }
    }
}

impl std::fmt::Debug for SparseTriCsc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SparseTriCsc")
            .field("n", &self.n)
            .field("tri", &self.tri)
            .field("diag", &self.diag)
            .field("nnz", &self.nnz())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_lower() -> SparseTriCsc {
        // [ 2 . . ]
        // [ 1 3 . ]
        // [ . 4 5 ]
        SparseTriCsc::from_triplets(
            3,
            Triangle::Lower,
            Diag::NonUnit,
            &[
                (0, 0, 2.0),
                (1, 0, 1.0),
                (1, 1, 3.0),
                (2, 1, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn triplets_build_sorted_csc() {
        let m = small_lower();
        assert_eq!(m.n(), 3);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.nnz_off_diagonal(), 2);
        assert_eq!(m.col_entries(0), (&[1usize][..], &[1.0][..]));
        assert_eq!(m.col_entries(1), (&[2usize][..], &[4.0][..]));
        assert_eq!(m.col_entries(2), (&[][..], &[][..]));
        assert_eq!(m.diag_value(2), 5.0);
        assert_eq!(m.in_degrees(), &[0, 1, 1]);
    }

    #[test]
    fn csr_round_trip_preserves_the_matrix() {
        let csr = crate::gen::random_lower(300, 5, 41);
        let csc = SparseTriCsc::from_csr(&csr);
        assert_eq!(csc.to_dense(), csr.to_dense());
        assert_eq!(csc.to_csr().to_dense(), csr.to_dense());
        assert_eq!(csc.nnz(), csr.nnz());
    }

    #[test]
    fn validation_mirrors_csr() {
        let oob = SparseTriCsc::from_triplets(
            2,
            Triangle::Lower,
            Diag::NonUnit,
            &[(0, 0, 1.0), (1, 5, 1.0)],
        );
        assert!(matches!(oob, Err(SparseError::EntryOutOfBounds { .. })));

        let wrong = SparseTriCsc::from_triplets(
            2,
            Triangle::Lower,
            Diag::NonUnit,
            &[(0, 0, 1.0), (1, 1, 1.0), (0, 1, 2.0)],
        );
        assert!(matches!(wrong, Err(SparseError::WrongTriangle { .. })));

        let dup = SparseTriCsc::from_triplets(
            2,
            Triangle::Lower,
            Diag::NonUnit,
            &[(0, 0, 1.0), (1, 1, 1.0), (1, 0, 2.0), (1, 0, 3.0)],
        );
        assert!(matches!(dup, Err(SparseError::DuplicateEntry { .. })));

        let sing = SparseTriCsc::from_triplets(2, Triangle::Lower, Diag::NonUnit, &[(0, 0, 1.0)]);
        assert!(matches!(
            sing,
            Err(SparseError::SingularDiagonal { row: 1, .. })
        ));

        let nan = SparseTriCsc::from_triplets(
            2,
            Triangle::Lower,
            Diag::NonUnit,
            &[(0, 0, 1.0), (1, 1, 1.0), (1, 0, f64::NAN)],
        );
        assert!(matches!(
            nan,
            Err(SparseError::NonFiniteEntry { index: (1, 0), .. })
        ));
    }

    #[test]
    fn from_csc_rejects_malformed_arrays() {
        let bad_ptr = SparseTriCsc::from_csc(2, Triangle::Lower, Diag::Unit, &[0, 1], &[1], &[1.0]);
        assert!(matches!(bad_ptr, Err(SparseError::MalformedCsr { .. })));

        let unsorted = SparseTriCsc::from_csc(
            3,
            Triangle::Lower,
            Diag::Unit,
            &[0, 2, 2, 2],
            &[2, 1],
            &[1.0, 2.0],
        );
        assert!(matches!(
            unsorted,
            Err(SparseError::UnsortedColumn { col: 0 })
        ));

        let dup = SparseTriCsc::from_csc(
            3,
            Triangle::Lower,
            Diag::Unit,
            &[0, 2, 2, 2],
            &[1, 1],
            &[1.0, 2.0],
        );
        assert!(matches!(dup, Err(SparseError::DuplicateEntry { .. })));
    }

    #[test]
    fn from_csc_accepts_inline_diagonal() {
        let m = SparseTriCsc::from_csc(
            3,
            Triangle::Lower,
            Diag::NonUnit,
            &[0, 3, 5, 6],
            &[0, 1, 2, 1, 2, 2],
            &[2.0, 1.0, 0.0, 3.0, 4.0, 5.0],
        )
        .unwrap();
        // Column 0 holds the diagonal 2.0 inline plus rows 1 and 2 — but
        // row 2's stored 0.0 keeps the pattern; compare densified.
        assert_eq!(m.diag_value(0), 2.0);
        assert_eq!(m.nnz_off_diagonal(), 3);
    }

    #[test]
    fn transpose_flips_triangle_and_round_trips() {
        let m = small_lower();
        let t = m.transpose();
        assert_eq!(t.triangle(), Triangle::Upper);
        assert_eq!(t.to_dense(), m.to_dense().transpose());
        assert_eq!(t.transpose().to_dense(), m.to_dense());
        // Cached transpose is built once.
        let p1 = m.transposed() as *const SparseTriCsc;
        let p2 = m.transposed() as *const SparseTriCsc;
        assert_eq!(p1, p2);
    }

    #[test]
    fn known_small_system_solves() {
        let m = small_lower();
        let x = m.solve(&[2.0, 4.0, 9.0]).unwrap();
        for v in x {
            assert!((v - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn sequential_column_sweep_is_bitwise_equal_to_csr_on_lower() {
        // Same update order per row (ascending columns), so the two
        // sequential sweeps must agree bit for bit on lower triangles.
        let csr = crate::gen::random_lower(800, 6, 17);
        let csc = SparseTriCsc::from_csr(&csr);
        let b = crate::gen::rhs_vec(800, 18);
        let mut via_csr = b.clone();
        csr.solve_with(&SolveOpts::new().threads(1), &mut via_csr)
            .unwrap();
        let mut via_csc = b.clone();
        csc.solve_with(&SolveOpts::new().threads(1), &mut via_csc)
            .unwrap();
        assert_eq!(via_csr, via_csc);
    }

    #[test]
    fn syncfree_parallel_matches_sequential_to_tolerance() {
        for (mat, seed) in [
            (crate::gen::random_lower(3000, 6, 23), 7u64),
            (crate::gen::deep_narrow_lower(4000, 4, 3, 29), 9u64),
        ] {
            let csc = SparseTriCsc::from_csr(&mat);
            let b = crate::gen::rhs_vec(mat.n(), seed);
            let mut seq = b.clone();
            csc.solve_with(&SolveOpts::new().threads(1), &mut seq)
                .unwrap();
            for threads in [2usize, 3, 4, 7] {
                let mut x = b.clone();
                csc.solve_with(&SolveOpts::new().threads(threads), &mut x)
                    .unwrap();
                let max_diff = x
                    .iter()
                    .zip(&seq)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0, f64::max);
                assert!(
                    max_diff < 1e-12,
                    "sync-free at {threads} workers diverged {max_diff:e}"
                );
            }
        }
    }

    #[test]
    fn syncfree_is_bitwise_repeatable_per_worker_count() {
        let csc = SparseTriCsc::from_csr(&crate::gen::random_lower(2500, 5, 31));
        let b = crate::gen::rhs_vec(2500, 33);
        for threads in [2usize, 4] {
            let opts = SolveOpts::new().threads(threads);
            let mut first = b.clone();
            csc.solve_with(&opts, &mut first).unwrap();
            for _ in 0..3 {
                let mut again = b.clone();
                csc.solve_with(&opts, &mut again).unwrap();
                assert_eq!(
                    first, again,
                    "sync-free must be bitwise repeatable at a fixed worker count"
                );
            }
        }
    }

    #[test]
    fn syncfree_upper_and_transposed_solves_work() {
        let lower = crate::gen::random_lower(1500, 5, 37);
        let upper_csc = SparseTriCsc::from_csr(&lower.transpose());
        let b = crate::gen::rhs_vec(1500, 38);
        let mut seq = b.clone();
        upper_csc
            .solve_with(&SolveOpts::new().threads(1), &mut seq)
            .unwrap();
        let mut par = b.clone();
        upper_csc
            .solve_with(&SolveOpts::new().threads(4), &mut par)
            .unwrap();
        let max_diff = par
            .iter()
            .zip(&seq)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(max_diff < 1e-12, "upper sync-free diverged {max_diff:e}");
        // Transposed solve on the lower CSC equals the plain solve on the
        // upper CSC to rounding (same matrix, same executor).
        let lower_csc = SparseTriCsc::from_csr(&lower);
        let mut xt = b.clone();
        lower_csc
            .solve_with(&SolveOpts::new().transposed().threads(4), &mut xt)
            .unwrap();
        let max_diff = xt
            .iter()
            .zip(&par)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(max_diff < 1e-12);
    }

    #[test]
    fn syncfree_multi_rhs_matches_per_column_solves() {
        let csc = SparseTriCsc::from_csr(&crate::gen::deep_narrow_lower(2000, 4, 3, 43));
        let k = 4;
        let b = Matrix::from_fn(2000, k, |i, j| {
            ((i * 7 + j * 13 + 1) % 19) as f64 / 9.5 - 1.0
        });
        let mut xm = b.clone();
        csc.solve_multi_with(&SolveOpts::new().threads(4), &mut xm)
            .unwrap();
        for c in 0..k {
            let mut xc = b.col(c);
            csc.solve_with(&SolveOpts::new().threads(1), &mut xc)
                .unwrap();
            for i in 0..2000 {
                assert!(
                    (xm[(i, c)] - xc[i]).abs() < 1e-12,
                    "column {c} row {i} diverged"
                );
            }
        }
    }

    #[test]
    fn unit_diag_and_edge_cases() {
        let m = SparseTriCsc::from_triplets(
            3,
            Triangle::Lower,
            Diag::Unit,
            &[(1, 0, 2.0), (2, 1, 3.0)],
        )
        .unwrap();
        assert_eq!(m.diag_value(0), 1.0);
        assert_eq!(m.solve(&[1.0, 0.0, 0.0]).unwrap(), vec![1.0, -2.0, 6.0]);
        assert_eq!(m.solve_flops(1), FlopCount::new(4));

        let empty = SparseTriCsc::from_triplets(0, Triangle::Lower, Diag::NonUnit, &[]).unwrap();
        assert_eq!(empty.solve(&[]).unwrap(), Vec::<f64>::new());

        let m2 = small_lower();
        assert!(matches!(
            m2.solve(&[1.0; 2]),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn clone_carries_the_caches() {
        let m = small_lower();
        let _ = m.in_degrees();
        let _ = m.transposed();
        let c = m.clone();
        assert!(c.in_degrees.get().is_some());
        assert!(c.transpose_cache.get().is_some());
        assert_eq!(c.to_dense(), m.to_dense());
    }

    #[test]
    fn debug_is_compact() {
        let s = format!("{:?}", small_lower());
        assert!(s.contains("SparseTriCsc"));
        assert!(s.contains("nnz"));
    }
}
