//! Error type shared by the sparse triangular kernels.

use std::fmt;

/// Errors returned by sparse triangular storage and solves.
///
/// Construction validates the structure eagerly (indices in bounds, entries
/// on the declared triangle, sorted rows without duplicates, invertible
/// diagonal), so the solve executors can run validation-free inner loops;
/// anything they still detect (right-hand-side shape) is reported here too.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// An entry's indices fall outside the `n × n` matrix.
    EntryOutOfBounds {
        /// The offending `(row, col)` pair.
        index: (usize, usize),
        /// The matrix dimension `n`.
        n: usize,
    },
    /// An entry lies strictly on the wrong side of the diagonal for the
    /// declared [`dense::Triangle`].
    WrongTriangle {
        /// The offending `(row, col)` pair.
        index: (usize, usize),
    },
    /// The same `(row, col)` position was given more than once.
    DuplicateEntry {
        /// The duplicated `(row, col)` pair.
        index: (usize, usize),
    },
    /// A row's column indices are not strictly increasing (CSR input only;
    /// triplet input is sorted internally).
    UnsortedRow {
        /// The row whose indices are out of order.
        row: usize,
    },
    /// A column's row indices are not strictly increasing (raw CSC input
    /// only; triplet input is sorted internally).
    UnsortedColumn {
        /// The column whose indices are out of order.
        col: usize,
    },
    /// The raw CSR arrays are inconsistent (row pointer not monotone, or its
    /// last entry disagrees with the index/value lengths).
    MalformedCsr {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// A stored entry is NaN or infinite; solving with it would silently
    /// poison the whole solution, so construction rejects it eagerly.
    NonFiniteEntry {
        /// The offending `(row, col)` pair.
        index: (usize, usize),
        /// The non-finite value.
        value: f64,
    },
    /// A `Diag::NonUnit` matrix is missing a diagonal entry, or stores a
    /// numerically negligible one, so the system is singular.
    SingularDiagonal {
        /// The row whose diagonal broke down.
        row: usize,
        /// The stored diagonal value (`0.0` when absent).
        value: f64,
    },
    /// The right-hand side's shape does not match the matrix.
    DimensionMismatch {
        /// Short description of the operation that failed.
        op: &'static str,
        /// The matrix dimension `n`.
        n: usize,
        /// Dimensions of the right-hand side (rows, cols).
        rhs: (usize, usize),
    },
    /// An error surfaced by the dense-fallback path.
    Dense(dense::DenseError),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::EntryOutOfBounds { index, n } => write!(
                f,
                "entry ({}, {}) out of bounds for a {n}x{n} matrix",
                index.0, index.1
            ),
            SparseError::WrongTriangle { index } => write!(
                f,
                "entry ({}, {}) lies on the wrong side of the diagonal for the declared triangle",
                index.0, index.1
            ),
            SparseError::DuplicateEntry { index } => {
                write!(f, "duplicate entry at ({}, {})", index.0, index.1)
            }
            SparseError::UnsortedRow { row } => {
                write!(f, "row {row}: column indices are not strictly increasing")
            }
            SparseError::UnsortedColumn { col } => {
                write!(f, "column {col}: row indices are not strictly increasing")
            }
            SparseError::MalformedCsr { reason } => write!(f, "malformed CSR input: {reason}"),
            SparseError::NonFiniteEntry { index, value } => {
                write!(f, "non-finite entry {value} at ({}, {})", index.0, index.1)
            }
            SparseError::SingularDiagonal { row, value } => {
                write!(f, "singular diagonal at row {row}: {value}")
            }
            SparseError::DimensionMismatch { op, n, rhs } => write!(
                f,
                "{op}: right-hand side {}x{} does not match matrix dimension {n}",
                rhs.0, rhs.1
            ),
            SparseError::Dense(e) => write!(f, "dense fallback: {e}"),
        }
    }
}

impl std::error::Error for SparseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SparseError::Dense(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dense::DenseError> for SparseError {
    fn from(e: dense::DenseError) -> Self {
        SparseError::Dense(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(SparseError, &str)> = vec![
            (
                SparseError::EntryOutOfBounds {
                    index: (9, 1),
                    n: 4,
                },
                "out of bounds",
            ),
            (SparseError::WrongTriangle { index: (1, 3) }, "wrong side"),
            (SparseError::DuplicateEntry { index: (2, 1) }, "duplicate"),
            (SparseError::UnsortedRow { row: 5 }, "not strictly"),
            (SparseError::UnsortedColumn { col: 2 }, "not strictly"),
            (
                SparseError::MalformedCsr {
                    reason: "row_ptr shrinks".to_string(),
                },
                "row_ptr shrinks",
            ),
            (
                SparseError::NonFiniteEntry {
                    index: (2, 1),
                    value: f64::NAN,
                },
                "non-finite",
            ),
            (
                SparseError::SingularDiagonal { row: 3, value: 0.0 },
                "singular",
            ),
            (
                SparseError::DimensionMismatch {
                    op: "solve",
                    n: 8,
                    rhs: (7, 1),
                },
                "does not match",
            ),
        ];
        for (e, needle) in cases {
            assert!(
                e.to_string().contains(needle),
                "{e:?} display missing {needle:?}"
            );
        }
    }

    #[test]
    fn dense_errors_convert_and_chain() {
        let inner = dense::DenseError::NotSquare {
            op: "trsv",
            dims: (3, 4),
        };
        let e: SparseError = inner.clone().into();
        assert!(e.to_string().contains("dense fallback"));
        let src = std::error::Error::source(&e).expect("source");
        assert_eq!(src.to_string(), inner.to_string());
    }
}
