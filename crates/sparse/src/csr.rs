//! CSR storage for sparse triangular matrices.
//!
//! [`SparseTri`] is the single storage type of the crate: a square `n × n`
//! lower- or upper-triangular matrix in **compressed sparse row** form, with
//! the diagonal held separately from the off-diagonal entries so the solve
//! executors run one branch-free dot product per row.  Construction
//! validates the structure eagerly — indices in bounds, every entry on the
//! declared [`Triangle`], rows sorted without duplicates, and (for
//! [`Diag::NonUnit`]) an invertible diagonal — so the executors never
//! re-validate on the hot path.
//!
//! The matrix owns its (lazily computed) level-set [`Schedule`]: the
//! sparsity pattern is immutable after construction, so the analysis is run
//! at most once per matrix and reused across every subsequent solve, which
//! is the access pattern of preconditioner applies inside iterative solvers.

use crate::csc::SparseTriCsc;
use crate::error::SparseError;
use crate::schedule::{MergedSchedule, Schedule};
use crate::Result;
// The dense crate's pivot tolerance governs the diagonal invertibility
// check, so a diagonal this crate accepts is exactly one the
// `solve_via_dense` fallback accepts too.
use dense::PIVOT_TOL;
use dense::{Diag, Matrix, Triangle};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// A sparse triangular matrix in CSR form.
///
/// Off-diagonal entries live in the usual `(row_ptr, col_idx, values)`
/// arrays with strictly increasing column indices per row; the diagonal is a
/// dense `n`-vector (all ones for [`Diag::Unit`], where stored diagonal
/// input is ignored exactly like the dense kernels ignore it).
pub struct SparseTri {
    n: usize,
    tri: Triangle,
    diag: Diag,
    /// Off-diagonal CSR row pointer, `n + 1` entries.
    row_ptr: Vec<usize>,
    /// Off-diagonal column indices, strictly increasing within each row.
    col_idx: Vec<usize>,
    /// Off-diagonal values, parallel to `col_idx`.
    values: Vec<f64>,
    /// Dense diagonal, `n` entries (`1.0` everywhere for [`Diag::Unit`]).
    diag_vals: Vec<f64>,
    /// Lazily computed level-set schedule (see [`SparseTri::schedule`]).
    schedule: OnceLock<Schedule>,
    /// Lazily computed DAG-partitioned super-level schedule (see
    /// [`SparseTri::merged_schedule`]), derived from `schedule`.
    merged: OnceLock<MergedSchedule>,
    /// How many times the analysis has actually run for this matrix —
    /// observable through [`SparseTri::analysis_count`], so tests can assert
    /// the schedule is reused rather than recomputed per solve.
    analyses: AtomicUsize,
    /// Like `analyses`, but for the merged (super-level) analysis
    /// ([`SparseTri::merged_analysis_count`]).
    merged_analyses: AtomicUsize,
    /// Lazily computed transpose (see [`SparseTri::transposed`]): built once
    /// per matrix so repeated `Aᵀ·x = b` solves reuse both the transposed
    /// CSR arrays and the schedule cached on them.
    transpose_cache: OnceLock<Box<SparseTri>>,
    /// Lazily computed CSC mirror (see [`SparseTri::csc`]): built once per
    /// matrix so repeated sync-free solves reuse the column-major arrays.
    csc_cache: OnceLock<Box<SparseTriCsc>>,
}

impl SparseTri {
    /// Builds a matrix from `(row, col, value)` triplets in any order.
    ///
    /// Diagonal triplets populate the diagonal ([`Diag::NonUnit`]) or are
    /// ignored ([`Diag::Unit`]); every [`Diag::NonUnit`] row must receive a
    /// diagonal entry of magnitude at least the pivot tolerance.  Duplicate
    /// positions, out-of-bounds indices, and entries on the wrong side of
    /// the diagonal are errors.
    pub fn from_triplets(
        n: usize,
        tri: Triangle,
        diag: Diag,
        entries: &[(usize, usize, f64)],
    ) -> Result<SparseTri> {
        let mut diag_vals = vec![if diag == Diag::Unit { 1.0 } else { 0.0 }; n];
        let mut diag_seen = vec![false; n];
        let mut off: Vec<(usize, usize, f64)> = Vec::with_capacity(entries.len());
        for &(i, j, v) in entries {
            if i >= n || j >= n {
                return Err(SparseError::EntryOutOfBounds { index: (i, j), n });
            }
            if i == j {
                if diag_seen[i] {
                    return Err(SparseError::DuplicateEntry { index: (i, j) });
                }
                diag_seen[i] = true;
                if diag == Diag::NonUnit {
                    diag_vals[i] = v;
                }
                continue;
            }
            let on_declared_side = match tri {
                Triangle::Lower => j < i,
                Triangle::Upper => j > i,
            };
            if !on_declared_side {
                return Err(SparseError::WrongTriangle { index: (i, j) });
            }
            off.push((i, j, v));
        }
        off.sort_by_key(|&(i, j, _)| (i, j));
        for w in off.windows(2) {
            if w[0].0 == w[1].0 && w[0].1 == w[1].1 {
                return Err(SparseError::DuplicateEntry {
                    index: (w[1].0, w[1].1),
                });
            }
        }

        let mut row_ptr = vec![0usize; n + 1];
        for &(i, _, _) in &off {
            row_ptr[i + 1] += 1;
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx: Vec<usize> = off.iter().map(|&(_, j, _)| j).collect();
        let values: Vec<f64> = off.iter().map(|&(_, _, v)| v).collect();

        Self::finish(n, tri, diag, row_ptr, col_idx, values, diag_vals)
    }

    /// Builds a matrix from raw CSR arrays, which may include diagonal
    /// entries inline (they are split out; ignored for [`Diag::Unit`]).
    ///
    /// `row_ptr` must have `n + 1` monotone entries ending at
    /// `col_idx.len() == values.len()`, and each row's column indices must
    /// be strictly increasing.
    pub fn from_csr(
        n: usize,
        tri: Triangle,
        diag: Diag,
        row_ptr: &[usize],
        col_idx: &[usize],
        values: &[f64],
    ) -> Result<SparseTri> {
        if row_ptr.len() != n + 1 {
            return Err(SparseError::MalformedCsr {
                reason: format!("row_ptr has {} entries, expected {}", row_ptr.len(), n + 1),
            });
        }
        if col_idx.len() != values.len() {
            return Err(SparseError::MalformedCsr {
                reason: format!(
                    "col_idx has {} entries but values has {}",
                    col_idx.len(),
                    values.len()
                ),
            });
        }
        if row_ptr[0] != 0 || *row_ptr.last().unwrap() != col_idx.len() {
            return Err(SparseError::MalformedCsr {
                reason: "row_ptr must start at 0 and end at the entry count".to_string(),
            });
        }
        let mut diag_vals = vec![if diag == Diag::Unit { 1.0 } else { 0.0 }; n];
        let mut out_ptr = vec![0usize; n + 1];
        let mut out_idx = Vec::with_capacity(col_idx.len());
        let mut out_val = Vec::with_capacity(values.len());
        for i in 0..n {
            let (start, end) = (row_ptr[i], row_ptr[i + 1]);
            if start > end || end > col_idx.len() {
                return Err(SparseError::MalformedCsr {
                    reason: format!("row_ptr not monotone at row {i}"),
                });
            }
            let mut prev: Option<usize> = None;
            for (&j, &v) in col_idx[start..end].iter().zip(&values[start..end]) {
                if j >= n {
                    return Err(SparseError::EntryOutOfBounds { index: (i, j), n });
                }
                if prev == Some(j) {
                    return Err(SparseError::DuplicateEntry { index: (i, j) });
                }
                if prev.is_some_and(|p| j < p) {
                    return Err(SparseError::UnsortedRow { row: i });
                }
                prev = Some(j);
                if j == i {
                    if diag == Diag::NonUnit {
                        diag_vals[i] = v;
                    }
                    continue;
                }
                let on_declared_side = match tri {
                    Triangle::Lower => j < i,
                    Triangle::Upper => j > i,
                };
                if !on_declared_side {
                    return Err(SparseError::WrongTriangle { index: (i, j) });
                }
                out_idx.push(j);
                out_val.push(v);
            }
            out_ptr[i + 1] = out_idx.len();
        }
        Self::finish(n, tri, diag, out_ptr, out_idx, out_val, diag_vals)
    }

    /// Shared tail of the constructors: numerical-health checks (every
    /// stored value finite, diagonal invertible).
    fn finish(
        n: usize,
        tri: Triangle,
        diag: Diag,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
        diag_vals: Vec<f64>,
    ) -> Result<SparseTri> {
        for i in 0..n {
            for (&j, &v) in col_idx[row_ptr[i]..row_ptr[i + 1]]
                .iter()
                .zip(&values[row_ptr[i]..row_ptr[i + 1]])
            {
                if !v.is_finite() {
                    return Err(SparseError::NonFiniteEntry {
                        index: (i, j),
                        value: v,
                    });
                }
            }
        }
        if diag == Diag::NonUnit {
            for (i, &d) in diag_vals.iter().enumerate() {
                if !d.is_finite() {
                    return Err(SparseError::NonFiniteEntry {
                        index: (i, i),
                        value: d,
                    });
                }
                if d.abs() < PIVOT_TOL {
                    return Err(SparseError::SingularDiagonal { row: i, value: d });
                }
            }
        }
        Ok(SparseTri {
            n,
            tri,
            diag,
            row_ptr,
            col_idx,
            values,
            diag_vals,
            schedule: OnceLock::new(),
            merged: OnceLock::new(),
            analyses: AtomicUsize::new(0),
            merged_analyses: AtomicUsize::new(0),
            transpose_cache: OnceLock::new(),
            csc_cache: OnceLock::new(),
        })
    }

    /// Matrix dimension `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Which triangle the matrix occupies.
    #[inline]
    pub fn triangle(&self) -> Triangle {
        self.tri
    }

    /// Whether the diagonal is implicit ones.
    #[inline]
    pub fn diag(&self) -> Diag {
        self.diag
    }

    /// Number of stored entries: off-diagonal entries, plus the `n` diagonal
    /// entries when they are explicit ([`Diag::NonUnit`]).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz_off_diagonal()
            + if self.diag == Diag::NonUnit {
                self.n
            } else {
                0
            }
    }

    /// Number of stored off-diagonal entries.
    #[inline]
    pub fn nnz_off_diagonal(&self) -> usize {
        self.values.len()
    }

    /// The off-diagonal entries of row `i` as `(column indices, values)`,
    /// columns strictly increasing.
    #[inline]
    pub fn row_entries(&self, i: usize) -> (&[usize], &[f64]) {
        let (s, e) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[s..e], &self.values[s..e])
    }

    /// The diagonal value of row `i` (`1.0` for [`Diag::Unit`]).
    #[inline]
    pub fn diag_value(&self, i: usize) -> f64 {
        self.diag_vals[i]
    }

    pub(crate) fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    pub(crate) fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// The level-set [`Schedule`] for this matrix, computed on first use and
    /// cached for the lifetime of the matrix.
    ///
    /// Repeated solves with the same matrix — the dominant pattern in
    /// iterative-solver traffic, where one incomplete factor is applied
    /// every iteration — re-use the cached analysis; see
    /// [`SparseTri::analysis_count`].
    pub fn schedule(&self) -> &Schedule {
        self.schedule.get_or_init(|| {
            self.analyses.fetch_add(1, Ordering::Relaxed);
            Schedule::analyze(self)
        })
    }

    /// How many times the level-set analysis has run for this matrix (0
    /// before the first solve, and 1 forever after — asserted by tests).
    pub fn analysis_count(&self) -> usize {
        self.analyses.load(Ordering::Relaxed)
    }

    /// The DAG-partitioned [`MergedSchedule`] for this matrix, computed on
    /// first use (on top of the cached [`SparseTri::schedule`]) and cached
    /// for the lifetime of the matrix — the analyze-once pattern applied to
    /// the super-level merge, so repeated merged-policy solves share one
    /// O(n + nnz) merge pass.
    pub fn merged_schedule(&self) -> &MergedSchedule {
        self.merged.get_or_init(|| {
            self.merged_analyses.fetch_add(1, Ordering::Relaxed);
            MergedSchedule::build(self.schedule(), self)
        })
    }

    /// How many times the super-level merge analysis has run for this
    /// matrix (0 until the first merged-policy solve, 1 forever after).
    pub fn merged_analysis_count(&self) -> usize {
        self.merged_analyses.load(Ordering::Relaxed)
    }

    /// Densify into a [`dense::Matrix`] (diagonal ones made explicit for
    /// [`Diag::Unit`]).  This is the bridge the dense-fallback solve path
    /// and the differential tests use.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.n);
        for i in 0..self.n {
            let (cols, vals) = self.row_entries(i);
            for (&j, &v) in cols.iter().zip(vals) {
                m[(i, j)] = v;
            }
            m[(i, i)] = self.diag_vals[i];
        }
        m
    }

    /// The transposed matrix (a lower-triangular matrix becomes upper, and
    /// vice versa).  The transpose carries the same [`Diag`] kind; its
    /// schedule is computed fresh on first use.
    pub fn transpose(&self) -> SparseTri {
        let tri = match self.tri {
            Triangle::Lower => Triangle::Upper,
            Triangle::Upper => Triangle::Lower,
        };
        // Column counts of `self` become row counts of the transpose.
        let mut row_ptr = vec![0usize; self.n + 1];
        for &j in &self.col_idx {
            row_ptr[j + 1] += 1;
        }
        for i in 0..self.n {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut fill = row_ptr.clone();
        let mut col_idx = vec![0usize; self.col_idx.len()];
        let mut values = vec![0.0f64; self.values.len()];
        for i in 0..self.n {
            let (cols, vals) = self.row_entries(i);
            for (&j, &v) in cols.iter().zip(vals) {
                let slot = fill[j];
                fill[j] += 1;
                col_idx[slot] = i;
                values[slot] = v;
            }
        }
        SparseTri {
            n: self.n,
            tri,
            diag: self.diag,
            row_ptr,
            col_idx,
            values,
            diag_vals: self.diag_vals.clone(),
            schedule: OnceLock::new(),
            merged: OnceLock::new(),
            analyses: AtomicUsize::new(0),
            merged_analyses: AtomicUsize::new(0),
            transpose_cache: OnceLock::new(),
            csc_cache: OnceLock::new(),
        }
    }

    /// The cached transpose of this matrix, built on first use and reused
    /// for the lifetime of the matrix — the analyze-once pattern applied to
    /// transposed solves (`Aᵀ·x = b`): the O(nnz) transposition runs once,
    /// and the transpose's own level-set schedule is cached on it.
    ///
    /// This is what the transposed solve executors
    /// ([`SparseTri::solve_with`](crate::solve) with
    /// [`dense::Transpose::Yes`]) run on.
    pub fn transposed(&self) -> &SparseTri {
        self.transpose_cache
            .get_or_init(|| Box::new(self.transpose()))
    }

    /// The cached CSC mirror of this matrix, built on first use (one O(nnz)
    /// counting sort) and reused for the lifetime of the matrix.
    ///
    /// This is what the sync-free executor
    /// ([`crate::SchedulePolicy::SyncFree`]) sweeps.  It is a storage
    /// conversion, not a dependency analysis — building it does not bump
    /// [`SparseTri::analysis_count`], and one-shot sync-free solves stay
    /// genuinely analysis-free.
    pub fn csc(&self) -> &SparseTriCsc {
        self.csc_cache
            .get_or_init(|| Box::new(SparseTriCsc::from_csr(self)))
    }
}

impl Clone for SparseTri {
    /// Clones the matrix *and* its cached schedules (re-analyzing an
    /// identical pattern would be wasted work); the clone's analysis counts
    /// start fresh.
    fn clone(&self) -> SparseTri {
        SparseTri {
            n: self.n,
            tri: self.tri,
            diag: self.diag,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: self.values.clone(),
            diag_vals: self.diag_vals.clone(),
            schedule: self.schedule.clone(),
            merged: self.merged.clone(),
            analyses: AtomicUsize::new(0),
            merged_analyses: AtomicUsize::new(0),
            transpose_cache: self.transpose_cache.clone(),
            csc_cache: self.csc_cache.clone(),
        }
    }
}

impl std::fmt::Debug for SparseTri {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SparseTri")
            .field("n", &self.n)
            .field("tri", &self.tri)
            .field("diag", &self.diag)
            .field("nnz", &self.nnz())
            .finish()
    }
}

// Shared-analysis audit: a cached matrix serves concurrent solves — the
// serve crate's plan cache hands one `Arc<SparseTri>` to every request
// that hits, and the first solve's `OnceLock::get_or_init` may race with
// others.  That is only sound if the matrix *and every cache it embeds*
// (level schedule, merged schedule, transpose mirror, CSC mirror) are
// `Send + Sync`; asserted at compile time so a future cache field built on
// `Cell`/`Rc` fails this build rather than a downstream crate's.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SparseTri>();
    assert_send_sync::<crate::schedule::Schedule>();
    assert_send_sync::<crate::schedule::MergedSchedule>();
    assert_send_sync::<crate::csc::SparseTriCsc>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn small_lower() -> SparseTri {
        // [ 2 . . ]
        // [ 1 3 . ]
        // [ . 4 5 ]
        SparseTri::from_triplets(
            3,
            Triangle::Lower,
            Diag::NonUnit,
            &[
                (0, 0, 2.0),
                (1, 0, 1.0),
                (1, 1, 3.0),
                (2, 1, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn triplets_build_sorted_csr() {
        let m = small_lower();
        assert_eq!(m.n(), 3);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.nnz_off_diagonal(), 2);
        assert_eq!(m.row_entries(0), (&[][..], &[][..]));
        assert_eq!(m.row_entries(1), (&[0usize][..], &[1.0][..]));
        assert_eq!(m.row_entries(2), (&[1usize][..], &[4.0][..]));
        assert_eq!(m.diag_value(2), 5.0);
    }

    #[test]
    fn triplets_in_any_order_give_the_same_matrix() {
        let shuffled = SparseTri::from_triplets(
            3,
            Triangle::Lower,
            Diag::NonUnit,
            &[
                (2, 2, 5.0),
                (1, 1, 3.0),
                (2, 1, 4.0),
                (0, 0, 2.0),
                (1, 0, 1.0),
            ],
        )
        .unwrap();
        assert_eq!(shuffled.to_dense(), small_lower().to_dense());
    }

    #[test]
    fn from_csr_accepts_inline_diagonal() {
        // Same matrix as `small_lower`, diagonal inline.
        let m = SparseTri::from_csr(
            3,
            Triangle::Lower,
            Diag::NonUnit,
            &[0, 1, 3, 5],
            &[0, 0, 1, 1, 2],
            &[2.0, 1.0, 3.0, 4.0, 5.0],
        )
        .unwrap();
        assert_eq!(m.to_dense(), small_lower().to_dense());
    }

    #[test]
    fn validation_rejects_bad_structure() {
        let oob = SparseTri::from_triplets(
            2,
            Triangle::Lower,
            Diag::NonUnit,
            &[(0, 0, 1.0), (1, 5, 1.0)],
        );
        assert!(matches!(oob, Err(SparseError::EntryOutOfBounds { .. })));

        let wrong = SparseTri::from_triplets(
            2,
            Triangle::Lower,
            Diag::NonUnit,
            &[(0, 0, 1.0), (1, 1, 1.0), (0, 1, 2.0)],
        );
        assert!(matches!(wrong, Err(SparseError::WrongTriangle { .. })));

        let dup = SparseTri::from_triplets(
            2,
            Triangle::Lower,
            Diag::NonUnit,
            &[(0, 0, 1.0), (1, 1, 1.0), (1, 0, 2.0), (1, 0, 3.0)],
        );
        assert!(matches!(dup, Err(SparseError::DuplicateEntry { .. })));

        let sing = SparseTri::from_triplets(2, Triangle::Lower, Diag::NonUnit, &[(0, 0, 1.0)]);
        assert!(matches!(
            sing,
            Err(SparseError::SingularDiagonal { row: 1, .. })
        ));
    }

    #[test]
    fn from_csr_rejects_malformed_arrays() {
        let bad_ptr = SparseTri::from_csr(2, Triangle::Lower, Diag::Unit, &[0, 2], &[0], &[1.0]);
        assert!(matches!(bad_ptr, Err(SparseError::MalformedCsr { .. })));

        let shrinking =
            SparseTri::from_csr(2, Triangle::Lower, Diag::Unit, &[0, 1, 0], &[0], &[1.0]);
        assert!(matches!(shrinking, Err(SparseError::MalformedCsr { .. })));

        let unsorted = SparseTri::from_csr(
            3,
            Triangle::Lower,
            Diag::Unit,
            &[0, 0, 0, 2],
            &[1, 0],
            &[1.0, 2.0],
        );
        assert!(matches!(unsorted, Err(SparseError::UnsortedRow { row: 2 })));

        let dup = SparseTri::from_csr(
            3,
            Triangle::Lower,
            Diag::Unit,
            &[0, 0, 0, 2],
            &[0, 0],
            &[1.0, 2.0],
        );
        assert!(matches!(dup, Err(SparseError::DuplicateEntry { .. })));
    }

    #[test]
    fn constructors_reject_non_finite_entries() {
        // NaN off-diagonal via triplets.
        let nan_off = SparseTri::from_triplets(
            3,
            Triangle::Lower,
            Diag::NonUnit,
            &[(0, 0, 1.0), (1, 1, 1.0), (2, 0, f64::NAN), (2, 2, 1.0)],
        );
        assert!(matches!(
            nan_off,
            Err(SparseError::NonFiniteEntry { index: (2, 0), .. })
        ));

        // Infinite diagonal via triplets (NonUnit: the diagonal is read).
        let inf_diag = SparseTri::from_triplets(
            2,
            Triangle::Lower,
            Diag::NonUnit,
            &[(0, 0, 1.0), (1, 1, f64::INFINITY)],
        );
        assert!(matches!(
            inf_diag,
            Err(SparseError::NonFiniteEntry { index: (1, 1), .. })
        ));

        // Unit diagonal: a stored non-finite diagonal entry is dropped into
        // the implicit-ones overlay... but off-diagonal NaN still rejects.
        let unit_off = SparseTri::from_csr(
            2,
            Triangle::Lower,
            Diag::Unit,
            &[0, 0, 1],
            &[0],
            &[f64::NEG_INFINITY],
        );
        assert!(matches!(
            unit_off,
            Err(SparseError::NonFiniteEntry { index: (1, 0), .. })
        ));
    }

    #[test]
    fn unit_diag_ignores_stored_diagonal() {
        let m = SparseTri::from_triplets(
            2,
            Triangle::Lower,
            Diag::Unit,
            &[(0, 0, 123.0), (1, 0, 2.0)],
        )
        .unwrap();
        assert_eq!(m.diag_value(0), 1.0);
        assert_eq!(m.to_dense()[(0, 0)], 1.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn to_dense_round_trips_structure() {
        let m = small_lower();
        let d = m.to_dense();
        assert!(d.is_lower_triangular());
        assert_eq!(d[(1, 0)], 1.0);
        assert_eq!(d[(2, 0)], 0.0);
        assert_eq!(d[(2, 2)], 5.0);
    }

    #[test]
    fn transpose_flips_triangle_and_matches_dense_transpose() {
        let m = small_lower();
        let t = m.transpose();
        assert_eq!(t.triangle(), Triangle::Upper);
        assert_eq!(t.to_dense(), m.to_dense().transpose());
        // Transposing back recovers the original.
        assert_eq!(t.transpose().to_dense(), m.to_dense());
    }

    #[test]
    fn transposed_is_cached_and_reused() {
        let m = small_lower();
        let t1 = m.transposed() as *const SparseTri;
        let t2 = m.transposed() as *const SparseTri;
        assert_eq!(t1, t2, "transpose must be built once and cached");
        assert_eq!(m.transposed().to_dense(), m.to_dense().transpose());
        // The schedule analyzed on the cached transpose is itself reused.
        let _ = m.transposed().schedule();
        let _ = m.transposed().schedule();
        assert_eq!(m.transposed().analysis_count(), 1);
    }

    #[test]
    fn csc_mirror_is_cached_and_does_not_count_as_analysis() {
        let m = small_lower();
        let c1 = m.csc() as *const SparseTriCsc;
        let c2 = m.csc() as *const SparseTriCsc;
        assert_eq!(c1, c2, "CSC mirror must be built once and cached");
        assert_eq!(m.csc().to_dense(), m.to_dense());
        assert_eq!(
            m.analysis_count(),
            0,
            "building the CSC mirror is storage conversion, not analysis"
        );
    }

    #[test]
    fn clone_carries_the_cached_schedule() {
        let m = small_lower();
        let _ = m.schedule();
        assert_eq!(m.analysis_count(), 1);
        let c = m.clone();
        assert_eq!(c.analysis_count(), 0);
        let _ = c.schedule(); // already cached: no new analysis
        assert_eq!(c.analysis_count(), 0);
    }

    #[test]
    fn debug_is_compact() {
        let s = format!("{:?}", small_lower());
        assert!(s.contains("SparseTri"));
        assert!(s.contains("nnz"));
    }

    #[test]
    fn concurrent_solves_share_one_analysis() {
        use crate::solve::SolveOpts;
        use std::sync::Arc;
        // One shared matrix, four racing solver threads: the OnceLock
        // caches must hand every thread the same analysis (exactly one
        // build even when the first uses race), and the barriered answer
        // must be bitwise identical across threads.
        let m = Arc::new(crate::gen::random_lower(600, 6, 9));
        let b = crate::gen::rhs_vec(600, 10);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            let mut x = b.clone();
            handles.push(std::thread::spawn(move || {
                m.solve_with(&SolveOpts::new().threads(2), &mut x).unwrap();
                x
            }));
        }
        let results: Vec<Vec<f64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results[1..] {
            assert_eq!(r, &results[0], "concurrent solves must agree bitwise");
        }
        assert_eq!(
            m.analysis_count(),
            1,
            "four racing threads must share one schedule analysis"
        );
    }
}
