//! Sparse triangular solve executors.
//!
//! Every solve funnels through **one options-driven entry point** —
//! [`SparseTri::solve_with`] / [`SparseTri::solve_multi_with`] with a
//! [`SolveOpts`] — which picks between four execution strategies:
//!
//! * a worker budget of 1 (pinned, or implicit under [`PAR_MIN_WORK`]) runs
//!   the sequential baseline: rows in dependency order (ascending for
//!   lower, descending for upper), no analysis needed;
//! * a larger budget runs one of three parallel executors, chosen by
//!   [`SchedulePolicy`] (pinned through [`SolveOpts::policy`], or
//!   [`SchedulePolicy::auto`] from the level-shape statistics and the
//!   declared [`SolveOpts::reuse`]):
//!   - **`Level`** — the cached [`crate::Schedule`]'s levels run as
//!     barrier-separated sweeps on the [`dense::run_region`] worker pool,
//!     each level's rows split into one contiguous chunk per worker (one
//!     barrier per level);
//!   - **`Merged`** — the cached [`crate::MergedSchedule`]'s super-levels
//!     run the same chunked sweep with one barrier per *super-level*, and
//!     inside a super-level workers track readiness point-to-point: a
//!     per-row atomic flag set (release) when the row is eliminated, each
//!     worker spinning/yielding (acquire) only on the same-super-level
//!     rows its own rows consume — cutting barrier counts by orders of
//!     magnitude on deep narrow DAGs;
//!   - **`SyncFree`** — the analysis-free column sweep of
//!     [`crate::csc`] on the cached [`SparseTri::csc`] mirror: per-row
//!     atomic in-degree counters and per-worker partial-sum accumulators,
//!     **zero** levels and **zero** barriers, the right call for one-shot
//!     solves where neither analysis would ever pay for itself;
//! * [`dense::Transpose::Yes`] solves `Aᵀ·x = b` on the cached
//!   [`SparseTri::transposed`] matrix (and its cached schedules), so
//!   transposed applies — the `Lᵀ` half of an `ILU`/`IC` preconditioner —
//!   cost one O(nnz) transposition ever, not one per solve.
//!
//! [`SparseTri::solve_via_dense`] remains as the dense-fallback bridge:
//! densify and call [`dense::trsv_in_place`], for patterns so dense that
//! CSR indirection loses to the vectorized dense substitution.  The
//! historical `solve{,_seq,_multi}{,_in_place}{,_with_threads}` surface is
//! kept as thin shims (the `_seq`/`_with_threads` forms deprecated) over
//! the options-driven core; `catrsm::SolveRequest` is the cross-backend
//! front end.
//!
//! Because a row's result depends only on rows in earlier levels — which
//! are complete before the row runs — and the per-row arithmetic is a
//! fixed-order sweep over the CSR entries, the sequential and **barriered**
//! parallel executors (`Level`, `Merged`) are **bitwise identical** at
//! every worker count; `DENSE_THREADS` is a throughput knob there exactly
//! as it is for the dense GEMM.  The **sync-free** executor is bitwise
//! reproducible only *per fixed worker count*: its per-row reductions
//! re-associate when the worker count changes, so it agrees with the other
//! executors to rounding (1e-12 in the test suites), not bitwise — see
//! [`crate::csc`] for the full caveat.  Every solve reports a [`FlopCount`]
//! under the same conventions as the dense kernels (multiply + subtract = 2
//! flops per stored off-diagonal entry, one division per explicit
//! diagonal), so simulated machines can charge sparse applies to the same
//! γ·F term.

use crate::csr::SparseTri;
use crate::error::SparseError;
use crate::schedule::SchedulePolicy;
use crate::Result;
use dense::{dense_threads, run_region, Diag, FlopCount, Matrix, Transpose};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Options of one sparse triangular solve: whether the matrix is applied
/// transposed, the worker budget, and the scheduling policy.
///
/// This is the single execution vocabulary every sparse solve funnels
/// through ([`SparseTri::solve_with`] / [`SparseTri::solve_multi_with`]);
/// the historical `solve{,_seq,_multi}{,_in_place}{,_with_threads}`
/// combinatorics are thin shims over it, and `catrsm::SolveRequest` lowers
/// to it for the sparse backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolveOpts {
    /// Apply the matrix transposed (`Aᵀ·x = b`); runs on the cached
    /// [`SparseTri::transposed`] matrix and its cached schedules.
    pub transpose: Transpose,
    /// Worker budget: `None` applies the implicit [`PAR_MIN_WORK`] gate and
    /// the `DENSE_THREADS` pool size; `Some(t)` pins exactly `t` workers.
    /// Results are bitwise identical for every value under the barriered
    /// policies (and under [`SchedulePolicy::SyncFree`], reproducible per
    /// fixed value — see [`crate::csc`]).
    pub threads: Option<usize>,
    /// Scheduling policy of the parallel executor: `None` lets
    /// [`SchedulePolicy::auto`] choose from the level-shape statistics and
    /// the declared [`SolveOpts::reuse`]; `Some(p)` pins it.
    pub policy: Option<SchedulePolicy>,
    /// How many times this matrix will be applied (this solve included):
    /// the analyze-cost-vs-reuse signal [`SchedulePolicy::auto`] prices.
    /// `None` declares nothing and is treated as "apply many times" (the
    /// historical behavior); `Some(r)` below
    /// [`crate::schedule::ANALYZE_REUSE_MIN`] routes the solve to the
    /// analysis-free [`SchedulePolicy::SyncFree`] executor without ever
    /// touching the cached schedules.  Ignored when `policy` is pinned.
    pub reuse: Option<usize>,
}

impl SolveOpts {
    /// Default options: non-transposed, implicit worker gate, auto policy.
    pub fn new() -> SolveOpts {
        SolveOpts::default()
    }

    /// Apply the matrix transposed.
    pub fn transposed(mut self) -> SolveOpts {
        self.transpose = Transpose::Yes;
        self
    }

    /// Set the transpose flag explicitly.
    pub fn transpose(mut self, transpose: Transpose) -> SolveOpts {
        self.transpose = transpose;
        self
    }

    /// Pin the worker budget (bypassing the [`PAR_MIN_WORK`] gate).
    pub fn threads(mut self, threads: usize) -> SolveOpts {
        self.threads = Some(threads);
        self
    }

    /// Pin the scheduling policy (bypassing [`SchedulePolicy::auto`]).
    pub fn policy(mut self, policy: SchedulePolicy) -> SolveOpts {
        self.policy = Some(policy);
        self
    }

    /// Declare how many times this matrix will be applied (this solve
    /// included), letting [`SchedulePolicy::auto`] price the analysis cost
    /// against it: one-shot solves (`reuse(1)`) go sync-free, many-apply
    /// loops keep the analyzed schedules.
    pub fn reuse(mut self, reuse: usize) -> SolveOpts {
        self.reuse = Some(reuse);
        self
    }
}

/// The fully resolved shape of one sparse solve — the worker count, policy
/// and synchronization structure the executor will actually run, computed
/// by [`SparseTri::execution_shape`] from the same decision procedure the
/// executor uses.  This is what `catrsm`'s staged planner records on its
/// `Plan` and reports (measured) in its `LevelReport`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionShape {
    /// Workers the executor runs with (1 = the analysis-free sequential
    /// sweep).
    pub workers: usize,
    /// The scheduling policy in effect (meaningful when `workers > 1`;
    /// a sequential solve nominally reports [`SchedulePolicy::Level`]).
    pub policy: SchedulePolicy,
    /// Dependency levels of the schedule (0 when the solve stays
    /// sequential or runs sync-free and the pattern is never analyzed).
    pub levels: usize,
    /// Super-levels of the merged schedule (0 unless the merged policy
    /// runs).
    pub super_levels: usize,
    /// Barriers each worker waits on: `levels` under
    /// [`SchedulePolicy::Level`], `super_levels` under
    /// [`SchedulePolicy::Merged`], 0 sequentially and under
    /// [`SchedulePolicy::SyncFree`].
    pub barriers: usize,
    /// Rows in the widest level (the level executor's parallelism ceiling;
    /// 0 when sequential or sync-free).
    pub max_level_width: usize,
}

impl ExecutionShape {
    /// The shape of a sequential sweep (no analysis, no barriers).
    fn sequential() -> ExecutionShape {
        ExecutionShape {
            workers: 1,
            policy: SchedulePolicy::Level,
            levels: 0,
            super_levels: 0,
            barriers: 0,
            max_level_width: 0,
        }
    }
}

/// Below this many `nnz · k` units of work a solve never goes parallel on
/// its own: one region spawn costs tens of microseconds, which rivals the
/// arithmetic of a small solve.  Explicit `*_with_threads` callers bypass
/// the gate (results are bitwise identical either way).
pub const PAR_MIN_WORK: usize = 64 * 1024;

/// Shared mutable buffer pointer handed to solve workers (the solution
/// vector in the level sweeps, the solution and partial-sum slabs in the
/// sync-free sweep).
///
/// Plain `&mut [f64]` cannot be shared across workers; each executor's
/// disjoint-access invariant is what makes the sharing sound (see the
/// SAFETY comments at the use sites), so the pointer is wrapped and the
/// invariant documented there.
pub(crate) struct SharedPtr(pub(crate) *mut f64);

// SAFETY: every executor partitions the buffer so that concurrently
// accessed regions are disjoint per worker, with barriers or acquire/
// release counter handshakes providing the happens-before edges for
// cross-worker reads — documented at each use site.
unsafe impl Send for SharedPtr {}
unsafe impl Sync for SharedPtr {}

impl SharedPtr {
    /// Accessor (rather than direct field use) so closures capture the
    /// `Sync` wrapper as a whole instead of edition-2021 field-precise
    /// capturing the raw pointer, which is not `Sync`.
    #[inline]
    pub(crate) fn get(&self) -> *mut f64 {
        self.0
    }
}

/// A sense-reversing spin/yield barrier for the level-sweep workers.
///
/// `std::sync::Barrier` takes a mutex and sleeps on a condvar at every
/// crossing — two futex syscalls plus a wake broadcast per worker per
/// level, which *is* the sparse hot path's synchronization overhead when a
/// schedule crosses hundreds (level policy: thousands) of barriers per
/// solve.  Here arrival is one `fetch_add`, release is one generation-
/// counter bump by the last arriver (no wake syscalls at all), and waiters
/// spin briefly then yield (same policy as [`wait_ready`], so
/// oversubscribed machines degrade to scheduler round-robin instead of
/// burning quanta).
///
/// Ordering: every arrival `fetch_add(AcqRel)`s the count, so the last
/// arriver has acquired all earlier workers' writes when it bumps the
/// generation with a release store; waiters acquire the bump — giving
/// every worker a happens-before edge over every other worker's
/// pre-barrier writes, exactly the guarantee the level sweeps need.
struct SpinBarrier {
    workers: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(workers: usize) -> SpinBarrier {
        SpinBarrier {
            workers,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.workers {
            // Reset before the bump: workers can only re-arrive after they
            // observe the new generation, so the store cannot race their
            // next fetch_add.
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.store(generation + 1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                if spins < 32 {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Spins (briefly) then yields until `flag` reaches `epoch`, with an
/// acquire load so the waiter observes every write the setter published
/// before its release store.
///
/// The short spin phase covers the common case — the producing worker is
/// running on another core and finishes within nanoseconds; the yield
/// phase keeps oversubscribed machines (more workers than cores, e.g. the
/// 4-worker runs on this repo's 1-core bench container) from burning a
/// scheduling quantum busy-waiting for a worker that needs the CPU to make
/// the very progress being waited on.
#[inline]
pub(crate) fn wait_ready(flag: &AtomicU32, epoch: u32) {
    let mut spins = 0u32;
    while flag.load(Ordering::Acquire) != epoch {
        if spins < 32 {
            spins += 1;
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// [`wait_ready`] that counts loop iterations (spins + yields) for the
/// tracing layer.  Only called when tracing is enabled, so the plain
/// variant's disabled path stays untouched.
#[inline]
pub(crate) fn wait_ready_counted(flag: &AtomicU32, epoch: u32) -> u64 {
    let mut iters = 0u64;
    let mut spins = 0u32;
    while flag.load(Ordering::Acquire) != epoch {
        iters += 1;
        if spins < 32 {
            spins += 1;
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
    iters
}

/// Per-(super-)level timeline spans are emitted (by worker 0) only when the
/// schedule has at most this many levels: a 10 000-level DAG would flood
/// the trace buffers with events nobody can render, while the per-worker
/// aggregate counters (`barrier_wait_ns`, `spin_iters`) stay cheap at any
/// depth.
pub(crate) const MAX_LEVEL_SPANS: usize = 1024;

thread_local! {
    /// Readiness flags reused across merged-policy solves on this thread,
    /// paired with the epoch of the most recent solve that used them (see
    /// [`with_done_flags`]).
    static DONE_FLAGS: std::cell::RefCell<(Vec<AtomicU32>, u32)> =
        const { std::cell::RefCell::new((Vec::new(), 0)) };
}

/// Runs `f` with an `n`-row readiness-flag buffer and the epoch value that
/// means "eliminated" for this solve.
///
/// The merged executor is on the plan-once/apply-many hot path, so the
/// buffer is cached thread-locally and never re-zeroed between solves:
/// each solve bumps the epoch, and a row counts as ready only when its
/// flag holds the *current* epoch — stale values from earlier solves
/// compare unequal.  The buffer is (re)zeroed only when it grows or the
/// `u32` epoch wraps.  Falls back to a fresh allocation in the
/// (unexpected) re-entrant case.
fn with_done_flags<R>(n: usize, f: impl FnOnce(&[AtomicU32], u32) -> R) -> R {
    DONE_FLAGS.with(|cell| match cell.try_borrow_mut() {
        Ok(mut state) => {
            let (buf, epoch) = &mut *state;
            *epoch = epoch.wrapping_add(1);
            if buf.len() < n || *epoch == 0 {
                // Fresh zeroed flags with the epoch restarted at 1, so no
                // stale value can ever equal the current epoch.
                *buf = (0..n).map(|_| AtomicU32::new(0)).collect();
                *epoch = 1;
            }
            f(&buf[..n], *epoch)
        }
        Err(_) => {
            let buf: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            f(&buf, 1)
        }
    })
}

/// `[lo, hi)` bounds of worker `w`'s contiguous share of `len` items split
/// across `workers` (first `len % workers` workers take one extra item).
/// Depends only on `(len, workers, w)`, never on timing.
pub(crate) fn chunk_bounds(len: usize, workers: usize, w: usize) -> (usize, usize) {
    let base = len / workers;
    let extra = len % workers;
    let lo = w * base + w.min(extra);
    (lo, lo + base + usize::from(w < extra))
}

impl SparseTri {
    /// Flops of one solve with `k` right-hand sides under the dense crate's
    /// conventions: each stored off-diagonal entry is a multiply + subtract,
    /// each explicit diagonal a division.
    pub fn solve_flops(&self, k: usize) -> FlopCount {
        let per_rhs = 2 * self.nnz_off_diagonal() as u64
            + if self.diag() == Diag::NonUnit {
                self.n() as u64
            } else {
                0
            };
        FlopCount::new(per_rhs * k as u64)
    }

    /// Eliminates row `i`: `x[i] ← (x[i] − Σ_j a_ij · x[j]) / d_i`, over `k`
    /// interleaved right-hand sides at row stride `stride`.
    ///
    /// Every executor funnels through this one kernel, and its entry order
    /// (CSR order, then the diagonal) is fixed — the root of the bitwise
    /// determinism guarantee.
    ///
    /// # Safety
    /// `x` must be valid for reads and writes of `n` rows of `k` elements at
    /// row stride `stride`; rows read here (`i`'s dependencies) must not be
    /// concurrently written, and row `i` must not be concurrently accessed.
    #[inline]
    unsafe fn eliminate_row(&self, x: *mut f64, stride: usize, k: usize, i: usize) {
        let (cols, vals) = self.row_entries(i);
        let xi = std::slice::from_raw_parts_mut(x.add(i * stride), k);
        for (&j, &v) in cols.iter().zip(vals) {
            let xj = std::slice::from_raw_parts(x.add(j * stride), k);
            for (xic, xjc) in xi.iter_mut().zip(xj) {
                *xic -= v * xjc;
            }
        }
        if self.diag() == Diag::NonUnit {
            let d = self.diag_value(i);
            for xic in xi.iter_mut() {
                *xic /= d;
            }
        }
    }

    /// Worker budget for the implicit (non-`_with_threads`) entry points:
    /// the `DENSE_THREADS` pool size when the solve clears [`PAR_MIN_WORK`],
    /// else 1.  The decision depends only on the matrix and `k`, never on
    /// timing, so which path runs is itself deterministic.
    fn implicit_threads(&self, k: usize) -> usize {
        if self.nnz().saturating_mul(k) >= PAR_MIN_WORK {
            dense_threads()
        } else {
            1
        }
    }

    /// Resolves a worker budget + policy pin into the executor that will
    /// actually run.  This is the one decision procedure shared by the
    /// executor ([`SparseTri::run_solve`]) and the planners
    /// ([`SparseTri::execution_shape`] / [`SparseTri::planned_workers`]),
    /// so a plan always describes exactly what executes.  Depends only on
    /// the (cached) analysis, `budget` and the pin — never on timing.
    ///
    /// A budget of 1 never touches the schedules, keeping sequential
    /// solves analysis-free — and so does any resolution to
    /// [`SchedulePolicy::SyncFree`] (pinned, or auto-chosen from a small
    /// declared `reuse`), which is decided *before* the analysis so
    /// one-shot solves never pay for the level sets they skipped.
    fn resolve_shape(
        &self,
        budget: usize,
        policy: Option<SchedulePolicy>,
        reuse: Option<usize>,
    ) -> ExecutionShape {
        if budget <= 1 {
            return ExecutionShape::sequential();
        }
        // Sync-free fast path: both arms match what `SchedulePolicy::auto`
        // would decide, but are checked before `self.schedule()` so the
        // analysis never runs.  (`auto` short-circuits on small reuse
        // before looking at the schedule, so the outcomes agree.)
        if policy == Some(SchedulePolicy::SyncFree)
            || (policy.is_none() && reuse.is_some_and(|r| r < crate::schedule::ANALYZE_REUSE_MIN))
        {
            return self.syncfree_shape(budget);
        }
        let sched = self.schedule();
        let policy = policy.unwrap_or_else(|| SchedulePolicy::auto(sched, budget, reuse));
        let workers = match policy {
            // Workers beyond the widest level would never receive a row.
            SchedulePolicy::Level => budget.min(sched.max_level_width()),
            // The merged executor's ceiling is the widest *super*-level.
            SchedulePolicy::Merged => budget.min(self.merged_schedule().max_super_width()),
            // Unreachable through `auto` (small reuse short-circuits
            // above), kept for totality.
            SchedulePolicy::SyncFree => return self.syncfree_shape(budget),
        };
        if workers <= 1 {
            // The width cap degraded the solve to the sequential sweep:
            // report the nominal sequential shape (policy `Level`, no
            // barriers), matching the `budget <= 1` path — what *runs* is
            // the same sweep either way.
            return ExecutionShape::sequential();
        }
        let (super_levels, barriers) = match policy {
            SchedulePolicy::Level => (0, sched.num_levels()),
            SchedulePolicy::Merged => {
                let s = self.merged_schedule().num_super_levels();
                (s, s)
            }
            SchedulePolicy::SyncFree => unreachable!("resolved above"),
        };
        ExecutionShape {
            workers,
            policy,
            levels: sched.num_levels(),
            super_levels,
            barriers,
            max_level_width: sched.max_level_width(),
        }
    }

    /// The shape of a sync-free solve: no levels, no barriers, no analysis
    /// — only a worker count (capped at `n`; more workers than columns
    /// would own empty chunks).
    fn syncfree_shape(&self, budget: usize) -> ExecutionShape {
        ExecutionShape {
            workers: budget.min(self.n().max(1)),
            policy: SchedulePolicy::SyncFree,
            levels: 0,
            super_levels: 0,
            barriers: 0,
            max_level_width: 0,
        }
    }

    /// Runs the solve over `x` (`n` rows × `k` columns at row stride
    /// `stride`, holding `B` on entry and `X` on exit) with the given
    /// worker budget and policy pin.
    fn run_solve(
        &self,
        x: *mut f64,
        stride: usize,
        k: usize,
        threads: usize,
        policy: Option<SchedulePolicy>,
        reuse: Option<usize>,
    ) -> FlopCount {
        let n = self.n();
        if n == 0 || k == 0 {
            return FlopCount::ZERO;
        }
        let shape = self.resolve_shape(threads, policy, reuse);
        if shape.workers <= 1 {
            // Sequential sweep in dependency order; no analysis required.
            match self.triangle() {
                dense::Triangle::Lower => {
                    for i in 0..n {
                        // SAFETY: single-threaded; dependencies of row `i`
                        // (columns `< i`) were eliminated earlier in this
                        // ascending sweep.
                        unsafe { self.eliminate_row(x, stride, k, i) };
                    }
                }
                dense::Triangle::Upper => {
                    for i in (0..n).rev() {
                        // SAFETY: single-threaded; dependencies of row `i`
                        // (columns `> i`) were eliminated earlier in this
                        // descending sweep.
                        unsafe { self.eliminate_row(x, stride, k, i) };
                    }
                }
            }
        } else {
            match shape.policy {
                SchedulePolicy::Level => self.run_level_parallel(x, stride, k, shape.workers),
                SchedulePolicy::Merged => self.run_merged_parallel(x, stride, k, shape.workers),
                SchedulePolicy::SyncFree => self.csc().run_syncfree(x, stride, k, shape.workers),
            }
        }
        self.solve_flops(k)
    }

    /// The classical level-scheduled executor: one barrier per dependency
    /// level, each level's rows split into one contiguous chunk per worker.
    fn run_level_parallel(&self, x: *mut f64, stride: usize, k: usize, workers: usize) {
        let sched = self.schedule();
        let shared = SharedPtr(x);
        let barrier = SpinBarrier::new(workers);
        let tracing = obs::enabled();
        let level_spans = tracing && sched.num_levels() <= MAX_LEVEL_SPANS;
        let _span = obs::span_with("sparse", "level_exec", "levels", sched.num_levels() as u64);
        run_region(workers, |w| {
            // Barrier-wait time accumulates locally and is emitted as one
            // counter per worker at region end, so the per-level loop
            // records nothing; worker 0 additionally emits a per-level
            // timeline span on shallow schedules.
            let mut wait_ns = 0u64;
            for l in 0..sched.num_levels() {
                let rows = sched.level_rows(l);
                let lspan = if level_spans && w == 0 {
                    Some(obs::span_with("sparse", "level", "rows", rows.len() as u64))
                } else {
                    None
                };
                let (lo, hi) = chunk_bounds(rows.len(), workers, w);
                for &i in &rows[lo..hi] {
                    // SAFETY: `chunk_bounds` hands each worker a
                    // disjoint slice of this level's rows, so row `i` is
                    // written by exactly this worker; every dependency
                    // of `i` lies in a level `< l` (the defining
                    // invariant of `Schedule`), whose writes
                    // happened-before this read via the barrier below
                    // (and, for level 0, via the region spawn).
                    unsafe { self.eliminate_row(shared.get(), stride, k, i) };
                }
                let t0 = if tracing { obs::now_ns() } else { 0 };
                barrier.wait();
                if tracing {
                    wait_ns += obs::now_ns().saturating_sub(t0);
                }
                drop(lspan);
            }
            if tracing {
                obs::counter(
                    "sparse",
                    "barrier_wait_ns",
                    "ns",
                    wait_ns,
                    "worker",
                    w as u64,
                );
            }
        });
    }

    /// The DAG-partitioned executor: one barrier per *super-level*, with
    /// point-to-point readiness inside each.
    ///
    /// Each super-level's rows (a contiguous range of the merged
    /// schedule's [`crate::MergedSchedule::rows`] sweep order, which reorders
    /// rows *within* the super-level by level then descending fan-out) are
    /// split into one contiguous chunk per worker.  A worker sweeps its
    /// chunk in flat order; before eliminating a row it spins/yields on
    /// the readiness flags of the row's dependencies that live in the
    /// *same* super-level (dependencies in earlier super-levels are
    /// complete — the inter-super-level barrier guarantees it), and
    /// publishes its own flag with release ordering afterwards.
    ///
    /// Deadlock-freedom: every dependency sits at a strictly earlier flat
    /// position (it is in a strictly earlier level, and level remains the
    /// sweep order's primary sort key within a super-level), each worker's
    /// chunk is processed in ascending flat order, and a worker at flat
    /// position `p` only ever waits on positions `< p` — so along any wait
    /// chain the positions strictly decrease, and the earliest unfinished
    /// row is always runnable.
    ///
    /// Bitwise determinism: the row → worker assignment and the per-row
    /// arithmetic order are both timing-independent; the flags only ever
    /// delay a worker, never reorder arithmetic.
    fn run_merged_parallel(&self, x: *mut f64, stride: usize, k: usize, workers: usize) {
        let merged = self.merged_schedule();
        let rows = merged.rows();
        let shared = SharedPtr(x);
        let barrier = SpinBarrier::new(workers);
        // One readiness flag per row, `== epoch` meaning eliminated; the
        // buffer is thread-locally cached and epoch-versioned so the
        // apply-many hot path allocates and zeroes nothing per solve.
        // Rows of earlier super-levels never have their flags consulted,
        // so no per-super-level reset is needed either.
        let tracing = obs::enabled();
        let super_spans = tracing && merged.num_super_levels() <= MAX_LEVEL_SPANS;
        let _span = obs::span_with(
            "sparse",
            "merged_exec",
            "super_levels",
            merged.num_super_levels() as u64,
        );
        with_done_flags(self.n(), |done, epoch| {
            run_region(workers, |w| {
                // Same counter convention as the level executor, plus the
                // point-to-point spin count; worker 0 also emits one
                // `super_rows` counter per super-level (its row count,
                // surfaced into `TraceReport::super_level_rows`).
                let mut wait_ns = 0u64;
                let mut spins = 0u64;
                for s in 0..merged.num_super_levels() {
                    let srange = merged.super_range(s);
                    let srows = &rows[srange];
                    let sspan = if super_spans && w == 0 {
                        obs::counter(
                            "sparse",
                            "super_rows",
                            "rows",
                            srows.len() as u64,
                            "super",
                            s as u64,
                        );
                        Some(obs::span_with(
                            "sparse",
                            "super_level",
                            "rows",
                            srows.len() as u64,
                        ))
                    } else {
                        None
                    };
                    let (lo, hi) = chunk_bounds(srows.len(), workers, w);
                    for &i in &srows[lo..hi] {
                        let (cols, _) = self.row_entries(i);
                        for &j in cols {
                            if merged.super_of(j) == s as u32 {
                                if tracing {
                                    spins += wait_ready_counted(&done[j], epoch);
                                } else {
                                    wait_ready(&done[j], epoch);
                                }
                            }
                        }
                        // SAFETY: row `i` is written by exactly this worker
                        // (disjoint chunks of disjoint super-levels); each
                        // dependency `j` was either finalized in an earlier
                        // super-level (happens-before via the barrier below)
                        // or in this one (happens-before via the acquire
                        // load in `wait_ready` pairing with the release
                        // store).
                        unsafe { self.eliminate_row(shared.get(), stride, k, i) };
                        done[i].store(epoch, Ordering::Release);
                    }
                    let t0 = if tracing { obs::now_ns() } else { 0 };
                    barrier.wait();
                    if tracing {
                        wait_ns += obs::now_ns().saturating_sub(t0);
                    }
                    drop(sspan);
                }
                if tracing {
                    obs::counter(
                        "sparse",
                        "barrier_wait_ns",
                        "ns",
                        wait_ns,
                        "worker",
                        w as u64,
                    );
                    obs::counter("sparse", "spin_iters", "iters", spins, "worker", w as u64);
                }
            });
        });
    }

    /// The matrix the executor actually sweeps: `self` for a plain solve,
    /// the cached [`SparseTri::transposed`] for a transposed one.
    #[inline]
    pub fn executor(&self, transpose: Transpose) -> &SparseTri {
        match transpose {
            Transpose::No => self,
            Transpose::Yes => self.transposed(),
        }
    }

    /// The fully resolved execution shape — workers, policy, levels,
    /// super-levels, barriers — a solve with these options and `k`
    /// right-hand sides will run with: the same decision
    /// [`SparseTri::solve_with`] makes, so plans can be inspected before
    /// execution and reports always match what ran.  Depends only on the
    /// matrix, `k` and the options, never on timing.
    ///
    /// A budget of 1 (implicit or pinned) never touches the schedules, so
    /// sequential solves still run analysis-free.
    pub fn execution_shape(&self, opts: &SolveOpts, k: usize) -> ExecutionShape {
        let exec = self.executor(opts.transpose);
        let budget = opts.threads.unwrap_or_else(|| exec.implicit_threads(k));
        exec.resolve_shape(budget, opts.policy, opts.reuse)
    }

    /// The worker count a solve with these options and `k` right-hand sides
    /// will run with (shorthand for [`SparseTri::execution_shape`]).
    pub fn planned_workers(&self, opts: &SolveOpts, k: usize) -> usize {
        self.execution_shape(opts, k).workers
    }

    /// Solves `op(A)·x = b` in place under the given [`SolveOpts`]: `x`
    /// holds `b` on entry and the solution on exit.  Returns the flop count.
    ///
    /// This is the single entry point every sparse solve funnels through;
    /// with default options it is [`SparseTri::solve_in_place`], with a
    /// pinned budget the historical `_with_threads` variants, and with
    /// [`Transpose::Yes`] the transposed solve on the cached transpose.
    pub fn solve_with(&self, opts: &SolveOpts, x: &mut [f64]) -> Result<FlopCount> {
        if x.len() != self.n() {
            return Err(SparseError::DimensionMismatch {
                op: "sparse solve",
                n: self.n(),
                rhs: (x.len(), 1),
            });
        }
        let exec = self.executor(opts.transpose);
        let threads = opts.threads.unwrap_or_else(|| exec.implicit_threads(1));
        Ok(exec.run_solve(x.as_mut_ptr(), 1, 1, threads, opts.policy, opts.reuse))
    }

    /// Solves `op(A)·X = B` in place for a block of right-hand sides under
    /// the given [`SolveOpts`]; level-parallel across rows and vectorized
    /// across the `k` columns.  `x` holds `B` on entry and `X` on exit.
    pub fn solve_multi_with(&self, opts: &SolveOpts, x: &mut Matrix) -> Result<FlopCount> {
        if x.rows() != self.n() {
            return Err(SparseError::DimensionMismatch {
                op: "sparse solve_multi",
                n: self.n(),
                rhs: x.dims(),
            });
        }
        let k = x.cols();
        let exec = self.executor(opts.transpose);
        let threads = opts.threads.unwrap_or_else(|| exec.implicit_threads(k));
        Ok(exec.run_solve(
            x.as_mut_slice().as_mut_ptr(),
            k,
            k,
            threads,
            opts.policy,
            opts.reuse,
        ))
    }

    /// Solves `A · x = b` for one right-hand side, level-parallel on the
    /// `DENSE_THREADS` worker pool; returns the solution vector.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x)?;
        Ok(x)
    }

    /// [`SparseTri::solve`] in place: `x` holds `b` on entry and the
    /// solution on exit.  Returns the flop count.
    ///
    /// Solves of at least [`PAR_MIN_WORK`] `nnz · k` units run on the
    /// `DENSE_THREADS` worker pool; smaller ones stay on the calling thread.
    pub fn solve_in_place(&self, x: &mut [f64]) -> Result<FlopCount> {
        self.solve_with(&SolveOpts::new(), x)
    }

    /// [`SparseTri::solve_in_place`] with an explicit worker budget instead
    /// of the `DENSE_THREADS` default.  Results are bitwise identical for
    /// every value of `threads`.
    #[deprecated(
        since = "0.1.0",
        note = "use `solve_with(&SolveOpts::new().threads(threads), x)` \
                or `catrsm::SolveRequest`"
    )]
    pub fn solve_in_place_with_threads(&self, x: &mut [f64], threads: usize) -> Result<FlopCount> {
        self.solve_with(&SolveOpts::new().threads(threads), x)
    }

    /// Sequential baseline for [`SparseTri::solve`]: one substitution sweep
    /// in dependency order, no analysis, no workers.
    #[deprecated(
        since = "0.1.0",
        note = "use `solve_with(&SolveOpts::new().threads(1), x)` \
                or `catrsm::SolveRequest`"
    )]
    pub fn solve_seq(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = b.to_vec();
        self.solve_with(&SolveOpts::new().threads(1), &mut x)?;
        Ok(x)
    }

    /// [`SparseTri::solve_seq`] in place; returns the flop count.
    #[deprecated(
        since = "0.1.0",
        note = "use `solve_with(&SolveOpts::new().threads(1), x)` \
                or `catrsm::SolveRequest`"
    )]
    pub fn solve_seq_in_place(&self, x: &mut [f64]) -> Result<FlopCount> {
        self.solve_with(&SolveOpts::new().threads(1), x)
    }

    /// Solves `A · X = B` for a block of right-hand sides (`B` is `n × k`),
    /// level-parallel across rows and vectorized across the `k` columns.
    pub fn solve_multi(&self, b: &Matrix) -> Result<Matrix> {
        let mut x = b.clone();
        self.solve_multi_in_place(&mut x)?;
        Ok(x)
    }

    /// [`SparseTri::solve_multi`] in place: `x` holds `B` on entry and `X`
    /// on exit.  Returns the flop count.  Gated on [`PAR_MIN_WORK`] like
    /// [`SparseTri::solve_in_place`].
    pub fn solve_multi_in_place(&self, x: &mut Matrix) -> Result<FlopCount> {
        self.solve_multi_with(&SolveOpts::new(), x)
    }

    /// [`SparseTri::solve_multi_in_place`] with an explicit worker budget;
    /// bitwise identical for every value of `threads`.
    #[deprecated(
        since = "0.1.0",
        note = "use `solve_multi_with(&SolveOpts::new().threads(threads), x)` \
                or `catrsm::SolveRequest`"
    )]
    pub fn solve_multi_in_place_with_threads(
        &self,
        x: &mut Matrix,
        threads: usize,
    ) -> Result<FlopCount> {
        self.solve_multi_with(&SolveOpts::new().threads(threads), x)
    }

    /// Sequential baseline for [`SparseTri::solve_multi`].
    #[deprecated(
        since = "0.1.0",
        note = "use `solve_multi_with(&SolveOpts::new().threads(1), x)` \
                or `catrsm::SolveRequest`"
    )]
    pub fn solve_multi_seq(&self, b: &Matrix) -> Result<Matrix> {
        let mut x = b.clone();
        self.solve_multi_with(&SolveOpts::new().threads(1), &mut x)?;
        Ok(x)
    }

    /// Dense-fallback solve: densify ([`SparseTri::to_dense`]) and run the
    /// no-allocation dense substitution [`dense::trsv_in_place`].
    ///
    /// For patterns with most entries present the CSR indirection buys
    /// nothing over the dense row sweep; this bridge is also what the
    /// differential tests solve against.  Note the dense kernel accumulates
    /// over *all* columns (zeros included), so results agree with the sparse
    /// executors numerically, not bitwise.
    pub fn solve_via_dense(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = b.to_vec();
        let a = self.to_dense();
        dense::trsv_in_place(self.triangle(), self.diag(), &a, &mut x)?;
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    // The historical shims are exercised on purpose: they must stay bitwise
    // equal to the options-driven core they delegate to.
    #![allow(deprecated)]

    use super::*;
    use dense::Triangle;

    /// Deterministic lower-triangular test matrix with ~`fill` off-diagonal
    /// entries per row and a dominant diagonal.
    fn test_lower(n: usize, fill: usize) -> SparseTri {
        let mut ents = Vec::new();
        for i in 0..n {
            ents.push((i, i, 2.0 + (i % 3) as f64));
            for f in 0..fill.min(i) {
                let j = (i * 7 + f * 13) % i;
                ents.push((i, j, ((i + j * 3) % 5) as f64 * 0.1 + 0.05));
            }
        }
        ents.sort_by_key(|&(i, j, _)| (i, j));
        ents.dedup_by_key(|&mut (i, j, _)| (i, j));
        SparseTri::from_triplets(n, Triangle::Lower, Diag::NonUnit, &ents).unwrap()
    }

    #[test]
    fn identity_solve_returns_rhs() {
        let m = SparseTri::from_triplets(
            4,
            Triangle::Lower,
            Diag::NonUnit,
            &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0), (3, 3, 1.0)],
        )
        .unwrap();
        let b = vec![1.0, -2.0, 3.0, -4.0];
        assert_eq!(m.solve(&b).unwrap(), b);
        assert_eq!(m.solve_seq(&b).unwrap(), b);
    }

    #[test]
    fn known_small_system() {
        // [2 . .] [x0]   [2]          x0 = 1
        // [1 3 .] [x1] = [4]    =>    x1 = 1
        // [. 4 5] [x2]   [9]          x2 = 1
        let m = SparseTri::from_triplets(
            3,
            Triangle::Lower,
            Diag::NonUnit,
            &[
                (0, 0, 2.0),
                (1, 0, 1.0),
                (1, 1, 3.0),
                (2, 1, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap();
        let x = m.solve(&[2.0, 4.0, 9.0]).unwrap();
        for v in x {
            assert!((v - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn residual_is_small_and_flops_reported() {
        let n = 300;
        let m = test_lower(n, 6);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        // b = A · x_true via the densified matrix.
        let a = m.to_dense();
        let xt = Matrix::from_vec(n, 1, x_true.clone()).unwrap();
        let b = dense::matmul(&a, &xt).into_vec();
        let mut x = b.clone();
        let f = m.solve_in_place(&mut x).unwrap();
        assert_eq!(f, m.solve_flops(1));
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn all_executors_agree_bitwise_lower_and_upper() {
        let n = 500;
        let lower = test_lower(n, 8);
        let upper = lower.transpose();
        for m in [&lower, &upper] {
            let b: Vec<f64> = (0..n).map(|i| ((i * 29 + 3) % 17) as f64 - 8.0).collect();
            let seq = m.solve_seq(&b).unwrap();
            for threads in [2usize, 3, 4, 7] {
                let mut x = b.clone();
                m.solve_in_place_with_threads(&mut x, threads).unwrap();
                assert_eq!(x, seq, "threads={threads} changed the result bits");
            }
        }
    }

    #[test]
    fn multi_rhs_agrees_bitwise_and_with_column_solves() {
        let n = 400;
        let k = 5;
        let m = test_lower(n, 7);
        let b = Matrix::from_fn(n, k, |i, j| ((i * 5 + j * 11) % 13) as f64 - 6.0);
        let seq = m.solve_multi_seq(&b).unwrap();
        for threads in [2usize, 4] {
            let mut x = b.clone();
            m.solve_multi_in_place_with_threads(&mut x, threads)
                .unwrap();
            assert!(x == seq, "threads={threads} changed multi-RHS bits");
        }
        // Column c of the block solve equals the single-RHS solve of column c.
        for c in 0..k {
            let bc = b.col(c);
            let xc = m.solve(&bc).unwrap();
            for i in 0..n {
                assert_eq!(seq[(i, c)], xc[i], "column {c} row {i}");
            }
        }
    }

    #[test]
    fn solve_via_dense_matches_sparse_numerically() {
        let n = 200;
        let m = test_lower(n, 5);
        let b: Vec<f64> = (0..n).map(|i| ((i * 3) % 11) as f64 * 0.25 - 1.0).collect();
        let xs = m.solve(&b).unwrap();
        let xd = m.solve_via_dense(&b).unwrap();
        for (s, d) in xs.iter().zip(&xd) {
            assert!((s - d).abs() < 1e-12);
        }
    }

    #[test]
    fn unit_diag_solve_ignores_divisions() {
        let m =
            SparseTri::from_triplets(3, Triangle::Lower, Diag::Unit, &[(1, 0, 2.0), (2, 1, 3.0)])
                .unwrap();
        let x = m.solve(&[1.0, 0.0, 0.0]).unwrap();
        assert_eq!(x, vec![1.0, -2.0, 6.0]);
        assert_eq!(m.solve_flops(1), FlopCount::new(4));
    }

    #[test]
    fn analysis_runs_once_across_repeated_solves() {
        let n = 600;
        let m = test_lower(n, 8);
        assert_eq!(m.analysis_count(), 0);
        let b = vec![1.0; n];
        // Two parallel solves + a multi-RHS solve: one analysis, total.
        let mut x1 = b.clone();
        m.solve_in_place_with_threads(&mut x1, 4).unwrap();
        assert_eq!(m.analysis_count(), 1, "first parallel solve analyzes");
        let mut x2 = b.clone();
        m.solve_in_place_with_threads(&mut x2, 4).unwrap();
        let mut bm = Matrix::from_fn(n, 3, |i, j| (i + j) as f64);
        m.solve_multi_in_place_with_threads(&mut bm, 4).unwrap();
        assert_eq!(x1, x2);
        assert_eq!(
            m.analysis_count(),
            1,
            "pattern analysis must be cached across solves"
        );
    }

    #[test]
    fn sequential_baseline_never_analyzes() {
        let m = test_lower(200, 4);
        let b = vec![1.0; 200];
        let _ = m.solve_seq(&b).unwrap();
        assert_eq!(m.analysis_count(), 0);
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let m = test_lower(5, 2);
        assert!(matches!(
            m.solve(&[1.0; 4]),
            Err(SparseError::DimensionMismatch { .. })
        ));
        let mut wrong = Matrix::zeros(4, 2);
        assert!(m.solve_multi_in_place(&mut wrong).is_err());
    }

    #[test]
    fn empty_and_zero_rhs_edges() {
        let m = SparseTri::from_triplets(0, Triangle::Lower, Diag::NonUnit, &[]).unwrap();
        assert_eq!(m.solve(&[]).unwrap(), Vec::<f64>::new());
        let m2 = test_lower(3, 1);
        let mut empty = Matrix::zeros(3, 0);
        assert_eq!(
            m2.solve_multi_in_place(&mut empty).unwrap(),
            FlopCount::ZERO
        );
    }

    #[test]
    fn transposed_solve_matches_dense_transposed_solve() {
        let n = 300;
        let m = test_lower(n, 6);
        let b: Vec<f64> = (0..n)
            .map(|i| ((i * 13 + 5) % 19) as f64 * 0.5 - 4.0)
            .collect();
        // Sparse Lᵀ·x = b through the cached transpose…
        let mut xs = b.clone();
        m.solve_with(&SolveOpts::new().transposed(), &mut xs)
            .unwrap();
        // …vs the dense transposed kernel on the densified matrix.
        let a = m.to_dense();
        let mut xd = b.clone();
        dense::trsv_in_place_opts(
            &dense::SolveOpts::new(m.triangle())
                .diag(m.diag())
                .transposed(),
            &a,
            &mut xd,
        )
        .unwrap();
        for (s, d) in xs.iter().zip(&xd) {
            assert!((s - d).abs() < 1e-10, "sparse vs dense transposed solve");
        }
        // And bitwise equal to solving the materialized transpose directly.
        let xt = m.transpose().solve(&b).unwrap();
        assert_eq!(xs, xt);
    }

    #[test]
    fn transposed_solve_is_bitwise_deterministic_across_workers() {
        let n = 500;
        let m = test_lower(n, 8);
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 + 1) % 23) as f64 - 11.0).collect();
        let mut seq = b.clone();
        m.solve_with(&SolveOpts::new().transposed().threads(1), &mut seq)
            .unwrap();
        for threads in [2usize, 4, 7] {
            let mut x = b.clone();
            m.solve_with(&SolveOpts::new().transposed().threads(threads), &mut x)
                .unwrap();
            assert_eq!(x, seq, "transposed solve changed bits at {threads} workers");
        }
        // Multi-RHS transposed agrees with per-column transposed solves.
        let k = 4;
        let bm = Matrix::from_fn(n, k, |i, j| ((i * 3 + j * 17) % 29) as f64 - 14.0);
        let mut xm = bm.clone();
        m.solve_multi_with(&SolveOpts::new().transposed().threads(3), &mut xm)
            .unwrap();
        for c in 0..k {
            let mut xc = bm.col(c);
            m.solve_with(&SolveOpts::new().transposed().threads(1), &mut xc)
                .unwrap();
            for i in 0..n {
                assert_eq!(xm[(i, c)], xc[i], "column {c} row {i}");
            }
        }
    }

    #[test]
    fn transpose_cache_reused_across_transposed_solves() {
        let n = 400;
        let m = test_lower(n, 5);
        let b = vec![1.0; n];
        let mut x1 = b.clone();
        m.solve_with(&SolveOpts::new().transposed().threads(4), &mut x1)
            .unwrap();
        let t = m.transposed() as *const SparseTri;
        let mut x2 = b.clone();
        m.solve_with(&SolveOpts::new().transposed().threads(4), &mut x2)
            .unwrap();
        assert_eq!(t, m.transposed() as *const SparseTri);
        assert_eq!(
            m.transposed().analysis_count(),
            1,
            "the transpose's schedule must be analyzed once"
        );
        assert_eq!(x1, x2);
    }

    #[test]
    fn shims_are_bitwise_equal_to_the_opts_core() {
        let n = 350;
        let m = test_lower(n, 6);
        let b: Vec<f64> = (0..n).map(|i| ((i * 11) % 7) as f64 - 3.0).collect();
        let flops = m.solve_flops(1);

        let mut via_opts = b.clone();
        assert_eq!(
            m.solve_with(&SolveOpts::new(), &mut via_opts).unwrap(),
            flops
        );
        assert_eq!(m.solve(&b).unwrap(), via_opts);
        assert_eq!(m.solve_seq(&b).unwrap(), via_opts);
        let mut x = b.clone();
        assert_eq!(m.solve_in_place_with_threads(&mut x, 3).unwrap(), flops);
        assert_eq!(x, via_opts);

        let k = 3;
        let bm = Matrix::from_fn(n, k, |i, j| ((i + j * 5) % 9) as f64 - 4.0);
        let mut via_opts_m = bm.clone();
        let fm = m
            .solve_multi_with(&SolveOpts::new(), &mut via_opts_m)
            .unwrap();
        assert_eq!(fm, m.solve_flops(k));
        assert_eq!(m.solve_multi(&bm).unwrap(), via_opts_m);
        assert_eq!(m.solve_multi_seq(&bm).unwrap(), via_opts_m);
    }

    #[test]
    fn planned_workers_is_deterministic_and_honest() {
        let m = test_lower(600, 8);
        // Pinned budgets resolve to min(budget, widest level).
        let wide = m.schedule().max_level_width();
        assert_eq!(m.planned_workers(&SolveOpts::new().threads(1), 1), 1);
        assert_eq!(
            m.planned_workers(&SolveOpts::new().threads(4), 1),
            4usize.min(wide)
        );
        // The sequential budget never analyzes: a fresh matrix stays clean.
        let fresh = test_lower(100, 2);
        assert_eq!(fresh.planned_workers(&SolveOpts::new().threads(1), 1), 1);
        assert_eq!(fresh.analysis_count(), 0);
    }

    #[test]
    fn merged_policy_is_bitwise_identical_to_level_and_sequential() {
        // Deep narrow DAG (the merged schedule's home turf), a wide random
        // pattern, and their transposes: every policy × worker count must
        // agree with the sequential sweep bit for bit.
        for m in [
            crate::gen::deep_narrow_lower(8000, 4, 3, 11),
            test_lower(2000, 8),
        ] {
            let t = m.transpose();
            for mat in [&m, &t] {
                let n = mat.n();
                let b: Vec<f64> = (0..n).map(|i| ((i * 17 + 3) % 29) as f64 - 14.0).collect();
                let mut seq = b.clone();
                mat.solve_with(&SolveOpts::new().threads(1), &mut seq)
                    .unwrap();
                for threads in [2usize, 3, 4, 7] {
                    for policy in [SchedulePolicy::Level, SchedulePolicy::Merged] {
                        let mut x = b.clone();
                        mat.solve_with(&SolveOpts::new().threads(threads).policy(policy), &mut x)
                            .unwrap();
                        assert_eq!(
                            x, seq,
                            "{policy:?} at {threads} workers changed the result bits"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn merged_multi_rhs_is_bitwise_identical_too() {
        let m = crate::gen::deep_narrow_lower(4000, 4, 3, 13);
        let k = 5;
        let b = Matrix::from_fn(m.n(), k, |i, j| ((i * 5 + j * 11) % 13) as f64 - 6.0);
        let mut seq = b.clone();
        m.solve_multi_with(&SolveOpts::new().threads(1), &mut seq)
            .unwrap();
        for threads in [2usize, 4] {
            let mut x = b.clone();
            m.solve_multi_with(
                &SolveOpts::new()
                    .threads(threads)
                    .policy(SchedulePolicy::Merged),
                &mut x,
            )
            .unwrap();
            assert!(x == seq, "merged multi-RHS diverged at {threads} workers");
        }
    }

    #[test]
    fn execution_shape_reports_the_barrier_compression() {
        let m = crate::gen::deep_narrow_lower(8000, 4, 3, 17);
        let level = m.execution_shape(
            &SolveOpts::new().threads(4).policy(SchedulePolicy::Level),
            1,
        );
        assert_eq!(level.workers, 4);
        assert_eq!(level.policy, SchedulePolicy::Level);
        assert_eq!(level.levels, 2000);
        assert_eq!(level.barriers, 2000, "one barrier per level");
        assert_eq!(level.super_levels, 0);
        let merged = m.execution_shape(
            &SolveOpts::new().threads(4).policy(SchedulePolicy::Merged),
            1,
        );
        assert_eq!(merged.workers, 4);
        assert_eq!(merged.policy, SchedulePolicy::Merged);
        assert_eq!(merged.levels, 2000);
        assert_eq!(merged.barriers, merged.super_levels);
        assert!(
            merged.barriers * 10 <= level.barriers,
            "merged must cut barriers >=10x on a deep DAG: {} vs {}",
            merged.barriers,
            level.barriers
        );
        // Auto on this shape resolves to Merged.
        let auto = m.execution_shape(&SolveOpts::new().threads(4), 1);
        assert_eq!(auto.policy, SchedulePolicy::Merged);
        assert_eq!(auto.barriers, merged.barriers);
    }

    #[test]
    fn level_policy_on_a_chain_degrades_to_sequential_but_merged_can_parallelize() {
        // An unbroken band chains every row: the level executor's width cap
        // forces it sequential, while a pinned merged policy still runs its
        // (overhead-only, but correct) point-to-point sweep.
        let m = crate::gen::banded_lower(20_000, 4, 19);
        let level = m.execution_shape(
            &SolveOpts::new().threads(4).policy(SchedulePolicy::Level),
            1,
        );
        assert_eq!(level.workers, 1);
        assert_eq!(level.barriers, 0);
        let merged = m.execution_shape(
            &SolveOpts::new().threads(4).policy(SchedulePolicy::Merged),
            1,
        );
        assert!(merged.workers > 1);
        assert!(merged.barriers * 10 <= m.schedule().num_levels());
        // Auto keeps implicit users off the pointless parallel chain sweep.
        let auto = m.execution_shape(&SolveOpts::new().threads(4), 1);
        assert_eq!(auto.workers, 1);
        // And the merged execution still matches the sequential bits.
        let b: Vec<f64> = (0..m.n())
            .map(|i| ((i * 3 + 1) % 23) as f64 - 11.0)
            .collect();
        let mut seq = b.clone();
        m.solve_with(&SolveOpts::new().threads(1), &mut seq)
            .unwrap();
        let mut x = b.clone();
        m.solve_with(
            &SolveOpts::new().threads(4).policy(SchedulePolicy::Merged),
            &mut x,
        )
        .unwrap();
        assert_eq!(x, seq);
    }

    #[test]
    fn merged_analysis_is_cached_across_solves() {
        let m = crate::gen::deep_narrow_lower(4000, 4, 3, 23);
        assert_eq!(m.merged_analysis_count(), 0);
        let b = vec![1.0; m.n()];
        let opts = SolveOpts::new().threads(4).policy(SchedulePolicy::Merged);
        let mut x1 = b.clone();
        m.solve_with(&opts, &mut x1).unwrap();
        assert_eq!(m.merged_analysis_count(), 1);
        let mut x2 = b.clone();
        m.solve_with(&opts, &mut x2).unwrap();
        assert_eq!(m.analysis_count(), 1, "level analysis runs once");
        assert_eq!(m.merged_analysis_count(), 1, "merge analysis runs once");
        assert_eq!(x1, x2);
        // A level-policy solve never builds the merged analysis.
        let fresh = crate::gen::deep_narrow_lower(4000, 4, 3, 29);
        let mut x = vec![1.0; fresh.n()];
        fresh
            .solve_with(
                &SolveOpts::new().threads(4).policy(SchedulePolicy::Level),
                &mut x,
            )
            .unwrap();
        assert_eq!(fresh.merged_analysis_count(), 0);
    }

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn syncfree_policy_matches_sequential_to_tolerance() {
        // The one-shot workloads from the acceptance criteria: a wide
        // random pattern and a deep narrow DAG, both solved sync-free
        // through the CSR entry points against the sequential sweep.
        for (m, seed) in [
            (crate::gen::random_lower(3000, 8, 47), 48u64),
            (crate::gen::deep_narrow_lower(6000, 4, 3, 49), 50u64),
        ] {
            let b = crate::gen::rhs_vec(m.n(), seed);
            let mut seq = b.clone();
            m.solve_with(&SolveOpts::new().threads(1), &mut seq)
                .unwrap();
            for threads in [2usize, 4] {
                let mut x = b.clone();
                m.solve_with(
                    &SolveOpts::new()
                        .threads(threads)
                        .policy(SchedulePolicy::SyncFree),
                    &mut x,
                )
                .unwrap();
                let diff = max_abs_diff(&x, &seq);
                assert!(
                    diff < 1e-12,
                    "sync-free at {threads} workers diverged {diff:e}"
                );
                // Bitwise self-consistency at the same worker count.
                let mut again = b.clone();
                m.solve_with(
                    &SolveOpts::new()
                        .threads(threads)
                        .policy(SchedulePolicy::SyncFree),
                    &mut again,
                )
                .unwrap();
                assert_eq!(x, again, "sync-free not repeatable at {threads} workers");
            }
        }
    }

    #[test]
    fn syncfree_shape_reports_zero_barriers_and_skips_analysis() {
        for m in [
            crate::gen::random_lower(3000, 8, 51),
            crate::gen::deep_narrow_lower(6000, 4, 3, 53),
        ] {
            let shape = m.execution_shape(
                &SolveOpts::new().threads(4).policy(SchedulePolicy::SyncFree),
                1,
            );
            assert_eq!(shape.policy, SchedulePolicy::SyncFree);
            assert_eq!(shape.workers, 4);
            assert_eq!(shape.barriers, 0, "sync-free must report zero barriers");
            assert_eq!(shape.levels, 0);
            assert_eq!(shape.super_levels, 0);
            assert_eq!(shape.max_level_width, 0);
            // Planning and running sync-free never analyzes the pattern.
            let mut x = crate::gen::rhs_vec(m.n(), 54);
            m.solve_with(
                &SolveOpts::new().threads(4).policy(SchedulePolicy::SyncFree),
                &mut x,
            )
            .unwrap();
            assert_eq!(
                m.analysis_count(),
                0,
                "a sync-free solve must stay analysis-free"
            );
            assert_eq!(m.merged_analysis_count(), 0);
        }
    }

    #[test]
    fn auto_prices_one_shot_against_reuse_loop() {
        // Acceptance criterion: on the deep DAG, auto picks SyncFree for a
        // declared one-shot solve but Merged for a 100-apply reuse loop.
        let m = crate::gen::deep_narrow_lower(8000, 4, 3, 55);
        let one_shot = m.execution_shape(&SolveOpts::new().threads(4).reuse(1), 1);
        assert_eq!(one_shot.policy, SchedulePolicy::SyncFree);
        assert_eq!(one_shot.barriers, 0);
        assert_eq!(
            m.analysis_count(),
            0,
            "planning the one-shot must not analyze"
        );
        let reused = m.execution_shape(&SolveOpts::new().threads(4).reuse(100), 1);
        assert_eq!(reused.policy, SchedulePolicy::Merged);
        assert!(reused.barriers > 0);
        // Undeclared reuse keeps the historical auto choice (Merged here).
        let undeclared = m.execution_shape(&SolveOpts::new().threads(4), 1);
        assert_eq!(undeclared.policy, SchedulePolicy::Merged);
        // And the one-shot path actually executes correctly end to end.
        let b = crate::gen::rhs_vec(m.n(), 56);
        let mut seq = b.clone();
        m.solve_with(&SolveOpts::new().threads(1), &mut seq)
            .unwrap();
        let mut x = b.clone();
        m.solve_with(&SolveOpts::new().threads(4).reuse(1), &mut x)
            .unwrap();
        assert!(max_abs_diff(&x, &seq) < 1e-12);
    }

    #[test]
    fn syncfree_transposed_and_multi_rhs_work_through_opts() {
        let m = test_lower(1200, 6);
        let b: Vec<f64> = (0..1200)
            .map(|i| ((i * 19 + 7) % 31) as f64 - 15.0)
            .collect();
        let mut seq = b.clone();
        m.solve_with(&SolveOpts::new().transposed().threads(1), &mut seq)
            .unwrap();
        let mut x = b.clone();
        m.solve_with(
            &SolveOpts::new()
                .transposed()
                .threads(4)
                .policy(SchedulePolicy::SyncFree),
            &mut x,
        )
        .unwrap();
        assert!(max_abs_diff(&x, &seq) < 1e-12);
        // Multi-RHS sync-free vs the barriered multi-RHS solve.
        let k = 3;
        let bm = Matrix::from_fn(1200, k, |i, j| ((i * 3 + j * 7) % 17) as f64 - 8.0);
        let mut seq_m = bm.clone();
        m.solve_multi_with(&SolveOpts::new().threads(1), &mut seq_m)
            .unwrap();
        let mut xm = bm.clone();
        m.solve_multi_with(
            &SolveOpts::new().threads(4).policy(SchedulePolicy::SyncFree),
            &mut xm,
        )
        .unwrap();
        for c in 0..k {
            for i in 0..1200 {
                assert!(
                    (xm[(i, c)] - seq_m[(i, c)]).abs() < 1e-12,
                    "sync-free multi-RHS diverged at ({i}, {c})"
                );
            }
        }
    }

    #[test]
    fn chunk_bounds_partition_exactly() {
        for len in [0usize, 1, 5, 16, 37] {
            for workers in [1usize, 2, 3, 7, 16] {
                let mut total = 0;
                let mut prev_hi = 0;
                for w in 0..workers {
                    let (lo, hi) = chunk_bounds(len, workers, w);
                    assert_eq!(lo, prev_hi, "chunks must tile contiguously");
                    assert!(hi >= lo);
                    total += hi - lo;
                    prev_hi = hi;
                }
                assert_eq!(total, len);
                assert_eq!(prev_hi, len);
            }
        }
    }
}
