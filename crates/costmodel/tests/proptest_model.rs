//! Property-based tests of the analytic cost model: invariants that must
//! hold for any problem shape, mirroring the claims of Sections II–IX.

use costmodel::{collectives, compare, inversion, itinv, mm, rec_trsm, tuning};
use proptest::prelude::*;

fn problem() -> impl Strategy<Value = (f64, f64, f64)> {
    // n, k in [2^4, 2^24], p in [4, 2^20] as powers of two.
    (4u32..24, 4u32..24, 2u32..20)
        .prop_map(|(n, k, p)| ((1u64 << n) as f64, (1u64 << k) as f64, (1u64 << p) as f64))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Collective costs are monotone in the message size and never negative.
    #[test]
    fn collective_costs_are_monotone((_, k, p) in problem(), factor in 2.0f64..10.0) {
        for f in [collectives::allgather, collectives::reduce_scatter, collectives::bcast,
                  collectives::alltoall, collectives::reduction] {
            let small = f(k, p);
            let large = f(k * factor, p);
            prop_assert!(small.bandwidth >= 0.0 && small.latency >= 0.0);
            prop_assert!(large.bandwidth >= small.bandwidth);
            prop_assert!(large.latency >= small.latency);
        }
    }

    /// The three regimes partition the parameter space consistently between
    /// the MM classification and the Section VIII classification.
    #[test]
    fn regime_classification_is_consistent((n, k, p) in problem()) {
        let r = tuning::classify(n, k, p);
        match r {
            tuning::Regime::OneLargeDim => prop_assert!(n < 4.0 * k / p),
            tuning::Regime::TwoLargeDims => prop_assert!(n > 4.0 * k * p.sqrt()),
            tuning::Regime::ThreeLargeDims => {
                prop_assert!(n >= 4.0 * k / p && n <= 4.0 * k * p.sqrt());
            }
        }
        // The MM regime boundaries (without the factor 4) are consistent in
        // ordering: a 2D TRSM regime implies the MM is not 1D, and vice versa.
        if r == tuning::Regime::TwoLargeDims {
            prop_assert!(mm::mm_regime(n, k, p) != mm::MmRegime::OneLargeDim);
        }
        if r == tuning::Regime::OneLargeDim {
            prop_assert!(mm::mm_regime(n, k, p) != mm::MmRegime::TwoLargeDims);
        }
    }

    /// The planner always returns a grid that uses all p processors and a
    /// block size within [1, n].
    #[test]
    fn plan_is_structurally_valid((n, k, p) in problem()) {
        let plan = tuning::plan(n as usize, k as usize, p as usize);
        prop_assert!(plan.p1 >= 1.0 && plan.p2 >= 1.0);
        prop_assert!((plan.p1 * plan.p1 * plan.p2 - p).abs() / p < 1e-6);
        prop_assert!(plan.n0 >= 1.0 && plan.n0 <= n + 0.5);
        prop_assert!(plan.r2 >= plan.r1 * 0.99);
        prop_assert!(plan.r1 * plan.r1 * plan.r2 <= p * 1.01 + 4.0);
    }

    /// Both methods in the conclusion table always move the same words and
    /// the new method never does more than twice the flops.
    #[test]
    fn conclusion_table_invariants((n, k, p) in problem()) {
        let row = compare::conclusion_row(n, k, p);
        prop_assert!((row.standard.bandwidth - row.new.bandwidth).abs() <= 1e-9 * row.standard.bandwidth);
        prop_assert!(row.new.flops <= 2.0 * row.standard.flops + 1e-9);
        prop_assert!(row.standard.flops >= n * n * k / p * 0.99);
    }

    /// In the three-large-dimensions regime the latency improvement grows
    /// with p at fixed n and k.
    #[test]
    fn improvement_grows_with_p(n_exp in 16u32..24, k_exp in 10u32..16) {
        let n = (1u64 << n_exp) as f64;
        let k = (1u64 << k_exp) as f64;
        let mut last = 0.0;
        for p_exp in [8u32, 12, 16] {
            let p = (1u64 << p_exp) as f64;
            if tuning::classify(n, k, p) != tuning::Regime::ThreeLargeDims {
                continue;
            }
            let imp = compare::latency_improvement(n, k, p);
            prop_assert!(imp >= last * 0.999, "improvement should grow with p");
            last = imp;
        }
    }

    /// The recursive TRSM and MM flop costs are always the optimal n²k/p.
    #[test]
    fn flop_costs_are_optimal((n, k, p) in problem()) {
        prop_assert!((rec_trsm::rec_trsm_cost(n, k, p).flops - n * n * k / p).abs() < 1e-6 * n * n * k / p);
        prop_assert!((mm::fmm(n, k, p) - n * n * k / p).abs() < 1e-9);
    }

    /// Inversion cost decreases when processors are added (strong scaling in
    /// the model) and the optimal grid multiplies out to q.
    #[test]
    fn inversion_scales_and_grid_is_consistent(n_exp in 8u32..20, q_exp in 2u32..16) {
        let n = (1u64 << n_exp) as f64;
        let q = (1u64 << q_exp) as f64;
        let (r1, r2) = inversion::optimal_inv_grid(q);
        prop_assert!((r1 * r1 * r2 - q).abs() / q < 1e-6 || (r1 == 1.0 && r2 >= 1.0));
        let small = inversion::rec_tri_inv_cost(n, r1, r2);
        let (r1b, r2b) = inversion::optimal_inv_grid(q * 8.0);
        let large = inversion::rec_tri_inv_cost(n, r1b, r2b);
        prop_assert!(large.bandwidth <= small.bandwidth * 1.001);
        prop_assert!(large.flops < small.flops);
    }

    /// The It-Inv-TRSM phase costs are consistent: more blocks (smaller n0)
    /// means more latency in the solve phase, never less.
    #[test]
    fn solve_latency_monotone_in_block_count(
        n_exp in 10u32..20,
        k_exp in 6u32..16,
        p1_exp in 1u32..5,
    ) {
        let n = (1u64 << n_exp) as f64;
        let k = (1u64 << k_exp) as f64;
        let p1 = (1u64 << p1_exp) as f64;
        let coarse = itinv::solve_phase(n, k, n / 2.0, p1, 4.0);
        let fine = itinv::solve_phase(n, k, n / 16.0, p1, 4.0);
        prop_assert!(fine.latency > coarse.latency);
    }
}
