//! Matrix-multiplication cost formulas (Sections II-C2 and III of the paper).
//!
//! The paper multiplies an `n×n` (triangular) matrix by an `n×k` matrix on
//! `p` processors.  Depending on the ratio of `n`, `k` and `p` the optimal
//! processor grid is 1D, 2D or 3D, with the bandwidth costs `W_MM` quoted in
//! Section II-C2; the concrete algorithm of Section III (starting from a 2D
//! cyclic layout) has the leading-order cost `T_MM` reproduced by
//! [`mm_cost`].

use crate::cost::{indicator, log2c, Cost};

/// The regime of the multiplication `(n×n)·(n×k)` on `p` processors, in the
/// paper's terminology of "large dimensions".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmRegime {
    /// `n < k/p`: the right-hand side dominates; a 1D grid is optimal.
    OneLargeDim,
    /// `k/p ≤ n ≤ k·√p`: comparable sizes; a 3D grid is optimal.
    ThreeLargeDims,
    /// `n > k·√p`: the triangular matrix dominates; a 2D grid is optimal.
    TwoLargeDims,
}

/// Classify the multiplication into the regimes of `W_MM` (Section II-C2).
pub fn mm_regime(n: f64, k: f64, p: f64) -> MmRegime {
    if n > k * p.sqrt() {
        MmRegime::TwoLargeDims
    } else if n < k / p {
        MmRegime::OneLargeDim
    } else {
        MmRegime::ThreeLargeDims
    }
}

/// The asymptotic bandwidth cost `W_MM(n, k, p)` of an optimal matrix
/// multiplication in each regime (Section II-C2).
pub fn wmm(n: f64, k: f64, p: f64) -> f64 {
    match mm_regime(n, k, p) {
        MmRegime::TwoLargeDims => n * k / p.sqrt(),
        MmRegime::ThreeLargeDims => (n * n * k / p).powf(2.0 / 3.0),
        MmRegime::OneLargeDim => n * n,
    }
}

/// The asymptotic latency cost `S_MM(p) = O(log p)` of matrix multiplication.
pub fn smm(p: f64) -> f64 {
    log2c(p)
}

/// The flop cost `F_MM(n, k, p) = n²k / p`.
pub fn fmm(n: f64, k: f64, p: f64) -> f64 {
    n * n * k / p
}

/// Leading-order cost of the Section III algorithm
/// `MM(L, X, Π2D, n, k, p, p1, p2)` on a `p1 × p1 × p2` logical grid with
/// `p = p1²·p2`:
///
/// ```text
/// T_MM = β·( n²/p1² · 1_{p2} + 2nk/(p1 p2) )
///      + γ·( n²k/p )
///      + O( α·log p + β·nk·log p / p )
/// ```
pub fn mm_cost(n: f64, k: f64, p: f64, p1: f64, p2: f64) -> Cost {
    let main_bw = (n * n / (p1 * p1)) * indicator(p2) + 2.0 * n * k / (p1 * p2);
    let transpose_bw = n * k * log2c(p) / p;
    Cost {
        latency: 2.0 * log2c(p),
        bandwidth: main_bw + transpose_bw,
        flops: n * n * k / p,
    }
}

/// The grid shape `(p1, p2)` with `p1²·p2 = p` that minimises the bandwidth
/// term of [`mm_cost`], clamped so that `1 ≤ p1 ≤ √p`.
///
/// The unconstrained optimum makes the three communicated block faces equal,
/// `p1 = (n·p / k)^{1/3}`; when `n ≥ k√p` this hits the `p1 = √p` (2D) limit
/// and when `n ≤ k/p` it collapses to `p1 = 1` (1D).
pub fn mm_grid_for(n: f64, k: f64, p: f64) -> (f64, f64) {
    let p1 = (n * p / k).powf(1.0 / 3.0).clamp(1.0, p.sqrt());
    let p2 = (p / (p1 * p1)).max(1.0);
    (p1, p2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regimes_partition_the_parameter_space() {
        let p = 64.0;
        let k = 1024.0;
        assert_eq!(mm_regime(1.0, k, p), MmRegime::OneLargeDim); // n < k/p = 16
        assert_eq!(mm_regime(100.0, k, p), MmRegime::ThreeLargeDims); // 16 ≤ 100 ≤ 8192
        assert_eq!(mm_regime(10_000.0, k, p), MmRegime::TwoLargeDims); // n > k√p
    }

    #[test]
    fn wmm_matches_each_regime_formula() {
        let p = 64.0;
        assert_eq!(wmm(8.0, 1024.0, p), 64.0); // 1D: n²
        let w3 = wmm(1024.0, 1024.0, p);
        assert!((w3 - (1024.0f64 * 1024.0 * 1024.0 / 64.0).powf(2.0 / 3.0)).abs() < 1e-6);
        let w2 = wmm(100_000.0, 10.0, p);
        assert!((w2 - 100_000.0 * 10.0 / 8.0).abs() < 1e-6);
    }

    #[test]
    fn mm_cost_components() {
        let c = mm_cost(4096.0, 256.0, 64.0, 4.0, 4.0);
        // bandwidth = n²/p1² + 2nk/(p1p2) + lower-order transpose term
        let expect_main = 4096.0 * 4096.0 / 16.0 + 2.0 * 4096.0 * 256.0 / 16.0;
        assert!(c.bandwidth >= expect_main);
        assert!(c.bandwidth < expect_main * 1.2);
        assert_eq!(c.flops, 4096.0 * 4096.0 * 256.0 / 64.0);
        assert!(c.latency <= 2.0 * 6.0 + 1e-9);
    }

    #[test]
    fn mm_cost_p2_one_drops_the_l_term_indicator() {
        // With p2 = 1 the L allgather is free (1_{p2} = 0).
        let with_p2 = mm_cost(1000.0, 1000.0, 16.0, 2.0, 4.0);
        let without_p2 = mm_cost(1000.0, 1000.0, 16.0, 4.0, 1.0);
        assert!(without_p2.bandwidth < with_p2.bandwidth + 1000.0 * 1000.0 / 4.0);
    }

    #[test]
    fn mm_grid_is_valid_and_optimal_shape() {
        for (n, k, p) in [
            (4096.0, 4096.0, 64.0),
            (65536.0, 64.0, 256.0),
            (64.0, 65536.0, 256.0),
        ] {
            let (p1, p2) = mm_grid_for(n, k, p);
            assert!(p1 >= 1.0 && p1 <= p.sqrt() + 1e-9);
            assert!((p1 * p1 * p2 - p).abs() / p < 1e-9 || p2 == 1.0);
            // The optimal grid never does worse (in the main bandwidth term)
            // than the extreme 2D and 1D choices.
            let bw = |q1: f64, q2: f64| mm_cost(n, k, p, q1, q2).bandwidth;
            assert!(bw(p1, p2) <= bw(p.sqrt(), 1.0) + 1e-6);
            assert!(bw(p1, p2) <= bw(1.0, p) + 1e-6);
        }
    }

    #[test]
    fn flops_are_load_balanced() {
        assert_eq!(fmm(1000.0, 100.0, 10.0), 1000.0 * 1000.0 * 100.0 / 10.0);
        assert_eq!(smm(32.0), 5.0);
    }
}
