//! Cost of the recursive TRSM algorithm (Section IV of the paper).
//!
//! This is the "standard" baseline of the conclusion table: a recursive
//! splitting of the triangular matrix, with a column split of the right-hand
//! side when `k > n`.  The paper derives its cost in the three regimes; the
//! functions here reproduce those expressions so the experiments can compare
//! the baseline against the iterative inversion-based algorithm.

use crate::cost::{log2c, Cost};
use crate::predict::CostModelRev;
use crate::tuning::{classify_rev, Regime};

/// Processor-grid shape `(pr, pc)` the recursive algorithm selects:
/// `pc = max(√p, min(p, √(p·k/n)))`, `pr = p / pc`.
pub fn rec_grid(n: f64, k: f64, p: f64) -> (f64, f64) {
    let pc = p.sqrt().max((p * k / n).sqrt().min(p));
    let pr = p / pc;
    (pr, pc)
}

/// `T_RT1D(n, k, p) = O(α·log p + β·n² + γ·n²k/p)` — one large dimension
/// (`n < k/p`).
pub fn rec_trsm_1d(n: f64, k: f64, p: f64) -> Cost {
    Cost {
        latency: log2c(p),
        bandwidth: n * n,
        flops: n * n * k / p,
    }
}

/// `T_RT2D(n, k, p) = O(α·√p + β·nk·log p/√p + γ·n²k/p)` — two large
/// dimensions (`n > k·√p`).
pub fn rec_trsm_2d(n: f64, k: f64, p: f64) -> Cost {
    Cost {
        latency: p.sqrt(),
        bandwidth: n * k * log2c(p) / p.sqrt(),
        flops: n * n * k / p,
    }
}

/// `T_RT3D(n, k, p) = O(α·(np/k)^{2/3}·log p + β·(n²k/p)^{2/3} + γ·n²k/p)` —
/// three large dimensions (`k/p ≤ n ≤ k·√p`).
pub fn rec_trsm_3d(n: f64, k: f64, p: f64) -> Cost {
    Cost {
        latency: (n * p / k).powf(2.0 / 3.0) * log2c(p),
        bandwidth: (n * n * k / p).powf(2.0 / 3.0),
        flops: n * n * k / p,
    }
}

/// Cost of the recursive TRSM with the regime chosen as in Section VIII
/// (`n < 4k/p` → 1D, `n > 4k√p` → 2D, otherwise 3D), so that it can be
/// compared term-by-term with the iterative algorithm.
pub fn rec_trsm_cost(n: f64, k: f64, p: f64) -> Cost {
    rec_trsm_cost_rev(CostModelRev::Ipdps17, n, k, p)
}

/// [`rec_trsm_cost`] under an explicit cost-model revision.
///
/// `Tang24` replaces the 2D and 3D bandwidth terms with the reexamination's
/// corrected bounds (`(n² + nk·log p)/√p` and `(n²k/p)^{2/3} + n²/p^{2/3}`)
/// and moves the regime boundaries via [`classify_rev`]; the 1D cost and all
/// latency/flop terms are unchanged.
pub fn rec_trsm_cost_rev(rev: CostModelRev, n: f64, k: f64, p: f64) -> Cost {
    match classify_rev(rev, n, k, p) {
        Regime::OneLargeDim => rec_trsm_1d(n, k, p),
        Regime::TwoLargeDims => {
            let mut c = rec_trsm_2d(n, k, p);
            if rev == CostModelRev::Tang24 {
                c.bandwidth = (n * n + n * k * log2c(p)) / p.sqrt();
            }
            c
        }
        Regime::ThreeLargeDims => {
            let mut c = rec_trsm_3d(n, k, p);
            if rev == CostModelRev::Tang24 {
                c.bandwidth = (n * n * k / p).powf(2.0 / 3.0) + n * n / p.powf(2.0 / 3.0);
            }
            c
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_selection_matches_paper() {
        // n >= k: square grid.
        let (pr, pc) = rec_grid(4096.0, 1024.0, 64.0);
        assert_eq!((pr, pc), (8.0, 8.0));
        // n << k: wide rectangular grid pc = p (as long as p < k/n).
        let (pr, pc) = rec_grid(16.0, 65536.0, 16.0);
        assert_eq!(pr, 1.0);
        assert_eq!(pc, 16.0);
        // In between: pc = sqrt(p k / n).
        let (pr, pc) = rec_grid(1024.0, 4096.0, 64.0);
        assert!((pc - (64.0f64 * 4.0).sqrt()).abs() < 1e-9);
        assert!((pr * pc - 64.0).abs() < 1e-9);
    }

    #[test]
    fn regime_dispatch() {
        let p = 64.0;
        let k = 1024.0;
        // n < 4k/p = 64 → 1D.
        assert_eq!(rec_trsm_cost(32.0, k, p), rec_trsm_1d(32.0, k, p));
        // n > 4k√p = 32768 → 2D.
        assert_eq!(rec_trsm_cost(65536.0, k, p), rec_trsm_2d(65536.0, k, p));
        // Otherwise 3D.
        assert_eq!(rec_trsm_cost(2048.0, k, p), rec_trsm_3d(2048.0, k, p));
    }

    #[test]
    fn tang24_raises_recursive_bandwidth_without_touching_latency() {
        let (n, k, p) = (65536.0, 1024.0, 64.0);
        let a = rec_trsm_cost_rev(CostModelRev::Ipdps17, n, k, p);
        let b = rec_trsm_cost_rev(CostModelRev::Tang24, n, k, p);
        assert!(b.bandwidth > a.bandwidth);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.flops, b.flops);
        // The unsuffixed function is the Ipdps17 revision.
        assert_eq!(rec_trsm_cost(n, k, p), a);
    }

    #[test]
    fn two_d_latency_scales_as_sqrt_p() {
        let a = rec_trsm_2d(1.0e6, 16.0, 64.0);
        let b = rec_trsm_2d(1.0e6, 16.0, 256.0);
        assert!((b.latency / a.latency - 2.0).abs() < 1e-12);
    }

    #[test]
    fn three_d_latency_grows_with_n_over_k() {
        let p = 4096.0;
        let a = rec_trsm_3d(4096.0, 4096.0, p);
        let b = rec_trsm_3d(16384.0, 4096.0, p);
        // (n/k)^{2/3} factor: 4^{2/3} ≈ 2.52.
        assert!((b.latency / a.latency - 4.0f64.powf(2.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn flops_always_optimal() {
        for (n, k, p) in [
            (100.0, 1.0e6, 64.0),
            (1.0e5, 10.0, 64.0),
            (4096.0, 4096.0, 512.0),
        ] {
            assert_eq!(rec_trsm_cost(n, k, p).flops, n * n * k / p);
        }
    }
}
