//! Collective-communication cost formulas (Section II-C1 of the paper).
//!
//! All formulas take the message size `n` in words and the number of
//! processors `p`, and return the leading-order [`Cost`].  They correspond
//! one-to-one to the implementations in `simnet::coll`, which the
//! `exp_collectives` experiment verifies.

use crate::cost::{indicator, log2c, Cost};

/// `T_allgather(n, p) = α·log p + β·n·1_p`.
pub fn allgather(n: f64, p: f64) -> Cost {
    Cost::new(log2c(p), n * indicator(p), 0.0)
}

/// `T_scatter(n, p) = α·log p + β·n·1_p`.
pub fn scatter(n: f64, p: f64) -> Cost {
    Cost::new(log2c(p), n * indicator(p), 0.0)
}

/// `T_gather(n, p) = α·log p + β·n·1_p`.
pub fn gather(n: f64, p: f64) -> Cost {
    Cost::new(log2c(p), n * indicator(p), 0.0)
}

/// `T_reduce-scatter(n, p) = α·log p + β·n·1_p + γ·n·1_p`.
pub fn reduce_scatter(n: f64, p: f64) -> Cost {
    Cost::new(log2c(p), n * indicator(p), n * indicator(p))
}

/// `T_alltoall(n, p) = α·log p + β·(n/2)·log p`.
pub fn alltoall(n: f64, p: f64) -> Cost {
    Cost::new(log2c(p), n * log2c(p) / 2.0 * indicator(p), 0.0)
}

/// `T_reduction(n, p) = 2α·log p + 2β·n·1_p + γ·n·1_p`.
pub fn reduction(n: f64, p: f64) -> Cost {
    Cost::new(2.0 * log2c(p), 2.0 * n * indicator(p), n * indicator(p))
}

/// `T_allreduction(n, p) = 2α·log p + 2β·n·1_p + γ·n·1_p`.
pub fn allreduction(n: f64, p: f64) -> Cost {
    reduction(n, p)
}

/// `T_bcast(n, p) = 2α·log p + 2β·n·1_p`.
pub fn bcast(n: f64, p: f64) -> Cost {
    Cost::new(2.0 * log2c(p), 2.0 * n * indicator(p), 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_processor_moves_no_data() {
        for f in [
            allgather,
            scatter,
            gather,
            reduce_scatter,
            alltoall,
            reduction,
            bcast,
        ] {
            let c = f(1000.0, 1.0);
            assert_eq!(c.bandwidth, 0.0, "p = 1 must move no words");
        }
    }

    #[test]
    fn allgather_formula() {
        let c = allgather(1024.0, 16.0);
        assert_eq!(c.latency, 4.0);
        assert_eq!(c.bandwidth, 1024.0);
        assert_eq!(c.flops, 0.0);
    }

    #[test]
    fn reduce_scatter_charges_flops() {
        let c = reduce_scatter(512.0, 8.0);
        assert_eq!(c.flops, 512.0);
        assert_eq!(c.bandwidth, 512.0);
    }

    #[test]
    fn composed_collectives_double_latency() {
        let n = 256.0;
        let p = 32.0;
        assert_eq!(bcast(n, p).latency, 2.0 * allgather(n, p).latency);
        assert_eq!(reduction(n, p).latency, 2.0 * allgather(n, p).latency);
        assert_eq!(bcast(n, p).bandwidth, 2.0 * n);
        assert_eq!(allreduction(n, p), reduction(n, p));
    }

    #[test]
    fn alltoall_has_log_factor_bandwidth() {
        let c = alltoall(1000.0, 64.0);
        assert_eq!(c.latency, 6.0);
        assert_eq!(c.bandwidth, 3000.0);
    }
}
