//! # `costmodel` — the paper's analytic α–β–γ cost model
//!
//! Every section of Wicky, Solomonik & Hoefler (IPDPS 2017) derives
//! closed-form costs in the α–β–γ model: the collectives of Section II-C1,
//! the 3D matrix multiplication of Section III, the recursive TRSM of
//! Section IV, the recursive triangular inversion of Section V, the iterative
//! inversion-based TRSM of Sections VI–VII, the optimal parameters of
//! Section VIII and the comparison table of Section IX.
//!
//! This crate implements all of those formulas as plain functions so that
//!
//! 1. the experiment harness can print *predicted* S/W/F next to the values
//!    *measured* on the simulated machine (`simnet`), and
//! 2. the parameter planner in `catrsm` can pick processor grids and block
//!    sizes **a priori**, which is one of the paper's stated contributions.
//!
//! The crate is dependency-free and purely numeric: costs are returned as
//! [`Cost`] records with fractional counts (leading-order expressions, not
//! integer message counts).
//!
//! ```
//! use costmodel::tuning::{plan, Regime};
//! // 4k/p ≤ n ≤ 4k√p  →  three large dimensions, 3D processor grid.
//! let plan = plan(4096, 1024, 64);
//! assert_eq!(plan.regime, Regime::ThreeLargeDims);
//! assert!(plan.p1 * plan.p1 * plan.p2 <= 64.0);
//! ```

pub mod collectives;
pub mod compare;
pub mod cost;
pub mod drift;
pub mod inversion;
pub mod itinv;
pub mod mm;
pub mod predict;
pub mod rec_trsm;
pub mod tuning;

pub use compare::{conclusion_row_rev, standard_cost_rev};
pub use cost::{Cost, Machine};
pub use drift::{DriftReport, DriftRow};
pub use predict::{
    sparse_solve_cost, sparse_solve_cost_amortized, trsm_cost as predict_trsm_cost,
    trsm_cost_rev as predict_trsm_cost_rev, AlgorithmKind, CostModelRev,
};
pub use tuning::{classify_rev, plan, plan_rev, Regime, TrsmPlan};
