//! The conclusion table of the paper (Section IX): standard (recursive) TRSM
//! versus the new iterative inversion-based method, per regime.
//!
//! | regime | method | S | W | F |
//! |---|---|---|---|---|
//! | `n < 4k/p`        | standard | `log p`                     | `n²`           | `n²k/p`  |
//! |                   | new      | `log² p`                    | `n²`           | `n²k/p`  |
//! | `n > 4k√p`        | standard | `√p·log p`                  | `nk/√p`        | `n²k/p`  |
//! |                   | new      | `log² p + (n/k)^{3/4}·log p / p^{1/8}` | `nk/√p` | `n²k/p` |
//! | `4k/p ≤ n ≤ 4k√p` | standard | `(np/k)^{2/3}·log p`        | `(n²k/p)^{2/3}`| `n²k/p`  |
//! |                   | new      | `log² p + √(n/k)·log p`     | `(n²k/p)^{2/3}`| `2n²k/p` |
//!
//! [`conclusion_row`] evaluates both columns for a concrete `(n, k, p)` and
//! [`latency_improvement`] returns the headline speedup factor, which reaches
//! `Θ((n/k)^{1/6}·p^{2/3})` in the 3D regime.

use crate::cost::{log2c, Cost};
use crate::predict::CostModelRev;
use crate::tuning::{classify_rev, Regime};

/// One row of the Section IX table: the asymptotic cost of the standard
/// (recursive) algorithm and of the new method for a concrete input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConclusionRow {
    /// Problem size.
    pub n: f64,
    /// Number of right-hand sides.
    pub k: f64,
    /// Number of processors.
    pub p: f64,
    /// Regime the input falls into.
    pub regime: Regime,
    /// Cost of the standard (recursive) algorithm.
    pub standard: Cost,
    /// Cost of the new iterative inversion-based algorithm.
    pub new: Cost,
}

/// The "standard" column of the conclusion table (note the extra `log p`
/// latency factor relative to `T_RT2D/3D`, which the table includes).
pub fn standard_cost(n: f64, k: f64, p: f64) -> Cost {
    standard_cost_rev(CostModelRev::Ipdps17, n, k, p)
}

/// [`standard_cost`] under an explicit cost-model revision.
///
/// `Tang24` applies the reexamination's corrected bandwidth bound for the
/// recursive algorithm: the 2D regime's panel broadcasts move
/// `(n² + nk·log p)/√p` words (the `n²/√p` term was dropped by the original
/// leading-order analysis), and the 3D cuboid pays an extra `n²/p^{2/3}` of
/// triangular-panel traffic on top of the `(n²k/p)^{2/3}` matmul volume.
/// Latency and flop terms are unchanged; the regime is chosen by
/// [`classify_rev`] with the revision's rebalanced boundary constant.
pub fn standard_cost_rev(rev: CostModelRev, n: f64, k: f64, p: f64) -> Cost {
    match classify_rev(rev, n, k, p) {
        Regime::OneLargeDim => Cost {
            latency: log2c(p),
            bandwidth: n * n,
            flops: n * n * k / p,
        },
        Regime::TwoLargeDims => Cost {
            latency: p.sqrt() * log2c(p),
            bandwidth: match rev {
                CostModelRev::Ipdps17 => n * k / p.sqrt(),
                CostModelRev::Tang24 => (n * n + n * k * log2c(p)) / p.sqrt(),
            },
            flops: n * n * k / p,
        },
        Regime::ThreeLargeDims => Cost {
            latency: (n * p / k).powf(2.0 / 3.0) * log2c(p),
            bandwidth: match rev {
                CostModelRev::Ipdps17 => (n * n * k / p).powf(2.0 / 3.0),
                CostModelRev::Tang24 => (n * n * k / p).powf(2.0 / 3.0) + n * n / p.powf(2.0 / 3.0),
            },
            flops: n * n * k / p,
        },
    }
}

/// The "new method" column of the conclusion table.
pub fn new_cost(n: f64, k: f64, p: f64) -> Cost {
    new_cost_rev(CostModelRev::Ipdps17, n, k, p)
}

/// [`new_cost`] under an explicit cost-model revision.
///
/// The reexamination's correction targets the recursive algorithm's
/// broadcast volume; the inversion-based method's per-regime terms are
/// unchanged, but the regime boundaries (and hence which formula applies)
/// shift with the revision's constant.
pub fn new_cost_rev(rev: CostModelRev, n: f64, k: f64, p: f64) -> Cost {
    match classify_rev(rev, n, k, p) {
        Regime::OneLargeDim => Cost {
            latency: log2c(p) * log2c(p),
            bandwidth: n * n,
            flops: n * n * k / p,
        },
        Regime::TwoLargeDims => Cost {
            latency: log2c(p) * log2c(p) + (n / k).powf(0.75) / p.powf(0.125) * log2c(p),
            bandwidth: n * k / p.sqrt(),
            flops: n * n * k / p,
        },
        Regime::ThreeLargeDims => Cost {
            latency: log2c(p) * log2c(p) + (n / k).sqrt().max(1.0) * log2c(p),
            bandwidth: (n * n * k / p).powf(2.0 / 3.0),
            flops: 2.0 * n * n * k / p,
        },
    }
}

/// Evaluate one conclusion-table row for `(n, k, p)`.
pub fn conclusion_row(n: f64, k: f64, p: f64) -> ConclusionRow {
    conclusion_row_rev(CostModelRev::Ipdps17, n, k, p)
}

/// [`conclusion_row`] under an explicit cost-model revision.
pub fn conclusion_row_rev(rev: CostModelRev, n: f64, k: f64, p: f64) -> ConclusionRow {
    ConclusionRow {
        n,
        k,
        p,
        regime: classify_rev(rev, n, k, p),
        standard: standard_cost_rev(rev, n, k, p),
        new: new_cost_rev(rev, n, k, p),
    }
}

/// The latency (synchronization) improvement factor `S_standard / S_new`.
///
/// In the 3D regime this approaches the paper's headline
/// `Θ((n/k)^{1/6}·p^{2/3})`.
pub fn latency_improvement(n: f64, k: f64, p: f64) -> f64 {
    let row = conclusion_row(n, k, p);
    row.standard.latency / row.new.latency
}

/// The paper's asymptotic improvement factor `(n/k)^{1/6}·p^{2/3}` for the 3D
/// regime (used by the experiments as the reference curve).
pub fn asymptotic_improvement_3d(n: f64, k: f64, p: f64) -> f64 {
    (n / k).powf(1.0 / 6.0) * p.powf(2.0 / 3.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_methods_have_equal_bandwidth_everywhere() {
        for (n, k, p) in [
            (32.0, 8192.0, 512.0),
            (4096.0, 1024.0, 64.0),
            (1.0e6, 64.0, 256.0),
        ] {
            let row = conclusion_row(n, k, p);
            assert_eq!(row.standard.bandwidth, row.new.bandwidth);
        }
    }

    #[test]
    fn flops_at_most_doubled() {
        for (n, k, p) in [
            (32.0, 8192.0, 512.0),
            (4096.0, 1024.0, 64.0),
            (1.0e6, 64.0, 256.0),
        ] {
            let row = conclusion_row(n, k, p);
            assert!(row.new.flops <= 2.0 * row.standard.flops + 1e-9);
        }
    }

    #[test]
    fn one_d_regime_trades_a_log_factor() {
        // In the 1D regime the new method pays log p extra latency.
        let row = conclusion_row(16.0, 65536.0, 256.0);
        assert_eq!(row.regime, Regime::OneLargeDim);
        assert!(row.new.latency > row.standard.latency);
        assert!((row.new.latency / row.standard.latency - log2c(256.0)).abs() < 1e-9);
    }

    #[test]
    fn two_and_three_d_regimes_win() {
        // 2D regime: the win requires n/k < p^{5/6} (otherwise the
        // (n/k)^{3/4}·log p / p^{1/8} term dominates); pick such a point.
        let (n2, k2, p2) = (524_288.0, 256.0, 65_536.0);
        let row2 = conclusion_row(n2, k2, p2);
        assert_eq!(row2.regime, Regime::TwoLargeDims);
        assert!(latency_improvement(n2, k2, p2) > 2.0);

        // 3D regime: the headline (n/k)^{1/6}·p^{2/3} factor is large.
        let row3 = conclusion_row(65536.0, 8192.0, 4096.0);
        assert_eq!(row3.regime, Regime::ThreeLargeDims);
        assert!(latency_improvement(65536.0, 8192.0, 4096.0) > 10.0);
    }

    #[test]
    fn improvement_tracks_asymptotic_factor_in_3d() {
        // As p grows with n/k fixed, the measured improvement should grow
        // proportionally to the asymptotic factor (within a constant).
        let n = 1.0e6;
        let k = 1.0e5;
        let small = latency_improvement(n, k, 256.0) / asymptotic_improvement_3d(n, k, 256.0);
        let large = latency_improvement(n, k, 16384.0) / asymptotic_improvement_3d(n, k, 16384.0);
        assert!(small > 0.0 && large > 0.0);
        let ratio = large / small;
        assert!(
            ratio > 0.2 && ratio < 5.0,
            "constant factor drifted: {ratio}"
        );
    }

    #[test]
    fn tang24_charges_extra_recursive_bandwidth_in_2d_and_3d() {
        // 2D regime: the corrected bound adds n²/√p (plus a log factor on
        // the nk/√p term), so the recursive method loses its bandwidth tie.
        let (n2, k2, p2) = (1.0e6, 64.0, 256.0);
        let a = conclusion_row_rev(CostModelRev::Ipdps17, n2, k2, p2);
        let b = conclusion_row_rev(CostModelRev::Tang24, n2, k2, p2);
        assert_eq!(a.regime, Regime::TwoLargeDims);
        assert_eq!(b.regime, Regime::TwoLargeDims);
        assert_eq!(a.standard.bandwidth, a.new.bandwidth);
        assert!(b.standard.bandwidth > b.new.bandwidth);
        assert!(b.standard.bandwidth > a.standard.bandwidth);

        // 3D regime: the extra n²/p^{2/3} term breaks the tie the same way.
        let (n3, k3, p3) = (65536.0, 8192.0, 4096.0);
        let a = conclusion_row_rev(CostModelRev::Ipdps17, n3, k3, p3);
        let b = conclusion_row_rev(CostModelRev::Tang24, n3, k3, p3);
        assert_eq!(a.regime, Regime::ThreeLargeDims);
        assert_eq!(b.regime, Regime::ThreeLargeDims);
        assert!(b.standard.bandwidth > b.new.bandwidth);

        // Latency and flops are untouched by the revision.
        assert_eq!(a.standard.latency, b.standard.latency);
        assert_eq!(a.standard.flops, b.standard.flops);
    }

    #[test]
    fn ipdps17_rev_is_byte_identical_to_the_unsuffixed_api() {
        for (n, k, p) in [
            (32.0, 8192.0, 512.0),
            (4096.0, 1024.0, 64.0),
            (1.0e6, 64.0, 256.0),
        ] {
            assert_eq!(
                conclusion_row(n, k, p),
                conclusion_row_rev(CostModelRev::Ipdps17, n, k, p)
            );
        }
    }

    #[test]
    fn improvement_grows_with_p() {
        let n = 1.0e6;
        let k = 1.0e4;
        let mut last = 0.0;
        for p in [64.0, 512.0, 4096.0, 32768.0] {
            let imp = latency_improvement(n, k, p);
            assert!(imp > last, "improvement must grow with p");
            last = imp;
        }
    }
}
