//! The conclusion table of the paper (Section IX): standard (recursive) TRSM
//! versus the new iterative inversion-based method, per regime.
//!
//! | regime | method | S | W | F |
//! |---|---|---|---|---|
//! | `n < 4k/p`        | standard | `log p`                     | `n²`           | `n²k/p`  |
//! |                   | new      | `log² p`                    | `n²`           | `n²k/p`  |
//! | `n > 4k√p`        | standard | `√p·log p`                  | `nk/√p`        | `n²k/p`  |
//! |                   | new      | `log² p + (n/k)^{3/4}·log p / p^{1/8}` | `nk/√p` | `n²k/p` |
//! | `4k/p ≤ n ≤ 4k√p` | standard | `(np/k)^{2/3}·log p`        | `(n²k/p)^{2/3}`| `n²k/p`  |
//! |                   | new      | `log² p + √(n/k)·log p`     | `(n²k/p)^{2/3}`| `2n²k/p` |
//!
//! [`conclusion_row`] evaluates both columns for a concrete `(n, k, p)` and
//! [`latency_improvement`] returns the headline speedup factor, which reaches
//! `Θ((n/k)^{1/6}·p^{2/3})` in the 3D regime.

use crate::cost::{log2c, Cost};
use crate::tuning::{classify, Regime};

/// One row of the Section IX table: the asymptotic cost of the standard
/// (recursive) algorithm and of the new method for a concrete input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConclusionRow {
    /// Problem size.
    pub n: f64,
    /// Number of right-hand sides.
    pub k: f64,
    /// Number of processors.
    pub p: f64,
    /// Regime the input falls into.
    pub regime: Regime,
    /// Cost of the standard (recursive) algorithm.
    pub standard: Cost,
    /// Cost of the new iterative inversion-based algorithm.
    pub new: Cost,
}

/// The "standard" column of the conclusion table (note the extra `log p`
/// latency factor relative to `T_RT2D/3D`, which the table includes).
pub fn standard_cost(n: f64, k: f64, p: f64) -> Cost {
    match classify(n, k, p) {
        Regime::OneLargeDim => Cost {
            latency: log2c(p),
            bandwidth: n * n,
            flops: n * n * k / p,
        },
        Regime::TwoLargeDims => Cost {
            latency: p.sqrt() * log2c(p),
            bandwidth: n * k / p.sqrt(),
            flops: n * n * k / p,
        },
        Regime::ThreeLargeDims => Cost {
            latency: (n * p / k).powf(2.0 / 3.0) * log2c(p),
            bandwidth: (n * n * k / p).powf(2.0 / 3.0),
            flops: n * n * k / p,
        },
    }
}

/// The "new method" column of the conclusion table.
pub fn new_cost(n: f64, k: f64, p: f64) -> Cost {
    match classify(n, k, p) {
        Regime::OneLargeDim => Cost {
            latency: log2c(p) * log2c(p),
            bandwidth: n * n,
            flops: n * n * k / p,
        },
        Regime::TwoLargeDims => Cost {
            latency: log2c(p) * log2c(p) + (n / k).powf(0.75) / p.powf(0.125) * log2c(p),
            bandwidth: n * k / p.sqrt(),
            flops: n * n * k / p,
        },
        Regime::ThreeLargeDims => Cost {
            latency: log2c(p) * log2c(p) + (n / k).sqrt().max(1.0) * log2c(p),
            bandwidth: (n * n * k / p).powf(2.0 / 3.0),
            flops: 2.0 * n * n * k / p,
        },
    }
}

/// Evaluate one conclusion-table row for `(n, k, p)`.
pub fn conclusion_row(n: f64, k: f64, p: f64) -> ConclusionRow {
    ConclusionRow {
        n,
        k,
        p,
        regime: classify(n, k, p),
        standard: standard_cost(n, k, p),
        new: new_cost(n, k, p),
    }
}

/// The latency (synchronization) improvement factor `S_standard / S_new`.
///
/// In the 3D regime this approaches the paper's headline
/// `Θ((n/k)^{1/6}·p^{2/3})`.
pub fn latency_improvement(n: f64, k: f64, p: f64) -> f64 {
    let row = conclusion_row(n, k, p);
    row.standard.latency / row.new.latency
}

/// The paper's asymptotic improvement factor `(n/k)^{1/6}·p^{2/3}` for the 3D
/// regime (used by the experiments as the reference curve).
pub fn asymptotic_improvement_3d(n: f64, k: f64, p: f64) -> f64 {
    (n / k).powf(1.0 / 6.0) * p.powf(2.0 / 3.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_methods_have_equal_bandwidth_everywhere() {
        for (n, k, p) in [
            (32.0, 8192.0, 512.0),
            (4096.0, 1024.0, 64.0),
            (1.0e6, 64.0, 256.0),
        ] {
            let row = conclusion_row(n, k, p);
            assert_eq!(row.standard.bandwidth, row.new.bandwidth);
        }
    }

    #[test]
    fn flops_at_most_doubled() {
        for (n, k, p) in [
            (32.0, 8192.0, 512.0),
            (4096.0, 1024.0, 64.0),
            (1.0e6, 64.0, 256.0),
        ] {
            let row = conclusion_row(n, k, p);
            assert!(row.new.flops <= 2.0 * row.standard.flops + 1e-9);
        }
    }

    #[test]
    fn one_d_regime_trades_a_log_factor() {
        // In the 1D regime the new method pays log p extra latency.
        let row = conclusion_row(16.0, 65536.0, 256.0);
        assert_eq!(row.regime, Regime::OneLargeDim);
        assert!(row.new.latency > row.standard.latency);
        assert!((row.new.latency / row.standard.latency - log2c(256.0)).abs() < 1e-9);
    }

    #[test]
    fn two_and_three_d_regimes_win() {
        // 2D regime: the win requires n/k < p^{5/6} (otherwise the
        // (n/k)^{3/4}·log p / p^{1/8} term dominates); pick such a point.
        let (n2, k2, p2) = (524_288.0, 256.0, 65_536.0);
        let row2 = conclusion_row(n2, k2, p2);
        assert_eq!(row2.regime, Regime::TwoLargeDims);
        assert!(latency_improvement(n2, k2, p2) > 2.0);

        // 3D regime: the headline (n/k)^{1/6}·p^{2/3} factor is large.
        let row3 = conclusion_row(65536.0, 8192.0, 4096.0);
        assert_eq!(row3.regime, Regime::ThreeLargeDims);
        assert!(latency_improvement(65536.0, 8192.0, 4096.0) > 10.0);
    }

    #[test]
    fn improvement_tracks_asymptotic_factor_in_3d() {
        // As p grows with n/k fixed, the measured improvement should grow
        // proportionally to the asymptotic factor (within a constant).
        let n = 1.0e6;
        let k = 1.0e5;
        let small = latency_improvement(n, k, 256.0) / asymptotic_improvement_3d(n, k, 256.0);
        let large = latency_improvement(n, k, 16384.0) / asymptotic_improvement_3d(n, k, 16384.0);
        assert!(small > 0.0 && large > 0.0);
        let ratio = large / small;
        assert!(
            ratio > 0.2 && ratio < 5.0,
            "constant factor drifted: {ratio}"
        );
    }

    #[test]
    fn improvement_grows_with_p() {
        let n = 1.0e6;
        let k = 1.0e4;
        let mut last = 0.0;
        for p in [64.0, 512.0, 4096.0, 32768.0] {
            let imp = latency_improvement(n, k, p);
            assert!(imp > last, "improvement must grow with p");
            last = imp;
        }
    }
}
