//! Predicted-vs-measured cost drift reports.
//!
//! The paper's workflow is *a priori*: pick algorithms and parameters from
//! the closed-form α–β–γ formulas, then run.  That workflow is only
//! trustworthy while the formulas keep tracking reality, so this module
//! provides the bookkeeping to line the two up: each [`DriftRow`] pairs a
//! phase's **predicted** [`Cost`] (from the formulas in this crate) with the
//! **measured** counts for the same phase (message/word/flop counters from
//! `simnet`, or wall-clock time from the tracing layer), and
//! [`DriftReport::render`] prints them side by side with a drift ratio.
//!
//! The module is deliberately passive — plain data plus formatting, no
//! dependencies — so both the staged solver (`catrsm`) and the experiment
//! harness can build reports from whatever measurements they have.
//!
//! ```
//! use costmodel::drift::{DriftReport, DriftRow};
//! use costmodel::{Cost, Machine};
//!
//! let mut report = DriftReport::new(Machine::cluster());
//! report.push(DriftRow::new(
//!     "recursive trsm",
//!     Cost::new(100.0, 5.0e5, 1.0e8),
//!     Cost::new(128.0, 5.4e5, 1.1e8),
//! ));
//! let table = report.render();
//! assert!(table.contains("recursive trsm"));
//! ```

use crate::cost::{Cost, Machine};
use std::fmt;

/// One phase's predicted-vs-measured cost pair.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftRow {
    /// Phase label (algorithm or executor name).
    pub phase: String,
    /// The model's predicted leading-order cost.
    pub predicted: Cost,
    /// The measured counts for the same phase (messages, words, flops).
    pub measured: Cost,
    /// Measured wall-clock (or virtual-clock) seconds, when a timing source
    /// was available; `None` when only counters were measured.
    pub measured_seconds: Option<f64>,
}

impl DriftRow {
    /// Build a row from predicted and measured counts.
    pub fn new(phase: impl Into<String>, predicted: Cost, measured: Cost) -> Self {
        DriftRow {
            phase: phase.into(),
            predicted,
            measured,
            measured_seconds: None,
        }
    }

    /// Attach a measured time in seconds to the row.
    pub fn with_seconds(mut self, seconds: f64) -> Self {
        self.measured_seconds = Some(seconds);
        self
    }

    /// The predicted execution time `α·S + β·W + γ·F` on `machine`.
    pub fn predicted_time(&self, machine: &Machine) -> f64 {
        self.predicted.time(machine)
    }

    /// The measured counts priced on the same machine — the apples-to-apples
    /// time the model *would* predict if its counts were exactly the measured
    /// ones.  Comparing this against [`DriftRow::predicted_time`] isolates
    /// count drift from machine-constant drift.
    pub fn measured_time(&self, machine: &Machine) -> f64 {
        self.measured_seconds
            .unwrap_or_else(|| self.measured.time(machine))
    }

    /// Drift ratio `measured / predicted` of the phase time on `machine`
    /// (`1.0` = the model is exact, `> 1` = the model under-predicts).
    /// Returns [`f64::INFINITY`] when the prediction is zero but the
    /// measurement is not.
    pub fn drift(&self, machine: &Machine) -> f64 {
        let p = self.predicted_time(machine);
        let m = self.measured_time(machine);
        if p == 0.0 {
            if m == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            m / p
        }
    }
}

/// A predicted-vs-measured comparison over the phases of one solve.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// The machine constants used to price both sides.
    pub machine: Machine,
    /// One row per phase, in execution order.
    pub rows: Vec<DriftRow>,
}

impl DriftReport {
    /// Create an empty report priced on `machine`.
    pub fn new(machine: Machine) -> Self {
        DriftReport {
            machine,
            rows: Vec::new(),
        }
    }

    /// Append a phase row.
    pub fn push(&mut self, row: DriftRow) {
        self.rows.push(row);
    }

    /// Sum of the predicted costs over all phases.
    pub fn total_predicted(&self) -> Cost {
        self.rows.iter().map(|r| r.predicted).sum()
    }

    /// Sum of the measured costs over all phases.
    pub fn total_measured(&self) -> Cost {
        self.rows.iter().map(|r| r.measured).sum()
    }

    /// Overall drift ratio `measured / predicted` of the total time.
    pub fn total_drift(&self) -> f64 {
        let p: f64 = self
            .rows
            .iter()
            .map(|r| r.predicted_time(&self.machine))
            .sum();
        let m: f64 = self
            .rows
            .iter()
            .map(|r| r.measured_time(&self.machine))
            .sum();
        if p == 0.0 {
            if m == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            m / p
        }
    }

    /// Render the report as an aligned plain-text table: one line per phase
    /// with predicted and measured `S`/`W`/`F`, both times, and the drift
    /// ratio, followed by a totals line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self
            .rows
            .iter()
            .map(|r| r.phase.len())
            .chain(std::iter::once("TOTAL".len()))
            .max()
            .unwrap_or(5)
            .max(5);
        out.push_str(&format!(
            "{:<width$}  {:>9} {:>9}  {:>9} {:>9}  {:>9} {:>9}  {:>10} {:>10}  {:>6}\n",
            "phase",
            "S pred",
            "S meas",
            "W pred",
            "W meas",
            "F pred",
            "F meas",
            "t pred",
            "t meas",
            "drift",
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<width$}  {:>9.2e} {:>9.2e}  {:>9.2e} {:>9.2e}  {:>9.2e} {:>9.2e}  {:>10.3e} {:>10.3e}  {:>6.2}\n",
                r.phase,
                r.predicted.latency,
                r.measured.latency,
                r.predicted.bandwidth,
                r.measured.bandwidth,
                r.predicted.flops,
                r.measured.flops,
                r.predicted_time(&self.machine),
                r.measured_time(&self.machine),
                r.drift(&self.machine),
            ));
        }
        let tp = self.total_predicted();
        let tm = self.total_measured();
        let tp_time: f64 = self
            .rows
            .iter()
            .map(|r| r.predicted_time(&self.machine))
            .sum();
        let tm_time: f64 = self
            .rows
            .iter()
            .map(|r| r.measured_time(&self.machine))
            .sum();
        out.push_str(&format!(
            "{:<width$}  {:>9.2e} {:>9.2e}  {:>9.2e} {:>9.2e}  {:>9.2e} {:>9.2e}  {:>10.3e} {:>10.3e}  {:>6.2}\n",
            "TOTAL",
            tp.latency,
            tm.latency,
            tp.bandwidth,
            tm.bandwidth,
            tp.flops,
            tm.flops,
            tp_time,
            tm_time,
            self.total_drift(),
        ));
        out
    }
}

impl fmt::Display for DriftReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_ratio_is_measured_over_predicted() {
        let m = Machine::unit();
        let row = DriftRow::new("p", Cost::new(1.0, 2.0, 3.0), Cost::new(2.0, 4.0, 6.0));
        assert_eq!(row.predicted_time(&m), 6.0);
        assert_eq!(row.measured_time(&m), 12.0);
        assert_eq!(row.drift(&m), 2.0);
        // An attached wall time overrides the counter-priced estimate.
        let timed = row.clone().with_seconds(3.0);
        assert_eq!(timed.measured_time(&m), 3.0);
        assert_eq!(timed.drift(&m), 0.5);
        // Zero-predicted phases do not divide by zero.
        let zero = DriftRow::new("z", Cost::ZERO, Cost::ZERO);
        assert_eq!(zero.drift(&m), 1.0);
        let inf = DriftRow::new("i", Cost::ZERO, Cost::new(1.0, 0.0, 0.0));
        assert_eq!(inf.drift(&m), f64::INFINITY);
    }

    #[test]
    fn report_totals_and_render() {
        let mut rep = DriftReport::new(Machine::unit());
        rep.push(DriftRow::new(
            "alpha",
            Cost::new(1.0, 0.0, 0.0),
            Cost::new(1.0, 0.0, 0.0),
        ));
        rep.push(DriftRow::new(
            "beta",
            Cost::new(0.0, 10.0, 0.0),
            Cost::new(0.0, 20.0, 0.0),
        ));
        assert_eq!(rep.total_predicted(), Cost::new(1.0, 10.0, 0.0));
        assert_eq!(rep.total_measured(), Cost::new(1.0, 20.0, 0.0));
        assert!((rep.total_drift() - 21.0 / 11.0).abs() < 1e-12);
        let table = rep.render();
        assert!(table.contains("alpha"));
        assert!(table.contains("beta"));
        assert!(table.contains("TOTAL"));
        assert!(table.lines().count() == 4);
        assert_eq!(rep.to_string(), table);
    }
}
