//! Cost of recursive triangular matrix inversion (Section V of the paper).
//!
//! The recursion splits the triangular matrix in half, inverts the two
//! diagonal blocks on disjoint halves of the processor grid concurrently, and
//! completes the inverse with two matrix multiplications.  Its key property —
//! the reason selective inversion lowers TRSM's synchronization cost — is the
//! `O(log² p)` latency, versus the polynomial-in-`p` latency of the recursive
//! TRSM.

use crate::cost::{log2c, Cost};

/// The geometric-series constant `ν = 2^{1/3} / (2^{1/3} − 1)` that appears in
/// the bandwidth and flop costs of the recursion.
pub fn nu() -> f64 {
    let c = 2.0_f64.powf(1.0 / 3.0);
    c / (c - 1.0)
}

/// `T_RecTriInv(n, p1, p2)` for inverting an `n×n` lower-triangular matrix on
/// a `p1 × p1 × p2` grid (`p = p1²·p2`):
///
/// ```text
/// W = ν·( n²/(8p1²) + n²/(2p1p2) )
/// F = ν·n³/(8·p1²·p2)
/// S = O(log² p)
/// ```
pub fn rec_tri_inv_cost(n: f64, p1: f64, p2: f64) -> Cost {
    let p = p1 * p1 * p2;
    Cost {
        latency: log2c(p) * log2c(p),
        bandwidth: nu() * (n * n / (8.0 * p1 * p1) + n * n / (2.0 * p1 * p2)),
        flops: nu() * n * n * n / (8.0 * p1 * p1 * p2),
    }
}

/// The inversion grid the paper selects for `q` processors:
/// `r1 = (q/4)^{1/3}` and `r2 = (16q)^{1/3}`, i.e. the aspect ratio
/// `r2 = 4·r1` of Section VII-A (with `q = p·n0/n`).
///
/// Note: the unconstrained minimiser of the leading-order bandwidth
/// expression [`inv_bandwidth`] is the slightly flatter ratio `r2 = 2·r1`;
/// the paper's choice is within a few percent of it (the `exp_ablation_grid`
/// experiment plots the whole curve).  We follow the paper.  Both values are
/// clamped to at least 1.
pub fn optimal_inv_grid(q: f64) -> (f64, f64) {
    let r1 = (q / 4.0).powf(1.0 / 3.0).max(1.0);
    let r2 = (q / (r1 * r1)).max(1.0);
    (r1, r2)
}

/// Bandwidth cost of the inversion as a function of the grid split, used by
/// the `exp_ablation_grid` experiment to show that `r2 = 4·r1` is optimal.
pub fn inv_bandwidth(n: f64, r1: f64, r2: f64) -> f64 {
    nu() * (n * n / (8.0 * r1 * r1) + n * n / (2.0 * r1 * r2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nu_value() {
        assert!((nu() - 4.847).abs() < 0.01);
    }

    #[test]
    fn latency_is_polylogarithmic() {
        let c = rec_tri_inv_cost(1.0e6, 8.0, 4.0); // p = 256
        assert_eq!(c.latency, 64.0); // log²(256) = 8² = 64
        let c2 = rec_tri_inv_cost(1.0e6, 16.0, 4.0); // p = 1024
        assert_eq!(c2.latency, 100.0);
    }

    #[test]
    fn bandwidth_and_flops_scale_with_grid() {
        let n = 4096.0;
        let small = rec_tri_inv_cost(n, 2.0, 4.0);
        let large = rec_tri_inv_cost(n, 4.0, 16.0);
        assert!(large.bandwidth < small.bandwidth);
        assert!(large.flops < small.flops);
        // Flops scale exactly as 1/p = 1/(p1²·p2).
        let ratio = small.flops / large.flops;
        assert!((ratio - (4.0 * 4.0 * 16.0) / (2.0 * 2.0 * 4.0)).abs() < 1e-9);
    }

    #[test]
    fn optimal_grid_has_ratio_four() {
        let (r1, r2) = optimal_inv_grid(256.0);
        assert!((r2 / r1 - 4.0).abs() < 1e-9);
        assert!((r1 * r1 * r2 - 256.0).abs() < 1e-9);
        // Small q degenerates gracefully.
        let (r1, r2) = optimal_inv_grid(1.0);
        assert_eq!((r1, r2), (1.0, 1.0));
    }

    #[test]
    fn paper_ratio_four_is_near_optimal_bandwidth() {
        let n = 1.0e4;
        let q = 512.0;
        let (r1_paper, r2_paper) = optimal_inv_grid(q);
        let w_paper = inv_bandwidth(n, r1_paper, r2_paper);
        // The true minimiser over all aspect ratios with r1²·r2 = q.
        let mut w_best = f64::INFINITY;
        let mut steps = 0;
        let mut ratio = 0.25;
        while ratio <= 256.0 {
            let r1 = (q / ratio).powf(1.0 / 3.0);
            let r2 = q / (r1 * r1);
            w_best = w_best.min(inv_bandwidth(n, r1, r2));
            ratio *= 1.05;
            steps += 1;
        }
        assert!(steps > 50);
        // The paper's ratio-4 split is within a few percent of optimal …
        assert!(
            w_paper <= 1.10 * w_best,
            "paper split should be near-optimal"
        );
        // … while extreme splits are clearly worse.
        for extreme in [0.25, 64.0, 256.0] {
            let r1 = (q / extreme).powf(1.0 / 3.0);
            let r2 = q / (r1 * r1);
            assert!(inv_bandwidth(n, r1, r2) > 1.15 * w_best, "ratio {extreme}");
        }
    }
}
