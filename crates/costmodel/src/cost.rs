//! The cost record and machine description used by all formulas.

use std::fmt;
use std::ops::Add;

/// A leading-order α–β–γ cost: `latency` messages, `bandwidth` words and
/// `flops` floating-point operations along the critical path.
///
/// Values are `f64` because the formulas are leading-order expressions
/// (`(n²k/p)^{2/3}`, `log² p`, …), not exact integer counts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cost {
    /// Number of messages (the coefficient of α).
    pub latency: f64,
    /// Number of words moved (the coefficient of β).
    pub bandwidth: f64,
    /// Number of floating-point operations (the coefficient of γ).
    pub flops: f64,
}

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost {
        latency: 0.0,
        bandwidth: 0.0,
        flops: 0.0,
    };

    /// Construct a cost record.
    pub fn new(latency: f64, bandwidth: f64, flops: f64) -> Self {
        Cost {
            latency,
            bandwidth,
            flops,
        }
    }

    /// A pure-latency cost.
    pub fn latency_only(latency: f64) -> Self {
        Cost::new(latency, 0.0, 0.0)
    }

    /// Scale every component by `factor` (e.g. the number of iterations of a
    /// loop that incurs this cost).
    pub fn scaled(self, factor: f64) -> Cost {
        Cost {
            latency: self.latency * factor,
            bandwidth: self.bandwidth * factor,
            flops: self.flops * factor,
        }
    }

    /// Evaluate the execution time `α·S + β·W + γ·F` on `machine`.
    pub fn time(&self, machine: &Machine) -> f64 {
        machine.alpha * self.latency + machine.beta * self.bandwidth + machine.gamma * self.flops
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost {
            latency: self.latency + rhs.latency,
            bandwidth: self.bandwidth + rhs.bandwidth,
            flops: self.flops + rhs.flops,
        }
    }
}

impl std::iter::Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "S = {:.3e}, W = {:.3e}, F = {:.3e}",
            self.latency, self.bandwidth, self.flops
        )
    }
}

/// α–β–γ machine constants for turning a [`Cost`] into a predicted time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Machine {
    /// Seconds per message.
    pub alpha: f64,
    /// Seconds per word.
    pub beta: f64,
    /// Seconds per flop.
    pub gamma: f64,
}

impl Machine {
    /// α = β = γ = 1.
    pub fn unit() -> Self {
        Machine {
            alpha: 1.0,
            beta: 1.0,
            gamma: 1.0,
        }
    }

    /// Same constants as `simnet::MachineParams::cluster()`.
    pub fn cluster() -> Self {
        Machine {
            alpha: 1.0e-6,
            beta: 8.0e-9,
            gamma: 1.0e-10,
        }
    }

    /// Same constants as `simnet::MachineParams::supercomputer()`.
    pub fn supercomputer() -> Self {
        Machine {
            alpha: 2.0e-6,
            beta: 8.0e-10,
            gamma: 2.0e-11,
        }
    }
}

/// Base-2 logarithm clamped below at 1 (the paper's `log p` terms are always
/// at least one round once any communication happens).
pub fn log2c(x: f64) -> f64 {
    if x <= 2.0 {
        1.0
    } else {
        x.log2()
    }
}

/// The indicator `1_x` of the paper: 1 when `x > 1`, 0 otherwise.
pub fn indicator(x: f64) -> f64 {
    if x > 1.0 {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_arithmetic() {
        let a = Cost::new(1.0, 10.0, 100.0);
        let b = Cost::new(2.0, 20.0, 200.0);
        let s = a + b;
        assert_eq!(s, Cost::new(3.0, 30.0, 300.0));
        assert_eq!(a.scaled(3.0), Cost::new(3.0, 30.0, 300.0));
        let total: Cost = vec![a, b].into_iter().sum();
        assert_eq!(total, s);
        assert_eq!(Cost::latency_only(4.0).bandwidth, 0.0);
        assert_eq!(Cost::ZERO + a, a);
    }

    #[test]
    fn time_evaluation() {
        let c = Cost::new(1.0, 2.0, 3.0);
        let m = Machine {
            alpha: 100.0,
            beta: 10.0,
            gamma: 1.0,
        };
        assert_eq!(c.time(&m), 123.0);
        assert_eq!(c.time(&Machine::unit()), 6.0);
    }

    #[test]
    fn helpers() {
        assert_eq!(log2c(1.0), 1.0);
        assert_eq!(log2c(2.0), 1.0);
        assert_eq!(log2c(8.0), 3.0);
        assert_eq!(indicator(0.5), 0.0);
        assert_eq!(indicator(1.0), 0.0);
        assert_eq!(indicator(2.0), 1.0);
    }

    #[test]
    fn display_contains_components() {
        let s = Cost::new(1.0, 2.0, 3.0).to_string();
        assert!(s.contains("S ="));
        assert!(s.contains("W ="));
        assert!(s.contains("F ="));
    }

    #[test]
    fn machine_presets() {
        assert!(Machine::cluster().alpha > Machine::cluster().beta);
        assert!(Machine::supercomputer().beta < Machine::cluster().beta);
    }
}
