//! Prediction hook for the staged solver API (`catrsm::SolveRequest` →
//! `Plan` → `Solution`).
//!
//! When a request is lowered to a plan, the plan carries the *predicted*
//! α–β–γ cost of the algorithm it chose, so callers can inspect what a
//! solve will cost before running it — the "a priori" workflow the paper
//! advocates, and the plan-inspection pattern the re-examination of this
//! paper's bandwidth analysis (arXiv:2407.00871) treats as first-class.
//! [`trsm_cost`] dispatches the Section IV / VI / II-C3 leading-order
//! expressions by algorithm kind, so a plan's prediction and the
//! experiment harness print from the same formulas.

use crate::compare::standard_cost_rev;
use crate::cost::{log2c, Cost};
use crate::tuning::it_trsm_cost_rev;

/// Which revision of the analytical cost model to evaluate.
///
/// Tang's 2024 reexamination of this paper's recursive-TRSM bandwidth
/// analysis (arXiv:2407.00871) argues the original W bound understates the
/// recursive algorithm's communication in the 2D and 3D regimes.  The exact
/// corrected expressions are reconstructed here from the reexamination's
/// argument (the triangular-solve panel broadcasts move `Θ(n²/√p)` words in
/// the 2D layout and an extra `Θ(n²/p^{2/3})` in the 3D cuboid, terms the
/// original leading-order analysis dropped), with the regime-boundary
/// constant rebalanced from 4 to 2 so the boundaries again equalise the
/// neighbouring regimes' dominant terms under the corrected W.
///
/// Every `_rev` function in this crate takes the revision explicitly; the
/// original unsuffixed entry points are unchanged and equal to
/// [`CostModelRev::Ipdps17`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModelRev {
    /// The source paper's Section IV / VIII / IX expressions, verbatim.
    #[default]
    Ipdps17,
    /// The corrected recursive-TRSM bandwidth bound and rebalanced regime
    /// boundaries after the 2024 reexamination.
    Tang24,
}

impl CostModelRev {
    /// Both revisions, in publication order.
    pub const ALL: [CostModelRev; 2] = [CostModelRev::Ipdps17, CostModelRev::Tang24];

    /// Human-readable name used by experiment output and diff tables.
    pub fn name(&self) -> &'static str {
        match self {
            CostModelRev::Ipdps17 => "ipdps17",
            CostModelRev::Tang24 => "tang24",
        }
    }

    /// The constant `c` in the regime boundaries `n < c·k/p` (1D) and
    /// `n > c·k·√p` (2D): 4 in the source paper's Section VIII, 2 after the
    /// reexamination rebalances the boundaries under the corrected W bound.
    pub fn regime_constant(&self) -> f64 {
        match self {
            CostModelRev::Ipdps17 => 4.0,
            CostModelRev::Tang24 => 2.0,
        }
    }
}

/// Which distributed TRSM algorithm a cost prediction refers to.
///
/// The mirror of `catrsm::api::Algorithm` without the concrete parameter
/// payloads: the cost model is asymptotic, so only the algorithm family
/// matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// The recursive baseline of Section IV.
    Recursive,
    /// The iterative inversion-based algorithm of Sections VI–VII (costed
    /// with the tuned Section VIII parameters).
    IterativeInversion,
    /// The row-fan-out substitution baseline (Heath–Romine, Section II-C3).
    Wavefront,
}

impl AlgorithmKind {
    /// Human-readable name used by plan displays and experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmKind::Recursive => "recursive",
            AlgorithmKind::IterativeInversion => "iterative inversion-based",
            AlgorithmKind::Wavefront => "wavefront",
        }
    }
}

/// Leading-order cost of the row-fan-out (wavefront) substitution: `n`
/// broadcast rounds of a `k`-word row over `p` processors.
///
/// `S = n·log p`, `W = n·k` along the critical path, and the optimal
/// `n²k/p` flops — the `Θ(n)` synchronization behaviour both of the
/// paper's algorithms improve on.
pub fn wavefront_cost(n: f64, k: f64, p: f64) -> Cost {
    Cost {
        latency: n * log2c(p),
        bandwidth: n * k,
        flops: n * n * k / p + n * k,
    }
}

/// Predicted critical-path cost of solving `L·X = B` (`n×n`, `k`
/// right-hand sides, `p` processors) with the given algorithm family.
pub fn trsm_cost(kind: AlgorithmKind, n: f64, k: f64, p: f64) -> Cost {
    trsm_cost_rev(CostModelRev::Ipdps17, kind, n, k, p)
}

/// [`trsm_cost`] under an explicit cost-model revision: `Ipdps17` evaluates
/// the source paper's expressions verbatim, `Tang24` the corrected
/// recursive-TRSM bandwidth bound and rebalanced regime boundaries.  The
/// wavefront baseline has no regime structure and is identical under both.
pub fn trsm_cost_rev(rev: CostModelRev, kind: AlgorithmKind, n: f64, k: f64, p: f64) -> Cost {
    match kind {
        AlgorithmKind::Recursive => standard_cost_rev(rev, n, k, p),
        AlgorithmKind::IterativeInversion => it_trsm_cost_rev(rev, n, k, p),
        AlgorithmKind::Wavefront => wavefront_cost(n, k, p),
    }
}

/// Predicted cost of a level-scheduled sparse triangular solve with `nnz`
/// stored entries, `k` right-hand sides, `workers` workers, and `barriers`
/// synchronization points.
///
/// This is the sparse analogue of [`wavefront_cost`]: the solve is a
/// sequence of parallel sweeps separated by global synchronizations, so the
/// latency term is **proportional to the number of barriers actually
/// crossed** — `num_levels` under the pure level schedule, the (much
/// smaller) super-level count under the DAG-partitioned merged schedule.
/// Cutting barriers is exactly what moves this cost, which is why the
/// staged planner records the per-policy barrier count on its plans and
/// prices them through this formula.  The bandwidth term charges the `k`
/// solution words that cross between dependent sweeps at each
/// synchronization; the flop term is the solve's `2·nnz·k` arithmetic
/// divided over the workers.
pub fn sparse_solve_cost(nnz: f64, k: f64, barriers: f64, workers: f64) -> Cost {
    let p = workers.max(1.0);
    Cost {
        latency: barriers * log2c(p),
        bandwidth: barriers * k,
        flops: 2.0 * nnz * k / p,
    }
}

/// [`sparse_solve_cost`] with the **analysis phase amortized over the
/// declared reuse** — the per-apply cost of a policy that spends
/// `analysis_flops` once and is then applied `reuse` times.
///
/// This is what lets a planner price analyze-cost-vs-reuse across the three
/// scheduling policies: the level schedule spends ~`nnz` analysis flops
/// (one pattern pass), the merged schedule ~`2·nnz` (level pass + merge
/// pass), and the sync-free column sweep **zero** — so on a one-shot solve
/// (`reuse = 1`) the sync-free policy wins on the amortized-analysis term,
/// while a 100-apply loop shrinks that term 100× and the barriered
/// schedules win back through their smaller per-apply synchronization.
/// `sync_words` charges the per-apply cross-worker synchronization traffic
/// to the bandwidth term: `barriers · k` words for the barriered policies
/// (already what [`sparse_solve_cost`] charges), `nnz · k` for the
/// sync-free sweep, whose per-row counter/partial-sum handshakes touch
/// every stored entry's contribution.
pub fn sparse_solve_cost_amortized(
    nnz: f64,
    k: f64,
    barriers: f64,
    workers: f64,
    analysis_flops: f64,
    sync_words: f64,
    reuse: f64,
) -> Cost {
    let p = workers.max(1.0);
    let r = reuse.max(1.0);
    Cost {
        latency: barriers * log2c(p),
        bandwidth: barriers * k + sync_words,
        flops: 2.0 * nnz * k / p + analysis_flops / r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::standard_cost;
    use crate::tuning::{classify, it_trsm_cost};

    #[test]
    fn dispatch_matches_the_underlying_formulas() {
        let (n, k, p) = (4096.0, 1024.0, 64.0);
        assert_eq!(
            trsm_cost(AlgorithmKind::Recursive, n, k, p),
            standard_cost(n, k, p)
        );
        assert_eq!(
            trsm_cost(AlgorithmKind::IterativeInversion, n, k, p),
            it_trsm_cost(n, k, p)
        );
        assert_eq!(
            trsm_cost(AlgorithmKind::Wavefront, n, k, p),
            wavefront_cost(n, k, p)
        );
    }

    #[test]
    fn wavefront_latency_dominates_at_scale() {
        // The wavefront's Θ(n·log p) synchronization must exceed both
        // communication-avoiding algorithms once n and p are large.
        let (n, k, p) = (65536.0, 1024.0, 4096.0);
        let wf = trsm_cost(AlgorithmKind::Wavefront, n, k, p);
        let rec = trsm_cost(AlgorithmKind::Recursive, n, k, p);
        let it = trsm_cost(AlgorithmKind::IterativeInversion, n, k, p);
        assert!(wf.latency > rec.latency);
        assert!(wf.latency > it.latency);
        assert!(it.latency < rec.latency, "the paper's headline claim");
    }

    #[test]
    fn all_kinds_do_the_optimal_flops_to_leading_order() {
        let (n, k, p) = (8192.0, 512.0, 256.0);
        let optimal = n * n * k / p;
        for kind in [
            AlgorithmKind::Recursive,
            AlgorithmKind::IterativeInversion,
            AlgorithmKind::Wavefront,
        ] {
            let c = trsm_cost(kind, n, k, p);
            assert!(
                c.flops >= optimal && c.flops <= 2.5 * optimal,
                "{} flops {} vs optimal {optimal}",
                kind.name(),
                c.flops
            );
        }
        let _ = classify(n, k, p);
    }

    #[test]
    fn sparse_sync_term_scales_with_barriers_not_levels() {
        // Same matrix, same workers: a merged schedule with 50 barriers
        // must price strictly below the 10000-barrier level schedule, with
        // identical flop terms.
        let (nnz, k, p) = (200_000.0, 8.0, 4.0);
        let level = sparse_solve_cost(nnz, k, 10_000.0, p);
        let merged = sparse_solve_cost(nnz, k, 50.0, p);
        assert_eq!(level.flops, merged.flops);
        assert!(merged.latency < level.latency / 100.0);
        assert!(merged.bandwidth < level.bandwidth);
        // More workers divide the flop term and raise the per-barrier cost.
        let wide = sparse_solve_cost(nnz, k, 50.0, 16.0);
        assert!(wide.flops < merged.flops);
        assert!(wide.latency > merged.latency);
    }

    #[test]
    fn amortized_cost_prices_one_shot_syncfree_and_reused_merged() {
        use crate::cost::Machine;
        // The deep-DAG workload from the kernels bench: nnz ≈ 160k, one
        // RHS, 4 workers; 10k level barriers, ~50 merged barriers, zero
        // sync-free barriers.  Analysis: ~nnz flops for the level pass,
        // ~2·nnz for level + merge, zero for sync-free; per-apply sync
        // traffic: nnz·k words of counter/partial-sum handshakes for
        // sync-free, already in `barriers·k` for the barriered policies.
        let (nnz, k, p) = (160_000.0, 1.0, 4.0);
        let price = |barriers: f64, analysis: f64, sync_words: f64, reuse: f64| {
            sparse_solve_cost_amortized(nnz, k, barriers, p, analysis, sync_words, reuse)
                .time(&Machine::unit())
        };
        let level = price(10_000.0, nnz, 0.0, 1.0);
        let merged = price(50.0, 2.0 * nnz, 0.0, 1.0);
        let syncfree = price(0.0, 0.0, nnz * k, 1.0);
        assert!(
            syncfree < merged && syncfree < level,
            "one-shot: sync-free must be cheapest \
             ({syncfree} vs merged {merged} vs level {level})"
        );
        let level = price(10_000.0, nnz, 0.0, 100.0);
        let merged = price(50.0, 2.0 * nnz, 0.0, 100.0);
        let syncfree = price(0.0, 0.0, nnz * k, 100.0);
        assert!(
            merged < syncfree && merged < level,
            "100-apply: merged must be cheapest \
             ({merged} vs syncfree {syncfree} vs level {level})"
        );
        // With reuse 1 the amortized barriered cost reduces to the plain
        // formula plus the full analysis bill.
        let plain = sparse_solve_cost(nnz, k, 50.0, p);
        let amortized = sparse_solve_cost_amortized(nnz, k, 50.0, p, 2.0 * nnz, 0.0, 1.0);
        assert_eq!(amortized.latency, plain.latency);
        assert_eq!(amortized.bandwidth, plain.bandwidth);
        assert_eq!(amortized.flops, plain.flops + 2.0 * nnz);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(AlgorithmKind::Recursive.name(), "recursive");
        assert!(AlgorithmKind::IterativeInversion
            .name()
            .contains("inversion"));
        assert_eq!(AlgorithmKind::Wavefront.name(), "wavefront");
    }
}
