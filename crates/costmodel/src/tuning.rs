//! Optimal parameter selection (Section VIII of the paper) and the total
//! costs `T_IT1D`, `T_IT2D`, `T_IT3D` of the tuned iterative algorithm.
//!
//! The paper's Figure 1 shows the three processor-grid layouts — 1D, 2D and
//! 3D cuboids — selected by the relative sizes of the triangular matrix
//! (`n × n`) and the right-hand side (`n × k`):
//!
//! * `n < 4k/p`   → **1D**: every processor owns a column slab of `B`; the
//!   whole matrix `L` is inverted (`n0 = n`).
//! * `n > 4k√p`   → **2D**: a `√p × √p` grid; small diagonal blocks of size
//!   `n0 = Θ((n·k³·√p)^{1/4})` are inverted.
//! * otherwise    → **3D**: a `p1 × p1 × p2` cuboid with
//!   `p1 = (p·n/(4k))^{1/3}`, `n0 = Θ(min(√(nk), n))`.

use crate::cost::{log2c, Cost};
use crate::predict::CostModelRev;

/// The layout regime of Section VIII / Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// `n < 4k/p`: one large dimension, 1D processor layout.
    OneLargeDim,
    /// `4k/p ≤ n ≤ 4k√p`: three large dimensions, 3D processor layout.
    ThreeLargeDims,
    /// `n > 4k√p`: two large dimensions, 2D processor layout.
    TwoLargeDims,
}

impl Regime {
    /// Human-readable name used by the experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Regime::OneLargeDim => "1 large dimension (1D layout)",
            Regime::ThreeLargeDims => "3 large dimensions (3D layout)",
            Regime::TwoLargeDims => "2 large dimensions (2D layout)",
        }
    }
}

/// Classify `(n, k, p)` into the Section VIII regime.
pub fn classify(n: f64, k: f64, p: f64) -> Regime {
    classify_rev(CostModelRev::Ipdps17, n, k, p)
}

/// [`classify`] under an explicit cost-model revision: the boundary constant
/// is 4 in the source paper and 2 after the 2024 reexamination rebalances
/// the boundaries under the corrected recursive-TRSM bandwidth bound, so
/// `Tang24` widens the 1D and 2D regimes at the 3D regime's expense.
pub fn classify_rev(rev: CostModelRev, n: f64, k: f64, p: f64) -> Regime {
    let c = rev.regime_constant();
    if n < c * k / p {
        Regime::OneLargeDim
    } else if n > c * k * p.sqrt() {
        Regime::TwoLargeDims
    } else {
        Regime::ThreeLargeDims
    }
}

/// The asymptotically optimal parameters of the iterative inversion-based
/// TRSM for one `(n, k, p)` input (real-valued; the `catrsm` planner rounds
/// them to feasible integer grids).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrsmPlan {
    /// Triangular matrix dimension.
    pub n: f64,
    /// Number of right-hand sides.
    pub k: f64,
    /// Number of processors.
    pub p: f64,
    /// The selected regime / layout.
    pub regime: Regime,
    /// Square-face dimension of the `p1 × p1 × p2` grid.
    pub p1: f64,
    /// Depth of the grid (number of right-hand-side layers).
    pub p2: f64,
    /// Diagonal-block size that is inverted.
    pub n0: f64,
    /// Square-face dimension of each inversion sub-grid.
    pub r1: f64,
    /// Depth of each inversion sub-grid (`r2 ≈ 4·r1` at the optimum).
    pub r2: f64,
}

/// Compute the Section VIII optimal parameters for `(n, k, p)`.
pub fn plan(n: usize, k: usize, p: usize) -> TrsmPlan {
    plan_rev(CostModelRev::Ipdps17, n, k, p)
}

/// [`plan`] under an explicit cost-model revision: the regime is chosen by
/// [`classify_rev`] and the 3D cuboid face `p1 = (p·n/(c·k))^{1/3}` uses the
/// revision's boundary constant `c`, so the grid stays continuous across the
/// (shifted) regime boundaries.
pub fn plan_rev(rev: CostModelRev, n: usize, k: usize, p: usize) -> TrsmPlan {
    let nf = n as f64;
    let kf = k as f64;
    let pf = p as f64;
    let regime = classify_rev(rev, nf, kf, pf);
    let (p1, p2, n0) = match regime {
        Regime::OneLargeDim => (1.0, pf, nf),
        Regime::TwoLargeDims => {
            let n0 = (nf * kf.powi(3) * pf.sqrt()).powf(0.25).min(nf).max(1.0);
            (pf.sqrt(), 1.0, n0)
        }
        Regime::ThreeLargeDims => {
            let c = rev.regime_constant();
            let p1 = (pf * nf / (c * kf)).powf(1.0 / 3.0).clamp(1.0, pf.sqrt());
            let p2 = (pf / (p1 * p1)).max(1.0);
            let n0 = (nf * kf).sqrt().min(nf).max(1.0);
            (p1, p2, n0)
        }
    };
    // Inversion sub-grids: q = p·n0/n processors per diagonal block, split
    // with the optimal ratio r2 = 4·r1 (Section VII-A).
    let q = (pf * n0 / nf).max(1.0);
    let (r1, r2) = crate::inversion::optimal_inv_grid(q);
    TrsmPlan {
        n: nf,
        k: kf,
        p: pf,
        regime,
        p1,
        p2,
        n0,
        r1,
        r2,
    }
}

/// `T_IT1D(n, k, p) = O(α·(log² p + log p) + β·n² + γ·n²k/p)`.
pub fn it_trsm_1d(n: f64, k: f64, p: f64) -> Cost {
    Cost {
        latency: log2c(p) * log2c(p) + log2c(p),
        bandwidth: n * n,
        flops: n * n * k / p,
    }
}

/// `T_IT2D(n, k, p) = O(α·(log² p + (n/k)^{3/4}·log p / p^{1/8}) + β·nk/√p + γ·n²k/p)`.
pub fn it_trsm_2d(n: f64, k: f64, p: f64) -> Cost {
    Cost {
        latency: log2c(p) * log2c(p) + (n / k).powf(0.75) / p.powf(0.125) * log2c(p),
        bandwidth: n * k / p.sqrt(),
        flops: n * n * k / p,
    }
}

/// `T_IT3D(n, k, p) = O(α·(log² p + max(√(n/k), 1)·log p) + β·(n²k/p)^{2/3} + γ·n²k/p)`.
pub fn it_trsm_3d(n: f64, k: f64, p: f64) -> Cost {
    Cost {
        latency: log2c(p) * log2c(p) + (n / k).sqrt().max(1.0) * log2c(p),
        bandwidth: (n * n * k / p).powf(2.0 / 3.0),
        flops: n * n * k / p,
    }
}

/// Total cost of the tuned iterative algorithm, dispatched by regime.
pub fn it_trsm_cost(n: f64, k: f64, p: f64) -> Cost {
    it_trsm_cost_rev(CostModelRev::Ipdps17, n, k, p)
}

/// [`it_trsm_cost`] under an explicit cost-model revision.  The per-regime
/// expressions of the iterative algorithm stand under the reexamination
/// (its correction targets the *recursive* algorithm's bandwidth); what
/// changes is which regime an input falls into, via [`classify_rev`].
pub fn it_trsm_cost_rev(rev: CostModelRev, n: f64, k: f64, p: f64) -> Cost {
    match classify_rev(rev, n, k, p) {
        Regime::OneLargeDim => it_trsm_1d(n, k, p),
        Regime::TwoLargeDims => it_trsm_2d(n, k, p),
        Regime::ThreeLargeDims => it_trsm_3d(n, k, p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regime_boundaries() {
        let p = 64.0;
        let k = 1024.0;
        assert_eq!(classify(32.0, k, p), Regime::OneLargeDim); // 4k/p = 64
        assert_eq!(classify(64.0, k, p), Regime::ThreeLargeDims);
        assert_eq!(classify(32768.0, k, p), Regime::ThreeLargeDims); // 4k√p = 32768
        assert_eq!(classify(40000.0, k, p), Regime::TwoLargeDims);
        assert!(classify(32.0, k, p).name().contains("1 large"));
    }

    #[test]
    fn tang24_moves_the_regime_boundaries_inward() {
        let p = 64.0;
        let k = 1024.0;
        // 1D/3D boundary: 4k/p = 64 under Ipdps17, 2k/p = 32 under Tang24 —
        // n = 48 flips from 1D to 3D.
        assert_eq!(classify(48.0, k, p), Regime::OneLargeDim);
        assert_eq!(
            classify_rev(CostModelRev::Tang24, 48.0, k, p),
            Regime::ThreeLargeDims
        );
        // 3D/2D boundary: 4k√p = 32768 vs 2k√p = 16384 — n = 20000 flips
        // from 3D to 2D.
        assert_eq!(classify(20000.0, k, p), Regime::ThreeLargeDims);
        assert_eq!(
            classify_rev(CostModelRev::Tang24, 20000.0, k, p),
            Regime::TwoLargeDims
        );
        // Ipdps17 is byte-identical to the unsuffixed entry points.
        for n in [10.0, 48.0, 2048.0, 20000.0, 1.0e6] {
            assert_eq!(
                classify(n, k, p),
                classify_rev(CostModelRev::Ipdps17, n, k, p)
            );
        }
    }

    #[test]
    fn plan_rev_matches_plan_under_ipdps17_and_shifts_under_tang24() {
        for (n, k, p) in [
            (16usize, 65536usize, 64usize),
            (4096, 1024, 64),
            (1 << 20, 16, 256),
        ] {
            assert_eq!(plan(n, k, p), plan_rev(CostModelRev::Ipdps17, n, k, p));
        }
        // Deep in the 3D regime under both revisions: the cuboid face grows
        // with the smaller boundary constant (p1 = (pn/(c·k))^{1/3}).
        let a = plan_rev(CostModelRev::Ipdps17, 4096, 1024, 64);
        let b = plan_rev(CostModelRev::Tang24, 4096, 1024, 64);
        assert_eq!(a.regime, Regime::ThreeLargeDims);
        assert_eq!(b.regime, Regime::ThreeLargeDims);
        assert!(b.p1 > a.p1);
    }

    #[test]
    fn one_d_plan_inverts_everything() {
        let plan = plan(16, 65536, 64);
        assert_eq!(plan.regime, Regime::OneLargeDim);
        assert_eq!(plan.p1, 1.0);
        assert_eq!(plan.p2, 64.0);
        assert_eq!(plan.n0, 16.0);
    }

    #[test]
    fn two_d_plan_uses_square_grid() {
        let plan = plan(1 << 20, 16, 256);
        assert_eq!(plan.regime, Regime::TwoLargeDims);
        assert_eq!(plan.p1, 16.0);
        assert_eq!(plan.p2, 1.0);
        assert!(plan.n0 >= 1.0 && plan.n0 <= plan.n);
        // n0 ~ (n k³ √p)^{1/4}
        let expect = ((1u64 << 20) as f64 * 16.0f64.powi(3) * 16.0).powf(0.25);
        assert!((plan.n0 - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn three_d_plan_grid_multiplies_to_p() {
        let plan = plan(4096, 1024, 64);
        assert_eq!(plan.regime, Regime::ThreeLargeDims);
        assert!((plan.p1 * plan.p1 * plan.p2 - 64.0).abs() < 1e-9);
        assert!((plan.n0 - (4096.0f64 * 1024.0).sqrt()).abs() < 1e-9);
        assert!(plan.r1 >= 1.0 && plan.r2 >= 1.0);
        // p1 = (pn/4k)^{1/3} = (64*4096/4096)^{1/3} = 4
        assert!((plan.p1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn inversion_subgrid_size_matches_block_share() {
        let plan = plan(16384, 4096, 256);
        let q = plan.p * plan.n0 / plan.n;
        assert!((plan.r1 * plan.r1 * plan.r2 - q).abs() / q < 1e-6);
    }

    #[test]
    fn tuned_cost_dispatches_by_regime() {
        let p = 64.0;
        let k = 1024.0;
        assert_eq!(it_trsm_cost(32.0, k, p), it_trsm_1d(32.0, k, p));
        assert_eq!(it_trsm_cost(65536.0, k, p), it_trsm_2d(65536.0, k, p));
        assert_eq!(it_trsm_cost(4096.0, k, p), it_trsm_3d(4096.0, k, p));
    }

    #[test]
    fn bandwidth_matches_matrix_multiplication_lower_bound() {
        // In the 3D regime the tuned algorithm reaches the MM bandwidth.
        let (n, k, p) = (8192.0, 2048.0, 512.0);
        let c = it_trsm_3d(n, k, p);
        assert!((c.bandwidth - crate::mm::wmm(n, k, p)).abs() / c.bandwidth < 1e-9);
    }
}
