//! Cost of the iterative inversion-based TRSM (Sections VI–VII of the paper).
//!
//! The algorithm has three phases whose costs Section VII derives separately
//! and sums:
//!
//! * **inversion** — invert the `n/n0` diagonal blocks of size `n0` on
//!   disjoint `r1 × r1 × r2` sub-grids (`r1²·r2 = p·n0/n`),
//! * **solve** — one triangular-block × right-hand-side multiplication per
//!   diagonal block,
//! * **update** — the trailing updates `B(T_{i+1}) −= L(T_{i+1}, S_i)·X(S_i)`,
//!   with partial sums accumulated locally and only the next block row
//!   reduced each iteration.

use crate::cost::{indicator, log2c, Cost};
use crate::inversion;

/// Cost of the inversion phase: `n/n0` independent inversions of `n0 × n0`
/// blocks on `r1 × r1 × r2` sub-grids, plus the (lower-order) redistribution
/// of the blocks to and from those sub-grids.
pub fn inversion_phase(_n: f64, n0: f64, r1: f64, r2: f64) -> Cost {
    let per_block = inversion::rec_tri_inv_cost(n0, r1, r2);
    // The redistribution (lines 6, 9, 16, 17 of Diagonal-Inverter) is never of
    // leading order; we include the dominant n·n0/(2p1²)-type term through the
    // all-to-all bound the paper quotes.
    let q = r1 * r1 * r2;
    let redistribution = Cost {
        latency: 2.0 * log2c(q) + 2.0 * log2c(q),
        bandwidth: n0 * n0 / q.max(1.0) * log2c(q),
        flops: 0.0,
    };
    Cost {
        latency: per_block.latency + redistribution.latency,
        bandwidth: per_block.bandwidth + redistribution.bandwidth,
        flops: per_block.flops,
    }
}

/// Cost of the solve phase (Section VII-B):
///
/// ```text
/// S = (n/n0)·log p
/// W = (n/n0)·[ n0²/p1²·1_{p2} + 4·n0·k/(p1·p2)·1_{p1} ]
/// F = (n/n0)·( n0²·k/(p1²·p2) )
/// ```
pub fn solve_phase(n: f64, k: f64, n0: f64, p1: f64, p2: f64) -> Cost {
    let p = p1 * p1 * p2;
    let blocks = n / n0;
    Cost {
        latency: blocks * log2c(p),
        bandwidth: blocks
            * (n0 * n0 / (p1 * p1) * indicator(p2) + 4.0 * n0 * k / (p1 * p2) * indicator(p1)),
        flops: blocks * (n0 * n0 * k / (p1 * p1 * p2)),
    }
}

/// Cost of the update phase (Section VII-C), evaluated as the exact sum over
/// iterations rather than the leading-order closed form:
///
/// ```text
/// S = (n/n0 − 1)·log p
/// W = Σ_{i=1}^{n/n0−1} [ 2·(n − i·n0)·n0/p1²·1_{p2} + 4·n0·k/(p1·p2)·1_{p1} ]
/// F = Σ_{i=1}^{n/n0−1} (n − i·n0)·n0·k/(p1²·p2)
/// ```
pub fn update_phase(n: f64, k: f64, n0: f64, p1: f64, p2: f64) -> Cost {
    let p = p1 * p1 * p2;
    let blocks = (n / n0).round() as usize;
    let mut bandwidth = 0.0;
    let mut flops = 0.0;
    for i in 1..blocks {
        let remaining = n - i as f64 * n0;
        bandwidth += 2.0 * remaining * n0 / (p1 * p1) * indicator(p2)
            + 4.0 * n0 * k / (p1 * p2) * indicator(p1);
        flops += remaining * n0 * k / (p1 * p1 * p2);
    }
    Cost {
        latency: (blocks.saturating_sub(1)) as f64 * log2c(p),
        bandwidth,
        flops,
    }
}

/// Total cost of `It-Inv-TRSM` for explicit parameters (Section VII-D).
pub fn it_inv_trsm_cost(n: f64, k: f64, n0: f64, p1: f64, p2: f64, r1: f64, r2: f64) -> Cost {
    inversion_phase(n, n0, r1, r2) + solve_phase(n, k, n0, p1, p2) + update_phase(n, k, n0, p1, p2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_phase_matches_formula() {
        let c = solve_phase(4096.0, 1024.0, 256.0, 4.0, 4.0);
        let blocks = 16.0;
        assert_eq!(c.latency, blocks * 6.0);
        let per_block_w = 256.0 * 256.0 / 16.0 + 4.0 * 256.0 * 1024.0 / 16.0;
        assert!((c.bandwidth - blocks * per_block_w).abs() < 1e-6);
        assert!((c.flops - blocks * 256.0 * 256.0 * 1024.0 / 64.0).abs() < 1e-6);
    }

    #[test]
    fn update_phase_sums_over_iterations() {
        let n = 1024.0;
        let n0 = 256.0;
        let c = update_phase(n, 64.0, n0, 2.0, 2.0);
        assert_eq!(c.latency, 3.0 * 3.0); // 3 iterations × log2(8)
        assert!(c.bandwidth > 0.0);
        assert!(c.flops > 0.0);
        // With a single block (n0 = n) there is no update at all.
        let none = update_phase(n, 64.0, n, 2.0, 2.0);
        assert_eq!(none, Cost::ZERO);
    }

    #[test]
    fn p1_equals_one_removes_rhs_reductions() {
        // With p1 = 1 the 1_{p1} indicator vanishes: no right-hand-side
        // reduction traffic in solve or update.
        let c = solve_phase(1024.0, 4096.0, 1024.0, 1.0, 16.0);
        assert_eq!(c.bandwidth, 1024.0 * 1024.0);
        let u = update_phase(1024.0, 4096.0, 1024.0, 1.0, 16.0);
        assert_eq!(u.bandwidth, 0.0);
    }

    #[test]
    fn p2_equals_one_removes_l_broadcasts() {
        // With p2 = 1 the 1_{p2} indicator vanishes: no L broadcast traffic.
        let c = solve_phase(1024.0, 64.0, 128.0, 8.0, 1.0);
        assert_eq!(c.bandwidth, (1024.0 / 128.0) * 4.0 * 128.0 * 64.0 / 8.0);
    }

    #[test]
    fn total_flops_close_to_optimal() {
        // F_total ≈ n²k/p + n·n0²/p (paper Section VII-D).
        let (n, k, n0, p1, p2) = (4096.0, 1024.0, 512.0, 4.0, 4.0);
        let p = p1 * p1 * p2;
        let c = it_inv_trsm_cost(n, k, n0, p1, p2, 4.0, 4.0);
        let expect = n * n * k / p;
        assert!(c.flops > 0.5 * expect);
        assert!(c.flops < 2.5 * expect);
    }

    #[test]
    fn inversion_phase_latency_is_polylog() {
        let c = inversion_phase(65536.0, 1024.0, 4.0, 16.0);
        // log²(256) = 64 plus lower-order redistribution latency.
        assert!(c.latency >= 64.0);
        assert!(c.latency < 120.0);
    }

    #[test]
    fn larger_n0_means_fewer_blocks_and_less_latency() {
        let (n, k, p1, p2) = (8192.0, 2048.0, 4.0, 4.0);
        let coarse = solve_phase(n, k, 1024.0, p1, p2) + update_phase(n, k, 1024.0, p1, p2);
        let fine = solve_phase(n, k, 128.0, p1, p2) + update_phase(n, k, 128.0, p1, p2);
        assert!(coarse.latency < fine.latency);
    }
}
