//! Aggregation of a raw [`TraceDump`] into a structured
//! [`TraceReport`]: per-span timing statistics, counter totals, and the
//! solver-specific convenience views (barrier wait, spin retries, merged
//! super-level row counts, sync-free slab reductions).

use crate::{EventKind, TraceDump};
use std::collections::BTreeMap;

/// Timing statistics for one span name within one category, aggregated
/// over every occurrence on every thread.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Category the span was recorded under (e.g. `"dense"`).
    pub cat: String,
    /// Span name (e.g. `"pack_b"`).
    pub name: String,
    /// Number of completed (begin/end balanced) occurrences.
    pub count: u64,
    /// Total nanoseconds across all occurrences (threads sum, so this can
    /// exceed wall time inside parallel regions).
    pub total_ns: u64,
    /// Longest single occurrence in nanoseconds.
    pub max_ns: u64,
}

/// Sum/count/max statistics for one counter name within one category.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterStat {
    /// Category the counter was recorded under.
    pub cat: String,
    /// Counter name (e.g. `"barrier_wait_ns"`).
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Sum of the first argument over all samples.
    pub total: u64,
    /// Maximum first-argument value over all samples.
    pub max: u64,
}

/// Aggregated view of one trace window, attached to `SolveReport` by the
/// staged executors when tracing is enabled.
///
/// The convenience fields at the end pull out the solver-wide counter
/// conventions so callers don't need to know event names:
/// `barrier_wait_ns` / `spin_iters` from the sparse executors,
/// `super_level_rows` from the merged executor (satellite: previously
/// computed but dropped), `slab_reductions` from the sync-free CSC
/// executor, and the serve crate's cache/batching conventions
/// (`plan_cache_hit` / `plan_cache_miss` / `plan_cache_evict` /
/// `batch_width`), so Chrome traces of a running solve service expose
/// cache and fusion behavior per request window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceReport {
    /// Per-(category, name) span statistics, sorted by category then name.
    pub spans: Vec<SpanStat>,
    /// Per-(category, name) counter statistics, sorted by category then
    /// name.
    pub counters: Vec<CounterStat>,
    /// Total nanoseconds workers spent waiting at sense-reversing
    /// barriers (sum of `"barrier_wait_ns"` counters).
    pub barrier_wait_ns: u64,
    /// Total spin-loop iterations in the sync-free / merged executors'
    /// `wait_ready` (sum of `"spin_iters"` counters).
    pub spin_iters: u64,
    /// Rows per merged super-level, indexed by super-level (from
    /// `"super_rows"` counters: arg = rows, arg2 = super-level index).
    pub super_level_rows: Vec<u64>,
    /// Per-worker count of partial-sum slab segments reduced by the
    /// sync-free executor, indexed by worker (from `"slab_reductions"`
    /// counters: arg = reductions, arg2 = worker).
    pub slab_reductions: Vec<u64>,
    /// Plan-cache hits in the window (sum of the serve crate's
    /// `"plan_cache_hit"` counters).
    pub plan_cache_hits: u64,
    /// Plan-cache misses in the window (`"plan_cache_miss"` counters —
    /// each one paid a fresh `planner` lowering).
    pub plan_cache_misses: u64,
    /// Plan-cache LRU evictions in the window (`"plan_cache_evict"`
    /// counters).
    pub plan_cache_evictions: u64,
    /// Width of every fused batch executed in the window, in submission
    /// order per thread (from `"batch_width"` counters: arg = requests
    /// fused into one execute).
    pub batch_widths: Vec<u64>,
    /// Events dropped during the window (buffer full or collector
    /// contention); non-zero means the timeline is incomplete.
    pub dropped: u64,
}

impl TraceReport {
    /// Aggregate a raw dump.  Begin/end events are paired per thread with
    /// a LIFO stack (spans nest); an unbalanced `Begin` (its `End` was
    /// dropped or lies outside the window) is ignored.
    pub fn from_dump(dump: &TraceDump) -> Self {
        let mut spans: BTreeMap<(&str, &str), SpanStat> = BTreeMap::new();
        let mut counters: BTreeMap<(&str, &str), CounterStat> = BTreeMap::new();
        let mut barrier_wait_ns = 0u64;
        let mut spin_iters = 0u64;
        let mut super_level_rows: Vec<u64> = Vec::new();
        let mut slab_reductions: Vec<u64> = Vec::new();
        let mut plan_cache_hits = 0u64;
        let mut plan_cache_misses = 0u64;
        let mut plan_cache_evictions = 0u64;
        let mut batch_widths: Vec<u64> = Vec::new();

        for thread in &dump.threads {
            let mut stack: Vec<(&str, &str, u64)> = Vec::new();
            for ev in &thread.events {
                match ev.kind {
                    EventKind::Begin => stack.push((ev.cat, ev.name, ev.ts_ns)),
                    EventKind::End => {
                        // Pop to the matching begin; drops any begins whose
                        // ends were lost (keeps nesting consistent).
                        while let Some((cat, name, t0)) = stack.pop() {
                            if cat == ev.cat && name == ev.name {
                                let dur = ev.ts_ns.saturating_sub(t0);
                                let s = spans.entry((cat, name)).or_insert_with(|| SpanStat {
                                    cat: cat.to_string(),
                                    name: name.to_string(),
                                    count: 0,
                                    total_ns: 0,
                                    max_ns: 0,
                                });
                                s.count += 1;
                                s.total_ns += dur;
                                s.max_ns = s.max_ns.max(dur);
                                break;
                            }
                        }
                    }
                    EventKind::Counter | EventKind::Instant => {
                        let c = counters
                            .entry((ev.cat, ev.name))
                            .or_insert_with(|| CounterStat {
                                cat: ev.cat.to_string(),
                                name: ev.name.to_string(),
                                count: 0,
                                total: 0,
                                max: 0,
                            });
                        c.count += 1;
                        c.total += ev.arg;
                        c.max = c.max.max(ev.arg);
                        match ev.name {
                            "barrier_wait_ns" => barrier_wait_ns += ev.arg,
                            "spin_iters" => spin_iters += ev.arg,
                            "super_rows" => {
                                let idx = ev.arg2 as usize;
                                if super_level_rows.len() <= idx {
                                    super_level_rows.resize(idx + 1, 0);
                                }
                                super_level_rows[idx] += ev.arg;
                            }
                            "slab_reductions" => {
                                let idx = ev.arg2 as usize;
                                if slab_reductions.len() <= idx {
                                    slab_reductions.resize(idx + 1, 0);
                                }
                                slab_reductions[idx] += ev.arg;
                            }
                            "plan_cache_hit" => plan_cache_hits += ev.arg,
                            "plan_cache_miss" => plan_cache_misses += ev.arg,
                            "plan_cache_evict" => plan_cache_evictions += ev.arg,
                            "batch_width" => batch_widths.push(ev.arg),
                            _ => {}
                        }
                    }
                }
            }
        }

        TraceReport {
            spans: spans.into_values().collect(),
            counters: counters.into_values().collect(),
            barrier_wait_ns,
            spin_iters,
            super_level_rows,
            slab_reductions,
            plan_cache_hits,
            plan_cache_misses,
            plan_cache_evictions,
            batch_widths,
            dropped: dump.dropped,
        }
    }

    /// Look up one span's statistics by category and name.
    pub fn span(&self, cat: &str, name: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.cat == cat && s.name == name)
    }

    /// Look up one counter's statistics by category and name.
    pub fn counter(&self, cat: &str, name: &str) -> Option<&CounterStat> {
        self.counters
            .iter()
            .find(|c| c.cat == cat && c.name == name)
    }

    /// Total measured nanoseconds for a span name summed across
    /// categories; `0` if never recorded.
    pub fn span_total_ns(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.total_ns)
            .sum()
    }

    /// Render a compact human-readable table of the top spans and
    /// counters, for logging and examples.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str("spans (cat/name: count, total ms, max ms):\n");
        for s in &self.spans {
            out.push_str(&format!(
                "  {}/{}: {} x, {:.3} ms total, {:.3} ms max\n",
                s.cat,
                s.name,
                s.count,
                s.total_ns as f64 / 1e6,
                s.max_ns as f64 / 1e6
            ));
        }
        out.push_str("counters (cat/name: count, total, max):\n");
        for c in &self.counters {
            out.push_str(&format!(
                "  {}/{}: {} x, {} total, {} max\n",
                c.cat, c.name, c.count, c.total, c.max
            ));
        }
        if self.dropped > 0 {
            out.push_str(&format!("dropped events: {}\n", self.dropped));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, Lane, ThreadEvents};

    fn ev(kind: EventKind, name: &'static str, ts: u64, arg: u64, arg2: u64) -> Event {
        Event {
            kind,
            cat: "t",
            name,
            ts_ns: ts,
            arg_name: "a",
            arg,
            arg2_name: "b",
            arg2,
        }
    }

    #[test]
    fn aggregates_nested_spans_and_counters() {
        let dump = TraceDump {
            threads: vec![ThreadEvents {
                tid: 1,
                lane: Lane::Wall,
                events: vec![
                    ev(EventKind::Begin, "outer", 0, 0, 0),
                    ev(EventKind::Begin, "inner", 10, 0, 0),
                    ev(EventKind::End, "inner", 40, 0, 0),
                    ev(EventKind::Counter, "barrier_wait_ns", 50, 100, 0),
                    ev(EventKind::Counter, "spin_iters", 55, 7, 0),
                    ev(EventKind::Counter, "super_rows", 60, 42, 1),
                    ev(EventKind::Counter, "slab_reductions", 65, 3, 2),
                    ev(EventKind::Counter, "plan_cache_hit", 70, 1, 0),
                    ev(EventKind::Counter, "plan_cache_hit", 72, 1, 0),
                    ev(EventKind::Counter, "plan_cache_miss", 74, 1, 0),
                    ev(EventKind::Counter, "plan_cache_evict", 76, 1, 0),
                    ev(EventKind::Counter, "batch_width", 80, 4, 0),
                    ev(EventKind::Counter, "batch_width", 85, 7, 0),
                    ev(EventKind::End, "outer", 100, 0, 0),
                ],
            }],
            dropped: 0,
        };
        let r = TraceReport::from_dump(&dump);
        assert_eq!(r.span("t", "outer").unwrap().total_ns, 100);
        assert_eq!(r.span("t", "inner").unwrap().total_ns, 30);
        assert_eq!(r.barrier_wait_ns, 100);
        assert_eq!(r.spin_iters, 7);
        assert_eq!(r.super_level_rows, vec![0, 42]);
        assert_eq!(r.slab_reductions, vec![0, 0, 3]);
        assert_eq!(r.plan_cache_hits, 2);
        assert_eq!(r.plan_cache_misses, 1);
        assert_eq!(r.plan_cache_evictions, 1);
        assert_eq!(r.batch_widths, vec![4, 7]);
        assert_eq!(r.counter("t", "spin_iters").unwrap().max, 7);
        assert!(r.summary().contains("outer"));
    }

    #[test]
    fn unbalanced_begin_is_ignored() {
        let dump = TraceDump {
            threads: vec![ThreadEvents {
                tid: 1,
                lane: Lane::Wall,
                events: vec![
                    ev(EventKind::Begin, "lost", 0, 0, 0),
                    ev(EventKind::Begin, "ok", 5, 0, 0),
                    ev(EventKind::End, "ok", 9, 0, 0),
                ],
            }],
            dropped: 1,
        };
        let r = TraceReport::from_dump(&dump);
        assert!(r.span("t", "lost").is_none());
        assert_eq!(r.span("t", "ok").unwrap().count, 1);
        assert_eq!(r.dropped, 1);
    }
}
