//! Hand-rolled Chrome trace-event JSON exporter and validator (no
//! dependencies — the container has no registry access).
//!
//! [`to_chrome_json`] renders a [`TraceDump`] in the
//! [trace-event format](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
//! understood by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev):
//! an object with a `traceEvents` array of `B`/`E`/`i`/`C` phase records.
//! Wall-lane threads render under `pid` [`WALL_PID`]; each simulated
//! rank's virtual-clock lane renders under `pid` [`SIM_PID`] with
//! `tid` = rank, so the two time bases never share a track.
//!
//! [`validate`] checks the invariants CI's `trace-audit` job relies on:
//! parseable shape, balanced begin/end per track, and per-track monotone
//! timestamps.

use crate::{Event, EventKind, Lane, TraceDump};
use std::fmt::Write as _;

/// Chrome `pid` under which wall-clock lanes are grouped.
pub const WALL_PID: u64 = 1;
/// Chrome `pid` under which simulated virtual-clock lanes are grouped
/// (`tid` = simulated world rank).
pub const SIM_PID: u64 = 2;

fn phase(kind: EventKind) -> char {
    match kind {
        EventKind::Begin => 'B',
        EventKind::End => 'E',
        EventKind::Instant => 'i',
        EventKind::Counter => 'C',
    }
}

fn write_event(out: &mut String, pid: u64, tid: u64, ev: &Event) {
    // ts is in microseconds; keep nanosecond precision as fractional µs.
    let ts_us = ev.ts_ns as f64 / 1000.0;
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{:.3},\"pid\":{},\"tid\":{}",
        ev.name,
        ev.cat,
        phase(ev.kind),
        ts_us,
        pid,
        tid
    );
    if ev.kind == EventKind::Instant {
        out.push_str(",\"s\":\"t\"");
    }
    if !ev.arg_name.is_empty() || !ev.arg2_name.is_empty() {
        out.push_str(",\"args\":{");
        let mut first = true;
        if !ev.arg_name.is_empty() {
            let _ = write!(out, "\"{}\":{}", ev.arg_name, ev.arg);
            first = false;
        }
        if !ev.arg2_name.is_empty() {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", ev.arg2_name, ev.arg2);
        }
        out.push('}');
    }
    out.push('}');
}

/// Render a dump as a Chrome trace-event JSON string.  Event and argument
/// names in this workspace are static identifiers (no quotes/backslashes),
/// so no string escaping is required.
pub fn to_chrome_json(dump: &TraceDump) -> String {
    let mut out = String::with_capacity(128 * dump.len() + 64);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for thread in &dump.threads {
        let (pid, tid) = match thread.lane {
            Lane::Wall => (WALL_PID, thread.tid),
            Lane::Sim { rank } => (SIM_PID, rank as u64),
        };
        for ev in &thread.events {
            if !first {
                out.push(',');
            }
            first = false;
            write_event(&mut out, pid, tid, ev);
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// One validation failure found by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Human-readable description of the failed invariant.
    pub message: String,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// A parsed-back trace record used during validation.
struct RawEvent {
    ph: char,
    name: String,
    ts: f64,
    pid: u64,
    tid: u64,
}

/// Extract a string field value (`"key":"value"`) from one JSON object.
fn field_str(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = obj.find(&pat)? + pat.len();
    let end = obj[start..].find('"')? + start;
    Some(obj[start..end].to_string())
}

/// Extract a numeric field value (`"key":123.4`) from one JSON object.
fn field_num(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = obj.find(&pat)? + pat.len();
    let rest = &obj[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Split the `traceEvents` array body into top-level `{...}` objects.
/// The exporter never nests objects more than one level (`args`), and no
/// string values contain braces, so brace counting is sufficient.
fn split_objects(body: &str) -> Vec<&str> {
    let mut objs = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, b) in body.bytes().enumerate() {
        match b {
            b'{' => {
                if depth == 0 {
                    start = i;
                }
                depth += 1;
            }
            b'}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    objs.push(&body[start..=i]);
                }
            }
            _ => {}
        }
    }
    objs
}

/// Validate a Chrome-trace JSON string: schema sanity (the `traceEvents`
/// wrapper, required fields, known phases), balanced `B`/`E` per
/// `(pid, tid)` track, and monotone non-decreasing timestamps per track.
/// Returns every violation found (empty = valid).
pub fn validate(json: &str) -> Vec<ValidationError> {
    let mut errors = Vec::new();
    let err = |msg: String| ValidationError { message: msg };

    let Some(arr_start) = json.find("\"traceEvents\":[") else {
        return vec![err("missing \"traceEvents\" array".into())];
    };
    let body_start = arr_start + "\"traceEvents\":[".len();
    let Some(body_len) = json[body_start..].rfind(']') else {
        return vec![err("unterminated \"traceEvents\" array".into())];
    };
    let body = &json[body_start..body_start + body_len];

    let mut events = Vec::new();
    for (i, obj) in split_objects(body).into_iter().enumerate() {
        let ph = match field_str(obj, "ph") {
            Some(p) if p.len() == 1 => p.chars().next().unwrap(),
            _ => {
                errors.push(err(format!("event {i}: missing/invalid \"ph\"")));
                continue;
            }
        };
        if !matches!(ph, 'B' | 'E' | 'i' | 'C') {
            errors.push(err(format!("event {i}: unknown phase {ph:?}")));
            continue;
        }
        let name = field_str(obj, "name").unwrap_or_default();
        if name.is_empty() {
            errors.push(err(format!("event {i}: missing \"name\"")));
        }
        if field_str(obj, "cat").is_none() {
            errors.push(err(format!("event {i}: missing \"cat\"")));
        }
        let (Some(ts), Some(pid), Some(tid)) = (
            field_num(obj, "ts"),
            field_num(obj, "pid"),
            field_num(obj, "tid"),
        ) else {
            errors.push(err(format!("event {i}: missing ts/pid/tid")));
            continue;
        };
        events.push(RawEvent {
            ph,
            name,
            ts,
            pid: pid as u64,
            tid: tid as u64,
        });
    }
    if events.is_empty() {
        errors.push(err("trace contains no events".into()));
        return errors;
    }

    // Per-track checks: monotone timestamps, balanced and well-nested B/E.
    let mut tracks: std::collections::BTreeMap<(u64, u64), (f64, Vec<String>)> =
        std::collections::BTreeMap::new();
    for ev in &events {
        let track = tracks
            .entry((ev.pid, ev.tid))
            .or_insert((f64::MIN, Vec::new()));
        if ev.ts < track.0 {
            errors.push(err(format!(
                "track ({},{}): timestamp regression at {:?} ({} < {})",
                ev.pid, ev.tid, ev.name, ev.ts, track.0
            )));
        }
        track.0 = track.0.max(ev.ts);
        match ev.ph {
            'B' => track.1.push(ev.name.clone()),
            'E' => match track.1.pop() {
                Some(open) if open == ev.name => {}
                Some(open) => errors.push(err(format!(
                    "track ({},{}): end {:?} does not match open span {:?}",
                    ev.pid, ev.tid, ev.name, open
                ))),
                None => errors.push(err(format!(
                    "track ({},{}): end {:?} without begin",
                    ev.pid, ev.tid, ev.name
                ))),
            },
            _ => {}
        }
    }
    for ((pid, tid), (_, open)) in &tracks {
        if !open.is_empty() {
            errors.push(err(format!(
                "track ({pid},{tid}): {} unclosed span(s), first {:?}",
                open.len(),
                open[0]
            )));
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ThreadEvents, TraceDump};

    fn ev(kind: EventKind, name: &'static str, ts: u64) -> Event {
        Event {
            kind,
            cat: "t",
            name,
            ts_ns: ts,
            arg_name: if kind == EventKind::Counter { "v" } else { "" },
            arg: 5,
            arg2_name: "",
            arg2: 0,
        }
    }

    fn dump() -> TraceDump {
        TraceDump {
            threads: vec![
                ThreadEvents {
                    tid: 1,
                    lane: Lane::Wall,
                    events: vec![
                        ev(EventKind::Begin, "solve", 0),
                        ev(EventKind::Counter, "rows", 500),
                        ev(EventKind::End, "solve", 1_000),
                    ],
                },
                ThreadEvents {
                    tid: 9,
                    lane: Lane::Sim { rank: 3 },
                    events: vec![ev(EventKind::Instant, "send", 2_000)],
                },
            ],
            dropped: 0,
        }
    }

    #[test]
    fn export_is_valid_and_lane_separated() {
        let json = to_chrome_json(&dump());
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"pid\":2,\"tid\":3"));
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
        let errors = validate(&json);
        assert!(errors.is_empty(), "unexpected errors: {errors:?}");
    }

    #[test]
    fn validator_catches_unbalanced_spans() {
        let mut d = dump();
        d.threads[0].events.pop(); // lose the End
        let errors = validate(&to_chrome_json(&d));
        assert!(errors.iter().any(|e| e.message.contains("unclosed")));
    }

    #[test]
    fn validator_catches_timestamp_regression() {
        let mut d = dump();
        d.threads[0].events[2].ts_ns = 100; // End before Counter's ts
        let errors = validate(&to_chrome_json(&d));
        assert!(errors.iter().any(|e| e.message.contains("regression")));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(!validate("{}").is_empty());
        assert!(!validate("{\"traceEvents\":[]}").is_empty());
    }
}
