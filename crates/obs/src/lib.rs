//! # `obs` — solver-wide tracing & metrics
//!
//! A low-overhead observability substrate for the whole workspace: every
//! layer (planner, dense GEMM, sparse executors, the simulated machine)
//! records **spans** and **counters** into per-thread buffers, and the
//! results are exported three ways —
//!
//! 1. an aggregated [`TraceReport`] (attached to `catrsm::SolveReport` by
//!    the staged executors),
//! 2. a Chrome trace-event JSON file ([`chrome`]) loadable in
//!    `chrome://tracing` or [Perfetto](https://ui.perfetto.dev),
//! 3. raw event access ([`collect_all`] / [`collect_since`]) for custom
//!    analysis such as `costmodel`'s predicted-vs-measured drift tables.
//!
//! ## Design: one atomic gate, per-thread buffers
//!
//! Tracing is **disabled by default** and enabled at runtime with
//! [`set_enabled`].  Every instrumentation site in the workspace is guarded
//! by [`enabled`] — a single relaxed atomic load — so the disabled path
//! costs one predictable branch and touches no other shared state: solver
//! results are **bitwise identical** with the instrumentation compiled in,
//! and the two-tier determinism guarantee of the sparse executors
//! (barriered policies bitwise at every worker count; sync-free bitwise per
//! fixed worker count) is unchanged, because tracing never reads or writes
//! floating-point data.
//!
//! When enabled, each thread records into its own pre-allocated buffer
//! ([`BUF_CAPACITY`] events, registered once per thread): pushes never
//! contend with other workers and **never block** — the buffer's lock is
//! uncontended in steady state (only a concurrent [`collect_since`] /
//! [`clear`] can hold it, in which case the event is dropped and counted
//! rather than waited for), and a full buffer likewise drops and counts
//! ([`dropped_events`]) instead of allocating.  Span `End` events get a
//! small slack reserve past the cap so a recorded `Begin` is always
//! balanced by its `End`.
//!
//! ## Timestamps: wall lane and virtual lane
//!
//! Wall-clock events are stamped in nanoseconds since a process-wide epoch
//! ([`now_ns`]).  The simulated machine (`simnet`) instead stamps its
//! send/recv/retry events with its **virtual α–β–γ clock**
//! ([`sim_instant`]); those land in a separate per-rank lane so the two
//! time bases never interleave in one timeline (the Chrome exporter puts
//! them under a different pid).  Within each lane timestamps are monotone
//! non-decreasing, which [`chrome::validate`] checks.
//!
//! ## Quick example
//!
//! ```
//! obs::set_enabled(true);
//! {
//!     let _span = obs::span("demo", "work");
//!     obs::counter("demo", "items", "count", 3, "worker", 0);
//! }
//! obs::set_enabled(false);
//! let dump = obs::collect_all();
//! let report = obs::TraceReport::from_dump(&dump);
//! assert!(report.spans.iter().any(|s| s.name == "work"));
//! let json = obs::chrome::to_chrome_json(&dump);
//! assert!(json.starts_with("{\"traceEvents\":["));
//! obs::clear();
//! ```

pub mod chrome;
pub mod report;

pub use report::{CounterStat, SpanStat, TraceReport};

use std::cell::OnceCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Events each thread-lane buffer can hold before further pushes are
/// dropped (and counted in [`dropped_events`]).  Pre-allocated on the
/// thread's first recorded event, so steady-state recording is
/// allocation-free.
pub const BUF_CAPACITY: usize = 1 << 16;

/// Extra slots past [`BUF_CAPACITY`] reserved for span `End` events, so a
/// `Begin` that made it into the buffer is always balanced by its `End`
/// even if the buffer filled in between.
const END_SLACK: usize = 1024;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is tracing currently enabled?
///
/// This is the gate every instrumentation site checks first: one relaxed
/// atomic load.  When it returns `false` nothing else happens — no clock
/// read, no buffer touch.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn tracing on or off at runtime.
///
/// Enabling mid-run is safe (threads lazily register buffers on their
/// first event); disabling quiesces recording but keeps buffered events
/// for collection.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Enable tracing when the `CATRSM_TRACE` environment variable is set to a
/// non-empty value other than `0`.  Returns the resulting enabled state.
pub fn init_from_env() -> bool {
    if let Ok(v) = std::env::var("CATRSM_TRACE") {
        if !v.is_empty() && v != "0" {
            set_enabled(true);
        }
    }
    enabled()
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide trace epoch (the first call wins the
/// epoch).  All wall-lane events use this time base.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Span opening (Chrome phase `B`); balanced by an [`EventKind::End`].
    Begin,
    /// Span closing (Chrome phase `E`).
    End,
    /// A point-in-time marker (Chrome phase `i`), e.g. one simulated send.
    Instant,
    /// A metric sample (Chrome phase `C`), e.g. per-worker barrier-wait ns.
    Counter,
}

/// One recorded trace event.  All strings are `&'static str` so recording
/// never allocates; the two optional `(name, value)` argument pairs cover
/// every counter the workspace emits (an empty name means "no argument").
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Event kind (span begin/end, instant, counter).
    pub kind: EventKind,
    /// Category: the emitting layer (`"planner"`, `"dense"`, `"sparse"`,
    /// `"simnet"`, `"pgrid"`, `"solve"`).
    pub cat: &'static str,
    /// Event name within the category.
    pub name: &'static str,
    /// Timestamp in nanoseconds: wall time since [`now_ns`]'s epoch for
    /// wall-lane events, virtual α–β–γ clock for sim-lane events.
    pub ts_ns: u64,
    /// Name of the first argument (`""` = absent).
    pub arg_name: &'static str,
    /// First argument value.
    pub arg: u64,
    /// Name of the second argument (`""` = absent).
    pub arg2_name: &'static str,
    /// Second argument value.
    pub arg2: u64,
}

/// Which time base a thread buffer records in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Wall-clock nanoseconds since the process epoch.
    Wall,
    /// The simulated machine's virtual clock, for the given world rank.
    Sim {
        /// World rank of the simulated processor the events belong to.
        rank: usize,
    },
}

struct ThreadBuf {
    lane: Lane,
    tid: u64,
    events: Mutex<Vec<Event>>,
    dropped: AtomicU64,
}

impl ThreadBuf {
    fn push(&self, ev: Event) {
        let cap = if ev.kind == EventKind::End {
            BUF_CAPACITY + END_SLACK
        } else {
            BUF_CAPACITY
        };
        match self.events.try_lock() {
            Ok(mut buf) => {
                if buf.len() < cap {
                    buf.push(ev);
                } else {
                    drop(buf);
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            // A collector holds the lock: never block a worker — drop.
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn new_buf(lane: Lane) -> Arc<ThreadBuf> {
    let buf = Arc::new(ThreadBuf {
        lane,
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        events: Mutex::new(Vec::with_capacity(BUF_CAPACITY + END_SLACK)),
        dropped: AtomicU64::new(0),
    });
    registry()
        .lock()
        .expect("obs registry poisoned")
        .push(buf.clone());
    buf
}

thread_local! {
    static WALL_BUF: OnceCell<Arc<ThreadBuf>> = const { OnceCell::new() };
    static SIM_BUF: OnceCell<Arc<ThreadBuf>> = const { OnceCell::new() };
}

fn push_wall(ev: Event) {
    WALL_BUF.with(|cell| cell.get_or_init(|| new_buf(Lane::Wall)).push(ev));
}

fn push_sim(rank: usize, ev: Event) {
    SIM_BUF.with(|cell| cell.get_or_init(|| new_buf(Lane::Sim { rank })).push(ev));
}

// ---------------------------------------------------------------------------
// Recording API
// ---------------------------------------------------------------------------

/// RAII span: records `Begin` on creation (when tracing is enabled) and
/// the matching `End` when dropped.  Create and drop on the same thread.
#[must_use = "a span measures until it is dropped"]
pub struct SpanGuard {
    cat: &'static str,
    name: &'static str,
    active: bool,
}

impl SpanGuard {
    /// Whether this guard recorded a `Begin` (tracing was enabled).
    pub fn is_active(&self) -> bool {
        self.active
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            push_wall(Event {
                kind: EventKind::End,
                cat: self.cat,
                name: self.name,
                ts_ns: now_ns(),
                arg_name: "",
                arg: 0,
                arg2_name: "",
                arg2: 0,
            });
        }
    }
}

/// Open a wall-lane span.  A no-op returning an inactive guard when
/// tracing is disabled (one atomic load).
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    span_with(cat, name, "", 0)
}

/// [`span`] with one argument recorded on the `Begin` event (e.g. the
/// worker index or problem size).
#[inline]
pub fn span_with(
    cat: &'static str,
    name: &'static str,
    arg_name: &'static str,
    arg: u64,
) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            cat,
            name,
            active: false,
        };
    }
    push_wall(Event {
        kind: EventKind::Begin,
        cat,
        name,
        ts_ns: now_ns(),
        arg_name,
        arg,
        arg2_name: "",
        arg2: 0,
    });
    SpanGuard {
        cat,
        name,
        active: true,
    }
}

/// Record a wall-lane instant event.  No-op when tracing is disabled.
#[inline]
pub fn instant(cat: &'static str, name: &'static str, arg_name: &'static str, arg: u64) {
    if !enabled() {
        return;
    }
    push_wall(Event {
        kind: EventKind::Instant,
        cat,
        name,
        ts_ns: now_ns(),
        arg_name,
        arg,
        arg2_name: "",
        arg2: 0,
    });
}

/// Record a wall-lane counter sample with up to two `(name, value)` pairs
/// (pass `""` to omit the second).  No-op when tracing is disabled.
#[inline]
pub fn counter(
    cat: &'static str,
    name: &'static str,
    arg_name: &'static str,
    arg: u64,
    arg2_name: &'static str,
    arg2: u64,
) {
    if !enabled() {
        return;
    }
    push_wall(Event {
        kind: EventKind::Counter,
        cat,
        name,
        ts_ns: now_ns(),
        arg_name,
        arg,
        arg2_name,
        arg2,
    });
}

/// Record a sim-lane instant event stamped with the **virtual clock** (in
/// nanoseconds) of the given simulated rank.  No-op when tracing is
/// disabled.  Virtual clocks only move forward, so each rank's lane stays
/// monotone.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn sim_instant(
    rank: usize,
    cat: &'static str,
    name: &'static str,
    t_ns: u64,
    arg_name: &'static str,
    arg: u64,
    arg2_name: &'static str,
    arg2: u64,
) {
    if !enabled() {
        return;
    }
    push_sim(
        rank,
        Event {
            kind: EventKind::Instant,
            cat,
            name,
            ts_ns: t_ns,
            arg_name,
            arg,
            arg2_name,
            arg2,
        },
    );
}

// ---------------------------------------------------------------------------
// Collection
// ---------------------------------------------------------------------------

/// One thread-lane's events, as returned by [`collect_all`] /
/// [`collect_since`].
#[derive(Debug, Clone)]
pub struct ThreadEvents {
    /// Stable per-buffer id (one per thread per lane, in registration
    /// order).
    pub tid: u64,
    /// The buffer's time base.
    pub lane: Lane,
    /// Events in recording order (timestamps are monotone within a lane).
    pub events: Vec<Event>,
}

/// A snapshot of every thread's buffered events.
#[derive(Debug, Clone, Default)]
pub struct TraceDump {
    /// Per-thread event lists.
    pub threads: Vec<ThreadEvents>,
    /// Events dropped so far (buffer full or collector contention).
    pub dropped: u64,
}

impl TraceDump {
    /// Total number of events across all threads.
    pub fn len(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// Whether the dump holds no events at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A position watermark used to collect only the events recorded after a
/// point in time; see [`mark`] and [`collect_since`].
#[derive(Debug, Clone)]
pub struct Mark(Vec<(u64, usize)>);

/// Snapshot the current per-buffer lengths.  [`collect_since`] with this
/// mark returns only events recorded afterwards (including events from
/// threads that registered after the mark).
pub fn mark() -> Mark {
    let reg = registry().lock().expect("obs registry poisoned");
    Mark(
        reg.iter()
            .map(|b| {
                let len = b.events.lock().map(|e| e.len()).unwrap_or(0);
                (b.tid, len)
            })
            .collect(),
    )
}

fn collect(from: Option<&Mark>) -> TraceDump {
    let reg = registry().lock().expect("obs registry poisoned");
    let mut dropped = 0;
    let mut threads = Vec::new();
    for buf in reg.iter() {
        dropped += buf.dropped.load(Ordering::Relaxed);
        let start = from
            .and_then(|m| m.0.iter().find(|(tid, _)| *tid == buf.tid))
            .map(|(_, len)| *len)
            .unwrap_or(0);
        let events = match buf.events.lock() {
            Ok(e) => e.get(start..).unwrap_or(&[]).to_vec(),
            Err(_) => Vec::new(),
        };
        if !events.is_empty() {
            threads.push(ThreadEvents {
                tid: buf.tid,
                lane: buf.lane,
                events,
            });
        }
    }
    TraceDump { threads, dropped }
}

/// Copy out every buffered event (non-destructive; [`clear`] resets).
pub fn collect_all() -> TraceDump {
    collect(None)
}

/// Copy out the events recorded since `mark` (non-destructive).  This is
/// what the staged executors use to attach a per-solve `TraceReport`
/// without consuming the longer timeline a caller may be accumulating for
/// a Chrome trace export.
pub fn collect_since(mark: &Mark) -> TraceDump {
    collect(Some(mark))
}

/// Empty every thread buffer and reset the dropped-event count.  Buffers
/// keep their allocation.  Call this between independent traced runs; any
/// worker recording concurrently drops (and counts) its events instead of
/// blocking.
pub fn clear() {
    let reg = registry().lock().expect("obs registry poisoned");
    for buf in reg.iter() {
        if let Ok(mut e) = buf.events.lock() {
            e.clear();
        }
        buf.dropped.store(0, Ordering::Relaxed);
    }
}

/// Events dropped so far across all buffers (buffer full, or a push that
/// raced a collector).  A non-zero value means timelines are incomplete —
/// aggregate counters emitted at region end are far coarser than per-level
/// spans and survive much longer workloads.
pub fn dropped_events() -> u64 {
    let reg = registry().lock().expect("obs registry poisoned");
    reg.iter().map(|b| b.dropped.load(Ordering::Relaxed)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that mutate the global enabled flag / registry.
    fn lock_global() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        GUARD
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = lock_global();
        clear();
        set_enabled(false);
        {
            let s = span("test", "nothing");
            assert!(!s.is_active());
        }
        instant("test", "nothing", "", 0);
        counter("test", "nothing", "v", 1, "", 0);
        sim_instant(0, "test", "nothing", 5, "", 0, "", 0);
        assert!(collect_all().is_empty());
    }

    #[test]
    fn spans_and_counters_round_trip() {
        let _g = lock_global();
        clear();
        set_enabled(true);
        {
            let _outer = span("test", "outer");
            {
                let _inner = span_with("test", "inner", "w", 3);
            }
            counter("test", "items", "count", 7, "worker", 1);
            instant("test", "tick", "", 0);
        }
        sim_instant(2, "test", "send", 1_000, "words", 64, "dst", 1);
        set_enabled(false);
        let dump = collect_all();
        assert_eq!(dump.len(), 7); // 2 spans x B/E + counter + instant + sim
        let wall: Vec<_> = dump
            .threads
            .iter()
            .filter(|t| t.lane == Lane::Wall)
            .collect();
        assert_eq!(wall.len(), 1);
        // Timestamps monotone within the lane.
        let ts: Vec<u64> = wall[0].events.iter().map(|e| e.ts_ns).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        let sim: Vec<_> = dump
            .threads
            .iter()
            .filter(|t| t.lane == Lane::Sim { rank: 2 })
            .collect();
        assert_eq!(sim.len(), 1);
        assert_eq!(sim[0].events[0].ts_ns, 1_000);
        clear();
        assert!(collect_all().is_empty());
    }

    #[test]
    fn mark_scopes_collection() {
        let _g = lock_global();
        clear();
        set_enabled(true);
        counter("test", "before", "v", 1, "", 0);
        let m = mark();
        counter("test", "after", "v", 2, "", 0);
        set_enabled(false);
        let since = collect_since(&m);
        assert_eq!(since.len(), 1);
        assert_eq!(since.threads[0].events[0].name, "after");
        let all = collect_all();
        assert_eq!(all.len(), 2);
        clear();
    }

    #[test]
    fn threads_get_distinct_buffers() {
        let _g = lock_global();
        clear();
        set_enabled(true);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    counter("test", "thread", "i", i, "", 0);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_enabled(false);
        let dump = collect_all();
        assert_eq!(dump.len(), 4);
        assert!(dump.threads.len() >= 4, "one buffer per thread");
        let mut tids: Vec<u64> = dump.threads.iter().map(|t| t.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), dump.threads.len());
        clear();
    }
}
