//! Content fingerprints for solve operands and the cache key built from
//! them.
//!
//! The plan cache is *content*-addressed, not identity-addressed: two
//! `SparseTri`s built from the same triplets — say, a client rebuilding
//! its preconditioner object every call — fingerprint identically, so the
//! second one hits the cache and rides the first one's warmed schedule.
//! A fingerprint covers everything a solve reads: dimensions, triangle
//! and diagonal kind, the sparsity pattern, and the exact bit patterns of
//! the stored values (including the diagonal).  Matching fingerprints
//! therefore produce bitwise-identical solutions under the barriered
//! executors, which is what lets the cache substitute its canonical
//! operand for the submitted one.
//!
//! The hash is 64-bit FNV-1a.  As with any content-addressed cache there
//! is a theoretical collision risk (~2⁻⁶⁴ per pair); the key additionally
//! carries `n` and `nnz` structurally, so a collision also requires equal
//! shape.

use catrsm::SolveRequest;
use dense::{Diag, Matrix, SolveOpts, Triangle};
use sparse::{SparseTri, SparseTriCsc};

/// A 64-bit FNV-1a content hash of one solve operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint(pub u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher over 64-bit words.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    #[inline]
    pub(crate) fn write_u64(&mut self, v: u64) {
        let mut h = self.0;
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    #[inline]
    pub(crate) fn write_f64(&mut self, v: f64) {
        // Bit pattern, not value: the cache promises *bitwise* identical
        // answers, so -0.0 and 0.0 must fingerprint differently.
        self.write_u64(v.to_bits());
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

fn tag(triangle: Triangle, diag: Diag) -> u64 {
    let t = match triangle {
        Triangle::Lower => 0u64,
        Triangle::Upper => 1,
    };
    let d = match diag {
        Diag::NonUnit => 0u64,
        Diag::Unit => 1,
    };
    (t << 1) | d
}

/// Fingerprint a dense triangular operand: dimension, triangle/diagonal
/// kind, and the bit patterns of every entry the solver reads (the
/// declared triangle only — callers may store unrelated data in the other
/// triangle, e.g. a combined LU workspace, and that must not perturb the
/// key).
pub fn fingerprint_dense(a: &Matrix, triangle: Triangle, diag: Diag) -> Fingerprint {
    let n = a.rows();
    let mut h = Fnv::new();
    h.write_u64(0xD0); // backend tag: dense
    h.write_u64(n as u64);
    h.write_u64(a.cols() as u64);
    h.write_u64(tag(triangle, diag));
    for i in 0..n {
        let row = a.row(i);
        let (lo, hi) = match triangle {
            Triangle::Lower => (0, (i + 1).min(row.len())),
            Triangle::Upper => (i.min(row.len()), row.len()),
        };
        for &v in &row[lo..hi] {
            h.write_f64(v);
        }
    }
    Fingerprint(h.finish())
}

/// Fingerprint a CSR sparse triangular operand: dimension, triangle and
/// diagonal kind, the full sparsity pattern, and the bit patterns of the
/// stored values and the diagonal.
pub fn fingerprint_sparse(a: &SparseTri) -> Fingerprint {
    let mut h = Fnv::new();
    h.write_u64(0x5A); // backend tag: sparse CSR
    h.write_u64(a.n() as u64);
    h.write_u64(tag(a.triangle(), a.diag()));
    for i in 0..a.n() {
        let (cols, vals) = a.row_entries(i);
        h.write_u64(cols.len() as u64);
        for &j in cols {
            h.write_u64(j as u64);
        }
        for &v in vals {
            h.write_f64(v);
        }
        h.write_f64(a.diag_value(i));
    }
    Fingerprint(h.finish())
}

/// Fingerprint a CSC sparse triangular operand (same coverage as
/// [`fingerprint_sparse`], column-wise — note a CSC matrix and its CSR
/// mirror fingerprint *differently*; the cache treats the storage format
/// as part of the content).
pub fn fingerprint_sparse_csc(a: &SparseTriCsc) -> Fingerprint {
    let mut h = Fnv::new();
    h.write_u64(0x5C); // backend tag: sparse CSC
    h.write_u64(a.n() as u64);
    h.write_u64(tag(a.triangle(), a.diag()));
    for j in 0..a.n() {
        let (rows, vals) = a.col_entries(j);
        h.write_u64(rows.len() as u64);
        for &i in rows {
            h.write_u64(i as u64);
        }
        for &v in vals {
            h.write_f64(v);
        }
        h.write_f64(a.diag_value(j));
    }
    Fingerprint(h.finish())
}

/// The plan-cache key: the operand's content fingerprint combined with
/// every request knob that changes what a lowering produces — transpose,
/// side, triangle/diagonal, the thread / policy / algorithm pins, and the
/// declared reuse.  Two submissions with equal keys are interchangeable:
/// they lower to the same plan and (for barriered policies) produce
/// bitwise-identical answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanKey {
    fingerprint: Fingerprint,
    /// Structural collision guard alongside the content hash.
    n: usize,
    nnz: usize,
    opts: SolveOpts,
    threads: Option<usize>,
    policy: Option<sparse::SchedulePolicy>,
    reuse: Option<usize>,
    algorithm: Option<catrsm::Algorithm>,
    cost_rev: catrsm::CostModelRev,
}

impl PlanKey {
    /// Build the key for one `(operand fingerprint, request shape)` pair.
    pub fn new(fingerprint: Fingerprint, n: usize, nnz: usize, request: &SolveRequest) -> PlanKey {
        PlanKey {
            fingerprint,
            n,
            nnz,
            opts: request.opts(),
            threads: request.pinned_threads(),
            policy: request.pinned_policy(),
            reuse: request.declared_reuse(),
            algorithm: request.pinned_algorithm(),
            cost_rev: request.cost_model_rev(),
        }
    }

    /// The operand fingerprint this key embeds.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// Encode the request-shape half of the key as a small integer stream
    /// for hashing (the foreign option types don't implement `Hash`).
    fn shape_code(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(self.n as u64);
        h.write_u64(self.nnz as u64);
        h.write_u64(match self.opts.side {
            dense::Side::Left => 0,
            dense::Side::Right => 1,
        });
        h.write_u64(tag(self.opts.triangle, self.opts.diag));
        h.write_u64(match self.opts.transpose {
            dense::Transpose::No => 0,
            dense::Transpose::Yes => 1,
        });
        h.write_u64(self.opts.check_finite as u64);
        h.write_u64(self.threads.map_or(u64::MAX, |t| t as u64));
        h.write_u64(self.policy.map_or(u64::MAX, |p| match p {
            sparse::SchedulePolicy::Level => 0,
            sparse::SchedulePolicy::Merged => 1,
            sparse::SchedulePolicy::SyncFree => 2,
        }));
        h.write_u64(self.reuse.map_or(u64::MAX, |r| r as u64));
        match self.algorithm {
            None => h.write_u64(u64::MAX),
            Some(catrsm::Algorithm::Auto) => h.write_u64(0),
            Some(catrsm::Algorithm::Recursive { base_size }) => {
                h.write_u64(1);
                h.write_u64(base_size as u64);
            }
            Some(catrsm::Algorithm::IterativeInversion(cfg)) => {
                h.write_u64(2);
                h.write_u64(cfg.p1 as u64);
                h.write_u64(cfg.p2 as u64);
                h.write_u64(cfg.n0 as u64);
                h.write_u64(cfg.inv_base as u64);
            }
            Some(catrsm::Algorithm::Wavefront) => h.write_u64(3),
        }
        h.write_u64(match self.cost_rev {
            catrsm::CostModelRev::Ipdps17 => 0,
            catrsm::CostModelRev::Tang24 => 1,
        });
        h.finish()
    }
}

impl std::hash::Hash for PlanKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.fingerprint.0);
        state.write_u64(self.shape_code());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen;

    #[test]
    fn equal_content_equal_fingerprint() {
        let a = gen::random_lower(64, 4, 7);
        let b = gen::random_lower(64, 4, 7);
        assert_eq!(fingerprint_sparse(&a), fingerprint_sparse(&b));
        let c = gen::random_lower(64, 4, 8);
        assert_ne!(fingerprint_sparse(&a), fingerprint_sparse(&c));
    }

    #[test]
    fn value_bits_change_the_fingerprint() {
        let tri = &[(0usize, 0usize, 2.0f64), (1, 0, 1.0), (1, 1, 3.0)];
        let a = SparseTri::from_triplets(2, Triangle::Lower, Diag::NonUnit, tri).unwrap();
        let tri2 = &[(0usize, 0usize, 2.0f64), (1, 0, 1.0 + 1e-16), (1, 1, 3.0)];
        let b = SparseTri::from_triplets(2, Triangle::Lower, Diag::NonUnit, tri2).unwrap();
        // 1.0 + 1e-16 rounds back to 1.0 in f64, so these really are equal.
        assert_eq!(fingerprint_sparse(&a), fingerprint_sparse(&b));
        let tri3 = &[(0usize, 0usize, 2.0f64), (1, 0, 1.0 + 1e-15), (1, 1, 3.0)];
        let c = SparseTri::from_triplets(2, Triangle::Lower, Diag::NonUnit, tri3).unwrap();
        assert_ne!(fingerprint_sparse(&a), fingerprint_sparse(&c));
    }

    #[test]
    fn dense_fingerprint_reads_declared_triangle_only() {
        let n = 16;
        let l = dense::gen::well_conditioned_lower(n, 3);
        let mut scribbled = l.clone();
        // Garbage in the strictly-upper triangle must not perturb the key.
        for i in 0..n {
            for j in (i + 1)..n {
                scribbled[(i, j)] = f64::NAN;
            }
        }
        assert_eq!(
            fingerprint_dense(&l, Triangle::Lower, Diag::NonUnit),
            fingerprint_dense(&scribbled, Triangle::Lower, Diag::NonUnit)
        );
        let mut touched = l.clone();
        touched[(n - 1, 0)] += 1.0;
        assert_ne!(
            fingerprint_dense(&l, Triangle::Lower, Diag::NonUnit),
            fingerprint_dense(&touched, Triangle::Lower, Diag::NonUnit)
        );
    }

    #[test]
    fn csr_and_csc_fingerprints_are_distinct_namespaces() {
        let a = gen::random_lower(32, 3, 5);
        let csc = sparse::SparseTriCsc::from_csr(&a);
        assert_ne!(fingerprint_sparse(&a), fingerprint_sparse_csc(&csc));
        // But the CSC fingerprint is itself content-stable.
        let csc2 = sparse::SparseTriCsc::from_csr(&gen::random_lower(32, 3, 5));
        assert_eq!(fingerprint_sparse_csc(&csc), fingerprint_sparse_csc(&csc2));
    }

    #[test]
    fn request_shape_splits_the_key() {
        use catrsm::SolveRequest;
        let a = gen::random_lower(32, 3, 5);
        let fp = fingerprint_sparse(&a);
        let k1 = PlanKey::new(fp, a.n(), a.nnz(), &SolveRequest::lower());
        let k2 = PlanKey::new(fp, a.n(), a.nnz(), &SolveRequest::lower());
        assert_eq!(k1, k2);
        let k3 = PlanKey::new(fp, a.n(), a.nnz(), &SolveRequest::lower().threads(2));
        assert_ne!(k1, k3);
        let k4 = PlanKey::new(
            fp,
            a.n(),
            a.nnz(),
            &SolveRequest::lower().policy(sparse::SchedulePolicy::SyncFree),
        );
        assert_ne!(k1, k4);
        let k5 = PlanKey::new(fp, a.n(), a.nnz(), &SolveRequest::lower().reuse(100));
        assert_ne!(k1, k5);
    }
}
