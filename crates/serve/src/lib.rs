//! # `serve` — the long-lived solve service
//!
//! The repo's other crates answer *one* solve well: lower a
//! [`catrsm::SolveRequest`] into an inspectable plan, execute it, read
//! the report.  Production traffic is different — the same handful of
//! triangular factors applied thousands of times, often one right-hand
//! side at a time (iterative-solver preconditioner applies, repeated
//! back-substitutions).  This crate adds the serving layer that captures
//! the amortization the staged API only *prices*:
//!
//! * [`fingerprint`] — 64-bit content hashes of dense triangles and
//!   `SparseTri` / `SparseTriCsc` operands (dims, triangle/diagonal,
//!   pattern, value bits), combined with the request shape into the
//!   plan-cache key ([`PlanKey`]);
//! * [`cache`] — a small LRU with hit/miss/eviction accounting;
//! * [`service`] — the [`SolveService`] itself: a fingerprint-keyed LRU
//!   of lowered `Arc<Plan>`s with canonical-operand pinning (repeat
//!   traffic skips `planner` lowering **and** schedule/CSC analysis), a
//!   submission queue whose flush fuses compatible single-RHS jobs into
//!   one multi-RHS execute per plan (sparse) or packs independent
//!   systems side by side on the worker pool (dense), and reusable
//!   arenas so the warm path allocates nothing per request.
//!
//! Determinism contract: a cache hit returns bitwise the answer the cold
//! path would have computed for the barriered sparse policies and the
//! dense backend; `SchedulePolicy::SyncFree` keeps its usual two-tier
//! guarantee (bitwise per fixed worker count, ~1e-12 across).  Fusion
//! preserves this: the sparse row kernel treats RHS columns
//! independently, and dense batch-mates never share arithmetic.
//!
//! Cache and batching behavior is observable: the service emits
//! `plan_cache_hit` / `plan_cache_miss` / `plan_cache_evict` /
//! `batch_width` counters through [`obs`], which `TraceReport` surfaces
//! as first-class fields.

pub mod cache;
pub mod fingerprint;
pub mod service;

pub use cache::LruCache;
pub use fingerprint::{
    fingerprint_dense, fingerprint_sparse, fingerprint_sparse_csc, Fingerprint, PlanKey,
};
pub use service::{
    Completion, Operand, ServiceConfig, ServiceRequest, ServiceStats, SolveService, Ticket,
};
