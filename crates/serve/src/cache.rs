//! A small LRU map for cached plans.
//!
//! Capacity-bounded, recency-evicting, and deliberately simple: the
//! service serves a *closed set* of hot fingerprints (an iterative
//! solver's handful of factors), so capacities are tens to hundreds and
//! an `O(capacity)` eviction scan is cheaper than maintaining an
//! intrusive list.  Hit / miss / eviction totals are kept on the cache
//! itself so the service can report them without threading counters
//! through every call site.

use std::collections::HashMap;
use std::hash::Hash;

/// A least-recently-used map with hit/miss/eviction accounting.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, Entry<V>>,
    capacity: usize,
    /// Logical clock; bumped on every touch, stamped onto entries.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    last_used: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> LruCache<K, V> {
        let capacity = capacity.max(1);
        LruCache {
            map: HashMap::with_capacity(capacity),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up `key`, refreshing its recency and counting a hit or miss.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some(e) => {
                e.last_used = tick;
                self.hits += 1;
                Some(&e.value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peek without touching recency or the hit/miss totals.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|e| &e.value)
    }

    /// Insert `key → value`, evicting the least-recently-used entry when
    /// the cache is full.  Returns the evicted pair, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.map.get_mut(&key) {
            e.value = value;
            e.last_used = tick;
            return None;
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            if let Some(old_key) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                let old = self.map.remove(&old_key).expect("key just observed");
                self.evictions += 1;
                evicted = Some((old_key, old.value));
            }
        }
        self.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
        evicted
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime eviction count.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_accounting() {
        let mut c: LruCache<u32, &'static str> = LruCache::new(4);
        assert!(c.get(&1).is_none());
        c.insert(1, "one");
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        // Touch 1 so 2 becomes the LRU entry.
        assert!(c.get(&1).is_some());
        let evicted = c.insert(4, 40);
        assert_eq!(evicted, Some((2, 20)));
        assert_eq!(c.len(), 3);
        assert!(c.peek(&2).is_none());
        assert!(c.peek(&1).is_some() && c.peek(&3).is_some() && c.peek(&4).is_some());
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn reinsert_refreshes_instead_of_evicting() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert!(c.insert(1, 11).is_none()); // refresh, no eviction
        assert_eq!(c.len(), 2);
        assert_eq!(c.peek(&1), Some(&11));
        // Now 2 is LRU (1 was just refreshed).
        assert_eq!(c.insert(3, 30), Some((2, 20)));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        assert_eq!(c.capacity(), 1);
        c.insert(1, 10);
        assert_eq!(c.insert(2, 20), Some((1, 10)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_pressure_is_bounded_by_capacity() {
        let mut c: LruCache<u32, u32> = LruCache::new(8);
        for i in 0..100u32 {
            c.insert(i, i);
        }
        assert_eq!(c.len(), 8);
        assert_eq!(c.evictions(), 92);
        // The survivors are exactly the 8 most recent inserts.
        for i in 92..100 {
            assert!(c.peek(&i).is_some());
        }
    }
}
