//! The long-lived [`SolveService`]: a fingerprint-keyed plan cache plus a
//! batched execution engine in front of the staged
//! `SolveRequest → Plan → Solution` API.
//!
//! # What the service amortizes
//!
//! A cold solve pays three stages: the `planner` lowering, the sparse
//! dependency analysis (level / merged schedule, or the CSC mirror), and
//! the execute itself.  Repeat traffic — the analyze-once/apply-many
//! regime of the sparse triangular-solve literature — should pay only the
//! third.  The service keys an LRU of lowered [`Arc<SolvePlan>`]s by
//! operand *content fingerprint* × request shape ([`PlanKey`]), and pins
//! the first-seen operand as the **canonical** one for its fingerprint:
//! cache hits execute against the canonical operand, whose `OnceLock`'d
//! schedule caches are already warm, even when the client rebuilt its
//! matrix object from scratch.  Steady state therefore performs zero
//! plan builds ([`catrsm::plan_build_count`] stays flat) and zero
//! analyses ([`sparse::SparseTri::analysis_count`] stays flat).
//!
//! # Batching
//!
//! Submitted single-RHS jobs queue until [`SolveService::flush`], which
//! groups them by plan key and fuses each group (up to the admission
//! window) into one multi-RHS execute: sparse groups pack their vectors
//! into a reusable arena matrix and run one `solve_multi` sweep — the
//! per-row elimination handles each RHS column independently, so under
//! the barriered policies the fused answer is bitwise identical to `w`
//! separate solves — while dense groups run side by side on the
//! `DENSE_THREADS` worker pool, each system solved independently.  The
//! arenas and the job's own RHS buffer are reused, so a warm service
//! allocates nothing per request.

use crate::cache::LruCache;
use crate::fingerprint::{fingerprint_dense, fingerprint_sparse, Fingerprint, Fnv, PlanKey};
use catrsm::{Result, Solution, SolvePlan, SolveReport, SolveRequest, TrsmError};
use dense::Matrix;
use sparse::SparseTri;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Configuration of a [`SolveService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Plan-cache capacity (entries = fingerprint × request-shape pairs).
    pub plan_cache_capacity: usize,
    /// Admission window: the most requests fused into one batched execute.
    pub admission_window: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            plan_cache_capacity: 64,
            admission_window: 16,
        }
    }
}

/// A solve operand held by shared ownership, so cached analyses serve
/// concurrent requests without cloning matrix data.
#[derive(Debug, Clone)]
pub enum Operand {
    /// Dense triangular operand.
    Dense(Arc<Matrix>),
    /// Sparse CSR triangular operand (carries its own cached analyses).
    Sparse(Arc<SparseTri>),
}

impl Operand {
    /// Content fingerprint of this operand under the request's declared
    /// triangle/diagonal.
    fn fingerprint(&self, request: &SolveRequest) -> Fingerprint {
        match self {
            Operand::Dense(a) => fingerprint_dense(a, request.opts().triangle, request.opts().diag),
            Operand::Sparse(a) => fingerprint_sparse(a),
        }
    }

    /// Operand dimension.
    pub fn n(&self) -> usize {
        match self {
            Operand::Dense(a) => a.rows(),
            Operand::Sparse(a) => a.n(),
        }
    }

    /// Stored entries (dense operands count the full square).
    fn nnz(&self) -> usize {
        match self {
            Operand::Dense(a) => a.rows() * a.cols(),
            Operand::Sparse(a) => a.nnz(),
        }
    }
}

/// One submission: a request shape, a shared operand, and one RHS vector.
#[derive(Debug, Clone)]
pub struct ServiceRequest {
    /// The solve description (triangle, transpose, pins, reuse, …).
    pub request: SolveRequest,
    /// The operand, by shared ownership.
    pub operand: Operand,
    /// The right-hand side (length `n`).
    pub rhs: Vec<f64>,
}

/// Identifies one queued submission; completions carry it back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ticket(pub u64);

/// The outcome of one queued submission after a flush.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The ticket [`SolveService::submit`] returned for this job.
    pub ticket: Ticket,
    /// The solution vector (the submitted RHS buffer, reused — `B` on
    /// submit, `X` here).  On error it holds the untouched RHS.
    pub x: Vec<f64>,
    /// The execution report, or the error that failed this job.
    pub result: std::result::Result<SolveReport, TrsmError>,
}

/// A point-in-time snapshot of the service's accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted (immediate solves + queued submissions).
    pub requests: u64,
    /// Requests whose execution returned an error.
    pub errors: u64,
    /// Plan-cache hits.
    pub hits: u64,
    /// Plan-cache misses (each one lowered a fresh plan).
    pub misses: u64,
    /// Plan-cache LRU evictions.
    pub evictions: u64,
    /// Plans lowered by this service (== misses: every miss builds once).
    pub plan_builds: u64,
    /// Fused batched executes performed by `flush`.
    pub batches: u64,
    /// Requests that rode a fused execute of width ≥ 2.
    pub fused_requests: u64,
    /// Widest fused execute so far.
    pub max_batch_width: u64,
    /// Deepest the submission queue has been.
    pub max_queue_depth: u64,
}

impl ServiceStats {
    /// Cache-hit ratio over the lookups so far (0 when none happened).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A cached lowering: the plan plus the canonical operand it runs on.
#[derive(Clone)]
struct CachedPlan {
    plan: Arc<SolvePlan>,
    operand: Operand,
}

/// Upper bound on independent plan-cache shards.  A power of two a notch
/// above the worker counts this crate targets, so concurrent clients
/// hashing to different keys almost never contend on the same lock.
const CACHE_SHARDS: usize = 8;

/// The plan cache, split into up to [`CACHE_SHARDS`] independently locked
/// LRUs.
///
/// A key always hashes to the same shard, so the thundering-herd guarantee
/// (one cold key analyzes once, under the lock) is preserved per key; what
/// sharding removes is cross-key convoying — two clients working different
/// fingerprints no longer serialize on one global mutex.  The configured
/// capacity is distributed exactly across the shards (never fewer shards
/// than one slot each: a capacity below [`CACHE_SHARDS`] gets one shard
/// per slot), and the accounting methods aggregate across shards.
struct ShardedPlanCache {
    shards: Vec<Mutex<LruCache<PlanKey, CachedPlan>>>,
}

impl ShardedPlanCache {
    fn new(capacity: usize) -> ShardedPlanCache {
        let capacity = capacity.max(1);
        let count = CACHE_SHARDS.min(capacity);
        let (base, rem) = (capacity / count, capacity % count);
        ShardedPlanCache {
            shards: (0..count)
                .map(|i| Mutex::new(LruCache::new(base + usize::from(i < rem))))
                .collect(),
        }
    }

    /// The shard owning `key` (stable: depends only on the key's hash).
    fn shard(&self, key: &PlanKey) -> &Mutex<LruCache<PlanKey, CachedPlan>> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("plan cache poisoned").len())
            .sum()
    }

    /// Aggregate `(hits, misses, evictions)` across every shard.
    fn totals(&self) -> (u64, u64, u64) {
        self.shards.iter().fold((0, 0, 0), |acc, s| {
            let c = s.lock().expect("plan cache poisoned");
            (acc.0 + c.hits(), acc.1 + c.misses(), acc.2 + c.evictions())
        })
    }
}

/// One queued single-RHS job, resolved against the cache at submit time.
struct PendingJob {
    ticket: Ticket,
    key: PlanKey,
    plan: Arc<SolvePlan>,
    operand: Operand,
    rhs: Vec<f64>,
    residual: bool,
    result: Option<std::result::Result<SolveReport, TrsmError>>,
}

#[derive(Default)]
struct Inner {
    queue: VecDeque<PendingJob>,
    /// Reusable pack buffer for fused sparse batches (`n × w`,
    /// column-interleaved row-major).  Capacity persists across flushes.
    arena: Vec<f64>,
    next_ticket: u64,
    requests: u64,
    errors: u64,
    plan_builds: u64,
    batches: u64,
    fused_requests: u64,
    max_batch_width: u64,
    max_queue_depth: u64,
}

/// A long-lived, thread-safe solve front end; see the module docs.
///
/// Shared by reference (or `Arc`) across client threads: immediate
/// [`SolveService::solve`] calls run concurrently outside the internal
/// lock, all of them against the same cached plans and warmed operand
/// analyses.
pub struct SolveService {
    cache: ShardedPlanCache,
    inner: Mutex<Inner>,
    config: ServiceConfig,
}

// One cached plan serves concurrent requests: everything the service
// shares across threads must be Send + Sync (audited at compile time in
// the operand crates too; see `catrsm::solve` and `sparse::csr`).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SolveService>();
    assert_send_sync::<Operand>();
};

impl SolveService {
    /// A service with the given cache capacity and admission window.
    pub fn new(config: ServiceConfig) -> SolveService {
        SolveService {
            cache: ShardedPlanCache::new(config.plan_cache_capacity),
            inner: Mutex::new(Inner::default()),
            config,
        }
    }

    /// A service with the default configuration.
    pub fn with_defaults() -> SolveService {
        SolveService::new(ServiceConfig::default())
    }

    /// The configuration this service runs with.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// Resolve `(request, operand)` against the plan cache: hit returns
    /// the cached plan *and the canonical operand*; miss lowers a fresh
    /// plan (for `k` right-hand sides) and pins the submitted operand as
    /// canonical for this fingerprint.
    fn lookup(
        &self,
        request: &SolveRequest,
        operand: &Operand,
        k: usize,
    ) -> Result<(PlanKey, CachedPlan)> {
        let fp = operand.fingerprint(request);
        let key = PlanKey::new(fp, operand.n(), operand.nnz(), request);
        let mut cache = self.cache.shard(&key).lock().expect("plan cache poisoned");
        if let Some(entry) = cache.get(&key) {
            obs::counter("serve", "plan_cache_hit", "hits", 1, "", 0);
            return Ok((key, entry.clone()));
        }
        obs::counter("serve", "plan_cache_miss", "misses", 1, "", 0);
        // Build under the key's shard lock: a thundering herd on one cold
        // key should analyze once, not once per thread (equal keys always
        // land on the same shard), while traffic on other keys keeps
        // flowing through the other shards.
        let plan = match operand {
            Operand::Dense(a) => request.plan_dense(a.rows(), k)?,
            Operand::Sparse(a) => request.plan_sparse(a, k)?,
        };
        self.inner
            .lock()
            .expect("service state poisoned")
            .plan_builds += 1;
        let entry = CachedPlan {
            plan: Arc::new(plan),
            operand: operand.clone(),
        };
        if cache.insert(key, entry.clone()).is_some() {
            obs::counter("serve", "plan_cache_evict", "evictions", 1, "", 0);
        }
        Ok((key, entry))
    }

    /// Solve one multi-RHS system immediately (no queueing) through the
    /// plan cache.  Concurrent callers share cached plans and analyses;
    /// execution runs outside the service locks.
    pub fn solve(
        &self,
        request: &SolveRequest,
        operand: &Operand,
        b: &Matrix,
    ) -> Result<Solution<Matrix>> {
        self.inner.lock().expect("service state poisoned").requests += 1;
        let (_, entry) = self.lookup(request, operand, b.cols())?;
        let out = match &entry.operand {
            Operand::Dense(a) => entry.plan.execute_dense(a, b),
            Operand::Sparse(a) => entry.plan.execute_sparse(a, b),
        };
        if out.is_err() {
            self.inner.lock().expect("service state poisoned").errors += 1;
        }
        out
    }

    /// Solve one single-RHS system immediately through the plan cache.
    pub fn solve_vec(
        &self,
        request: &SolveRequest,
        operand: &Operand,
        b: &[f64],
    ) -> Result<Solution<Vec<f64>>> {
        self.inner.lock().expect("service state poisoned").requests += 1;
        let (_, entry) = self.lookup(request, operand, 1)?;
        let out = match &entry.operand {
            Operand::Dense(a) => entry.plan.execute_dense_vec(a, b),
            Operand::Sparse(a) => entry.plan.execute_sparse_vec(a, b),
        };
        if out.is_err() {
            self.inner.lock().expect("service state poisoned").errors += 1;
        }
        out
    }

    /// Lower (or fetch) a distributed plan through the same LRU, keyed by
    /// `(n, k, p)` and the request shape.  Distributed planning has no
    /// local operand to fingerprint — the plan depends only on the
    /// problem shape — so the caller executes the shared plan against its
    /// own `DistMatrix` inside the simulated machine.
    pub fn plan_distributed(
        &self,
        request: &SolveRequest,
        n: usize,
        k: usize,
        p: usize,
    ) -> Result<Arc<SolvePlan>> {
        let mut h = Fnv::new();
        h.write_u64(0xD157); // backend tag: distributed shape
        h.write_u64(n as u64);
        h.write_u64(k as u64);
        h.write_u64(p as u64);
        let key = PlanKey::new(Fingerprint(h.finish()), n, n * n, request);
        let mut cache = self.cache.shard(&key).lock().expect("plan cache poisoned");
        if let Some(entry) = cache.get(&key) {
            obs::counter("serve", "plan_cache_hit", "hits", 1, "", 0);
            return Ok(Arc::clone(&entry.plan));
        }
        obs::counter("serve", "plan_cache_miss", "misses", 1, "", 0);
        let plan = Arc::new(request.plan_distributed(n, k, p)?);
        self.inner
            .lock()
            .expect("service state poisoned")
            .plan_builds += 1;
        // Distributed entries reuse the cache slot shape with a
        // zero-sized stand-in operand; they are never batch-executed.
        let stand_in = Operand::Dense(Arc::new(Matrix::zeros(0, 0)));
        if cache
            .insert(
                key,
                CachedPlan {
                    plan: Arc::clone(&plan),
                    operand: stand_in,
                },
            )
            .is_some()
        {
            obs::counter("serve", "plan_cache_evict", "evictions", 1, "", 0);
        }
        Ok(plan)
    }

    /// Queue one single-RHS job for the next [`SolveService::flush`].
    /// Planning (and its errors) happen here; execution errors surface on
    /// the job's [`Completion`].
    pub fn submit(&self, sreq: ServiceRequest) -> Result<Ticket> {
        let ServiceRequest {
            request,
            operand,
            rhs,
        } = sreq;
        if rhs.len() != operand.n() {
            return Err(catrsm::error::config_error(
                "serve",
                format!(
                    "rhs length {} does not match the n = {} operand",
                    rhs.len(),
                    operand.n()
                ),
            ));
        }
        let (key, entry) = self.lookup(&request, &operand, 1)?;
        let mut inner = self.inner.lock().expect("service state poisoned");
        inner.requests += 1;
        let ticket = Ticket(inner.next_ticket);
        inner.next_ticket += 1;
        inner.queue.push_back(PendingJob {
            ticket,
            key,
            plan: entry.plan,
            operand: entry.operand,
            rhs,
            residual: request.wants_residual(),
            result: None,
        });
        let depth = inner.queue.len() as u64;
        inner.max_queue_depth = inner.max_queue_depth.max(depth);
        Ok(ticket)
    }

    /// Jobs currently queued (submitted, not yet flushed).
    pub fn queue_depth(&self) -> usize {
        self.inner
            .lock()
            .expect("service state poisoned")
            .queue
            .len()
    }

    /// Execute everything queued: group jobs by plan key, fuse each group
    /// (up to the admission window) into one execute, and return the
    /// completions in submission order.
    pub fn flush(&self) -> Vec<Completion> {
        // Take the work and the arena; execution runs outside the locks
        // so concurrent `solve` / `submit` calls keep flowing.
        let (mut jobs, mut arena) = {
            let mut inner = self.inner.lock().expect("service state poisoned");
            let jobs: Vec<PendingJob> = inner.queue.drain(..).collect();
            (jobs, std::mem::take(&mut inner.arena))
        };

        // Group by plan key, preserving submission order within a group.
        // Few distinct keys per window (a closed hot set), so a linear
        // scan beats building a map.
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut group_keys: Vec<PlanKey> = Vec::new();
        for (idx, job) in jobs.iter().enumerate() {
            match group_keys.iter().position(|k| *k == job.key) {
                Some(g) => groups[g].push(idx),
                None => {
                    group_keys.push(job.key);
                    groups.push(vec![idx]);
                }
            }
        }

        let mut batches = 0u64;
        let mut fused_requests = 0u64;
        let mut max_batch_width = 0u64;
        for group in &groups {
            for window in group.chunks(self.config.admission_window.max(1)) {
                // Jobs that asked for a residual need their B preserved;
                // they execute individually (still on the cached plan).
                let (fused, singles): (Vec<usize>, Vec<usize>) =
                    window.iter().partition(|&&i| !jobs[i].residual);
                for &i in &singles {
                    run_single(&mut jobs[i]);
                }
                match fused.len() {
                    0 => {}
                    1 => run_single(&mut jobs[fused[0]]),
                    w => {
                        batches += 1;
                        fused_requests += w as u64;
                        max_batch_width = max_batch_width.max(w as u64);
                        obs::counter("serve", "batch_width", "requests", w as u64, "", 0);
                        run_fused(&mut jobs, &fused, &mut arena);
                    }
                }
            }
        }

        let errors = jobs
            .iter()
            .filter(|j| matches!(j.result, Some(Err(_))))
            .count() as u64;
        {
            let mut inner = self.inner.lock().expect("service state poisoned");
            inner.arena = arena;
            inner.errors += errors;
            inner.batches += batches;
            inner.fused_requests += fused_requests;
            inner.max_batch_width = inner.max_batch_width.max(max_batch_width);
        }

        jobs.sort_by_key(|j| j.ticket);
        jobs.into_iter()
            .map(|j| Completion {
                ticket: j.ticket,
                x: j.rhs,
                result: j.result.expect("every drained job was executed"),
            })
            .collect()
    }

    /// Submit one job and flush immediately: the single-job convenience
    /// for callers that don't batch.
    pub fn submit_and_flush(&self, sreq: ServiceRequest) -> Result<Completion> {
        let ticket = self.submit(sreq)?;
        let mut done = self.flush();
        let pos = done
            .iter()
            .position(|c| c.ticket == ticket)
            .expect("flush returns every queued job");
        Ok(done.swap_remove(pos))
    }

    /// Current accounting snapshot (cache totals aggregated over shards).
    pub fn stats(&self) -> ServiceStats {
        let (hits, misses, evictions) = self.cache.totals();
        let inner = self.inner.lock().expect("service state poisoned");
        ServiceStats {
            requests: inner.requests,
            errors: inner.errors,
            hits,
            misses,
            evictions,
            plan_builds: inner.plan_builds,
            batches: inner.batches,
            fused_requests: inner.fused_requests,
            max_batch_width: inner.max_batch_width,
            max_queue_depth: inner.max_queue_depth,
        }
    }

    /// Entries currently in the plan cache (summed over shards).
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }
}

/// Execute one job on its own (single RHS, in place in the job's buffer).
/// Residual-requesting jobs take the copying path: the in-place executes
/// consume `B` and therefore skip the residual.
fn run_single(job: &mut PendingJob) {
    if job.residual {
        let out = match &job.operand {
            Operand::Dense(a) => job.plan.execute_dense_vec(a, &job.rhs),
            Operand::Sparse(a) => job.plan.execute_sparse_vec(a, &job.rhs),
        };
        job.result = Some(match out {
            Ok(sol) => {
                job.rhs = sol.x;
                Ok(sol.report)
            }
            Err(e) => Err(e),
        });
        return;
    }
    let out = match &job.operand {
        Operand::Dense(a) => job.plan.execute_dense_vec_in_place(a, &mut job.rhs),
        Operand::Sparse(a) => job.plan.execute_sparse_vec_in_place(a, &mut job.rhs),
    };
    job.result = Some(out);
}

/// Execute a fused group: all jobs share one plan and one canonical
/// operand.  Sparse groups pack into the arena and run one multi-RHS
/// sweep; dense groups run side by side on the worker pool.
fn run_fused(jobs: &mut [PendingJob], fused: &[usize], arena: &mut Vec<f64>) {
    let operand = jobs[fused[0]].operand.clone();
    let plan = Arc::clone(&jobs[fused[0]].plan);
    match operand {
        Operand::Sparse(a) => run_fused_sparse(jobs, fused, &a, &plan, arena),
        Operand::Dense(a) => run_fused_dense(jobs, fused, &a, &plan),
    }
}

/// One `solve_multi` execute over `w` packed right-hand sides.  The row
/// kernel treats each RHS column independently, so under the barriered
/// policies this is bitwise identical to `w` separate solves; under
/// sync-free it is bitwise reproducible per fixed worker count and within
/// ~1e-12 of the unfused answer (the fused `nnz·w` work product can cross
/// the `PAR_MIN_WORK` gate a single RHS would not).
fn run_fused_sparse(
    jobs: &mut [PendingJob],
    fused: &[usize],
    a: &SparseTri,
    plan: &SolvePlan,
    arena: &mut Vec<f64>,
) {
    let n = a.n();
    let w = fused.len();
    arena.clear();
    arena.resize(n * w, 0.0);
    for (c, &i) in fused.iter().enumerate() {
        for (r, &v) in jobs[i].rhs.iter().enumerate() {
            arena[r * w + c] = v;
        }
    }
    let packed = std::mem::take(arena);
    let mut x = match Matrix::from_vec(n, w, packed) {
        Ok(m) => m,
        Err(e) => {
            let err: TrsmError = e.into();
            for &i in fused {
                jobs[i].result = Some(Err(err.clone()));
            }
            return;
        }
    };
    let out = plan.execute_sparse_in_place(a, &mut x);
    match out {
        Ok(report) => {
            for (c, &i) in fused.iter().enumerate() {
                let slice = x.as_slice();
                for (r, v) in jobs[i].rhs.iter_mut().enumerate() {
                    *v = slice[r * w + c];
                }
                // Every fused job reports the batch execute it rode in
                // (the flop count covers the whole batch).
                jobs[i].result = Some(Ok(report.clone()));
            }
        }
        Err(e) => {
            for &i in fused {
                jobs[i].result = Some(Err(e.clone()));
            }
        }
    }
    // Recover the pack buffer's allocation for the next batch.
    *arena = x.into_vec();
}

/// Side-by-side dense execution: each job is an independent system, so
/// the jobs split across the worker pool and every solve stays bitwise
/// identical to running alone (no cross-job arithmetic).
fn run_fused_dense(jobs: &mut [PendingJob], fused: &[usize], a: &Matrix, plan: &SolvePlan) {
    let workers = dense::dense_threads().min(fused.len()).max(1);
    if workers == 1 {
        for &i in fused {
            run_single(&mut jobs[i]);
        }
        return;
    }
    // Split the fused jobs into disjoint per-worker slices.  Collect
    // mutable references first so each worker owns its share.
    let mut picked: Vec<&mut PendingJob> = Vec::with_capacity(fused.len());
    let mut rest = &mut *jobs;
    let mut taken = 0usize;
    for &i in fused {
        // `fused` is strictly increasing (built by an in-order scan), so
        // successive split_at_mut calls carve disjoint slices.
        let (_, tail) = rest.split_at_mut(i - taken);
        let (job, tail) = tail.split_first_mut().expect("index in range");
        picked.push(job);
        rest = tail;
        taken = i + 1;
    }
    let per = picked.len().div_ceil(workers);
    crossbeam::thread::scope(|s| {
        for chunk in picked.chunks_mut(per) {
            s.spawn(move |_| {
                for job in chunk.iter_mut() {
                    let out = plan.execute_dense_vec_in_place(a, &mut job.rhs);
                    job.result = Some(out);
                }
            });
        }
    })
    .expect("dense batch workers panicked");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard_caps(capacity: usize) -> Vec<usize> {
        ShardedPlanCache::new(capacity)
            .shards
            .iter()
            .map(|s| s.lock().unwrap().capacity())
            .collect()
    }

    #[test]
    fn shard_capacities_sum_to_the_configured_total() {
        for capacity in [1, 2, 7, 8, 9, 10, 16, 64, 100] {
            let caps = shard_caps(capacity);
            assert_eq!(caps.iter().sum::<usize>(), capacity, "capacity {capacity}");
            assert!(caps.len() <= CACHE_SHARDS);
            assert!(caps.iter().all(|&c| c >= 1));
            // Balanced within one slot.
            let (min, max) = (caps.iter().min().unwrap(), caps.iter().max().unwrap());
            assert!(max - min <= 1);
        }
        assert_eq!(shard_caps(3).len(), 3);
        assert_eq!(shard_caps(64).len(), CACHE_SHARDS);
    }
}
