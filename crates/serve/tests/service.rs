//! Integration tests of the solve service: cache-hit answers must be
//! *bitwise* the cold-path answers (barriered policies and dense), repeat
//! traffic must stop planning and analyzing after warm-up, batch fusion
//! must not perturb results, and the LRU must evict under pressure while
//! staying correct.

use catrsm::SolveRequest;
use dense::Matrix;
use proptest::prelude::*;
use serve::{Operand, ServiceConfig, ServiceRequest, SolveService};
use sparse::{gen as sgen, SchedulePolicy, SparseTri};
use std::sync::Arc;

fn sparse_request(policy: Option<SchedulePolicy>) -> SolveRequest {
    let req = SolveRequest::lower().threads(4);
    match policy {
        Some(p) => req.policy(p),
        None => req,
    }
}

fn service() -> SolveService {
    SolveService::new(ServiceConfig {
        plan_cache_capacity: 16,
        admission_window: 8,
    })
}

/// Max |a-b| over two equal-length vectors.
fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cache-hit solves are bitwise identical to cache-miss (cold) solves
    /// on the sparse backend, across all three scheduling policies — the
    /// two barriered policies exactly, sync-free within its documented
    /// 1e-12 two-tier tolerance (it is bitwise per fixed worker count,
    /// which the single-RHS service path preserves, but the contract we
    /// promise is the tolerance).
    #[test]
    fn sparse_cache_hit_matches_cold_path(
        n in 60usize..220,
        fill in 1usize..5,
        seed in 0u64..500,
        policy_idx in 0usize..4,
    ) {
        let policy = [
            None,
            Some(SchedulePolicy::Level),
            Some(SchedulePolicy::Merged),
            Some(SchedulePolicy::SyncFree),
        ][policy_idx];
        let req = sparse_request(policy);
        let b = sgen::rhs_vec(n, seed ^ 0x51);

        // Cold path: a fresh matrix, solved directly through the staged
        // API (no service, no cache).
        let cold_mat = sgen::random_lower(n, fill, seed);
        let cold = req.solve_sparse_vec(&cold_mat, &b).unwrap().x;

        // Service path: warm the cache with one build of the matrix, then
        // hit it with an independently rebuilt (content-identical) one.
        let svc = service();
        let warm = svc
            .solve_vec(&req, &Operand::Sparse(Arc::new(sgen::random_lower(n, fill, seed))), &b)
            .unwrap()
            .x;
        let hit = svc
            .solve_vec(&req, &Operand::Sparse(Arc::new(sgen::random_lower(n, fill, seed))), &b)
            .unwrap()
            .x;
        prop_assert_eq!(svc.stats().hits, 1);
        prop_assert_eq!(svc.stats().misses, 1);

        if policy == Some(SchedulePolicy::SyncFree) {
            prop_assert!(max_abs_diff(&hit, &cold) < 1e-12);
            prop_assert!(max_abs_diff(&warm, &cold) < 1e-12);
        } else {
            prop_assert_eq!(&hit, &cold, "cache hit must be bitwise the cold answer");
            prop_assert_eq!(&warm, &cold, "cache miss through the service must also match");
        }
    }

    /// Same property on the dense backend (single- and multi-RHS paths).
    #[test]
    fn dense_cache_hit_matches_cold_path(
        nb in 8usize..60,
        seed in 0u64..500,
        k in 1usize..6,
    ) {
        let n = nb * 2;
        let req = SolveRequest::lower();
        let l = dense::gen::well_conditioned_lower(n, seed);
        let b = dense::gen::rhs(n, k, seed ^ 0x7e);
        let cold = req.solve_dense(&l, &b).unwrap().x;

        let svc = service();
        let op = Operand::Dense(Arc::new(l.clone()));
        let warm = svc.solve(&req, &op, &b).unwrap().x;
        // A rebuilt operand object with identical content must hit.
        let rebuilt = Operand::Dense(Arc::new(l.clone()));
        let hit = svc.solve(&req, &rebuilt, &b).unwrap().x;
        prop_assert_eq!(svc.stats().hits, 1);
        prop_assert_eq!(&warm, &cold);
        prop_assert_eq!(&hit, &cold);
    }

    /// Fused batched execution returns bitwise the same answers as
    /// solving each submission alone (barriered policies; each RHS column
    /// is eliminated independently inside the row kernel).
    #[test]
    fn fused_batches_match_individual_solves(
        n in 80usize..200,
        fill in 1usize..4,
        seed in 0u64..300,
        width in 2usize..8,
        merged in prop::bool::ANY,
    ) {
        let policy = if merged { SchedulePolicy::Merged } else { SchedulePolicy::Level };
        let req = sparse_request(Some(policy));
        let mat = Arc::new(sgen::random_lower(n, fill, seed));
        let svc = service();

        let mut tickets = Vec::new();
        let mut want = Vec::new();
        for j in 0..width {
            let rhs = sgen::rhs_vec(n, seed ^ (j as u64 + 1));
            want.push(req.solve_sparse_vec(&mat, &rhs).unwrap().x);
            tickets.push(
                svc.submit(ServiceRequest {
                    request: req,
                    operand: Operand::Sparse(Arc::clone(&mat)),
                    rhs,
                })
                .unwrap(),
            );
        }
        let done = svc.flush();
        prop_assert_eq!(done.len(), width);
        for (c, w) in done.iter().zip(&want) {
            prop_assert!(c.result.is_ok());
            prop_assert_eq!(&c.x, w, "fused answer must be bitwise the solo answer");
        }
        let stats = svc.stats();
        prop_assert_eq!(stats.batches, 1);
        prop_assert_eq!(stats.fused_requests, width as u64);
        prop_assert_eq!(stats.errors, 0);
        let _ = tickets;
    }
}

/// After warm-up, repeat traffic (content-identical rebuilt matrices)
/// performs zero plan builds and zero schedule analyses: the acceptance
/// invariant of the serving layer.
#[test]
fn repeat_traffic_keeps_planning_and_analysis_flat() {
    let n = 300;
    let req = sparse_request(None);
    let svc = service();
    let canonical = Arc::new(sgen::random_lower(n, 4, 11));
    let b = sgen::rhs_vec(n, 99);

    // Warm-up: one miss, which plans and (lazily, at execute) analyzes.
    let warm = svc
        .solve_vec(&req, &Operand::Sparse(Arc::clone(&canonical)), &b)
        .unwrap()
        .x;
    let plans_after_warmup = catrsm::plan_build_count();
    let analyses_after_warmup = canonical.analysis_count();
    let merged_after_warmup = canonical.merged_analysis_count();

    // Steady state: 50 requests, every one a *fresh* matrix object with
    // the same content, through both the immediate and the batched path.
    let mut fresh_mats = Vec::new();
    for i in 0..50 {
        let fresh = Arc::new(sgen::random_lower(n, 4, 11));
        let x = if i % 2 == 0 {
            svc.solve_vec(&req, &Operand::Sparse(Arc::clone(&fresh)), &b)
                .unwrap()
                .x
        } else {
            let t = svc
                .submit(ServiceRequest {
                    request: req,
                    operand: Operand::Sparse(Arc::clone(&fresh)),
                    rhs: b.clone(),
                })
                .unwrap();
            let done = svc.flush();
            assert_eq!(done.len(), 1);
            assert_eq!(done[0].ticket, t);
            done[0].x.clone()
        };
        assert_eq!(x, warm, "steady-state answers must stay bitwise stable");
        fresh_mats.push(fresh);
    }

    assert_eq!(
        catrsm::plan_build_count(),
        plans_after_warmup,
        "steady state must not lower any new plans"
    );
    assert_eq!(
        canonical.analysis_count(),
        analyses_after_warmup,
        "steady state must not re-run the level analysis"
    );
    assert_eq!(
        canonical.merged_analysis_count(),
        merged_after_warmup,
        "steady state must not re-run the merge analysis"
    );
    // The rebuilt matrices were never analyzed at all: the service
    // executed every hit against the canonical operand.
    for fresh in &fresh_mats {
        assert_eq!(fresh.analysis_count(), 0);
        assert_eq!(fresh.merged_analysis_count(), 0);
    }
    let stats = svc.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, 50);
    assert_eq!(stats.plan_builds, 1);
    assert_eq!(stats.errors, 0);
}

/// LRU pressure through the service: a capacity-2 cache cycling three
/// matrices evicts, rebuilds on re-miss, and stays correct throughout.
#[test]
fn eviction_under_pressure_stays_correct() {
    let n = 120;
    let req = sparse_request(Some(SchedulePolicy::Level));
    let svc = SolveService::new(ServiceConfig {
        plan_cache_capacity: 2,
        admission_window: 4,
    });
    let mats: Vec<Arc<SparseTri>> = (0..3)
        .map(|s| Arc::new(sgen::random_lower(n, 3, 40 + s)))
        .collect();
    let b = sgen::rhs_vec(n, 7);
    let want: Vec<Vec<f64>> = mats
        .iter()
        .map(|m| req.solve_sparse_vec(m, &b).unwrap().x)
        .collect();

    for round in 0..4 {
        for (m, w) in mats.iter().zip(&want) {
            let x = svc
                .solve_vec(&req, &Operand::Sparse(Arc::clone(m)), &b)
                .unwrap()
                .x;
            assert_eq!(&x, w, "round {round}: eviction must not corrupt answers");
        }
    }
    let stats = svc.stats();
    assert!(
        stats.evictions > 0,
        "three keys through a capacity-2 LRU must evict"
    );
    assert!(svc.cached_plans() <= 2);
    assert_eq!(stats.errors, 0);
}

/// One service, many client threads: concurrent immediate solves share
/// the cached plan and the canonical operand's single analysis, and all
/// agree bitwise (barriered policy).
#[test]
fn concurrent_clients_share_one_cached_plan() {
    let n = 400;
    let req = sparse_request(Some(SchedulePolicy::Merged));
    let svc = Arc::new(service());
    let canonical = Arc::new(sgen::random_lower(n, 5, 77));
    let b = sgen::rhs_vec(n, 13);

    // Warm once so every thread hits.
    let want = svc
        .solve_vec(&req, &Operand::Sparse(Arc::clone(&canonical)), &b)
        .unwrap()
        .x;

    let mut handles = Vec::new();
    for _ in 0..4 {
        let svc = Arc::clone(&svc);
        let b = b.clone();
        let fresh = Arc::new(sgen::random_lower(n, 5, 77));
        handles.push(std::thread::spawn(move || {
            let mut xs = Vec::new();
            for _ in 0..8 {
                xs.push(
                    svc.solve_vec(&req, &Operand::Sparse(Arc::clone(&fresh)), &b)
                        .unwrap()
                        .x,
                );
            }
            xs
        }));
    }
    for h in handles {
        for x in h.join().unwrap() {
            assert_eq!(x, want, "every concurrent hit must be bitwise stable");
        }
    }
    assert_eq!(canonical.analysis_count(), 1);
    assert_eq!(canonical.merged_analysis_count(), 1);
    let stats = svc.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, 32);
    assert_eq!(stats.errors, 0);
}

/// Dense single-RHS jobs with the same key run side by side on the
/// worker pool and still answer bitwise like solo solves; jobs with
/// different keys in one window batch separately.
#[test]
fn dense_side_by_side_batching_matches_solo() {
    let n = 64;
    let req = SolveRequest::lower();
    let svc = service();
    let l = Arc::new(dense::gen::well_conditioned_lower(n, 5));
    let u_req = SolveRequest::upper();
    let u = Arc::new(dense::gen::well_conditioned_lower(n, 6).transpose());

    let mut want = Vec::new();
    for j in 0..6 {
        let rhs: Vec<f64> = sgen::rhs_vec(n, 100 + j);
        let (r, m): (&SolveRequest, &Arc<Matrix>) =
            if j % 2 == 0 { (&req, &l) } else { (&u_req, &u) };
        want.push(r.solve_dense_vec(m, &rhs).unwrap().x);
        svc.submit(ServiceRequest {
            request: *r,
            operand: Operand::Dense(Arc::clone(m)),
            rhs,
        })
        .unwrap();
    }
    let done = svc.flush();
    assert_eq!(done.len(), 6);
    for (c, w) in done.iter().zip(&want) {
        assert!(c.result.is_ok());
        assert_eq!(&c.x, w);
    }
    let stats = svc.stats();
    assert_eq!(stats.errors, 0);
    // Two keys → two fused groups of width 3.
    assert_eq!(stats.batches, 2);
    assert_eq!(stats.max_batch_width, 3);
}

/// Residual-requesting jobs are not fused (their B must be preserved) but
/// still ride the cached plan and report a residual.
#[test]
fn residual_jobs_execute_individually() {
    let n = 90;
    let req = sparse_request(Some(SchedulePolicy::Level)).with_residual();
    let svc = service();
    let mat = Arc::new(sgen::random_lower(n, 3, 21));
    for j in 0..3 {
        svc.submit(ServiceRequest {
            request: req,
            operand: Operand::Sparse(Arc::clone(&mat)),
            rhs: sgen::rhs_vec(n, 200 + j),
        })
        .unwrap();
    }
    let done = svc.flush();
    assert_eq!(done.len(), 3);
    for c in &done {
        let report = c.result.as_ref().unwrap();
        let resid = report.residual.expect("requested residual");
        assert!(resid < 1e-10, "residual {resid} too large");
    }
    // No fusion happened: residual jobs run alone.
    assert_eq!(svc.stats().batches, 0);
}

/// Submitting a wrong-length RHS fails at submit time, not at flush.
#[test]
fn bad_rhs_rejected_at_submit() {
    let svc = service();
    let mat = Arc::new(sgen::random_lower(32, 2, 3));
    let err = svc.submit(ServiceRequest {
        request: SolveRequest::lower(),
        operand: Operand::Sparse(mat),
        rhs: vec![1.0; 31],
    });
    assert!(err.is_err());
    assert_eq!(svc.queue_depth(), 0);
}

/// A request-shape mismatch (upper request, lower matrix) errors on the
/// cold path and is not cached.
#[test]
fn shape_mismatch_is_not_cached() {
    let svc = service();
    let mat = Arc::new(sgen::random_lower(32, 2, 3));
    let req = SolveRequest::upper();
    let b = sgen::rhs_vec(32, 4);
    assert!(svc
        .solve_vec(&req, &Operand::Sparse(Arc::clone(&mat)), &b)
        .is_err());
    assert_eq!(svc.cached_plans(), 0);
}
