//! Property-based tests for the raw-pointer `MatMut` view splits and the
//! multithreaded packed GEMM.
//!
//! These pin the two guarantees the PR's redesign rests on:
//!
//! * `split_cols_at_mut` / `split_rows_at_mut` produce **disjoint,
//!   correctly-strided** views — writes through one half never show up in
//!   the other, and every element address matches the parent matrix;
//! * the parallel GEMM is **bitwise identical** to the sequential packed
//!   kernel for every worker count (and numerically agrees with the naive
//!   `dense::reference` loop).

use dense::{gemm_views_with_threads, gemm_with_threads, gen, norms, reference, Matrix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Column split: both halves observe exactly the parent's elements at
    /// the parent's stride, and writes land disjointly.
    #[test]
    fn split_cols_views_are_disjoint_and_correctly_strided(
        (rows, cols) in (1usize..24, 2usize..24),
        frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let orig = gen::uniform(rows, cols, seed);
        let mut m = orig.clone();
        let c = 1 + ((cols - 2) as f64 * frac) as usize; // 1..=cols-1
        {
            let (mut left, mut right) = m.as_view_mut().split_cols_at_mut(c);
            prop_assert_eq!(left.dims(), (rows, c));
            prop_assert_eq!(right.dims(), (rows, cols - c));
            prop_assert_eq!(left.stride(), cols);
            prop_assert_eq!(right.stride(), cols);
            for i in 0..rows {
                for j in 0..c {
                    prop_assert_eq!(left.at(i, j), orig[(i, j)]);
                }
                for j in 0..cols - c {
                    prop_assert_eq!(right.at(i, j), orig[(i, c + j)]);
                }
            }
            // Write sentinels through both halves simultaneously.
            for i in 0..rows {
                for j in 0..c {
                    *left.at_mut(i, j) = (i * cols + j) as f64;
                }
                for j in 0..cols - c {
                    *right.at_mut(i, j) = (i * cols + c + j) as f64;
                }
            }
        }
        // Every element was written exactly once, by the half that owns it.
        let expect = Matrix::from_fn(rows, cols, |i, j| (i * cols + j) as f64);
        prop_assert_eq!(m, expect);
    }

    /// Row split: same disjointness and stride guarantees as the column
    /// split.
    #[test]
    fn split_rows_views_are_disjoint_and_correctly_strided(
        (rows, cols) in (2usize..24, 1usize..24),
        frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let orig = gen::uniform(rows, cols, seed);
        let mut m = orig.clone();
        let r = 1 + ((rows - 2) as f64 * frac) as usize; // 1..=rows-1
        {
            let (mut top, mut bottom) = m.as_view_mut().split_rows_at_mut(r);
            prop_assert_eq!(top.dims(), (r, cols));
            prop_assert_eq!(bottom.dims(), (rows - r, cols));
            prop_assert_eq!(top.stride(), cols);
            prop_assert_eq!(bottom.stride(), cols);
            for j in 0..cols {
                for i in 0..r {
                    prop_assert_eq!(top.at(i, j), orig[(i, j)]);
                }
                for i in 0..rows - r {
                    prop_assert_eq!(bottom.at(i, j), orig[(r + i, j)]);
                }
            }
            for i in 0..r {
                for j in 0..cols {
                    *top.at_mut(i, j) = (i * cols + j) as f64;
                }
            }
            for i in 0..rows - r {
                for j in 0..cols {
                    *bottom.at_mut(i, j) = ((r + i) * cols + j) as f64;
                }
            }
        }
        let expect = Matrix::from_fn(rows, cols, |i, j| (i * cols + j) as f64);
        prop_assert_eq!(m, expect);
    }

    /// The multithreaded GEMM is bitwise identical to the single-worker
    /// packed kernel for arbitrary worker counts and shapes (spanning the
    /// pack threshold and ragged panel edges), and numerically agrees with
    /// the naive reference loop.
    #[test]
    fn parallel_gemm_matches_sequential_bit_for_bit(
        (m, k, n) in (24usize..72, 24usize..72, 24usize..96),
        threads in 2usize..8,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        s1 in any::<u64>(), s2 in any::<u64>(), s3 in any::<u64>(),
    ) {
        let a = gen::uniform(m, k, s1);
        let b = gen::uniform(k, n, s2);
        let c0 = gen::uniform(m, n, s3);

        let mut c_seq = c0.clone();
        let f_seq = gemm_with_threads(alpha, &a, &b, beta, &mut c_seq, 1).unwrap();
        let mut c_par = c0.clone();
        let f_par = gemm_with_threads(alpha, &a, &b, beta, &mut c_par, threads).unwrap();

        // Bitwise equality (Matrix PartialEq is exact f64 comparison).
        prop_assert!(c_seq == c_par, "worker count changed the result bits");
        prop_assert_eq!(f_seq, f_par);

        let mut c_ref = c0.clone();
        reference::gemm_naive_ikj(alpha, &a, &b, beta, &mut c_ref);
        prop_assert!(c_par.max_abs_diff(&c_ref).unwrap() < 1e-8);
    }

    /// Tall-skinny products (`n` too small for the column split) take the
    /// `ic`-dimension row partitioning, which must also be bitwise
    /// identical to the sequential packed kernel for every worker count.
    #[test]
    fn parallel_gemm_row_split_matches_sequential_bit_for_bit(
        m in 64usize..600,
        k in 32usize..128,
        n in 1usize..16,
        threads in 2usize..8,
        alpha in -2.0f64..2.0,
        s1 in any::<u64>(), s2 in any::<u64>(), s3 in any::<u64>(),
    ) {
        let a = gen::uniform(m, k, s1);
        let b = gen::uniform(k, n, s2);
        let c0 = gen::uniform(m, n, s3);

        let mut c_seq = c0.clone();
        gemm_with_threads(alpha, &a, &b, 1.0, &mut c_seq, 1).unwrap();
        let mut c_par = c0.clone();
        gemm_with_threads(alpha, &a, &b, 1.0, &mut c_par, threads).unwrap();
        prop_assert!(c_seq == c_par, "row-split worker count changed the result bits");

        let mut c_ref = c0.clone();
        reference::gemm_naive_ikj(alpha, &a, &b, 1.0, &mut c_ref);
        prop_assert!(c_par.max_abs_diff(&c_ref).unwrap() < 1e-8);
    }

    /// Same bitwise guarantee on view-level GEMM over interior blocks, so
    /// the chunk partitioning is also exercised at `stride != cols`.
    #[test]
    fn parallel_gemm_views_matches_sequential_bit_for_bit(
        (m, k, n) in (16usize..48, 16usize..48, 16usize..64),
        (ro, co) in (0usize..8, 0usize..8),
        threads in 2usize..6,
        s1 in any::<u64>(), s2 in any::<u64>(),
    ) {
        let big_a = gen::uniform(m + ro + 2, k + co + 2, s1);
        let big_b = gen::uniform(k + ro + 2, n + co + 2, s2);
        let mut c_seq = Matrix::zeros(m + 3, n + 3);
        let mut c_par = c_seq.clone();
        gemm_views_with_threads(
            1.0,
            big_a.view(ro, co, m, k),
            big_b.view(ro, co, k, n),
            0.0,
            &mut c_seq.view_mut(1, 2, m, n),
            1,
        )
        .unwrap();
        gemm_views_with_threads(
            1.0,
            big_a.view(ro, co, m, k),
            big_b.view(ro, co, k, n),
            0.0,
            &mut c_par.view_mut(1, 2, m, n),
            threads,
        )
        .unwrap();
        prop_assert!(c_seq == c_par);
        // The halo around the target block is untouched by every worker.
        prop_assert_eq!(c_par[(0, 0)], 0.0);
        prop_assert_eq!(c_par[(m + 2, n + 2)], 0.0);
    }

    /// End-to-end: the kernels built on GEMM (here TRSM via its blocked
    /// updates) give the same answer whatever `DENSE_THREADS` says, because
    /// every internal product is bitwise thread-count-independent.
    #[test]
    fn trsm_solution_is_thread_count_independent(
        n in 65usize..140,
        k in 1usize..24,
        seed in any::<u64>(),
    ) {
        use dense::{trsm, Diag, Triangle};
        let l = gen::well_conditioned_lower(n, seed);
        let b = gen::rhs(n, k, seed ^ 0x5eed);
        let x1 = trsm(Triangle::Lower, Diag::NonUnit, &l, &b).unwrap();
        let x2 = trsm(Triangle::Lower, Diag::NonUnit, &l, &b).unwrap();
        prop_assert!(x1 == x2, "repeated solves must be deterministic");
        prop_assert!(norms::rel_diff(&x1, &trsm(Triangle::Lower, Diag::NonUnit, &l, &b).unwrap()) == 0.0);
    }
}
