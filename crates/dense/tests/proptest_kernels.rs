//! Property-based tests for the dense kernels.
//!
//! These check the algebraic invariants the distributed algorithms rely on:
//! GEMM linearity and associativity with the identity, TRSM ↔ TRMM round
//! trips, triangular inversion correctness, and factorization reconstruction
//! — on randomly sized and randomly filled matrices.

use dense::{
    gemm, gen, matmul, norms, reference, tri_invert, tri_invert_blocked, tri_invert_in_place, trmm,
    trsm, trsm_in_place, Diag, Matrix, Side, Triangle,
};
use proptest::prelude::*;

const TOL: f64 = 1e-8;

fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim, any::<u64>()).prop_map(|(r, c, seed)| gen::uniform(r, c, seed))
}

fn square_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, any::<u64>()).prop_map(|(n, seed)| gen::uniform(n, n, seed))
}

fn lower_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, any::<u64>()).prop_map(|(n, seed)| gen::well_conditioned_lower(n, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (A·B)·C == A·(B·C) for compatible random shapes.
    #[test]
    fn gemm_is_associative(
        (m, k, n, q) in (1usize..24, 1usize..24, 1usize..24, 1usize..24),
        s1 in any::<u64>(), s2 in any::<u64>(), s3 in any::<u64>(),
    ) {
        let a = gen::uniform(m, k, s1);
        let b = gen::uniform(k, n, s2);
        let c = gen::uniform(n, q, s3);
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        prop_assert!(norms::rel_diff(&left, &right) < TOL);
    }

    /// A·(B + C) == A·B + A·C.
    #[test]
    fn gemm_is_distributive(
        (m, k, n) in (1usize..24, 1usize..24, 1usize..24),
        s1 in any::<u64>(), s2 in any::<u64>(), s3 in any::<u64>(),
    ) {
        let a = gen::uniform(m, k, s1);
        let b = gen::uniform(k, n, s2);
        let c = gen::uniform(k, n, s3);
        let left = matmul(&a, &b.add(&c).unwrap());
        let right = matmul(&a, &b).add(&matmul(&a, &c)).unwrap();
        prop_assert!(norms::rel_diff(&left, &right) < TOL);
    }

    /// gemm with beta accumulates: gemm(α,A,B,β,C) == α·A·B + β·C.
    #[test]
    fn gemm_accumulation_semantics(
        (m, k, n) in (1usize..16, 1usize..16, 1usize..16),
        alpha in -2.0f64..2.0, beta in -2.0f64..2.0,
        s1 in any::<u64>(), s2 in any::<u64>(), s3 in any::<u64>(),
    ) {
        let a = gen::uniform(m, k, s1);
        let b = gen::uniform(k, n, s2);
        let c0 = gen::uniform(m, n, s3);
        let mut c = c0.clone();
        gemm(alpha, &a, &b, beta, &mut c).unwrap();
        let expect = matmul(&a, &b).scale(alpha).add(&c0.scale(beta)).unwrap();
        prop_assert!(norms::rel_diff(&c, &expect) < TOL);
    }

    /// Transposition reverses multiplication: (A·B)ᵀ == Bᵀ·Aᵀ.
    #[test]
    fn transpose_reverses_product(
        (m, k, n) in (1usize..20, 1usize..20, 1usize..20),
        s1 in any::<u64>(), s2 in any::<u64>(),
    ) {
        let a = gen::uniform(m, k, s1);
        let b = gen::uniform(k, n, s2);
        let left = matmul(&a, &b).transpose();
        let right = matmul(&b.transpose(), &a.transpose());
        prop_assert!(norms::rel_diff(&left, &right) < TOL);
    }

    /// trsm(L, L·X) == X for well-conditioned lower-triangular L.
    #[test]
    fn trsm_inverts_trmm(
        l in lower_strategy(48),
        k in 1usize..8,
        seed in any::<u64>(),
    ) {
        let n = l.rows();
        let x_true = gen::rhs(n, k, seed);
        let (b, _) = trmm(Triangle::Lower, &l, &x_true).unwrap();
        let x = trsm(Triangle::Lower, Diag::NonUnit, &l, &b).unwrap();
        prop_assert!(norms::rel_diff(&x, &x_true) < TOL);
    }

    /// The computed triangular inverse actually inverts: L·L⁻¹ ≈ I.
    #[test]
    fn tri_inverse_is_inverse(l in lower_strategy(48)) {
        let n = l.rows();
        let (inv, _) = tri_invert(Triangle::Lower, &l).unwrap();
        let prod = matmul(&l, &inv);
        prop_assert!(norms::rel_diff(&prod, &Matrix::identity(n)) < TOL);
        prop_assert!(inv.is_lower_triangular());
    }

    /// Solving via the explicit inverse agrees with substitution
    /// (the numerical-stability premise of the paper's selective inversion).
    #[test]
    fn inverse_solve_matches_substitution(
        l in lower_strategy(40),
        k in 1usize..6,
        seed in any::<u64>(),
    ) {
        let n = l.rows();
        let b = gen::rhs(n, k, seed);
        let x_sub = trsm(Triangle::Lower, Diag::NonUnit, &l, &b).unwrap();
        let (inv, _) = tri_invert(Triangle::Lower, &l).unwrap();
        let x_inv = matmul(&inv, &b);
        prop_assert!(norms::rel_diff(&x_inv, &x_sub) < 1e-6);
    }

    /// Cholesky reconstructs A = L·Lᵀ on random SPD matrices.
    #[test]
    fn cholesky_reconstructs(n in 1usize..40, seed in any::<u64>()) {
        let a = gen::spd(n, seed);
        let (l, _) = dense::cholesky(&a).unwrap();
        let rec = matmul(&l, &l.transpose());
        prop_assert!(norms::rel_diff(&rec, &a) < TOL);
    }

    /// LU with partial pivoting reconstructs P·A = L·U on random matrices.
    #[test]
    fn lu_reconstructs(n in 1usize..32, seed in any::<u64>()) {
        let a = gen::diagonally_dominant(n, seed);
        let f = dense::lu_partial_pivot(&a).unwrap();
        let pa = f.permute(&a);
        prop_assert!(norms::rel_diff(&matmul(&f.l, &f.u), &pa) < TOL);
    }

    /// Block extract / insert round-trips arbitrary blocks.
    #[test]
    fn block_round_trip(
        m in matrix_strategy(24),
        fr in 0.0f64..1.0, fc in 0.0f64..1.0, fh in 0.0f64..1.0, fw in 0.0f64..1.0,
    ) {
        let (rows, cols) = m.dims();
        let r0 = ((rows - 1) as f64 * fr) as usize;
        let c0 = ((cols - 1) as f64 * fc) as usize;
        let nr = 1 + ((rows - r0 - 1) as f64 * fh) as usize;
        let nc = 1 + ((cols - c0 - 1) as f64 * fw) as usize;
        let b = m.block(r0, c0, nr, nc);
        let mut copy = m.clone();
        copy.set_block(r0, c0, &b);
        prop_assert_eq!(copy, m);
    }

    /// The packed GEMM agrees with the naive i-k-j reference for arbitrary
    /// shapes (spanning the pack threshold and ragged tile edges) and
    /// arbitrary alpha/beta, with identical flop accounting.
    #[test]
    fn packed_gemm_matches_naive_reference(
        (m, k, n) in (1usize..96, 1usize..96, 1usize..96),
        alpha in -2.0f64..2.0, beta in -2.0f64..2.0,
        s1 in any::<u64>(), s2 in any::<u64>(), s3 in any::<u64>(),
    ) {
        let a = gen::uniform(m, k, s1);
        let b = gen::uniform(k, n, s2);
        let c0 = gen::uniform(m, n, s3);
        let mut c_fast = c0.clone();
        let f_fast = gemm(alpha, &a, &b, beta, &mut c_fast).unwrap();
        let mut c_ref = c0.clone();
        let f_ref = reference::gemm_naive_ikj(alpha, &a, &b, beta, &mut c_ref);
        prop_assert!(c_fast.max_abs_diff(&c_ref).unwrap() < TOL);
        prop_assert_eq!(f_fast, f_ref);
    }

    /// The transposed GEMM variants agree with the naive reference applied
    /// to explicitly transposed operands.
    #[test]
    fn transposed_gemm_variants_match_naive_reference(
        (m, k, n) in (1usize..48, 1usize..48, 1usize..48),
        alpha in -2.0f64..2.0,
        s1 in any::<u64>(), s2 in any::<u64>(),
    ) {
        // Aᵀ·B with A stored as k×m.
        let a = gen::uniform(k, m, s1);
        let b = gen::uniform(k, n, s2);
        let mut c_fast = Matrix::zeros(m, n);
        dense::gemm_at_b(alpha, &a, &b, 0.0, &mut c_fast).unwrap();
        let mut c_ref = Matrix::zeros(m, n);
        reference::gemm_naive_ikj(alpha, &a.transpose(), &b, 0.0, &mut c_ref);
        prop_assert!(c_fast.max_abs_diff(&c_ref).unwrap() < TOL);

        // A·Bᵀ with B stored as n×k.
        let a2 = gen::uniform(m, k, s1 ^ 1);
        let b2 = gen::uniform(n, k, s2 ^ 1);
        let mut c_fast2 = Matrix::zeros(m, n);
        dense::gemm_a_bt(alpha, &a2, &b2, 0.0, &mut c_fast2).unwrap();
        let mut c_ref2 = Matrix::zeros(m, n);
        reference::gemm_naive_ikj(alpha, &a2, &b2.transpose(), 0.0, &mut c_ref2);
        prop_assert!(c_fast2.max_abs_diff(&c_ref2).unwrap() < TOL);
    }

    /// The blocked TRSM agrees with the unblocked substitution reference on
    /// every side/triangle/diagonal combination, for shapes spanning the
    /// panel boundary, with identical flop accounting.
    #[test]
    fn blocked_trsm_matches_unblocked_reference(
        n in 1usize..150,
        k in 1usize..12,
        side_sel in prop::bool::ANY,
        tri_sel in prop::bool::ANY,
        diag_sel in prop::bool::ANY,
        seed in any::<u64>(),
    ) {
        let side = if side_sel { Side::Left } else { Side::Right };
        let tri = if tri_sel { Triangle::Lower } else { Triangle::Upper };
        let diag = if diag_sel { Diag::NonUnit } else { Diag::Unit };
        let a = match tri {
            Triangle::Lower => gen::well_conditioned_lower(n, seed),
            Triangle::Upper => gen::well_conditioned_upper(n, seed),
        };
        let b = match side {
            Side::Left => gen::rhs(n, k, seed ^ 0xf00d),
            Side::Right => gen::rhs(k, n, seed ^ 0xf00d),
        };
        let mut fast = b.clone();
        let f_fast = trsm_in_place(side, tri, diag, &a, &mut fast).unwrap();
        let mut slow = b.clone();
        let f_slow = reference::trsm_unblocked(side, tri, diag, &a, &mut slow);
        prop_assert!(fast.max_abs_diff(&slow).unwrap() < 1e-6);
        prop_assert_eq!(f_fast, f_slow);
    }

    /// The blocked TRMM agrees with the unblocked reference on both
    /// triangles, with identical flop accounting.
    #[test]
    fn blocked_trmm_matches_unblocked_reference(
        n in 1usize..150,
        k in 1usize..12,
        tri_sel in prop::bool::ANY,
        seed in any::<u64>(),
    ) {
        let tri = if tri_sel { Triangle::Lower } else { Triangle::Upper };
        let a = match tri {
            Triangle::Lower => gen::well_conditioned_lower(n, seed),
            Triangle::Upper => gen::well_conditioned_upper(n, seed),
        };
        let b = gen::rhs(n, k, seed ^ 0xbeef);
        let (fast, f_fast) = trmm(tri, &a, &b).unwrap();
        let (slow, f_slow) = reference::trmm_unblocked(tri, &a, &b);
        prop_assert!(fast.max_abs_diff(&slow).unwrap() < TOL);
        prop_assert_eq!(f_fast, f_slow);
    }

    /// The recursive/blocked triangular inversion agrees with the direct
    /// column-by-column reference for any recursion cut-off, and the direct
    /// base case carries the reference's flop formula.
    #[test]
    fn blocked_trinv_matches_direct_reference(
        n in 1usize..100,
        block in 1usize..32,
        seed in any::<u64>(),
    ) {
        let l = gen::well_conditioned_lower(n, seed);
        let (fast, _) = tri_invert_blocked(Triangle::Lower, &l, block).unwrap();
        let (slow, f_slow) = reference::invert_lower_direct(&l);
        prop_assert!(norms::rel_diff(&fast, &slow) < 1e-6);
        prop_assert!(fast.is_lower_triangular());
        // With the cut-off at n the whole inversion is one direct base case
        // and must report exactly the reference flop count.
        let (_, f_direct) = tri_invert_blocked(Triangle::Lower, &l, n).unwrap();
        prop_assert_eq!(f_direct, f_slow);
    }

    /// The in-place view inversion produces the same inverse (and flops) as
    /// the allocating wrapper, and touches nothing outside its block.
    #[test]
    fn in_place_trinv_matches_wrapper(
        n in 1usize..64,
        off in 0usize..16,
        block in 1usize..24,
        seed in any::<u64>(),
    ) {
        let l = gen::well_conditioned_lower(n, seed);
        let dim = n + off + 3;
        let mut big = gen::uniform(dim, dim, seed ^ 0xabc);
        big.set_block(off, off, &l);
        let f_inplace =
            tri_invert_in_place(Triangle::Lower, &mut big.view_mut(off, off, n, n), block).unwrap();
        let (expect, f_wrapper) = tri_invert_blocked(Triangle::Lower, &l, block).unwrap();
        prop_assert_eq!(f_inplace, f_wrapper);
        let got = big.block(off, off, n, n).lower_triangular_part();
        prop_assert!(got.max_abs_diff(&expect).unwrap() < TOL);
        // A sentinel outside the block is untouched.
        if off > 0 {
            prop_assert_eq!(big[(off - 1, 0)], gen::uniform(dim, dim, seed ^ 0xabc)[(off - 1, 0)]);
        }
    }

    /// Strided (cyclic) decomposition covers the matrix exactly once.
    #[test]
    fn cyclic_decomposition_partitions(
        m in square_strategy(24),
        pr in 1usize..5,
        pc in 1usize..5,
    ) {
        let mut rebuilt = Matrix::zeros(m.rows(), m.cols());
        let mut count = 0usize;
        for r0 in 0..pr.min(m.rows()) {
            for c0 in 0..pc.min(m.cols()) {
                let b = m.strided_block(r0, pr, c0, pc);
                count += b.len();
                rebuilt.set_strided_block(r0, pr, c0, pc, &b);
            }
        }
        prop_assert_eq!(count, m.len());
        prop_assert_eq!(rebuilt, m);
    }
}
