//! General matrix–matrix multiplication kernels.
//!
//! The workhorse is [`gemm`], `C ← α · A · B + β · C`, which routes every
//! non-trivial product through the packed-panel microkernel of
//! [`crate::microkernel`] (pack `A` into `MR`-row column panels and `B` into
//! `NR`-column row panels at an `(MC, KC, NC)` tiling, then drive an `MR×NR`
//! register tile over the packed buffers).  Products above
//! [`PAR_MIN_MADDS`] multiply–adds additionally split their column panels
//! across the [`crate::threads`] worker pool (governed by `DENSE_THREADS`),
//! with bitwise-identical results at every worker count.  [`gemm_views`] is
//! the same operation on borrowed sub-blocks, which is what the blocked
//! triangular kernels and the `catrsm` algorithms use to update blocks in
//! place without cloning them; [`gemm_with_threads`] /
//! [`gemm_views_with_threads`] take an explicit worker budget (benches and
//! determinism tests use them to pin the partitioning).  Convenience
//! wrappers [`matmul`], [`gemm_at_b`] and [`gemm_a_bt`] cover the transposed
//! variants the distributed algorithms need.

use crate::error::DenseError;
use crate::flops::{gemm_flops, FlopCount};
use crate::matrix::{MatMut, MatRef, Matrix};
use crate::microkernel::gemm_views_accumulate_opt;
use crate::pack::op_dims;
use crate::threads::dense_threads;
use crate::Result;

/// Below this many multiply–adds a GEMM never goes parallel on its own:
/// worker spawn/join overhead (tens of microseconds) would rival the compute
/// itself, and the distributed algorithms issue many small block products.
/// Explicit [`gemm_with_threads`] callers bypass this gate.
pub const PAR_MIN_MADDS: usize = 128 * 128 * 128;

/// Lower parallelisation gate used when a thread-local worker budget is in
/// effect ([`crate::threads::with_thread_budget`]): a simulated rank's block
/// products are far smaller than standalone GEMMs but there are many of
/// them, so the break-even point sits much lower than [`PAR_MIN_MADDS`].
pub const BUDGET_MIN_MADDS: usize = 32 * 32 * 32;

/// `C ← alpha * A * B + beta * C`.
///
/// `A` is `m×p`, `B` is `p×n`, `C` must be `m×n`.  Returns the number of
/// flops performed so callers can charge them to the simulated machine.
/// Large products run on the worker pool (see [`crate::threads`]).
pub fn gemm(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) -> Result<FlopCount> {
    gemm_views(alpha, a.as_view(), b.as_view(), beta, &mut c.as_view_mut())
}

/// [`gemm`] with an explicit worker budget instead of the `DENSE_THREADS`
/// default.  `threads == 1` is the deterministic sequential path; any value
/// produces bitwise-identical results.
pub fn gemm_with_threads(
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
    threads: usize,
) -> Result<FlopCount> {
    gemm_views_with_threads(
        alpha,
        a.as_view(),
        b.as_view(),
        beta,
        &mut c.as_view_mut(),
        threads,
    )
}

/// `C ← alpha * A * B + beta * C` on borrowed sub-blocks.
///
/// This is the block-update primitive behind the blocked triangular kernels:
/// the operands may be [`Matrix::view`]s of larger matrices, so callers
/// update sub-blocks in place instead of extracting, multiplying, and
/// re-inserting copies.  Borrow rules guarantee `c` cannot overlap `a` or
/// `b`.  Products of at least [`PAR_MIN_MADDS`] multiply–adds use the worker
/// pool; smaller ones stay on the calling thread.
pub fn gemm_views(
    alpha: f64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    beta: f64,
    c: &mut MatMut<'_>,
) -> Result<FlopCount> {
    gemm_views_opt(alpha, a, false, b, false, beta, c, None)
}

/// [`gemm_views`] with an explicit worker budget.
///
/// Unlike the implicit path this does not apply the [`PAR_MIN_MADDS`] gate:
/// the caller asked for `threads` workers and gets them whenever the product
/// is large enough to take the packed path at all (tiny products still run
/// the sequential small-product loop — identically for every `threads`).
pub fn gemm_views_with_threads(
    alpha: f64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    beta: f64,
    c: &mut MatMut<'_>,
    threads: usize,
) -> Result<FlopCount> {
    gemm_views_opt(alpha, a, false, b, false, beta, c, Some(threads))
}

/// `C ← alpha * Aᵀ * B + beta * C` on borrowed sub-blocks, with `a` the
/// **stored** (un-transposed, `p×m`) operand.
///
/// The transpose is folded into the packing itself — `Aᵀ`'s micro-panels
/// are read straight out of `a` with swapped strides by the pack layer —
/// so no transposed panel is ever materialized,
/// in scratch or elsewhere.  This is the update primitive of the blocked
/// `op(A) = Aᵀ` TRSM drivers.  Results are **bitwise identical** to running
/// [`gemm_views`] on an explicitly materialized transpose, at every worker
/// count.  Subject to the same [`PAR_MIN_MADDS`] gate as [`gemm_views`].
pub fn gemm_views_at(
    alpha: f64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    beta: f64,
    c: &mut MatMut<'_>,
) -> Result<FlopCount> {
    gemm_views_opt(alpha, a, true, b, false, beta, c, None)
}

/// `C ← alpha * A * Bᵀ + beta * C` on borrowed sub-blocks, with `b` the
/// **stored** (un-transposed, `n×p`) operand — the mirror of
/// [`gemm_views_at`] for right-side transposed updates.
pub fn gemm_views_a_bt(
    alpha: f64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    beta: f64,
    c: &mut MatMut<'_>,
) -> Result<FlopCount> {
    gemm_views_opt(alpha, a, false, b, true, beta, c, None)
}

/// The options-driven core every view-level GEMM funnels through:
/// validates the *conceptual* (`op`-applied) dimensions, applies `beta`,
/// resolves the worker budget (`None` = the implicit [`PAR_MIN_MADDS`]
/// gate), and dispatches to the packed accumulator.
#[allow(clippy::too_many_arguments)] // one internal funnel, BLAS-style
fn gemm_views_opt(
    alpha: f64,
    a: MatRef<'_>,
    a_trans: bool,
    b: MatRef<'_>,
    b_trans: bool,
    beta: f64,
    c: &mut MatMut<'_>,
    threads: Option<usize>,
) -> Result<FlopCount> {
    let (m, p) = op_dims(a, a_trans);
    let (p2, n) = op_dims(b, b_trans);
    if p != p2 {
        return Err(DenseError::DimensionMismatch {
            op: "gemm",
            lhs: a.dims(),
            rhs: b.dims(),
        });
    }
    if c.dims() != (m, n) {
        return Err(DenseError::DimensionMismatch {
            op: "gemm (output)",
            lhs: (m, n),
            rhs: c.dims(),
        });
    }

    if beta != 1.0 {
        if beta == 0.0 {
            c.fill_zero();
        } else {
            c.scale_in_place(beta);
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || p == 0 {
        return Ok(FlopCount::ZERO);
    }

    let threads = threads.map(|t| t.max(1)).unwrap_or_else(|| {
        let madds = m.saturating_mul(n).saturating_mul(p);
        // A thread-local budget (a simulated rank's share of the pool)
        // replaces the standalone-caller gate with a much lower one: rank
        // block products are small but numerous, and their worker threads
        // already exist.
        if let Some(budget) = crate::threads::thread_budget() {
            if madds >= BUDGET_MIN_MADDS {
                budget
            } else {
                1
            }
        } else if madds >= PAR_MIN_MADDS {
            dense_threads()
        } else {
            1
        }
    });
    gemm_views_accumulate_opt(alpha, a, a_trans, b, b_trans, c, threads);
    Ok(gemm_flops(m, p, n))
}

/// Convenience wrapper: returns `A · B` as a fresh matrix.
///
/// Panics only on internal errors; dimension mismatches panic with a clear
/// message because they indicate a programming error at the call site.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm(1.0, a, b, 0.0, &mut c).expect("matmul: incompatible dimensions");
    c
}

/// `C ← alpha * Aᵀ * B + beta * C` (A is `p×m`, B is `p×n`, C is `m×n`).
///
/// The transpose is folded into the packing ([`gemm_views_at`]); no `Aᵀ`
/// is materialized, and the result is bitwise identical to multiplying a
/// materialized transpose.
pub fn gemm_at_b(
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) -> Result<FlopCount> {
    gemm_views_at(alpha, a.as_view(), b.as_view(), beta, &mut c.as_view_mut())
}

/// `C ← alpha * A * Bᵀ + beta * C` (A is `m×p`, B is `n×p`, C is `m×n`).
///
/// Like [`gemm_at_b`], the transpose lives in the packing
/// ([`gemm_views_a_bt`]): no `Bᵀ` is materialized.
pub fn gemm_a_bt(
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) -> Result<FlopCount> {
    gemm_views_a_bt(alpha, a.as_view(), b.as_view(), beta, &mut c.as_view_mut())
}

/// Reference (non-blocked) triple-loop multiplication used by the tests to
/// validate the packed kernel.
pub fn matmul_reference(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_reference: inner dims must agree"
    );
    let (m, p) = a.dims();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..p {
                acc += a[(i, k)] * b[(k, j)];
            }
            c[(i, j)] = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn near(a: &Matrix, b: &Matrix, tol: f64) -> bool {
        a.max_abs_diff(b).map(|d| d < tol).unwrap_or(false)
    }

    #[test]
    fn small_known_product() {
        let a = Matrix::from_row_major(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_row_major(2, 2, &[5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = matmul(&a, &b);
        let expect = Matrix::from_row_major(2, 2, &[19.0, 22.0, 43.0, 50.0]).unwrap();
        assert_eq!(c, expect);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_fn(7, 7, |i, j| ((i * 13 + j * 7) % 11) as f64 - 5.0);
        let id = Matrix::identity(7);
        assert!(near(&matmul(&a, &id), &a, 1e-14));
        assert!(near(&matmul(&id, &a), &a, 1e-14));
    }

    #[test]
    fn blocked_matches_reference_rectangular() {
        let a = Matrix::from_fn(70, 130, |i, j| ((i * 31 + j * 17) % 23) as f64 / 23.0 - 0.5);
        let b = Matrix::from_fn(130, 50, |i, j| ((i * 7 + j * 41) % 19) as f64 / 19.0 - 0.5);
        let c1 = matmul(&a, &b);
        let c2 = matmul_reference(&a, &b);
        assert!(near(&c1, &c2, 1e-10));
    }

    #[test]
    fn packed_path_matches_reference_at_scale() {
        // Large enough to exercise every level of the (MC, KC, NC) tiling,
        // with ragged edges on all three dimensions.
        let a = Matrix::from_fn(261, 300, |i, j| {
            ((i * 31 + j * 17) % 23) as f64 / 23.0 - 0.5
        });
        let b = Matrix::from_fn(300, 137, |i, j| ((i * 7 + j * 41) % 19) as f64 / 19.0 - 0.5);
        let c1 = matmul(&a, &b);
        let c2 = matmul_reference(&a, &b);
        assert!(near(&c1, &c2, 1e-9));
    }

    #[test]
    fn gemm_views_updates_blocks_in_place() {
        let big_a = Matrix::from_fn(9, 9, |i, j| (i + j) as f64 / 5.0);
        let big_b = Matrix::from_fn(9, 9, |i, j| (i as f64) - (j as f64));
        let mut c = Matrix::zeros(6, 6);
        // C[2..5, 1..4] += 2 · A[0..3, 3..7] · B[2..6, 4..7]
        let f = gemm_views(
            2.0,
            big_a.view(0, 3, 3, 4),
            big_b.view(2, 4, 4, 3),
            1.0,
            &mut c.view_mut(2, 1, 3, 3),
        )
        .unwrap();
        assert_eq!(f, gemm_flops(3, 4, 3));
        let expect = matmul(&big_a.block(0, 3, 3, 4), &big_b.block(2, 4, 4, 3)).scale(2.0);
        assert!(near(&c.block(2, 1, 3, 3), &expect, 1e-12));
        // Everything outside the target block is untouched.
        assert_eq!(c[(0, 0)], 0.0);
        assert_eq!(c[(5, 5)], 0.0);
    }

    #[test]
    fn gemm_views_dimension_errors() {
        let a = Matrix::zeros(3, 4);
        let b = Matrix::zeros(5, 2);
        let mut c = Matrix::zeros(3, 2);
        assert!(gemm_views(1.0, a.as_view(), b.as_view(), 0.0, &mut c.as_view_mut()).is_err());
        let b_ok = Matrix::zeros(4, 2);
        let mut c_bad = Matrix::zeros(2, 2);
        assert!(gemm_views(
            1.0,
            a.as_view(),
            b_ok.as_view(),
            0.0,
            &mut c_bad.as_view_mut()
        )
        .is_err());
    }

    #[test]
    fn gemm_accumulate_and_scale() {
        let a = Matrix::from_fn(5, 4, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(4, 3, |i, j| (i as f64) - (j as f64));
        let mut c = Matrix::filled(5, 3, 1.0);
        // C = 2*A*B + 3*C
        gemm(2.0, &a, &b, 3.0, &mut c).unwrap();
        let mut expect = matmul(&a, &b).scale(2.0);
        expect.axpy(3.0, &Matrix::filled(5, 3, 1.0)).unwrap();
        assert!(near(&c, &expect, 1e-12));
    }

    #[test]
    fn gemm_beta_zero_overwrites_nan_free() {
        let a = Matrix::identity(3);
        let b = Matrix::identity(3);
        let mut c = Matrix::filled(3, 3, f64::NAN);
        // beta = 0 must not propagate NaNs from the old C.
        gemm(1.0, &a, &b, 0.0, &mut c).unwrap();
        assert_eq!(c, Matrix::identity(3));
    }

    #[test]
    fn gemm_alpha_zero_only_scales() {
        let a = Matrix::filled(3, 3, 1.0);
        let b = Matrix::filled(3, 3, 1.0);
        let mut c = Matrix::filled(3, 3, 2.0);
        let flops = gemm(0.0, &a, &b, 0.5, &mut c).unwrap();
        assert_eq!(flops, FlopCount::ZERO);
        assert_eq!(c, Matrix::filled(3, 3, 1.0));
    }

    #[test]
    fn gemm_dimension_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let mut c = Matrix::zeros(2, 2);
        assert!(gemm(1.0, &a, &b, 0.0, &mut c).is_err());
        let b_ok = Matrix::zeros(3, 2);
        let mut c_bad = Matrix::zeros(3, 3);
        assert!(gemm(1.0, &a, &b_ok, 0.0, &mut c_bad).is_err());
    }

    #[test]
    fn gemm_reports_flops() {
        let a = Matrix::zeros(4, 5);
        let b = Matrix::zeros(5, 6);
        let mut c = Matrix::zeros(4, 6);
        let f = gemm(1.0, &a, &b, 0.0, &mut c).unwrap();
        assert_eq!(f, gemm_flops(4, 5, 6));
    }

    #[test]
    fn pack_transposed_views_match_materialized_transposes_bitwise() {
        // The pack-transposed entry points must be *bitwise* equal to
        // gemm_views on explicitly materialized transposes (the packed
        // buffers hold identical values and the accumulation order is the
        // same), across shapes spanning the small and packed paths and
        // ragged panel edges — the blocked transposed-TRSM update shapes.
        for &(m, k, n) in &[(7, 5, 9), (64, 130, 96), (61, 200, 17), (130, 64, 257)] {
            let a = Matrix::from_fn(k, m, |i, j| ((i * 13 + j * 7) % 17) as f64 / 17.0 - 0.4);
            let b = Matrix::from_fn(k, n, |i, j| ((i * 5 + j * 29) % 13) as f64 / 13.0 - 0.6);
            let mut c1 = Matrix::from_fn(m, n, |i, j| (i + j) as f64 * 0.01);
            let mut c2 = c1.clone();
            let f1 =
                gemm_views_at(-1.5, a.as_view(), b.as_view(), 1.0, &mut c1.as_view_mut()).unwrap();
            let at = a.transpose();
            let f2 =
                gemm_views(-1.5, at.as_view(), b.as_view(), 1.0, &mut c2.as_view_mut()).unwrap();
            assert_eq!(f1, f2);
            assert!(c1 == c2, "gemm_views_at diverged at ({m},{k},{n})");

            let x = Matrix::from_fn(m, k, |i, j| ((i * 3 + j * 11) % 19) as f64 / 19.0 - 0.5);
            let p = Matrix::from_fn(n, k, |i, j| ((i * 23 + j * 3) % 11) as f64 / 11.0 - 0.5);
            let mut d1 = Matrix::from_fn(m, n, |i, j| (2 * i + j) as f64 * 0.02);
            let mut d2 = d1.clone();
            gemm_views_a_bt(2.0, x.as_view(), p.as_view(), 0.5, &mut d1.as_view_mut()).unwrap();
            let pt = p.transpose();
            gemm_views(2.0, x.as_view(), pt.as_view(), 0.5, &mut d2.as_view_mut()).unwrap();
            assert!(d1 == d2, "gemm_views_a_bt diverged at ({m},{k},{n})");
        }
    }

    #[test]
    fn pack_transposed_views_reject_mismatched_conceptual_dims() {
        // a stored 4×3 -> op(a) is 3×4; pairing with a 3-row b must fail.
        let a = Matrix::zeros(4, 3);
        let b = Matrix::zeros(3, 2);
        let mut c = Matrix::zeros(3, 2);
        assert!(gemm_views_at(1.0, a.as_view(), b.as_view(), 0.0, &mut c.as_view_mut()).is_err());
        // And the output must match the conceptual (m, n).
        let b_ok = Matrix::zeros(4, 2);
        let mut c_bad = Matrix::zeros(4, 2);
        assert!(gemm_views_at(
            1.0,
            a.as_view(),
            b_ok.as_view(),
            0.0,
            &mut c_bad.as_view_mut()
        )
        .is_err());
    }

    #[test]
    fn transposed_variants() {
        let a = Matrix::from_fn(4, 6, |i, j| (i * 6 + j) as f64 / 10.0);
        let b = Matrix::from_fn(4, 3, |i, j| (i + 2 * j) as f64 / 7.0);
        // Aᵀ B : (6x4)(4x3) = 6x3
        let mut c = Matrix::zeros(6, 3);
        gemm_at_b(1.0, &a, &b, 0.0, &mut c).unwrap();
        assert!(near(&c, &matmul(&a.transpose(), &b), 1e-12));

        let b2 = Matrix::from_fn(5, 6, |i, j| (i * j) as f64 / 3.0);
        // A B2ᵀ : (4x6)(6x5) = 4x5
        let mut c2 = Matrix::zeros(4, 5);
        gemm_a_bt(1.0, &a, &b2, 0.0, &mut c2).unwrap();
        assert!(near(&c2, &matmul(&a, &b2.transpose()), 1e-12));
    }

    #[test]
    fn empty_dimensions_are_ok() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        let mut c = Matrix::zeros(0, 3);
        assert_eq!(gemm(1.0, &a, &b, 0.0, &mut c).unwrap(), FlopCount::ZERO);
    }
}
