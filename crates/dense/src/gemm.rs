//! General matrix–matrix multiplication kernels.
//!
//! The workhorse is [`gemm`], a cache-blocked implementation of
//! `C ← α · A · B + β · C`.  Convenience wrappers [`matmul`], [`gemm_at_b`]
//! and [`gemm_a_bt`] cover the transposed variants the distributed algorithms
//! need (the paper's `MM` subroutine and the triangular-inversion updates).

use crate::error::DenseError;
use crate::flops::{gemm_flops, FlopCount};
use crate::matrix::Matrix;
use crate::Result;

/// Cache-block edge length used by the blocked kernel.  Chosen so three
/// `BLOCK × BLOCK` f64 tiles fit comfortably in a typical L1 cache.
const BLOCK: usize = 64;

/// `C ← alpha * A * B + beta * C`.
///
/// `A` is `m×p`, `B` is `p×n`, `C` must be `m×n`.  Returns the number of
/// flops performed so callers can charge them to the simulated machine.
pub fn gemm(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) -> Result<FlopCount> {
    let (m, p) = a.dims();
    let (p2, n) = b.dims();
    if p != p2 {
        return Err(DenseError::DimensionMismatch {
            op: "gemm",
            lhs: a.dims(),
            rhs: b.dims(),
        });
    }
    if c.dims() != (m, n) {
        return Err(DenseError::DimensionMismatch {
            op: "gemm (output)",
            lhs: (m, n),
            rhs: c.dims(),
        });
    }

    if beta != 1.0 {
        if beta == 0.0 {
            c.fill_zero();
        } else {
            c.scale_in_place(beta);
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || p == 0 {
        return Ok(FlopCount::ZERO);
    }

    // Blocked i-k-j loop order: the innermost loop walks rows of B and C
    // contiguously, which is the cache-friendly order for row-major storage.
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let c_data = c.as_mut_slice();
    for ib in (0..m).step_by(BLOCK) {
        let i_end = (ib + BLOCK).min(m);
        for kb in (0..p).step_by(BLOCK) {
            let k_end = (kb + BLOCK).min(p);
            for jb in (0..n).step_by(BLOCK) {
                let j_end = (jb + BLOCK).min(n);
                for i in ib..i_end {
                    let a_row = &a_data[i * p..(i + 1) * p];
                    let c_row = &mut c_data[i * n..(i + 1) * n];
                    for k in kb..k_end {
                        let aik = alpha * a_row[k];
                        if aik == 0.0 {
                            continue;
                        }
                        let b_row = &b_data[k * n..(k + 1) * n];
                        for j in jb..j_end {
                            c_row[j] += aik * b_row[j];
                        }
                    }
                }
            }
        }
    }
    Ok(gemm_flops(m, p, n))
}

/// Convenience wrapper: returns `A · B` as a fresh matrix.
///
/// Panics only on internal errors; dimension mismatches panic with a clear
/// message because they indicate a programming error at the call site.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm(1.0, a, b, 0.0, &mut c).expect("matmul: incompatible dimensions");
    c
}

/// `C ← alpha * Aᵀ * B + beta * C` (A is `p×m`, B is `p×n`, C is `m×n`).
pub fn gemm_at_b(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) -> Result<FlopCount> {
    let at = a.transpose();
    gemm(alpha, &at, b, beta, c)
}

/// `C ← alpha * A * Bᵀ + beta * C` (A is `m×p`, B is `n×p`, C is `m×n`).
pub fn gemm_a_bt(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) -> Result<FlopCount> {
    let bt = b.transpose();
    gemm(alpha, a, &bt, beta, c)
}

/// Reference (non-blocked) triple-loop multiplication used by the tests to
/// validate the blocked kernel.
pub fn matmul_reference(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul_reference: inner dims must agree");
    let (m, p) = a.dims();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..p {
                acc += a[(i, k)] * b[(k, j)];
            }
            c[(i, j)] = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn near(a: &Matrix, b: &Matrix, tol: f64) -> bool {
        a.max_abs_diff(b).map(|d| d < tol).unwrap_or(false)
    }

    #[test]
    fn small_known_product() {
        let a = Matrix::from_row_major(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_row_major(2, 2, &[5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = matmul(&a, &b);
        let expect = Matrix::from_row_major(2, 2, &[19.0, 22.0, 43.0, 50.0]).unwrap();
        assert_eq!(c, expect);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_fn(7, 7, |i, j| ((i * 13 + j * 7) % 11) as f64 - 5.0);
        let id = Matrix::identity(7);
        assert!(near(&matmul(&a, &id), &a, 1e-14));
        assert!(near(&matmul(&id, &a), &a, 1e-14));
    }

    #[test]
    fn blocked_matches_reference_rectangular() {
        let a = Matrix::from_fn(70, 130, |i, j| ((i * 31 + j * 17) % 23) as f64 / 23.0 - 0.5);
        let b = Matrix::from_fn(130, 50, |i, j| ((i * 7 + j * 41) % 19) as f64 / 19.0 - 0.5);
        let c1 = matmul(&a, &b);
        let c2 = matmul_reference(&a, &b);
        assert!(near(&c1, &c2, 1e-10));
    }

    #[test]
    fn gemm_accumulate_and_scale() {
        let a = Matrix::from_fn(5, 4, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(4, 3, |i, j| (i as f64) - (j as f64));
        let mut c = Matrix::filled(5, 3, 1.0);
        // C = 2*A*B + 3*C
        gemm(2.0, &a, &b, 3.0, &mut c).unwrap();
        let mut expect = matmul(&a, &b).scale(2.0);
        expect.axpy(3.0, &Matrix::filled(5, 3, 1.0)).unwrap();
        assert!(near(&c, &expect, 1e-12));
    }

    #[test]
    fn gemm_beta_zero_overwrites_nan_free() {
        let a = Matrix::identity(3);
        let b = Matrix::identity(3);
        let mut c = Matrix::filled(3, 3, f64::NAN);
        // beta = 0 must not propagate NaNs from the old C.
        gemm(1.0, &a, &b, 0.0, &mut c).unwrap();
        assert_eq!(c, Matrix::identity(3));
    }

    #[test]
    fn gemm_alpha_zero_only_scales() {
        let a = Matrix::filled(3, 3, 1.0);
        let b = Matrix::filled(3, 3, 1.0);
        let mut c = Matrix::filled(3, 3, 2.0);
        let flops = gemm(0.0, &a, &b, 0.5, &mut c).unwrap();
        assert_eq!(flops, FlopCount::ZERO);
        assert_eq!(c, Matrix::filled(3, 3, 1.0));
    }

    #[test]
    fn gemm_dimension_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let mut c = Matrix::zeros(2, 2);
        assert!(gemm(1.0, &a, &b, 0.0, &mut c).is_err());
        let b_ok = Matrix::zeros(3, 2);
        let mut c_bad = Matrix::zeros(3, 3);
        assert!(gemm(1.0, &a, &b_ok, 0.0, &mut c_bad).is_err());
    }

    #[test]
    fn gemm_reports_flops() {
        let a = Matrix::zeros(4, 5);
        let b = Matrix::zeros(5, 6);
        let mut c = Matrix::zeros(4, 6);
        let f = gemm(1.0, &a, &b, 0.0, &mut c).unwrap();
        assert_eq!(f, gemm_flops(4, 5, 6));
    }

    #[test]
    fn transposed_variants() {
        let a = Matrix::from_fn(4, 6, |i, j| (i * 6 + j) as f64 / 10.0);
        let b = Matrix::from_fn(4, 3, |i, j| (i + 2 * j) as f64 / 7.0);
        // Aᵀ B : (6x4)(4x3) = 6x3
        let mut c = Matrix::zeros(6, 3);
        gemm_at_b(1.0, &a, &b, 0.0, &mut c).unwrap();
        assert!(near(&c, &matmul(&a.transpose(), &b), 1e-12));

        let b2 = Matrix::from_fn(5, 6, |i, j| (i * j) as f64 / 3.0);
        // A B2ᵀ : (4x6)(6x5) = 4x5
        let mut c2 = Matrix::zeros(4, 5);
        gemm_a_bt(1.0, &a, &b2, 0.0, &mut c2).unwrap();
        assert!(near(&c2, &matmul(&a, &b2.transpose()), 1e-12));
    }

    #[test]
    fn empty_dimensions_are_ok() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        let mut c = Matrix::zeros(0, 3);
        assert_eq!(gemm(1.0, &a, &b, 0.0, &mut c).unwrap(), FlopCount::ZERO);
    }
}
