//! # `dense` — local dense linear-algebra kernels
//!
//! This crate is the *BLAS substitute* for the communication-avoiding TRSM
//! reproduction (Wicky, Solomonik, Hoefler, IPDPS 2017).  The paper's
//! algorithms only need a small set of local kernels on each processor:
//!
//! * general matrix–matrix multiplication ([`gemm`], [`matmul`]),
//! * triangular solve with one or many right-hand sides ([`trsm`]),
//! * triangular matrix inversion ([`tri_invert`]),
//! * triangular matrix–matrix multiplication ([`trmm`]),
//! * Cholesky and LU factorization ([`cholesky`], [`lu`], [`lu_partial_pivot`])
//!   for the example applications,
//! * norms and residual checks ([`norms`]),
//! * random well-conditioned test matrices ([`gen`]).
//!
//! All kernels operate on the row-major [`Matrix`] type and are written in
//! safe Rust.  They are deliberately straightforward (cache-blocked where it
//! is cheap to do so) because in the reproduction the local kernels only
//! contribute to the `γ·F` term of the α–β–γ execution-time model; the paper's
//! claims are about communication, which is handled by the `simnet`, `pgrid`
//! and `catrsm` crates.
//!
//! ## Quick example
//!
//! ```
//! use dense::{Matrix, Triangle, Diag, trsm, gen};
//! let n = 32;
//! let k = 8;
//! let l = gen::well_conditioned_lower(n, 42);
//! let x_true = Matrix::from_fn(n, k, |i, j| (i + j) as f64 / (n + k) as f64);
//! let b = dense::matmul(&l, &x_true);
//! let x = trsm(Triangle::Lower, Diag::NonUnit, &l, &b).unwrap();
//! assert!(dense::norms::rel_diff(&x, &x_true) < 1e-10);
//! ```

pub mod error;
pub mod matrix;
pub mod gemm;
pub mod trsm;
pub mod trmm;
pub mod trinv;
pub mod factor;
pub mod norms;
pub mod gen;
pub mod flops;

pub use error::DenseError;
pub use matrix::Matrix;
pub use gemm::{gemm, matmul, gemm_at_b, gemm_a_bt};
pub use trsm::{trsm, trsm_in_place, trsv, Side, Triangle, Diag};
pub use trmm::trmm;
pub use trinv::{tri_invert, tri_invert_blocked};
pub use factor::{cholesky, lu, lu_partial_pivot, LuFactors};
pub use flops::FlopCount;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DenseError>;
