//! # `dense` — local dense linear-algebra kernels
//!
//! This crate is the *BLAS substitute* for the communication-avoiding TRSM
//! reproduction (Wicky, Solomonik, Hoefler, IPDPS 2017).  The paper's
//! algorithms only need a small set of local kernels on each processor:
//!
//! * general matrix–matrix multiplication ([`gemm`](fn@gemm), [`matmul`]),
//! * triangular solve with one or many right-hand sides ([`trsm`](fn@trsm)),
//! * triangular matrix inversion ([`tri_invert`]),
//! * triangular matrix–matrix multiplication ([`trmm`](fn@trmm)),
//! * Cholesky and LU factorization ([`cholesky`], [`lu`], [`lu_partial_pivot`])
//!   for the example applications,
//! * norms and residual checks ([`norms`]),
//! * random well-conditioned test matrices ([`gen`]).
//!
//! All kernels operate on the row-major [`Matrix`] type.  The O(n³) hot
//! paths all funnel through one packed-panel GEMM: [`pack`] copies `(MC, KC)`
//! blocks of `A` and `(KC, NC)` blocks of `B` into thread-local micro-panel
//! buffers, and [`microkernel`] drives an `MR×NR` register tile over them.
//! Large products additionally split their column panels across the
//! [`threads`] worker pool (`DENSE_THREADS` workers, scoped per GEMM call)
//! with bitwise-identical results at every worker count.  The triangular
//! kernels ([`trsm`](fn@trsm), [`trmm`](fn@trmm), [`trinv`]) are blocked so their off-diagonal
//! updates — where almost all of their flops are — run through that same
//! GEMM; only small diagonal blocks use substitution loops.  [`reference`](mod@reference)
//! keeps the original unblocked kernels as the ground truth for tests and
//! benches.  Block-level operations avoid copies via the borrowed views
//! [`MatRef`] / [`MatMut`] and [`gemm_views`]; [`MatMut`] is a raw pointer
//! inside (safe API) so it can split by rows *and* by columns
//! ([`MatMut::split_cols_at_mut`]), which is what lets every blocked update
//! — including the right-side TRSM cases — stay on the safe [`gemm_views`]
//! path.
//!
//! Every kernel reports a [`FlopCount`] following the classical formulas, so
//! the `γ·F` term of the paper's α–β–γ execution-time model is unchanged by
//! how the arithmetic is scheduled; the distributed algorithms in `catrsm`
//! charge these counts to the simulated machine.
//!
//! See `crates/dense/README.md` for the kernel architecture and the
//! `(MC, KC, NC, MR, NR)` tuning knobs.
//!
//! ## Quick example
//!
//! ```
//! use dense::{Matrix, Triangle, Diag, trsm, gen};
//! let n = 32;
//! let k = 8;
//! let l = gen::well_conditioned_lower(n, 42);
//! let x_true = Matrix::from_fn(n, k, |i, j| (i + j) as f64 / (n + k) as f64);
//! let b = dense::matmul(&l, &x_true);
//! let x = trsm(Triangle::Lower, Diag::NonUnit, &l, &b).unwrap();
//! assert!(dense::norms::rel_diff(&x, &x_true) < 1e-10);
//! ```

pub mod error;
pub mod factor;
pub mod flops;
pub mod gemm;
pub mod gen;
pub mod matrix;
pub mod microkernel;
pub mod norms;
pub mod pack;
pub mod reference;
pub mod threads;
pub mod trinv;
pub mod trmm;
pub mod trsm;

pub use error::DenseError;
pub use factor::{cholesky, lu, lu_partial_pivot, LuFactors};
pub use flops::FlopCount;
pub use gemm::{
    gemm, gemm_a_bt, gemm_at_b, gemm_views, gemm_views_a_bt, gemm_views_at,
    gemm_views_with_threads, gemm_with_threads, matmul,
};
pub use matrix::{MatMut, MatRef, Matrix};
pub use threads::{dense_threads, run_region, thread_budget, with_thread_budget};
pub use trinv::{tri_invert, tri_invert_blocked, tri_invert_in_place};
pub use trmm::trmm;
pub use trsm::{
    trsm, trsm_in_place, trsm_in_place_opts, trsm_opts, trsv, trsv_in_place, trsv_in_place_opts,
    trsv_opts, Diag, Side, SolveOpts, Transpose, Triangle, PIVOT_TOL, TRSM_BLOCK,
};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DenseError>;
