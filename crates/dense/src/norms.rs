//! Matrix norms and residual helpers used by tests and experiments.

use crate::matrix::Matrix;

/// Frobenius norm `‖A‖_F`.
pub fn frobenius(a: &Matrix) -> f64 {
    a.as_slice().iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Max (Chebyshev) norm `max_{ij} |a_ij|`.
pub fn max_norm(a: &Matrix) -> f64 {
    a.as_slice().iter().map(|v| v.abs()).fold(0.0, f64::max)
}

/// Infinity norm (maximum absolute row sum).
pub fn inf_norm(a: &Matrix) -> f64 {
    (0..a.rows())
        .map(|i| a.row(i).iter().map(|v| v.abs()).sum::<f64>())
        .fold(0.0, f64::max)
}

/// One norm (maximum absolute column sum).
pub fn one_norm(a: &Matrix) -> f64 {
    (0..a.cols())
        .map(|j| (0..a.rows()).map(|i| a[(i, j)].abs()).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Relative difference `‖A - B‖_F / max(‖B‖_F, 1)`.
///
/// Returns `f64::INFINITY` when the dimensions do not match.
pub fn rel_diff(a: &Matrix, b: &Matrix) -> f64 {
    if a.dims() != b.dims() {
        return f64::INFINITY;
    }
    let diff = a.sub(b).expect("dims checked");
    frobenius(&diff) / frobenius(b).max(1.0)
}

/// Relative residual of a triangular solve: `‖L·X − B‖_F / (‖L‖_F ‖X‖_F + ‖B‖_F)`.
pub fn trsm_residual(l: &Matrix, x: &Matrix, b: &Matrix) -> f64 {
    let lx = crate::gemm::matmul(l, x);
    let num = frobenius(&lx.sub(b).expect("dims"));
    let den = frobenius(l) * frobenius(x) + frobenius(b);
    if den == 0.0 {
        num
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frobenius_known_value() {
        let a = Matrix::from_row_major(2, 2, &[3.0, 0.0, 0.0, 4.0]).unwrap();
        assert!((frobenius(&a) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn max_and_inf_and_one_norms() {
        let a = Matrix::from_row_major(2, 3, &[1.0, -2.0, 3.0, -4.0, 5.0, -6.0]).unwrap();
        assert_eq!(max_norm(&a), 6.0);
        assert_eq!(inf_norm(&a), 15.0);
        assert_eq!(one_norm(&a), 9.0);
    }

    #[test]
    fn rel_diff_zero_for_identical() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * j) as f64);
        assert_eq!(rel_diff(&a, &a), 0.0);
        let b = Matrix::zeros(3, 3);
        assert!(rel_diff(&a, &b).is_infinite());
    }

    #[test]
    fn trsm_residual_zero_for_exact_solution() {
        let l = Matrix::from_row_major(2, 2, &[2.0, 0.0, 1.0, 3.0]).unwrap();
        let x = Matrix::from_row_major(2, 1, &[1.0, 2.0]).unwrap();
        let b = crate::gemm::matmul(&l, &x);
        assert!(trsm_residual(&l, &x, &b) < 1e-16);
        // Perturbed solution has a visible residual.
        let mut x2 = x.clone();
        x2[(0, 0)] += 0.5;
        assert!(trsm_residual(&l, &x2, &b) > 1e-3);
    }

    #[test]
    fn norms_of_empty_matrix() {
        let e = Matrix::zeros(0, 0);
        assert_eq!(frobenius(&e), 0.0);
        assert_eq!(max_norm(&e), 0.0);
        assert_eq!(inf_norm(&e), 0.0);
    }
}
