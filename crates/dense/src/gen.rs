//! Random test-matrix generators.
//!
//! The experiments need reproducible, *well-conditioned* triangular matrices:
//! triangular solves amplify rounding error with the condition number, and the
//! paper's point is communication cost, not conditioning.  The generators here
//! use strong diagonals so residual checks stay meaningful at every size the
//! benchmarks run.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A uniformly random `rows × cols` matrix with entries in `[-1, 1)`.
pub fn uniform(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

/// A random lower-triangular matrix with unit-magnitude off-diagonal entries
/// and a dominant diagonal, so its condition number stays small.
pub fn well_conditioned_lower(n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(n, n, |i, j| {
        if j < i {
            rng.gen_range(-1.0..1.0) / (n as f64).sqrt()
        } else if j == i {
            1.0 + rng.gen_range(0.0..1.0)
        } else {
            0.0
        }
    })
}

/// A random upper-triangular matrix with a dominant diagonal.
pub fn well_conditioned_upper(n: usize, seed: u64) -> Matrix {
    well_conditioned_lower(n, seed).transpose()
}

/// A random unit lower-triangular matrix (ones on the diagonal).
pub fn unit_lower(n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(n, n, |i, j| {
        if j < i {
            rng.gen_range(-1.0..1.0) / (n as f64).sqrt()
        } else if j == i {
            1.0
        } else {
            0.0
        }
    })
}

/// A random symmetric positive-definite matrix (`M·Mᵀ + n·I`).
pub fn spd(n: usize, seed: u64) -> Matrix {
    let m = uniform(n, n, seed);
    let mut a = crate::gemm::matmul(&m, &m.transpose());
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    a
}

/// A random diagonally-dominant general matrix (safe for non-pivoted LU).
pub fn diagonally_dominant(n: usize, seed: u64) -> Matrix {
    let mut a = uniform(n, n, seed);
    for i in 0..n {
        let row_sum: f64 = a.row(i).iter().map(|v| v.abs()).sum();
        a[(i, i)] = row_sum + 1.0;
    }
    a
}

/// A right-hand-side matrix whose entries are `O(1)` regardless of size.
pub fn rhs(n: usize, k: usize, seed: u64) -> Matrix {
    uniform(n, k, seed ^ 0x9e37_79b9_7f4a_7c15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms;
    use crate::trsm::{trsm, Diag, Triangle};

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform(5, 5, 7), uniform(5, 5, 7));
        assert_eq!(well_conditioned_lower(8, 3), well_conditioned_lower(8, 3));
        assert_ne!(uniform(5, 5, 7), uniform(5, 5, 8));
    }

    #[test]
    fn lower_generator_is_lower_triangular() {
        let l = well_conditioned_lower(33, 2);
        assert!(l.is_lower_triangular());
        for i in 0..33 {
            assert!(l[(i, i)] >= 1.0);
        }
    }

    #[test]
    fn upper_generator_is_upper_triangular() {
        assert!(well_conditioned_upper(12, 5).is_upper_triangular());
    }

    #[test]
    fn unit_lower_has_unit_diagonal() {
        let l = unit_lower(16, 4);
        assert!(l.is_lower_triangular());
        for i in 0..16 {
            assert_eq!(l[(i, i)], 1.0);
        }
    }

    #[test]
    fn spd_is_symmetric_and_choleskyable() {
        let a = spd(20, 9);
        for i in 0..20 {
            for j in 0..20 {
                assert!((a[(i, j)] - a[(j, i)]).abs() < 1e-12);
            }
        }
        assert!(crate::factor::cholesky(&a).is_ok());
    }

    #[test]
    fn diagonally_dominant_lu_without_pivoting_works() {
        let a = diagonally_dominant(18, 13);
        assert!(crate::factor::lu(&a).is_ok());
    }

    #[test]
    fn well_conditioned_solves_accurately_at_scale() {
        // The whole point of the generator: residuals stay tiny at larger n.
        let n = 256;
        let l = well_conditioned_lower(n, 77);
        let x_true = rhs(n, 4, 5);
        let b = crate::gemm::matmul(&l, &x_true);
        let x = trsm(Triangle::Lower, Diag::NonUnit, &l, &b).unwrap();
        assert!(norms::rel_diff(&x, &x_true) < 1e-10);
    }
}
