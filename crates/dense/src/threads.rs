//! The in-tree worker pool behind the multithreaded packed GEMM.
//!
//! The pool is deliberately small: a parallel region is a `Vec` of
//! independent jobs, one per worker, executed by `join_all`.  Workers are
//! **scoped** (spawned through the crossbeam shim's `thread::scope`), so jobs
//! may borrow the caller's stack — packed panels, matrix views — with no
//! `'static` bounds, no job queue, and no idle threads between regions:
//! worker lifetime *is* the region.  That matters here because the simulated
//! machine already provides rank-level parallelism; a persistent pool would
//! pin threads that sit idle for most of a simulation.
//!
//! The worker count comes from [`dense_threads`]: the `DENSE_THREADS`
//! environment variable when set (clamped to `1..=MAX_THREADS`), otherwise
//! the machine's available parallelism.  With one worker, `join_all` runs
//! the single job inline on the caller's thread — a deterministic fallback
//! with no thread machinery at all.  Kernels built on the pool (the packed
//! GEMM's column partitioning) produce bitwise-identical results for every
//! worker count; `DENSE_THREADS` is a throughput knob, not a semantics knob.

use std::cell::Cell;
use std::sync::OnceLock;

/// Upper bound on the worker count accepted from `DENSE_THREADS`.
pub const MAX_THREADS: usize = 64;

thread_local! {
    /// Per-thread worker-budget override installed by [`with_thread_budget`].
    static THREAD_BUDGET: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Runs `f` with a thread-local worker budget in effect: implicit
/// (`threads = None`) GEMM calls issued from *this thread* inside `f` may
/// use up to `budget` workers in place of the global
/// [`crate::gemm::PAR_MIN_MADDS`]-gated [`dense_threads`] resolution.
///
/// This is how the simulated machine gives each rank its share of the pool:
/// a rank computing alongside `w − 1` other ranks should split block
/// products over `workers ⁄ ranks` threads, not claim the whole pool (nor be
/// locked out of it by the gate sized for standalone callers).  The budget
/// is a throughput knob only — kernel results are bitwise identical at every
/// worker count — and it does not propagate into spawned workers, so nested
/// parallel regions are unaffected.  The previous budget (usually none) is
/// restored when `f` returns.
pub fn with_thread_budget<R>(budget: usize, f: impl FnOnce() -> R) -> R {
    let previous = THREAD_BUDGET.replace(Some(budget.clamp(1, MAX_THREADS)));
    let result = f();
    THREAD_BUDGET.set(previous);
    result
}

/// The calling thread's worker-budget override, if one is in effect.
pub fn thread_budget() -> Option<usize> {
    THREAD_BUDGET.get()
}

/// Number of workers parallel dense kernels use.
///
/// Resolution order, cached for the lifetime of the process:
/// 1. `DENSE_THREADS` if set to a positive integer (clamped to
///    [`MAX_THREADS`]); an unparsable value falls back to `1` so a typo
///    degrades to the deterministic sequential path rather than surprising
///    oversubscription;
/// 2. otherwise [`std::thread::available_parallelism`].
pub fn dense_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| match std::env::var("DENSE_THREADS") {
        Ok(raw) => raw
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or(1)
            .min(MAX_THREADS),
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(MAX_THREADS),
    })
}

/// Runs `f(0), f(1), …, f(workers - 1)` concurrently, one scoped worker per
/// index, and returns when all have finished.
///
/// This is the long-lived-region counterpart of `join_all`: instead of one
/// short job per worker, every worker runs the *same* closure for the whole
/// region and coordinates through whatever synchronization the closure
/// captures (the `sparse` crate's level-scheduled solver drives one
/// [`std::sync::Barrier`] wait per dependency level this way, amortizing the
/// spawn cost over the entire solve).  Worker 0 runs on the calling thread;
/// with `workers <= 1` the closure runs inline with no thread machinery.
///
/// A panicking worker propagates to the caller after the region is joined —
/// but a closure that blocks on a barrier whose other participants died will
/// deadlock first, so closures must not panic between barrier waits unless
/// every worker panics together.
pub fn run_region<F>(workers: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if workers <= 1 {
        f(0);
        return;
    }
    crossbeam::thread::scope(|s| {
        for w in 1..workers {
            let f = &f;
            s.spawn(move |_| f(w));
        }
        f(0);
    })
    .expect("dense worker pool: scope failed");
}

/// Runs every job to completion, one worker per job, and returns when all
/// have finished.
///
/// Job 0 runs on the calling thread (the caller is always one of the
/// workers); the rest run on scoped workers.  A single job short-circuits to
/// a plain inline call.  A panicking job propagates to the caller after the
/// region is joined.
pub(crate) fn join_all<J>(jobs: Vec<J>)
where
    J: FnOnce() + Send,
{
    let mut jobs = jobs;
    if jobs.len() <= 1 {
        if let Some(job) = jobs.pop() {
            job();
        }
        return;
    }
    let first = jobs.remove(0);
    crossbeam::thread::scope(|s| {
        for job in jobs {
            s.spawn(move |_| job());
        }
        first();
    })
    .expect("dense worker pool: scope failed");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_all_runs_every_job() {
        let counter = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..8)
            .map(|i| {
                let counter = &counter;
                move || {
                    counter.fetch_add(i, Ordering::Relaxed);
                }
            })
            .collect();
        join_all(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), (0..8).sum());
    }

    #[test]
    fn join_all_single_job_runs_inline() {
        let caller = std::thread::current().id();
        let mut seen = None;
        join_all(vec![|| {
            seen = Some(std::thread::current().id());
        }]);
        assert_eq!(seen, Some(caller));
    }

    #[test]
    fn join_all_empty_is_a_noop() {
        join_all(Vec::<fn()>::new());
    }

    #[test]
    fn jobs_can_write_disjoint_borrowed_chunks() {
        let mut data = vec![0u64; 64];
        let jobs: Vec<_> = data
            .chunks_mut(16)
            .enumerate()
            .map(|(w, chunk)| {
                move || {
                    for v in chunk {
                        *v = w as u64 + 1;
                    }
                }
            })
            .collect();
        join_all(jobs);
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i / 16) as u64 + 1);
        }
    }

    #[test]
    fn thread_budget_is_scoped_and_clamped() {
        assert_eq!(thread_budget(), None);
        let inner = with_thread_budget(3, || {
            assert_eq!(thread_budget(), Some(3));
            with_thread_budget(0, thread_budget)
        });
        assert_eq!(inner, Some(1), "budget of 0 clamps to 1");
        assert_eq!(thread_budget(), None, "budget restored after the scope");
        with_thread_budget(MAX_THREADS + 7, || {
            assert_eq!(thread_budget(), Some(MAX_THREADS));
        });
    }

    #[test]
    fn thread_budget_does_not_leak_into_workers() {
        with_thread_budget(4, || {
            run_region(2, |w| {
                if w != 0 {
                    assert_eq!(thread_budget(), None);
                }
            });
        });
    }

    #[test]
    fn dense_threads_is_at_least_one() {
        assert!(dense_threads() >= 1);
        assert!(dense_threads() <= MAX_THREADS);
    }

    #[test]
    fn run_region_visits_every_worker_index() {
        let seen = AtomicUsize::new(0);
        run_region(6, |w| {
            seen.fetch_add(1 << w, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 0b11_1111);
    }

    #[test]
    fn run_region_single_worker_runs_inline() {
        let caller = std::thread::current().id();
        let seen = std::sync::Mutex::new(None);
        run_region(1, |w| {
            assert_eq!(w, 0);
            *seen.lock().unwrap() = Some(std::thread::current().id());
        });
        assert_eq!(*seen.lock().unwrap(), Some(caller));
    }

    #[test]
    fn run_region_workers_synchronize_through_a_barrier() {
        use std::sync::Barrier;
        let workers = 4;
        let barrier = Barrier::new(workers);
        let phase1 = AtomicUsize::new(0);
        let phase2 = AtomicUsize::new(0);
        run_region(workers, |_| {
            phase1.fetch_add(1, Ordering::SeqCst);
            barrier.wait();
            // Every worker must have finished phase 1 before any enters 2.
            assert_eq!(phase1.load(Ordering::SeqCst), workers);
            phase2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(phase2.load(Ordering::SeqCst), workers);
    }
}
