//! Straightforward reference implementations of every kernel in this crate.
//!
//! These are the seed's original unblocked loops, kept verbatim as the
//! ground truth the packed/blocked kernels are validated against (see the
//! crate's property tests) and as the baselines the `kernels` bench compares
//! the fast paths to.  They are **not** used on any hot path.

use crate::flops::{gemm_flops, tri_inv_flops, trmm_flops, trsm_flops, FlopCount};
use crate::matrix::Matrix;
use crate::trsm::{Diag, Side, Triangle};

/// Naive i-k-j triple loop `C ← alpha · A · B + beta · C` with no blocking or
/// packing — the baseline the packed GEMM is benchmarked against.
pub fn gemm_naive_ikj(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) -> FlopCount {
    let (m, p) = a.dims();
    let n = b.cols();
    assert_eq!(p, b.rows(), "gemm_naive_ikj: inner dims must agree");
    assert_eq!(c.dims(), (m, n), "gemm_naive_ikj: output dims must agree");
    if beta != 1.0 {
        if beta == 0.0 {
            c.fill_zero();
        } else {
            c.scale_in_place(beta);
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || p == 0 {
        return FlopCount::ZERO;
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let c_data = c.as_mut_slice();
    for i in 0..m {
        let a_row = &a_data[i * p..(i + 1) * p];
        let c_row = &mut c_data[i * n..(i + 1) * n];
        for (k, &aik) in a_row.iter().enumerate() {
            let scaled = alpha * aik;
            if scaled == 0.0 {
                continue;
            }
            let b_row = &b_data[k * n..(k + 1) * n];
            for j in 0..n {
                c_row[j] += scaled * b_row[j];
            }
        }
    }
    gemm_flops(m, p, n)
}

/// Unblocked in-place triangular solve by plain forward/backward
/// substitution (the seed's `trsm_in_place`).  Assumes the caller has
/// validated dimensions and pivots, as [`crate::trsm::trsm_in_place`] does.
pub fn trsm_unblocked(
    side: Side,
    tri: Triangle,
    diag: Diag,
    a: &Matrix,
    b: &mut Matrix,
) -> FlopCount {
    let n = a.rows();
    let k = match side {
        Side::Left => b.cols(),
        Side::Right => b.rows(),
    };
    match (side, tri) {
        (Side::Left, Triangle::Lower) => solve_left_lower(diag, a, b),
        (Side::Left, Triangle::Upper) => solve_left_upper(diag, a, b),
        (Side::Right, Triangle::Lower) => solve_right_lower(diag, a, b),
        (Side::Right, Triangle::Upper) => solve_right_upper(diag, a, b),
    }
    trsm_flops(n, k)
}

fn solve_left_lower(diag: Diag, a: &Matrix, b: &mut Matrix) {
    let n = a.rows();
    let k = b.cols();
    for i in 0..n {
        for j in 0..i {
            let aij = a[(i, j)];
            if aij == 0.0 {
                continue;
            }
            let (head, tail) = b.as_mut_slice().split_at_mut(i * k);
            let row_j = &head[j * k..(j + 1) * k];
            let row_i = &mut tail[..k];
            for c in 0..k {
                row_i[c] -= aij * row_j[c];
            }
        }
        if diag == Diag::NonUnit {
            let inv = 1.0 / a[(i, i)];
            for c in 0..k {
                b[(i, c)] *= inv;
            }
        }
    }
}

fn solve_left_upper(diag: Diag, a: &Matrix, b: &mut Matrix) {
    let n = a.rows();
    let k = b.cols();
    for i in (0..n).rev() {
        for j in (i + 1)..n {
            let aij = a[(i, j)];
            if aij == 0.0 {
                continue;
            }
            for c in 0..k {
                let v = b[(j, c)];
                b[(i, c)] -= aij * v;
            }
        }
        if diag == Diag::NonUnit {
            let inv = 1.0 / a[(i, i)];
            for c in 0..k {
                b[(i, c)] *= inv;
            }
        }
    }
}

fn solve_right_lower(diag: Diag, a: &Matrix, b: &mut Matrix) {
    let n = a.rows();
    let m = b.rows();
    for j in (0..n).rev() {
        for i in (j + 1)..n {
            let lij = a[(i, j)];
            if lij == 0.0 {
                continue;
            }
            for r in 0..m {
                let v = b[(r, i)];
                b[(r, j)] -= v * lij;
            }
        }
        if diag == Diag::NonUnit {
            let inv = 1.0 / a[(j, j)];
            for r in 0..m {
                b[(r, j)] *= inv;
            }
        }
    }
}

fn solve_right_upper(diag: Diag, a: &Matrix, b: &mut Matrix) {
    let n = a.rows();
    let m = b.rows();
    for j in 0..n {
        for i in 0..j {
            let uij = a[(i, j)];
            if uij == 0.0 {
                continue;
            }
            for r in 0..m {
                let v = b[(r, i)];
                b[(r, j)] -= v * uij;
            }
        }
        if diag == Diag::NonUnit {
            let inv = 1.0 / a[(j, j)];
            for r in 0..m {
                b[(r, j)] *= inv;
            }
        }
    }
}

/// Unblocked triangular × dense product (the seed's `trmm`).
pub fn trmm_unblocked(tri: Triangle, a: &Matrix, b: &Matrix) -> (Matrix, FlopCount) {
    let n = a.rows();
    let k = b.cols();
    let mut c = Matrix::zeros(n, k);
    match tri {
        Triangle::Lower => {
            for i in 0..n {
                for j in 0..=i {
                    let aij = a[(i, j)];
                    if aij == 0.0 {
                        continue;
                    }
                    for col in 0..k {
                        c[(i, col)] += aij * b[(j, col)];
                    }
                }
            }
        }
        Triangle::Upper => {
            for i in 0..n {
                for j in i..n {
                    let aij = a[(i, j)];
                    if aij == 0.0 {
                        continue;
                    }
                    for col in 0..k {
                        c[(i, col)] += aij * b[(j, col)];
                    }
                }
            }
        }
    }
    (c, trmm_flops(n, k))
}

/// Direct column-by-column inversion of a lower-triangular matrix by forward
/// substitution on the identity (the seed's base-case inverter).
pub fn invert_lower_direct(l: &Matrix) -> (Matrix, FlopCount) {
    let n = l.rows();
    let mut inv = Matrix::zeros(n, n);
    for j in 0..n {
        inv[(j, j)] = 1.0 / l[(j, j)];
        for i in (j + 1)..n {
            let mut acc = 0.0;
            for t in j..i {
                acc += l[(i, t)] * inv[(t, j)];
            }
            inv[(i, j)] = -acc / l[(i, i)];
        }
    }
    (inv, tri_inv_flops(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::norms;

    #[test]
    fn naive_gemm_matches_matmul() {
        let a = Matrix::from_fn(13, 9, |i, j| (i * 9 + j) as f64 / 10.0);
        let b = Matrix::from_fn(9, 7, |i, j| (i as f64) - 2.0 * (j as f64));
        let mut c = Matrix::zeros(13, 7);
        let flops = gemm_naive_ikj(1.0, &a, &b, 0.0, &mut c);
        assert!(c.max_abs_diff(&matmul(&a, &b)).unwrap() < 1e-12);
        assert_eq!(flops, crate::flops::gemm_flops(13, 9, 7));
    }

    #[test]
    fn direct_inverse_inverts() {
        let l = Matrix::from_fn(9, 9, |i, j| {
            if j < i {
                0.3
            } else if j == i {
                2.0
            } else {
                0.0
            }
        });
        let (inv, _) = invert_lower_direct(&l);
        let prod = matmul(&l, &inv);
        assert!(norms::max_norm(&prod.sub(&Matrix::identity(9)).unwrap()) < 1e-12);
    }
}
