//! Panel packing and the thread-local scratch arena for the packed GEMM.
//!
//! The packed kernel (see [`crate::microkernel`]) never multiplies out of the
//! caller's matrices directly.  Instead each `MC×KC` block of `A` and each
//! `KC×NC` block of `B` is first copied into a scratch buffer in *micro-panel*
//! order:
//!
//! * `A` is packed into `⌈mc/MR⌉` panels of `MR` rows each; within a panel the
//!   storage is column-major (`k`-major), so the microkernel reads one
//!   contiguous `MR`-vector of `A` per `k` step;
//! * `B` is packed into `⌈nc/NR⌉` panels of `NR` columns each, row-major
//!   within the panel, so the microkernel reads one contiguous `NR`-vector of
//!   `B` per `k` step.
//!
//! Ragged edges are zero-padded to full `MR`/`NR` width so the microkernel
//! never branches on the panel interior; the write-back masks the padding.
//!
//! Both pack buffers live in a **thread-local arena** sized once at
//! `MC·KC + KC·NC` doubles (≈2.3 MiB with the default tuning), so steady-state
//! GEMM performs no heap allocation at all.

use crate::matrix::MatRef;
use crate::microkernel::{KC, MC, MR, NC, NR};
use std::cell::RefCell;

/// Conceptual dimensions of `op(v)`: `(rows, cols)` as stored, swapped
/// when transposed.  The one place the `op(X)` addressing convention is
/// spelled out, shared by every GEMM driver (see [`op_strides`]).
#[inline]
pub(crate) fn op_dims(v: MatRef<'_>, trans: bool) -> (usize, usize) {
    if trans {
        (v.cols(), v.rows())
    } else {
        v.dims()
    }
}

/// `(outer, inner)` element strides of `op(v)`: `(stride, 1)` as stored,
/// `(1, stride)` transposed — so `op(v)[i, j]` sits at
/// `ptr + i·outer + j·inner` either way.
#[inline]
pub(crate) fn op_strides(v: MatRef<'_>, trans: bool) -> (usize, usize) {
    if trans {
        (1, v.stride())
    } else {
        (v.stride(), 1)
    }
}

thread_local! {
    /// `(A-pack, B-pack)` buffers, grown on first use and reused thereafter.
    static GEMM_SCRATCH: RefCell<(Vec<f64>, Vec<f64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
    /// Whole-`A` pack buffer for the multithreaded GEMM (every `(MC, KC)`
    /// block of `A` packed up front, shared read-only by the workers).
    static APACK_FULL: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
    /// General-purpose f64 scratch for blocked kernels (e.g. the triangular
    /// inversion's temporary product).
    static GENERAL_SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with the thread-local `(A-pack, B-pack)` buffers.
///
/// Falls back to fresh allocations in the (unexpected) re-entrant case so a
/// nested GEMM can never observe a torn buffer.
pub(crate) fn with_gemm_scratch<R>(f: impl FnOnce(&mut [f64], &mut [f64]) -> R) -> R {
    GEMM_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut bufs) => {
            if bufs.0.len() < MC * KC {
                bufs.0.resize(MC * KC, 0.0);
            }
            if bufs.1.len() < KC * NC {
                bufs.1.resize(KC * NC, 0.0);
            }
            let (a, b) = &mut *bufs;
            f(a, b)
        }
        Err(_) => {
            let mut a = vec![0.0; MC * KC];
            let mut b = vec![0.0; KC * NC];
            f(&mut a, &mut b)
        }
    })
}

/// All of `A`, packed: every `(MC, KC)` block in micro-panel order, at a
/// fixed `MC·KC` stride per block so workers can index blocks without
/// cumulative offsets.  Produced by [`with_packed_a`], shared read-only
/// across the parallel GEMM's workers (one packed copy per `ic`/`pc` block
/// for the whole multiply — the sequential loop nest would re-pack each `A`
/// block once per `jc` iteration instead).
pub(crate) struct PackedA<'b> {
    buf: &'b [f64],
    /// Number of `KC`-blocks along the inner dimension.
    nkc: usize,
}

impl PackedA<'_> {
    /// The packed `(MC, KC)` block with block indices `(ic_idx, pc_idx)`.
    #[inline]
    pub(crate) fn block(&self, ic_idx: usize, pc_idx: usize) -> &[f64] {
        &self.buf[(ic_idx * self.nkc + pc_idx) * (MC * KC)..][..MC * KC]
    }
}

/// Largest whole-`A` pack kept cached in the thread-local arena, in doubles
/// (16 MiB ≈ a 1448² `A`).  Bigger packs use a fresh allocation per call so
/// one huge GEMM cannot pin a matrix-sized buffer to the calling thread for
/// the rest of the process — the allocation is amortized over an O(m·n·k)
/// multiply anyway.
const APACK_CACHE_MAX: usize = 2 * 1024 * 1024;

/// Packs all of `alpha · op(a)` into the thread-local whole-`A` arena (or a
/// fresh buffer above [`APACK_CACHE_MAX`]) and runs `f` on the result.
/// `trans` selects `op(a) = aᵀ`: the packing then walks `a` with swapped
/// strides, so the transposed operand is never materialized.
///
/// The buffer is keyed to the calling thread, so the caller must finish with
/// the [`PackedA`] before returning (enforced by the closure scope); workers
/// reading it concurrently is fine — it is immutable inside `f`.
pub(crate) fn with_packed_a<R>(
    alpha: f64,
    a: MatRef<'_>,
    trans: bool,
    f: impl FnOnce(&PackedA<'_>) -> R,
) -> R {
    let (m, kdim) = op_dims(a, trans);
    let (ai, ak) = op_strides(a, trans);
    let nmc = m.div_ceil(MC);
    let nkc = kdim.div_ceil(KC);
    let len = nmc * nkc * MC * KC;
    let pack_all = |buf: &mut [f64]| {
        let mut ic = 0;
        let mut ic_idx = 0;
        while ic < m {
            let mc = MC.min(m - ic);
            let mut pc = 0;
            let mut pc_idx = 0;
            while pc < kdim {
                let kc = KC.min(kdim - pc);
                let dst = &mut buf[(ic_idx * nkc + pc_idx) * (MC * KC)..][..MC * KC];
                // SAFETY: `a` is a live in-bounds view, so the conceptual
                // `mc×kc` block at `(ic, pc)` is valid for reads at the
                // `(ai, ak)` strides, and `dst` holds
                // `MC·KC >= ⌈mc/MR⌉·kc·MR` elements.
                unsafe {
                    pack_a(
                        alpha,
                        a.as_ptr().add(ic * ai + pc * ak),
                        ai,
                        ak,
                        mc,
                        kc,
                        dst,
                    );
                }
                pc += KC;
                pc_idx += 1;
            }
            ic += MC;
            ic_idx += 1;
        }
    };
    if len > APACK_CACHE_MAX {
        let mut buf = vec![0.0; len];
        pack_all(&mut buf);
        return f(&PackedA { buf: &buf, nkc });
    }
    APACK_FULL.with(|cell| match cell.try_borrow_mut() {
        Ok(mut buf) => {
            if buf.len() < len {
                buf.resize(len, 0.0);
            }
            pack_all(&mut buf[..len]);
            f(&PackedA {
                buf: &buf[..len],
                nkc,
            })
        }
        Err(_) => {
            let mut buf = vec![0.0; len];
            pack_all(&mut buf);
            f(&PackedA { buf: &buf, nkc })
        }
    })
}

/// Runs `f` with a thread-local scratch slice of `len` doubles.
///
/// The slice's contents are **unspecified** (stale data from earlier calls);
/// callers must fully overwrite it — e.g. via a `beta = 0` GEMM, which
/// zeroes its destination first.
pub(crate) fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    GENERAL_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut buf) => {
            if buf.len() < len {
                buf.resize(len, 0.0);
            }
            f(&mut buf[..len])
        }
        Err(_) => f(&mut vec![0.0; len]),
    })
}

/// Packs the `mc×kc` block of `op(A)` at `a` — element `(i, k)` read from
/// `a + i·ai + k·ak` — scaled by `alpha`, into `MR`-row micro-panels in
/// `dst`, zero-padding the last panel.
///
/// `(ai, ak) = (row stride, 1)` packs the block as stored; `(1, row
/// stride)` packs its **transpose** straight out of the original storage,
/// which is how the `op(A) = Aᵀ` GEMM entry points avoid materializing
/// transposed panels in scratch: the packed buffer is bit-for-bit the one a
/// materialized transpose would have produced.
///
/// # Safety
/// `a` must be valid for reads of the `mc×kc` block at strides `(ai, ak)`,
/// and `dst` must hold at least `⌈mc/MR⌉·kc·MR` elements.
pub(crate) unsafe fn pack_a(
    alpha: f64,
    a: *const f64,
    ai: usize,
    ak: usize,
    mc: usize,
    kc: usize,
    dst: &mut [f64],
) {
    let panels = mc.div_ceil(MR);
    debug_assert!(dst.len() >= panels * kc * MR);
    for p in 0..panels {
        let ir = p * MR;
        let rows = MR.min(mc - ir);
        let panel = &mut dst[p * kc * MR..(p + 1) * kc * MR];
        if rows == MR {
            for k in 0..kc {
                for i in 0..MR {
                    *panel.get_unchecked_mut(k * MR + i) = alpha * *a.add((ir + i) * ai + k * ak);
                }
            }
        } else {
            for k in 0..kc {
                for i in 0..MR {
                    let v = if i < rows {
                        *a.add((ir + i) * ai + k * ak)
                    } else {
                        0.0
                    };
                    *panel.get_unchecked_mut(k * MR + i) = alpha * v;
                }
            }
        }
    }
}

/// Packs the `kc×nc` block of `op(B)` at `b` — element `(k, j)` read from
/// `b + k·bk + j·bj` — into `NR`-column micro-panels in `dst`, zero-padding
/// the last panel.
///
/// `(bk, bj) = (row stride, 1)` packs the block as stored; `(1, row
/// stride)` packs its transpose (see [`pack_a`]).
///
/// # Safety
/// `b` must be valid for reads of the `kc×nc` block at strides `(bk, bj)`,
/// and `dst` must hold at least `⌈nc/NR⌉·kc·NR` elements.
pub(crate) unsafe fn pack_b(
    b: *const f64,
    bk: usize,
    bj: usize,
    kc: usize,
    nc: usize,
    dst: &mut [f64],
) {
    let panels = nc.div_ceil(NR);
    debug_assert!(dst.len() >= panels * kc * NR);
    for q in 0..panels {
        let jr = q * NR;
        let cols = NR.min(nc - jr);
        let panel = &mut dst[q * kc * NR..(q + 1) * kc * NR];
        if cols == NR {
            for k in 0..kc {
                let src = b.add(k * bk + jr * bj);
                for j in 0..NR {
                    *panel.get_unchecked_mut(k * NR + j) = *src.add(j * bj);
                }
            }
        } else {
            for k in 0..kc {
                let src = b.add(k * bk + jr * bj);
                for j in 0..NR {
                    *panel.get_unchecked_mut(k * NR + j) =
                        if j < cols { *src.add(j * bj) } else { 0.0 };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_layout_and_padding() {
        // 5×3 block with MR=4: two panels, second padded with 3 zero rows.
        let (mc, kc) = (5usize, 3usize);
        let a: Vec<f64> = (0..mc * kc).map(|v| v as f64).collect();
        let mut dst = vec![f64::NAN; mc.div_ceil(MR) * kc * MR];
        unsafe { pack_a(1.0, a.as_ptr(), kc, 1, mc, kc, &mut dst) };
        // Panel 0, k=1 holds column 1 of rows 0..4 contiguously.
        for i in 0..MR {
            assert_eq!(dst[MR + i], a[i * kc + 1]);
        }
        // Panel 1 holds row 4 then zero padding.
        let p1 = &dst[kc * MR..];
        assert_eq!(p1[0], a[4 * kc]);
        for &v in &p1[1..MR] {
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn pack_a_applies_alpha() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let mut dst = vec![0.0; MR];
        unsafe { pack_a(-2.0, a.as_ptr(), 1, 1, 4, 1, &mut dst) };
        assert_eq!(dst, vec![-2.0, -4.0, -6.0, -8.0]);
    }

    #[test]
    fn pack_b_layout_and_padding() {
        // 2×10 block with NR=8: two panels, second padded to 8 columns.
        let (kc, nc) = (2usize, 10usize);
        let b: Vec<f64> = (0..kc * nc).map(|v| v as f64).collect();
        let mut dst = vec![f64::NAN; nc.div_ceil(NR) * kc * NR];
        unsafe { pack_b(b.as_ptr(), nc, 1, kc, nc, &mut dst) };
        // Panel 0, k=1 holds row 1, columns 0..8 contiguously.
        for j in 0..NR {
            assert_eq!(dst[NR + j], b[nc + j]);
        }
        // Panel 1, k=0 holds columns 8..10 then zeros.
        let p1 = &dst[kc * NR..];
        assert_eq!(p1[0], b[8]);
        assert_eq!(p1[1], b[9]);
        for &v in &p1[2..NR] {
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn transposed_packing_matches_materialize_then_pack() {
        // Packing op(A) = Aᵀ with swapped strides must produce bit-for-bit
        // the buffer a materialized transpose would have packed — across
        // ragged MR/NR edges.
        let (rows, cols) = (7usize, 5usize);
        let a: Vec<f64> = (0..rows * cols).map(|v| v as f64 * 0.5 - 3.0).collect();
        // Materialize aᵀ (cols×rows).
        let mut at = vec![0.0f64; rows * cols];
        for i in 0..rows {
            for j in 0..cols {
                at[j * rows + i] = a[i * cols + j];
            }
        }
        // As the A operand: conceptual (mc, kc) = (cols, rows).
        let plen = cols.div_ceil(MR) * rows * MR;
        let mut direct = vec![f64::NAN; plen];
        let mut via_mat = vec![f64::NAN; plen];
        unsafe {
            pack_a(1.5, a.as_ptr(), 1, cols, cols, rows, &mut direct);
            pack_a(1.5, at.as_ptr(), rows, 1, cols, rows, &mut via_mat);
        }
        assert_eq!(direct, via_mat);
        // As the B operand: conceptual (kc, nc) = (cols, rows).
        let plen = rows.div_ceil(NR) * cols * NR;
        let mut direct = vec![f64::NAN; plen];
        let mut via_mat = vec![f64::NAN; plen];
        unsafe {
            pack_b(a.as_ptr(), 1, cols, cols, rows, &mut direct);
            pack_b(at.as_ptr(), rows, 1, cols, rows, &mut via_mat);
        }
        assert_eq!(direct, via_mat);
    }

    #[test]
    fn scratch_is_reused() {
        let ptr1 = with_scratch(64, |buf| {
            assert_eq!(buf.len(), 64);
            buf[0] = 7.0;
            buf.as_ptr() as usize
        });
        let ptr2 = with_scratch(64, |buf| buf.as_ptr() as usize);
        assert_eq!(ptr1, ptr2, "scratch buffer should be reused");
    }
}
