//! Local Cholesky and LU factorizations.
//!
//! TRSM's raison d'être in the paper is its use inside triangular
//! factorizations (Cholesky, LU, QR) and for solving linear systems once such
//! a factorization exists.  These local kernels back the example applications
//! (`examples/cholesky_solver.rs`, `examples/lu_solver.rs`) and the
//! distributed factorizations in `catrsm::apps`.

use crate::error::DenseError;
use crate::flops::{cholesky_flops, lu_flops, FlopCount};
use crate::matrix::Matrix;
use crate::trsm::PIVOT_TOL;
use crate::Result;

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite matrix.
///
/// Only the lower triangle of `a` is read.  Returns the lower-triangular
/// factor and the flop count.
pub fn cholesky(a: &Matrix) -> Result<(Matrix, FlopCount)> {
    if !a.is_square() {
        return Err(DenseError::NotSquare {
            op: "cholesky",
            dims: a.dims(),
        });
    }
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        // Diagonal entry.
        let mut d = a[(j, j)];
        for k in 0..j {
            d -= l[(j, k)] * l[(j, k)];
        }
        if d <= 0.0 {
            return Err(DenseError::NotPositiveDefinite { index: j, value: d });
        }
        let djj = d.sqrt();
        l[(j, j)] = djj;
        // Column below the diagonal.
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / djj;
        }
    }
    Ok((l, cholesky_flops(n)))
}

/// The result of an LU factorization with partial pivoting: `P·A = L·U`.
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Unit lower-triangular factor.
    pub l: Matrix,
    /// Upper-triangular factor.
    pub u: Matrix,
    /// Row permutation: row `i` of `P·A` is row `perm[i]` of `A`.
    pub perm: Vec<usize>,
    /// Flops spent in the factorization.
    pub flops: FlopCount,
}

impl LuFactors {
    /// Apply the row permutation to a right-hand-side matrix: returns `P·B`.
    pub fn permute(&self, b: &Matrix) -> Matrix {
        Matrix::from_fn(b.rows(), b.cols(), |i, j| b[(self.perm[i], j)])
    }
}

/// LU factorization without pivoting: `A = L·U`.
///
/// Fails with [`DenseError::SingularPivot`] when a pivot underflows; use
/// [`lu_partial_pivot`] for general matrices.
pub fn lu(a: &Matrix) -> Result<(Matrix, Matrix, FlopCount)> {
    if !a.is_square() {
        return Err(DenseError::NotSquare {
            op: "lu",
            dims: a.dims(),
        });
    }
    let n = a.rows();
    let mut u = a.clone();
    let mut l = Matrix::identity(n);
    for k in 0..n {
        let pivot = u[(k, k)];
        if pivot.abs() < PIVOT_TOL {
            return Err(DenseError::SingularPivot {
                index: k,
                value: pivot,
            });
        }
        for i in (k + 1)..n {
            let factor = u[(i, k)] / pivot;
            l[(i, k)] = factor;
            for j in k..n {
                let v = u[(k, j)];
                u[(i, j)] -= factor * v;
            }
        }
    }
    // Zero the strictly-lower part of U that now contains stale values.
    for i in 0..n {
        for j in 0..i {
            u[(i, j)] = 0.0;
        }
    }
    Ok((l, u, lu_flops(n)))
}

/// LU factorization with partial (row) pivoting: `P·A = L·U`.
pub fn lu_partial_pivot(a: &Matrix) -> Result<LuFactors> {
    if !a.is_square() {
        return Err(DenseError::NotSquare {
            op: "lu_partial_pivot",
            dims: a.dims(),
        });
    }
    let n = a.rows();
    let mut u = a.clone();
    let mut l = Matrix::zeros(n, n);
    let mut perm: Vec<usize> = (0..n).collect();

    for k in 0..n {
        // Find pivot row.
        let mut best = k;
        let mut best_val = u[(k, k)].abs();
        for i in (k + 1)..n {
            if u[(i, k)].abs() > best_val {
                best = i;
                best_val = u[(i, k)].abs();
            }
        }
        if best_val < PIVOT_TOL {
            return Err(DenseError::SingularPivot {
                index: k,
                value: u[(k, k)],
            });
        }
        if best != k {
            swap_rows(&mut u, k, best);
            swap_rows(&mut l, k, best);
            perm.swap(k, best);
        }
        let pivot = u[(k, k)];
        for i in (k + 1)..n {
            let factor = u[(i, k)] / pivot;
            l[(i, k)] = factor;
            for j in k..n {
                let v = u[(k, j)];
                u[(i, j)] -= factor * v;
            }
        }
    }
    for i in 0..n {
        l[(i, i)] = 1.0;
        for j in 0..i {
            u[(i, j)] = 0.0;
        }
    }
    Ok(LuFactors {
        l,
        u,
        perm,
        flops: lu_flops(n),
    })
}

fn swap_rows(m: &mut Matrix, a: usize, b: usize) {
    if a == b {
        return;
    }
    let cols = m.cols();
    for j in 0..cols {
        let va = m[(a, j)];
        let vb = m[(b, j)];
        m[(a, j)] = vb;
        m[(b, j)] = va;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::norms;

    fn spd(n: usize) -> Matrix {
        // A = M Mᵀ + n·I is symmetric positive definite.
        let m = Matrix::from_fn(n, n, |i, j| (((i * 13 + j * 7) % 11) as f64 - 5.0) / 11.0);
        let mut a = matmul(&m, &m.transpose());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    fn general(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            (((i * 23 + j * 31) % 17) as f64 - 8.0) / 17.0 + if i == j { 3.0 } else { 0.0 }
        })
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd(24);
        let (l, flops) = cholesky(&a).unwrap();
        assert!(l.is_lower_triangular());
        let rec = matmul(&l, &l.transpose());
        assert!(norms::rel_diff(&rec, &a) < 1e-12);
        assert!(flops.get() > 0);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut a = spd(5);
        a[(2, 2)] = -10.0;
        match cholesky(&a) {
            Err(DenseError::NotPositiveDefinite { .. }) => {}
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn cholesky_rejects_rectangular() {
        assert!(cholesky(&Matrix::zeros(3, 4)).is_err());
    }

    #[test]
    fn lu_reconstructs() {
        let a = general(20);
        let (l, u, _) = lu(&a).unwrap();
        assert!(l.is_lower_triangular());
        assert!(u.is_upper_triangular());
        assert!(norms::rel_diff(&matmul(&l, &u), &a) < 1e-10);
        for i in 0..20 {
            assert_eq!(l[(i, i)], 1.0);
        }
    }

    #[test]
    fn lu_partial_pivot_reconstructs() {
        // A matrix that needs pivoting: zero on the leading diagonal entry.
        let mut a = general(16);
        a[(0, 0)] = 0.0;
        let f = lu_partial_pivot(&a).unwrap();
        let pa = f.permute(&a);
        assert!(norms::rel_diff(&matmul(&f.l, &f.u), &pa) < 1e-10);
        assert!(f.l.is_lower_triangular());
        assert!(f.u.is_upper_triangular());
        // Permutation must be a bijection on 0..n.
        let mut sorted = f.perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn lu_no_pivot_fails_on_zero_pivot() {
        let mut a = general(6);
        a[(0, 0)] = 0.0;
        assert!(lu(&a).is_err());
    }

    #[test]
    fn lu_singular_matrix_detected() {
        // Two identical rows -> singular.
        let mut a = general(6);
        for j in 0..6 {
            let v = a[(0, j)];
            a[(1, j)] = v;
        }
        assert!(lu_partial_pivot(&a).is_err());
    }

    #[test]
    fn pivoting_improves_on_growth() {
        // Classic example where no-pivot LU is unstable but partial pivot is fine.
        let a = Matrix::from_row_major(2, 2, &[1e-20, 1.0, 1.0, 1.0]).unwrap();
        let f = lu_partial_pivot(&a).unwrap();
        let pa = f.permute(&a);
        assert!(norms::rel_diff(&matmul(&f.l, &f.u), &pa) < 1e-12);
    }
}
