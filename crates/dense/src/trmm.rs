//! Triangular × dense matrix multiplication.
//!
//! `trmm` computes `C ← A · B` for triangular `A`, exploiting the triangular
//! structure so only the nonzero half is touched.  The product is *blocked*:
//! only the `NB×NB` diagonal blocks use the triangular loop, and all
//! off-diagonal block products are delegated to the packed GEMM, so the bulk
//! of the flops runs at microkernel speed.  It is used by the residual
//! checks and by the solve phase of the iterative TRSM, where the inverted
//! diagonal block is (lower) triangular.

use crate::error::DenseError;
use crate::flops::{trmm_flops, FlopCount};
use crate::gemm::gemm_views;
use crate::matrix::{MatMut, MatRef, Matrix};
use crate::trsm::Triangle;
use crate::Result;

/// Row-panel width of the blocked product.
const NB: usize = 64;

/// Compute `A · B` where `A` is triangular, returning a fresh matrix along
/// with the number of flops spent.
pub fn trmm(tri: Triangle, a: &Matrix, b: &Matrix) -> Result<(Matrix, FlopCount)> {
    if !a.is_square() {
        return Err(DenseError::NotSquare {
            op: "trmm",
            dims: a.dims(),
        });
    }
    if a.cols() != b.rows() {
        return Err(DenseError::DimensionMismatch {
            op: "trmm",
            lhs: a.dims(),
            rhs: b.dims(),
        });
    }
    let n = a.rows();
    let k = b.cols();
    let mut c = Matrix::zeros(n, k);
    let mut i0 = 0;
    while i0 < n {
        let i1 = (i0 + NB).min(n);
        let nb = i1 - i0;
        match tri {
            Triangle::Lower => {
                // C[i0..i1] = L[i0..i1, 0..i0] · B[0..i0]  (full blocks, GEMM)
                //           + tril(L[i0..i1, i0..i1]) · B[i0..i1]
                if i0 > 0 {
                    gemm_views(
                        1.0,
                        a.view(i0, 0, nb, i0),
                        b.view(0, 0, i0, k),
                        1.0,
                        &mut c.view_mut(i0, 0, nb, k),
                    )
                    .expect("blocked trmm: update dims");
                }
                diag_block_lower(
                    a.view(i0, i0, nb, nb),
                    b.view(i0, 0, nb, k),
                    c.view_mut(i0, 0, nb, k),
                );
            }
            Triangle::Upper => {
                // C[i0..i1] = U[i0..i1, i1..n] · B[i1..n]  (full blocks, GEMM)
                //           + triu(U[i0..i1, i0..i1]) · B[i0..i1]
                if i1 < n {
                    gemm_views(
                        1.0,
                        a.view(i0, i1, nb, n - i1),
                        b.view(i1, 0, n - i1, k),
                        1.0,
                        &mut c.view_mut(i0, 0, nb, k),
                    )
                    .expect("blocked trmm: update dims");
                }
                diag_block_upper(
                    a.view(i0, i0, nb, nb),
                    b.view(i0, 0, nb, k),
                    c.view_mut(i0, 0, nb, k),
                );
            }
        }
        i0 = i1;
    }
    Ok((c, trmm_flops(n, k)))
}

/// `C += tril(A) · B` on an `nb`-sized diagonal block.
fn diag_block_lower(a: MatRef<'_>, b: MatRef<'_>, mut c: MatMut<'_>) {
    let nb = a.rows();
    for i in 0..nb {
        let crow = c.row_mut(i);
        for j in 0..=i {
            let aij = a.at(i, j);
            if aij == 0.0 {
                continue;
            }
            for (cv, bv) in crow.iter_mut().zip(b.row(j)) {
                *cv += aij * bv;
            }
        }
    }
}

/// `C += triu(A) · B` on an `nb`-sized diagonal block.
fn diag_block_upper(a: MatRef<'_>, b: MatRef<'_>, mut c: MatMut<'_>) {
    let nb = a.rows();
    for i in 0..nb {
        let crow = c.row_mut(i);
        for j in i..nb {
            let aij = a.at(i, j);
            if aij == 0.0 {
                continue;
            }
            for (cv, bv) in crow.iter_mut().zip(b.row(j)) {
                *cv += aij * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::reference;

    #[test]
    fn lower_trmm_matches_gemm() {
        let n = 13;
        let l = Matrix::from_fn(n, n, |i, j| {
            if j <= i {
                ((i + j) % 5) as f64 - 2.0
            } else {
                0.0
            }
        });
        let b = Matrix::from_fn(n, 4, |i, j| (i * 4 + j) as f64 / 7.0);
        let (c, flops) = trmm(Triangle::Lower, &l, &b).unwrap();
        let expect = matmul(&l, &b);
        assert!(c.max_abs_diff(&expect).unwrap() < 1e-12);
        assert_eq!(flops, trmm_flops(n, 4));
    }

    #[test]
    fn upper_trmm_matches_gemm() {
        let n = 9;
        let u = Matrix::from_fn(n, n, |i, j| {
            if j >= i {
                1.0 + (i * j % 3) as f64
            } else {
                0.0
            }
        });
        let b = Matrix::from_fn(n, 3, |i, j| (i as f64 + 1.0) * (j as f64 - 1.0));
        let (c, _) = trmm(Triangle::Upper, &u, &b).unwrap();
        assert!(c.max_abs_diff(&matmul(&u, &b)).unwrap() < 1e-12);
    }

    #[test]
    fn blocked_matches_unblocked_reference_across_nb_boundaries() {
        for &n in &[1usize, 63, 64, 65, 150] {
            let l = Matrix::from_fn(n, n, |i, j| {
                if j <= i {
                    ((i * 3 + j * 7) % 11) as f64 / 11.0 - 0.4
                } else {
                    0.0
                }
            });
            let u = l.transpose();
            let b = Matrix::from_fn(n, 9, |i, j| ((i * 13 + j) % 17) as f64 / 17.0 - 0.5);
            for (tri, a) in [(Triangle::Lower, &l), (Triangle::Upper, &u)] {
                let (fast, f1) = trmm(tri, a, &b).unwrap();
                let (slow, f2) = reference::trmm_unblocked(tri, a, &b);
                assert!(
                    fast.max_abs_diff(&slow).unwrap() < 1e-10,
                    "mismatch at n={n} {tri:?}"
                );
                assert_eq!(f1, f2, "flop accounting must match the reference");
            }
        }
    }

    #[test]
    fn trmm_validates_inputs() {
        let rect = Matrix::zeros(3, 4);
        let b = Matrix::zeros(4, 2);
        assert!(trmm(Triangle::Lower, &rect, &b).is_err());
        let sq = Matrix::zeros(3, 3);
        assert!(trmm(Triangle::Lower, &sq, &b).is_err());
    }

    #[test]
    fn trmm_with_identity() {
        let id = Matrix::identity(5);
        let b = Matrix::from_fn(5, 2, |i, j| (i + j) as f64);
        let (c, _) = trmm(Triangle::Lower, &id, &b).unwrap();
        assert_eq!(c, b);
    }
}
