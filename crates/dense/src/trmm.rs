//! Triangular × dense matrix multiplication.
//!
//! `trmm` computes `B ← L · B` (or the upper variant) exploiting the
//! triangular structure so only the nonzero half is touched.  It is used by
//! the residual checks and by the solve phase of the iterative TRSM, where
//! the inverted diagonal block is (lower) triangular.

use crate::error::DenseError;
use crate::flops::{trmm_flops, FlopCount};
use crate::matrix::Matrix;
use crate::trsm::Triangle;
use crate::Result;

/// Compute `A · B` where `A` is triangular, returning a fresh matrix along
/// with the number of flops spent.
pub fn trmm(tri: Triangle, a: &Matrix, b: &Matrix) -> Result<(Matrix, FlopCount)> {
    if !a.is_square() {
        return Err(DenseError::NotSquare {
            op: "trmm",
            dims: a.dims(),
        });
    }
    if a.cols() != b.rows() {
        return Err(DenseError::DimensionMismatch {
            op: "trmm",
            lhs: a.dims(),
            rhs: b.dims(),
        });
    }
    let n = a.rows();
    let k = b.cols();
    let mut c = Matrix::zeros(n, k);
    match tri {
        Triangle::Lower => {
            for i in 0..n {
                for j in 0..=i {
                    let aij = a[(i, j)];
                    if aij == 0.0 {
                        continue;
                    }
                    for col in 0..k {
                        c[(i, col)] += aij * b[(j, col)];
                    }
                }
            }
        }
        Triangle::Upper => {
            for i in 0..n {
                for j in i..n {
                    let aij = a[(i, j)];
                    if aij == 0.0 {
                        continue;
                    }
                    for col in 0..k {
                        c[(i, col)] += aij * b[(j, col)];
                    }
                }
            }
        }
    }
    Ok((c, trmm_flops(n, k)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    #[test]
    fn lower_trmm_matches_gemm() {
        let n = 13;
        let l = Matrix::from_fn(n, n, |i, j| if j <= i { ((i + j) % 5) as f64 - 2.0 } else { 0.0 });
        let b = Matrix::from_fn(n, 4, |i, j| (i * 4 + j) as f64 / 7.0);
        let (c, flops) = trmm(Triangle::Lower, &l, &b).unwrap();
        let expect = matmul(&l, &b);
        assert!(c.max_abs_diff(&expect).unwrap() < 1e-12);
        assert_eq!(flops, trmm_flops(n, 4));
    }

    #[test]
    fn upper_trmm_matches_gemm() {
        let n = 9;
        let u = Matrix::from_fn(n, n, |i, j| if j >= i { 1.0 + (i * j % 3) as f64 } else { 0.0 });
        let b = Matrix::from_fn(n, 3, |i, j| (i as f64 + 1.0) * (j as f64 - 1.0));
        let (c, _) = trmm(Triangle::Upper, &u, &b).unwrap();
        assert!(c.max_abs_diff(&matmul(&u, &b)).unwrap() < 1e-12);
    }

    #[test]
    fn trmm_validates_inputs() {
        let rect = Matrix::zeros(3, 4);
        let b = Matrix::zeros(4, 2);
        assert!(trmm(Triangle::Lower, &rect, &b).is_err());
        let sq = Matrix::zeros(3, 3);
        assert!(trmm(Triangle::Lower, &sq, &b).is_err());
    }

    #[test]
    fn trmm_with_identity() {
        let id = Matrix::identity(5);
        let b = Matrix::from_fn(5, 2, |i, j| (i + j) as f64);
        let (c, _) = trmm(Triangle::Lower, &id, &b).unwrap();
        assert_eq!(c, b);
    }
}
