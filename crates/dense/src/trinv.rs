//! Triangular matrix inversion.
//!
//! The paper's key primitive (Section V) is the inversion of lower-triangular
//! matrices, used for the diagonal blocks of `L` in the iterative TRSM.  The
//! sequential kernel here implements the same recursive scheme the paper
//! cites (Borodin & Munro / Balle–Hansen–Higham): split
//!
//! ```text
//! L = [ L11   0  ]        L⁻¹ = [      L11⁻¹          0    ]
//!     [ L21  L22 ]              [ -L22⁻¹ L21 L11⁻¹  L22⁻¹  ]
//! ```
//!
//! and recurse on the two diagonal blocks.  [`tri_invert`] is the plain
//! recursive version; [`tri_invert_blocked`] stops the recursion at a block
//! size and finishes with direct substitution, which is the variant used as
//! the base case of the distributed inversion.

use crate::error::DenseError;
use crate::flops::{tri_inv_flops, FlopCount};
use crate::gemm::gemm;
use crate::matrix::Matrix;
use crate::trsm::Triangle;
use crate::Result;

const PIVOT_TOL: f64 = 1e-300;

/// Invert a triangular matrix, returning `(inverse, flops)`.
///
/// For `Triangle::Lower` the strictly-upper part of `a` is ignored (assumed
/// zero); symmetrically for `Triangle::Upper`.
pub fn tri_invert(tri: Triangle, a: &Matrix) -> Result<(Matrix, FlopCount)> {
    tri_invert_blocked(tri, a, 16)
}

/// Invert a triangular matrix with a configurable recursion cut-off.
///
/// `block` is the dimension at or below which the direct (column-by-column
/// substitution) inversion is used instead of recursing further.
pub fn tri_invert_blocked(tri: Triangle, a: &Matrix, block: usize) -> Result<(Matrix, FlopCount)> {
    if !a.is_square() {
        return Err(DenseError::NotSquare {
            op: "tri_invert",
            dims: a.dims(),
        });
    }
    if block == 0 {
        return Err(DenseError::InvalidParameter {
            name: "block",
            reason: "recursion cut-off must be at least 1".to_string(),
        });
    }
    let n = a.rows();
    for i in 0..n {
        if a[(i, i)].abs() < PIVOT_TOL {
            return Err(DenseError::SingularPivot {
                index: i,
                value: a[(i, i)],
            });
        }
    }
    match tri {
        Triangle::Lower => {
            let mut flops = FlopCount::ZERO;
            let inv = invert_lower_rec(a, block, &mut flops)?;
            Ok((inv, flops))
        }
        Triangle::Upper => {
            // Invert the transpose (lower) and transpose back.
            let at = a.transpose();
            let mut flops = FlopCount::ZERO;
            let inv = invert_lower_rec(&at, block, &mut flops)?;
            Ok((inv.transpose(), flops))
        }
    }
}

fn invert_lower_rec(l: &Matrix, block: usize, flops: &mut FlopCount) -> Result<Matrix> {
    let n = l.rows();
    if n <= block {
        *flops += tri_inv_flops(n);
        return invert_lower_direct(l);
    }
    let h = n / 2;
    let l11 = l.block(0, 0, h, h);
    let l21 = l.block(h, 0, n - h, h);
    let l22 = l.block(h, h, n - h, n - h);

    let inv11 = invert_lower_rec(&l11, block, flops)?;
    let inv22 = invert_lower_rec(&l22, block, flops)?;

    // inv21 = -inv22 * l21 * inv11
    let mut tmp = Matrix::zeros(n - h, h);
    *flops += gemm(1.0, &inv22, &l21, 0.0, &mut tmp)?;
    let mut inv21 = Matrix::zeros(n - h, h);
    *flops += gemm(-1.0, &tmp, &inv11, 0.0, &mut inv21)?;

    let mut out = Matrix::zeros(n, n);
    out.set_block(0, 0, &inv11);
    out.set_block(h, 0, &inv21);
    out.set_block(h, h, &inv22);
    Ok(out)
}

/// Direct inversion of a lower-triangular matrix by forward substitution on
/// the identity, column by column.
fn invert_lower_direct(l: &Matrix) -> Result<Matrix> {
    let n = l.rows();
    let mut inv = Matrix::zeros(n, n);
    for j in 0..n {
        // Solve L * x = e_j ; x has zeros above index j.
        inv[(j, j)] = 1.0 / l[(j, j)];
        for i in (j + 1)..n {
            let mut acc = 0.0;
            for t in j..i {
                acc += l[(i, t)] * inv[(t, j)];
            }
            inv[(i, j)] = -acc / l[(i, i)];
        }
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::norms;

    fn lower(n: usize, seed: u64) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            if j < i {
                (((i * 31 + j * 17 + seed as usize) % 13) as f64 - 6.0) / 13.0
            } else if j == i {
                2.0 + ((i + seed as usize) % 4) as f64 * 0.5
            } else {
                0.0
            }
        })
    }

    fn check_inverse(l: &Matrix, inv: &Matrix, tol: f64) {
        let prod = matmul(l, inv);
        let id = Matrix::identity(l.rows());
        assert!(
            norms::max_norm(&prod.sub(&id).unwrap()) < tol,
            "L * Linv should be the identity"
        );
    }

    #[test]
    fn direct_inverse_small() {
        let l = lower(6, 1);
        let (inv, _) = tri_invert_blocked(Triangle::Lower, &l, 8).unwrap();
        check_inverse(&l, &inv, 1e-12);
        assert!(inv.is_lower_triangular());
    }

    #[test]
    fn recursive_inverse_medium() {
        let l = lower(64, 3);
        let (inv, flops) = tri_invert(Triangle::Lower, &l).unwrap();
        check_inverse(&l, &inv, 1e-9);
        assert!(flops.get() > 0);
    }

    #[test]
    fn recursive_inverse_odd_size() {
        let l = lower(37, 7);
        let (inv, _) = tri_invert(Triangle::Lower, &l).unwrap();
        check_inverse(&l, &inv, 1e-9);
    }

    #[test]
    fn upper_inverse() {
        let u = lower(20, 5).transpose();
        let (inv, _) = tri_invert(Triangle::Upper, &u).unwrap();
        let prod = matmul(&u, &inv);
        assert!(norms::max_norm(&prod.sub(&Matrix::identity(20)).unwrap()) < 1e-10);
        assert!(inv.is_upper_triangular());
    }

    #[test]
    fn block_size_does_not_change_result() {
        let l = lower(48, 11);
        let (a, _) = tri_invert_blocked(Triangle::Lower, &l, 1).unwrap();
        let (b, _) = tri_invert_blocked(Triangle::Lower, &l, 48).unwrap();
        let (c, _) = tri_invert_blocked(Triangle::Lower, &l, 7).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-9);
        assert!(a.max_abs_diff(&c).unwrap() < 1e-9);
    }

    #[test]
    fn identity_inverts_to_identity() {
        let id = Matrix::identity(10);
        let (inv, _) = tri_invert(Triangle::Lower, &id).unwrap();
        assert!(inv.max_abs_diff(&id).unwrap() < 1e-15);
    }

    #[test]
    fn singular_matrix_rejected() {
        let mut l = lower(5, 2);
        l[(2, 2)] = 0.0;
        match tri_invert(Triangle::Lower, &l) {
            Err(DenseError::SingularPivot { index, .. }) => assert_eq!(index, 2),
            other => panic!("expected SingularPivot, got {other:?}"),
        }
    }

    #[test]
    fn rectangular_rejected() {
        let m = Matrix::zeros(3, 4);
        assert!(tri_invert(Triangle::Lower, &m).is_err());
    }

    #[test]
    fn zero_block_parameter_rejected() {
        let l = lower(4, 0);
        assert!(tri_invert_blocked(Triangle::Lower, &l, 0).is_err());
    }

    #[test]
    fn inverse_of_inverse_is_original() {
        let l = lower(32, 9);
        let (inv, _) = tri_invert(Triangle::Lower, &l).unwrap();
        let (invinv, _) = tri_invert(Triangle::Lower, &inv).unwrap();
        assert!(norms::rel_diff(&invinv, &l) < 1e-8);
    }
}
