//! Triangular matrix inversion.
//!
//! The paper's key primitive (Section V) is the inversion of lower-triangular
//! matrices, used for the diagonal blocks of `L` in the iterative TRSM.  The
//! sequential kernel implements the recursive scheme the paper cites
//! (Borodin & Munro / Balle–Hansen–Higham): split
//!
//! ```text
//! L = [ L11   0  ]        L⁻¹ = [      L11⁻¹          0    ]
//!     [ L21  L22 ]              [ -L22⁻¹ L21 L11⁻¹  L22⁻¹  ]
//! ```
//!
//! recurse on the two diagonal blocks, and form the off-diagonal block with
//! two GEMMs — which therefore run on the packed microkernel and carry
//! almost all of the flops.  Unlike the original version, the recursion
//! works **in place** on views ([`tri_invert_in_place`]): the off-diagonal
//! block is overwritten where it lives, with a single thread-local scratch
//! panel for the intermediate product, instead of extracting, multiplying
//! and re-inserting copies of every block.  [`tri_invert`] /
//! [`tri_invert_blocked`] are the allocating wrappers; the recursion stops
//! at `block` and finishes with direct in-place substitution.

use crate::error::DenseError;
use crate::flops::{tri_inv_flops, FlopCount};
use crate::gemm::gemm_views;
use crate::matrix::{MatMut, Matrix};
use crate::pack::with_scratch;
use crate::trsm::{Triangle, PIVOT_TOL};
use crate::Result;

/// Invert a triangular matrix, returning `(inverse, flops)`.
///
/// For `Triangle::Lower` the strictly-upper part of `a` is ignored (assumed
/// zero); symmetrically for `Triangle::Upper`.
pub fn tri_invert(tri: Triangle, a: &Matrix) -> Result<(Matrix, FlopCount)> {
    tri_invert_blocked(tri, a, 16)
}

/// Invert a triangular matrix with a configurable recursion cut-off.
///
/// `block` is the dimension at or below which the direct (column-by-column
/// substitution) inversion is used instead of recursing further.
pub fn tri_invert_blocked(tri: Triangle, a: &Matrix, block: usize) -> Result<(Matrix, FlopCount)> {
    if !a.is_square() {
        return Err(DenseError::NotSquare {
            op: "tri_invert",
            dims: a.dims(),
        });
    }
    let mut out = match tri {
        Triangle::Lower => a.lower_triangular_part(),
        Triangle::Upper => a.upper_triangular_part(),
    };
    let n = out.rows();
    let flops = tri_invert_in_place(tri, &mut out.view_mut(0, 0, n, n), block)?;
    Ok((out, flops))
}

/// Invert a triangular matrix **in place** on a borrowed block.
///
/// This is the zero-copy entry point the distributed algorithms use to
/// invert diagonal blocks where they live (e.g. `catrsm`'s block-diagonal
/// inverter).  The strictly-opposite triangle of the view is ignored and
/// left untouched.  Returns the flop count.
pub fn tri_invert_in_place(tri: Triangle, a: &mut MatMut<'_>, block: usize) -> Result<FlopCount> {
    let (rows, cols) = a.dims();
    if rows != cols {
        return Err(DenseError::NotSquare {
            op: "tri_invert",
            dims: (rows, cols),
        });
    }
    if block == 0 {
        return Err(DenseError::InvalidParameter {
            name: "block",
            reason: "recursion cut-off must be at least 1".to_string(),
        });
    }
    for i in 0..rows {
        if a.at(i, i).abs() < PIVOT_TOL {
            return Err(DenseError::SingularPivot {
                index: i,
                value: a.at(i, i),
            });
        }
    }
    let mut flops = FlopCount::ZERO;
    match tri {
        Triangle::Lower => invert_lower_in_place(a.reborrow(), block, &mut flops)?,
        Triangle::Upper => invert_upper_in_place(a.reborrow(), block, &mut flops)?,
    }
    Ok(flops)
}

fn invert_lower_in_place(l: MatMut<'_>, block: usize, flops: &mut FlopCount) -> Result<()> {
    let n = l.rows();
    if n <= block {
        invert_lower_base(l);
        *flops += tri_inv_flops(n);
        return Ok(());
    }
    let h = n / 2;
    let (mut top, mut bottom) = l.split_rows_at_mut(h);
    invert_lower_in_place(top.submat_mut(0, 0, h, h), block, flops)?;
    invert_lower_in_place(bottom.submat_mut(0, h, n - h, n - h), block, flops)?;

    // inv21 = -inv22 · L21 · inv11, with one scratch panel for the
    // intermediate product (both factors live in `bottom` / `top`).
    with_scratch((n - h) * h, |tmp| -> Result<()> {
        let mut t = MatMut::from_slice(tmp, n - h, h);
        *flops += gemm_views(
            1.0,
            bottom.rb().subview(0, h, n - h, n - h),
            bottom.rb().subview(0, 0, n - h, h),
            0.0,
            &mut t,
        )?;
        let mut l21 = bottom.submat_mut(0, 0, n - h, h);
        *flops += gemm_views(-1.0, t.rb(), top.rb().subview(0, 0, h, h), 0.0, &mut l21)?;
        Ok(())
    })
}

fn invert_upper_in_place(u: MatMut<'_>, block: usize, flops: &mut FlopCount) -> Result<()> {
    let n = u.rows();
    if n <= block {
        invert_upper_base(u);
        *flops += tri_inv_flops(n);
        return Ok(());
    }
    let h = n / 2;
    let (mut top, mut bottom) = u.split_rows_at_mut(h);
    invert_upper_in_place(top.submat_mut(0, 0, h, h), block, flops)?;
    invert_upper_in_place(bottom.submat_mut(0, h, n - h, n - h), block, flops)?;

    // inv12 = -inv11 · U12 · inv22.
    with_scratch(h * (n - h), |tmp| -> Result<()> {
        let mut t = MatMut::from_slice(tmp, h, n - h);
        *flops += gemm_views(
            1.0,
            top.rb().subview(0, 0, h, h),
            top.rb().subview(0, h, h, n - h),
            0.0,
            &mut t,
        )?;
        let mut u12 = top.submat_mut(0, h, h, n - h);
        *flops += gemm_views(
            -1.0,
            t.rb(),
            bottom.rb().subview(0, h, n - h, n - h),
            0.0,
            &mut u12,
        )?;
        Ok(())
    })
}

/// Direct in-place inversion of a lower-triangular block: columns from last
/// to first, each updated with the already-inverted trailing block
/// (LAPACK's `trti2` scheme).
fn invert_lower_base(mut l: MatMut<'_>) {
    let n = l.rows();
    for j in (0..n).rev() {
        let ajj = 1.0 / l.at(j, j);
        *l.at_mut(j, j) = ajj;
        // x = L[j+1.., j] (original); y = L22⁻¹ · x computed bottom-up so
        // every read of x happens before its overwrite.
        for i in ((j + 1)..n).rev() {
            let mut acc = 0.0;
            for t in (j + 1)..=i {
                acc += l.at(i, t) * l.at(t, j);
            }
            *l.at_mut(i, j) = -acc * ajj;
        }
    }
}

/// Direct in-place inversion of an upper-triangular block: columns from
/// first to last, mirroring [`invert_lower_base`].
fn invert_upper_base(mut u: MatMut<'_>) {
    let n = u.rows();
    for j in 0..n {
        let ajj = 1.0 / u.at(j, j);
        // x = U[0..j, j] (original); y = U11⁻¹ · x computed top-down so
        // every read of x happens before its overwrite.
        for i in 0..j {
            let mut acc = 0.0;
            for t in i..j {
                acc += u.at(i, t) * u.at(t, j);
            }
            *u.at_mut(i, j) = -acc * ajj;
        }
        *u.at_mut(j, j) = ajj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::norms;
    use crate::reference;

    fn lower(n: usize, seed: u64) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            if j < i {
                (((i * 31 + j * 17 + seed as usize) % 13) as f64 - 6.0) / 13.0
            } else if j == i {
                2.0 + ((i + seed as usize) % 4) as f64 * 0.5
            } else {
                0.0
            }
        })
    }

    fn check_inverse(l: &Matrix, inv: &Matrix, tol: f64) {
        let prod = matmul(l, inv);
        let id = Matrix::identity(l.rows());
        assert!(
            norms::max_norm(&prod.sub(&id).unwrap()) < tol,
            "L * Linv should be the identity"
        );
    }

    #[test]
    fn direct_inverse_small() {
        let l = lower(6, 1);
        let (inv, _) = tri_invert_blocked(Triangle::Lower, &l, 8).unwrap();
        check_inverse(&l, &inv, 1e-12);
        assert!(inv.is_lower_triangular());
    }

    #[test]
    fn base_case_matches_reference_direct_inversion() {
        for n in [1usize, 2, 5, 11, 16] {
            let l = lower(n, n as u64);
            let (fast, f1) = tri_invert_blocked(Triangle::Lower, &l, n).unwrap();
            let (slow, f2) = reference::invert_lower_direct(&l);
            assert!(fast.max_abs_diff(&slow).unwrap() < 1e-10, "n={n}");
            assert_eq!(f1, f2, "flop accounting must match the reference");
        }
    }

    #[test]
    fn recursive_inverse_medium() {
        let l = lower(64, 3);
        let (inv, flops) = tri_invert(Triangle::Lower, &l).unwrap();
        check_inverse(&l, &inv, 1e-9);
        assert!(flops.get() > 0);
    }

    #[test]
    fn recursive_inverse_odd_size() {
        let l = lower(37, 7);
        let (inv, _) = tri_invert(Triangle::Lower, &l).unwrap();
        check_inverse(&l, &inv, 1e-9);
    }

    #[test]
    fn upper_inverse() {
        let u = lower(20, 5).transpose();
        let (inv, _) = tri_invert(Triangle::Upper, &u).unwrap();
        let prod = matmul(&u, &inv);
        assert!(norms::max_norm(&prod.sub(&Matrix::identity(20)).unwrap()) < 1e-10);
        assert!(inv.is_upper_triangular());
    }

    #[test]
    fn upper_flops_match_lower_flops() {
        // The recursion splits identically for both triangles, so the
        // structural flop accounting must agree.
        for n in [9usize, 24, 37] {
            let l = lower(n, 2);
            let u = l.transpose();
            let (_, fl) = tri_invert(Triangle::Lower, &l).unwrap();
            let (_, fu) = tri_invert(Triangle::Upper, &u).unwrap();
            assert_eq!(fl, fu, "n={n}");
        }
    }

    #[test]
    fn in_place_inversion_of_a_diagonal_block() {
        // Invert an interior diagonal block of a bigger matrix in place and
        // leave everything else untouched.
        let n = 24;
        let mut big = Matrix::from_fn(40, 40, |i, j| (i * 40 + j) as f64);
        let l = lower(n, 4);
        big.set_block(8, 8, &l);
        let flops = tri_invert_in_place(Triangle::Lower, &mut big.view_mut(8, 8, n, n), 8).unwrap();
        assert!(flops.get() > 0);
        let (expect, _) = tri_invert_blocked(Triangle::Lower, &l, 8).unwrap();
        // The block itself: lower triangle holds the inverse, upper triangle
        // of the *view* is untouched garbage from `big`.
        let got = big.block(8, 8, n, n).lower_triangular_part();
        assert!(got.max_abs_diff(&expect).unwrap() < 1e-10);
        // Outside the block: untouched.
        assert_eq!(big[(0, 0)], 0.0);
        assert_eq!(big[(39, 39)], (39 * 40 + 39) as f64);
        assert_eq!(big[(7, 8)], (7 * 40 + 8) as f64);
    }

    #[test]
    fn block_size_does_not_change_result() {
        let l = lower(48, 11);
        let (a, _) = tri_invert_blocked(Triangle::Lower, &l, 1).unwrap();
        let (b, _) = tri_invert_blocked(Triangle::Lower, &l, 48).unwrap();
        let (c, _) = tri_invert_blocked(Triangle::Lower, &l, 7).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-9);
        assert!(a.max_abs_diff(&c).unwrap() < 1e-9);
    }

    #[test]
    fn identity_inverts_to_identity() {
        let id = Matrix::identity(10);
        let (inv, _) = tri_invert(Triangle::Lower, &id).unwrap();
        assert!(inv.max_abs_diff(&id).unwrap() < 1e-15);
    }

    #[test]
    fn singular_matrix_rejected() {
        let mut l = lower(5, 2);
        l[(2, 2)] = 0.0;
        match tri_invert(Triangle::Lower, &l) {
            Err(DenseError::SingularPivot { index, .. }) => assert_eq!(index, 2),
            other => panic!("expected SingularPivot, got {other:?}"),
        }
    }

    #[test]
    fn rectangular_rejected() {
        let m = Matrix::zeros(3, 4);
        assert!(tri_invert(Triangle::Lower, &m).is_err());
    }

    #[test]
    fn zero_block_parameter_rejected() {
        let l = lower(4, 0);
        assert!(tri_invert_blocked(Triangle::Lower, &l, 0).is_err());
    }

    #[test]
    fn inverse_of_inverse_is_original() {
        let l = lower(32, 9);
        let (inv, _) = tri_invert(Triangle::Lower, &l).unwrap();
        let (invinv, _) = tri_invert(Triangle::Lower, &inv).unwrap();
        assert!(norms::rel_diff(&invinv, &l) < 1e-8);
    }
}
