//! Error type shared by all kernels in the crate.

use std::fmt;

/// Errors returned by dense kernels.
///
/// Kernels validate their inputs (dimension compatibility, square/triangular
/// requirements, numerical breakdown such as a zero pivot) and return a
/// structured error instead of panicking, so that the distributed algorithms
/// built on top can surface configuration problems to the caller.
#[derive(Debug, Clone, PartialEq)]
pub enum DenseError {
    /// Two operands have incompatible dimensions for the requested operation.
    DimensionMismatch {
        /// Short description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left-hand operand (rows, cols).
        lhs: (usize, usize),
        /// Dimensions of the right-hand operand (rows, cols).
        rhs: (usize, usize),
    },
    /// The operation requires a square matrix but received a rectangular one.
    NotSquare {
        /// Short description of the operation that failed.
        op: &'static str,
        /// Dimensions of the offending matrix (rows, cols).
        dims: (usize, usize),
    },
    /// A zero (or numerically negligible) pivot was encountered.
    SingularPivot {
        /// Index of the pivot that broke down.
        index: usize,
        /// The value of the offending pivot.
        value: f64,
    },
    /// Cholesky factorization encountered a non-positive diagonal entry,
    /// i.e. the input matrix is not (numerically) positive definite.
    NotPositiveDefinite {
        /// Index of the diagonal entry that failed.
        index: usize,
        /// The value that should have been positive.
        value: f64,
    },
    /// A pre-solve health scan (enabled with
    /// [`SolveOpts::check_finite`](crate::SolveOpts)) found a NaN or
    /// infinite entry in the triangular operand or the right-hand side.
    NonFiniteEntry {
        /// Which operand held the entry (`"matrix"` or `"rhs"`).
        operand: &'static str,
        /// The offending `(row, col)` pair.
        index: (usize, usize),
        /// The non-finite value.
        value: f64,
    },
    /// A parameter is out of its valid range (e.g. a block size of zero).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// An index was outside the matrix bounds.
    OutOfBounds {
        /// Short description of the access that failed.
        op: &'static str,
        /// The requested index (row, col).
        index: (usize, usize),
        /// The matrix dimensions (rows, cols).
        dims: (usize, usize),
    },
}

impl fmt::Display for DenseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DenseError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "{op}: dimension mismatch between {}x{} and {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            DenseError::NotSquare { op, dims } => {
                write!(
                    f,
                    "{op}: expected a square matrix, got {}x{}",
                    dims.0, dims.1
                )
            }
            DenseError::SingularPivot { index, value } => {
                write!(f, "singular pivot at index {index}: {value}")
            }
            DenseError::NotPositiveDefinite { index, value } => write!(
                f,
                "matrix is not positive definite: diagonal entry {index} would be sqrt({value})"
            ),
            DenseError::NonFiniteEntry {
                operand,
                index,
                value,
            } => write!(
                f,
                "non-finite {operand} entry {value} at ({}, {})",
                index.0, index.1
            ),
            DenseError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            DenseError::OutOfBounds { op, index, dims } => write!(
                f,
                "{op}: index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, dims.0, dims.1
            ),
        }
    }
}

impl std::error::Error for DenseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = DenseError::DimensionMismatch {
            op: "gemm",
            lhs: (3, 4),
            rhs: (5, 6),
        };
        let s = e.to_string();
        assert!(s.contains("gemm"));
        assert!(s.contains("3x4"));
        assert!(s.contains("5x6"));
    }

    #[test]
    fn display_not_square() {
        let e = DenseError::NotSquare {
            op: "tri_invert",
            dims: (3, 4),
        };
        assert!(e.to_string().contains("square"));
    }

    #[test]
    fn display_singular_pivot() {
        let e = DenseError::SingularPivot {
            index: 7,
            value: 0.0,
        };
        assert!(e.to_string().contains("7"));
    }

    #[test]
    fn display_not_positive_definite() {
        let e = DenseError::NotPositiveDefinite {
            index: 2,
            value: -1.0,
        };
        assert!(e.to_string().contains("positive definite"));
    }

    #[test]
    fn display_non_finite_entry() {
        let e = DenseError::NonFiniteEntry {
            operand: "rhs",
            index: (1, 2),
            value: f64::INFINITY,
        };
        assert!(e.to_string().contains("non-finite"));
        assert!(e.to_string().contains("rhs"));
    }

    #[test]
    fn display_invalid_parameter() {
        let e = DenseError::InvalidParameter {
            name: "block",
            reason: "must be nonzero".to_string(),
        };
        assert!(e.to_string().contains("block"));
        assert!(e.to_string().contains("nonzero"));
    }

    #[test]
    fn display_out_of_bounds() {
        let e = DenseError::OutOfBounds {
            op: "get",
            index: (9, 9),
            dims: (3, 3),
        };
        assert!(e.to_string().contains("out of bounds"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        let e = DenseError::SingularPivot {
            index: 0,
            value: 0.0,
        };
        assert_err(&e);
    }
}
