//! Row-major dense matrix type and block/strided access helpers.
//!
//! [`Matrix`] is the single storage type used throughout the reproduction.
//! Besides the usual constructors and element access it provides the two
//! access patterns the paper's algorithms rely on:
//!
//! * **contiguous blocks** (`block`, `set_block`) used by the blocked kernels
//!   and the block distributions, and
//! * **strided (cyclic) sub-matrices** (`strided_block`, `set_strided_block`)
//!   which extract `A(r0 : sr : rows, c0 : sc : cols)` in the colon notation of
//!   the paper — exactly the pieces a processor owns under a cyclic layout.

use crate::error::DenseError;
use crate::Result;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Index, IndexMut};

/// A dense, row-major, heap-allocated `f64` matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a generating function `f(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a row-major slice of `rows * cols` elements.
    ///
    /// Returns an error if the slice length does not match the dimensions.
    pub fn from_row_major(rows: usize, cols: usize, data: &[f64]) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(DenseError::InvalidParameter {
                name: "data",
                reason: format!(
                    "expected {} elements for a {}x{} matrix, got {}",
                    rows * cols,
                    rows,
                    cols,
                    data.len()
                ),
            });
        }
        Ok(Matrix {
            rows,
            cols,
            data: data.to_vec(),
        })
    }

    /// Creates a matrix taking ownership of a row-major vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(DenseError::InvalidParameter {
                name: "data",
                reason: format!(
                    "expected {} elements for a {}x{} matrix, got {}",
                    rows * cols,
                    rows,
                    cols,
                    data.len()
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Total number of stored elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix and return its row-major storage.
    #[inline]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Checked element access.
    pub fn get(&self, i: usize, j: usize) -> Result<f64> {
        if i >= self.rows || j >= self.cols {
            return Err(DenseError::OutOfBounds {
                op: "get",
                index: (i, j),
                dims: (self.rows, self.cols),
            });
        }
        Ok(self.data[i * self.cols + j])
    }

    /// Checked element update.
    pub fn set(&mut self, i: usize, j: usize, v: f64) -> Result<()> {
        if i >= self.rows || j >= self.cols {
            return Err(DenseError::OutOfBounds {
                op: "set",
                index: (i, j),
                dims: (self.rows, self.cols),
            });
        }
        self.data[i * self.cols + j] = v;
        Ok(())
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a freshly allocated vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Extract the contiguous block `A[r0 .. r0+nr, c0 .. c0+nc]`.
    pub fn block(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> Matrix {
        debug_assert!(r0 + nr <= self.rows && c0 + nc <= self.cols);
        let mut out = Matrix::zeros(nr, nc);
        for i in 0..nr {
            let src = &self.data[(r0 + i) * self.cols + c0..(r0 + i) * self.cols + c0 + nc];
            out.row_mut(i).copy_from_slice(src);
        }
        out
    }

    /// Overwrite the contiguous block starting at `(r0, c0)` with `b`.
    pub fn set_block(&mut self, r0: usize, c0: usize, b: &Matrix) {
        debug_assert!(r0 + b.rows <= self.rows && c0 + b.cols <= self.cols);
        for i in 0..b.rows {
            let dst_start = (r0 + i) * self.cols + c0;
            self.data[dst_start..dst_start + b.cols].copy_from_slice(b.row(i));
        }
    }

    /// Add `b` into the contiguous block starting at `(r0, c0)`.
    pub fn add_block(&mut self, r0: usize, c0: usize, b: &Matrix) {
        debug_assert!(r0 + b.rows <= self.rows && c0 + b.cols <= self.cols);
        for i in 0..b.rows {
            let dst_start = (r0 + i) * self.cols + c0;
            for j in 0..b.cols {
                self.data[dst_start + j] += b[(i, j)];
            }
        }
    }

    /// Extract the strided sub-matrix `A(r0 : sr : rows, c0 : sc : cols)` in the
    /// paper's colon notation, i.e. rows `r0, r0+sr, r0+2sr, …` and columns
    /// `c0, c0+sc, …`.  This is the piece of a matrix a processor with grid
    /// coordinates `(r0, c0)` owns under a cyclic layout over an `sr × sc`
    /// processor grid.
    pub fn strided_block(&self, r0: usize, sr: usize, c0: usize, sc: usize) -> Matrix {
        assert!(sr > 0 && sc > 0, "strides must be positive");
        let nr = if r0 < self.rows {
            (self.rows - r0).div_ceil(sr)
        } else {
            0
        };
        let nc = if c0 < self.cols {
            (self.cols - c0).div_ceil(sc)
        } else {
            0
        };
        Matrix::from_fn(nr, nc, |i, j| self[(r0 + i * sr, c0 + j * sc)])
    }

    /// Scatter `b` back into the strided positions `(r0 : sr, c0 : sc)`.
    /// Inverse of [`Matrix::strided_block`].
    pub fn set_strided_block(&mut self, r0: usize, sr: usize, c0: usize, sc: usize, b: &Matrix) {
        assert!(sr > 0 && sc > 0, "strides must be positive");
        for i in 0..b.rows {
            for j in 0..b.cols {
                let gi = r0 + i * sr;
                let gj = c0 + j * sc;
                debug_assert!(gi < self.rows && gj < self.cols);
                self[(gi, gj)] = b[(i, j)];
            }
        }
    }

    /// Element-wise sum `self + other`.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) -> Result<()> {
        if self.dims() != other.dims() {
            return Err(DenseError::DimensionMismatch {
                op: "axpy",
                lhs: self.dims(),
                rhs: other.dims(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Returns `alpha * self`.
    pub fn scale(&self, alpha: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| alpha * v).collect(),
        }
    }

    /// In-place multiplication by a scalar.
    pub fn scale_in_place(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Set every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Returns a copy with everything strictly above the diagonal zeroed.
    pub fn lower_triangular_part(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| {
            if j <= i {
                self[(i, j)]
            } else {
                0.0
            }
        })
    }

    /// Returns a copy with everything strictly below the diagonal zeroed.
    pub fn upper_triangular_part(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| {
            if j >= i {
                self[(i, j)]
            } else {
                0.0
            }
        })
    }

    /// `true` if every element strictly above the diagonal is `0.0`.
    pub fn is_lower_triangular(&self) -> bool {
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if self[(i, j)] != 0.0 {
                    return false;
                }
            }
        }
        true
    }

    /// `true` if every element strictly below the diagonal is `0.0`.
    pub fn is_upper_triangular(&self) -> bool {
        for j in 0..self.cols {
            for i in (j + 1)..self.rows {
                if self[(i, j)] != 0.0 {
                    return false;
                }
            }
        }
        true
    }

    /// Horizontally concatenate `[self | other]`.
    pub fn hcat(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(DenseError::DimensionMismatch {
                op: "hcat",
                lhs: self.dims(),
                rhs: other.dims(),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        out.set_block(0, 0, self);
        out.set_block(0, self.cols, other);
        Ok(out)
    }

    /// Vertically concatenate `[self; other]`.
    pub fn vcat(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(DenseError::DimensionMismatch {
                op: "vcat",
                lhs: self.dims(),
                rhs: other.dims(),
            });
        }
        let mut out = Matrix::zeros(self.rows + other.rows, self.cols);
        out.set_block(0, 0, self);
        out.set_block(self.rows, 0, other);
        Ok(out)
    }

    /// Maximum absolute difference to `other`; `None` on dimension mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> Option<f64> {
        if self.dims() != other.dims() {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max),
        )
    }

    /// Borrow the rectangular block `A[r0 .. r0+nr, c0 .. c0+nc]` without
    /// copying it.
    pub fn view(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatRef<'_> {
        assert!(
            r0 + nr <= self.rows && c0 + nc <= self.cols,
            "view: block ({r0}+{nr}, {c0}+{nc}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        if nr == 0 || nc == 0 {
            return MatRef::empty(nr, nc, self.cols);
        }
        // SAFETY: the assert guarantees the block lies inside `self.data`,
        // which `&self` keeps alive (and un-mutated through any unique
        // reference) for the view's lifetime.
        unsafe {
            MatRef::from_raw_parts(
                self.data.as_ptr().add(r0 * self.cols + c0),
                nr,
                nc,
                self.cols,
            )
        }
    }

    /// Mutably borrow the rectangular block `A[r0 .. r0+nr, c0 .. c0+nc]`
    /// without copying it.
    pub fn view_mut(&mut self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatMut<'_> {
        assert!(
            r0 + nr <= self.rows && c0 + nc <= self.cols,
            "view_mut: block ({r0}+{nr}, {c0}+{nc}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        let stride = self.cols;
        if nr == 0 || nc == 0 {
            return MatMut::empty(nr, nc, stride);
        }
        // SAFETY: the assert guarantees the block lies inside `self.data`,
        // and `&mut self` gives this view exclusive access to it.
        unsafe {
            MatMut::from_raw_parts(self.data.as_mut_ptr().add(r0 * stride + c0), nr, nc, stride)
        }
    }

    /// The whole matrix as an immutable view.
    pub fn as_view(&self) -> MatRef<'_> {
        self.view(0, 0, self.rows, self.cols)
    }

    /// The whole matrix as a mutable view.
    pub fn as_view_mut(&mut self) -> MatMut<'_> {
        let (rows, cols) = (self.rows, self.cols);
        self.view_mut(0, 0, rows, cols)
    }

    fn zip_with<F: Fn(f64, f64) -> f64>(
        &self,
        other: &Matrix,
        op: &'static str,
        f: F,
    ) -> Result<Matrix> {
        if self.dims() != other.dims() {
            return Err(DenseError::DimensionMismatch {
                op,
                lhs: self.dims(),
                rhs: other.dims(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| f(*a, *b))
                .collect(),
        })
    }
}

/// Immutable borrowed view of a rectangular block of a [`Matrix`].
///
/// The view references the owner's row-major storage in place: element
/// `(i, j)` lives at `ptr.add(i * stride + j)`.  Views are what let the
/// blocked kernels (and the `catrsm` algorithms) update sub-blocks without
/// cloning them first.
///
/// Like [`MatMut`], the representation is a raw pointer plus geometry, with
/// the same invariants (in-bounds, non-aliasing element addresses) minus
/// exclusivity: a `MatRef` only claims its own `rows × cols` **elements** —
/// never the gap bytes between rows — so an interleaved sibling view (e.g.
/// the other half of a [`MatMut::split_cols_at_mut`], reborrowed via
/// [`MatMut::rb`]) can be written concurrently without the two views'
/// memory claims overlapping.
#[derive(Clone, Copy)]
pub struct MatRef<'a> {
    ptr: *const f64,
    rows: usize,
    cols: usize,
    stride: usize,
    _marker: PhantomData<&'a [f64]>,
}

// SAFETY: a `MatRef` is semantically a `&[f64]` over its disjoint elements
// (shared read-only access for its lifetime), and `f64` is `Sync`, so both
// sharing it across threads and moving it are sound — workers of the
// parallel GEMM read `A`/`B` chunks through it.
unsafe impl Send for MatRef<'_> {}
unsafe impl Sync for MatRef<'_> {}

impl<'a> MatRef<'a> {
    /// Builds a view from raw parts.
    ///
    /// # Safety
    /// The caller must guarantee in-bounds geometry (element `(i, j)` at
    /// `ptr.add(i*stride + j)` valid for reads for all `i < rows`,
    /// `j < cols`), `cols <= stride` for multi-row views, and that no unique
    /// reference to those elements is live for `'a`.
    #[inline]
    pub(crate) unsafe fn from_raw_parts(
        ptr: *const f64,
        rows: usize,
        cols: usize,
        stride: usize,
    ) -> MatRef<'a> {
        debug_assert!(rows <= 1 || cols <= stride);
        MatRef {
            ptr,
            rows,
            cols,
            stride,
            _marker: PhantomData,
        }
    }

    /// An empty view with the given (degenerate) dimensions.
    #[inline]
    fn empty(rows: usize, cols: usize, stride: usize) -> MatRef<'a> {
        debug_assert!(rows == 0 || cols == 0);
        MatRef {
            ptr: std::ptr::NonNull::dangling().as_ptr(),
            rows,
            cols,
            stride,
            _marker: PhantomData,
        }
    }

    /// View a contiguous row-major slice as a `rows×cols` matrix.
    pub fn from_slice(data: &'a [f64], rows: usize, cols: usize) -> MatRef<'a> {
        assert_eq!(data.len(), rows * cols, "from_slice: length mismatch");
        if rows == 0 || cols == 0 {
            return MatRef::empty(rows, cols, cols);
        }
        // SAFETY: the length check makes the `rows×cols` geometry (stride =
        // cols) exactly cover `data`, which we borrow for `'a`.
        unsafe { MatRef::from_raw_parts(data.as_ptr(), rows, cols, cols) }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Distance in elements between consecutive rows.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Element access.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.rows && j < self.cols,
            "at: ({i}, {j}) out of bounds"
        );
        // SAFETY: bounds just checked; in-bounds elements are valid reads.
        unsafe { *self.ptr.add(i * self.stride + j) }
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row: {i} out of bounds");
        // SAFETY: row `i` is `cols` contiguous in-bounds elements.
        unsafe { std::slice::from_raw_parts(self.ptr.add(i * self.stride), self.cols) }
    }

    /// Pointer to element `(0, 0)`.
    #[inline]
    pub fn as_ptr(&self) -> *const f64 {
        self.ptr
    }

    /// A sub-view of this view.
    pub fn subview(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatRef<'a> {
        assert!(
            r0 + nr <= self.rows && c0 + nc <= self.cols,
            "subview out of bounds"
        );
        if nr == 0 || nc == 0 {
            return MatRef::empty(nr, nc, self.stride);
        }
        // SAFETY: `(r0, c0)` is an in-bounds element (both blocks
        // non-empty) and the sub-block stays inside `self`'s block.
        unsafe { MatRef::from_raw_parts(self.ptr.add(r0 * self.stride + c0), nr, nc, self.stride) }
    }

    /// Copy the viewed block into a freshly allocated [`Matrix`].
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| self.at(i, j))
    }
}

/// Mutable borrowed view of a rectangular block of a [`Matrix`].
///
/// See [`MatRef`]; the mutable variant additionally supports in-place
/// updates, which is how the blocked triangular kernels write their results
/// without intermediate clones.
///
/// Internally the view is a raw pointer plus `(rows, cols, stride)` geometry
/// rather than a `&mut [f64]`.  A slice-backed mutable view cannot be split
/// **by columns** — the two halves interleave in memory, which is why the
/// right-side blocked TRSM updates used to drop down to raw-pointer GEMM
/// calls.  With the pointer representation [`MatMut::split_cols_at_mut`] and
/// [`MatMut::split_rows_at_mut`] both hand out two provably disjoint views,
/// and every public method stays safe: all `unsafe` is confined to this type's
/// implementation.
///
/// # Invariants (maintained by every constructor)
///
/// * For non-empty views, `ptr` points at element `(0, 0)` and element
///   `(i, j)` lives at `ptr.add(i * stride + j)` for all `i < rows`,
///   `j < cols`; every such element is inside one live allocation.
/// * `cols <= stride` whenever `rows > 1`, so distinct `(i, j)` pairs never
///   alias.
/// * The view has exclusive access to its elements for its lifetime `'a`
///   (enforced by borrowing rules at the safe construction sites:
///   [`Matrix::view_mut`], [`MatMut::from_slice`], splits and sub-views of
///   existing views).
/// * Empty views (`rows == 0 || cols == 0`) never dereference `ptr`.
pub struct MatMut<'a> {
    ptr: *mut f64,
    rows: usize,
    cols: usize,
    stride: usize,
    _marker: PhantomData<&'a mut [f64]>,
}

// SAFETY: a `MatMut` is semantically a `&mut` over its disjoint elements
// (exclusive access for its lifetime, see the type invariants), and `f64` is
// `Send`, so moving the view to another thread is sound — this is what lets
// the parallel GEMM hand disjoint column chunks of `C` to scoped workers.
unsafe impl Send for MatMut<'_> {}

impl<'a> MatMut<'a> {
    /// Builds a view from raw parts.
    ///
    /// # Safety
    /// The caller must guarantee the type invariants listed on [`MatMut`]:
    /// in-bounds geometry, `cols <= stride` (for multi-row views), and
    /// exclusive access to the viewed elements for `'a`.
    #[inline]
    pub(crate) unsafe fn from_raw_parts(
        ptr: *mut f64,
        rows: usize,
        cols: usize,
        stride: usize,
    ) -> MatMut<'a> {
        debug_assert!(rows <= 1 || cols <= stride);
        MatMut {
            ptr,
            rows,
            cols,
            stride,
            _marker: PhantomData,
        }
    }

    /// An empty view with the given (degenerate) dimensions.
    #[inline]
    fn empty(rows: usize, cols: usize, stride: usize) -> MatMut<'a> {
        debug_assert!(rows == 0 || cols == 0);
        MatMut {
            ptr: std::ptr::NonNull::dangling().as_ptr(),
            rows,
            cols,
            stride,
            _marker: PhantomData,
        }
    }

    /// View a contiguous row-major slice as a mutable `rows×cols` matrix.
    pub fn from_slice(data: &'a mut [f64], rows: usize, cols: usize) -> MatMut<'a> {
        assert_eq!(data.len(), rows * cols, "from_slice: length mismatch");
        if rows == 0 || cols == 0 {
            return MatMut::empty(rows, cols, cols);
        }
        // SAFETY: the length check makes the `rows×cols` geometry (stride =
        // cols) exactly cover `data`, which we borrow mutably for `'a`.
        unsafe { MatMut::from_raw_parts(data.as_mut_ptr(), rows, cols, cols) }
    }

    /// Reborrow: a shorter-lived mutable view of the same block, leaving
    /// `self` usable again afterwards.
    #[inline]
    pub fn reborrow(&mut self) -> MatMut<'_> {
        MatMut {
            ptr: self.ptr,
            rows: self.rows,
            cols: self.cols,
            stride: self.stride,
            _marker: PhantomData,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Distance in elements between consecutive rows.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Element access.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.rows && j < self.cols,
            "at: ({i}, {j}) out of bounds"
        );
        // SAFETY: bounds just checked; in-bounds elements are valid reads.
        unsafe { *self.ptr.add(i * self.stride + j) }
    }

    /// Mutable element access.
    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "at_mut: ({i}, {j}) out of bounds"
        );
        // SAFETY: bounds just checked; `&mut self` makes the borrow unique.
        unsafe { &mut *self.ptr.add(i * self.stride + j) }
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row: {i} out of bounds");
        // SAFETY: row `i` is `cols` contiguous in-bounds elements.
        unsafe { std::slice::from_raw_parts(self.ptr.add(i * self.stride), self.cols) }
    }

    /// Row `i` as a contiguous mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row_mut: {i} out of bounds");
        // SAFETY: row `i` is `cols` contiguous in-bounds elements, and
        // `&mut self` makes the borrow unique.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(i * self.stride), self.cols) }
    }

    /// Pointer to element `(0, 0)`.
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut f64 {
        self.ptr
    }

    /// Reborrow as an immutable view.
    ///
    /// The result claims only this view's elements (no gap bytes between
    /// rows), so it coexists soundly with writes to an interleaved sibling
    /// view — e.g. the other half of a [`MatMut::split_cols_at_mut`].
    #[inline]
    pub fn rb(&self) -> MatRef<'_> {
        if self.rows == 0 || self.cols == 0 {
            return MatRef::empty(self.rows, self.cols, self.stride);
        }
        // SAFETY: same in-bounds geometry as `self`; `&self` freezes this
        // view's elements for the returned lifetime.
        unsafe { MatRef::from_raw_parts(self.ptr, self.rows, self.cols, self.stride) }
    }

    /// A mutable sub-view; consumes the borrow for the lifetime of the result.
    pub fn subview_mut(self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatMut<'a> {
        assert!(
            r0 + nr <= self.rows && c0 + nc <= self.cols,
            "subview_mut out of bounds"
        );
        if nr == 0 || nc == 0 {
            return MatMut::empty(nr, nc, self.stride);
        }
        // SAFETY: `(r0, c0)` is an in-bounds element (both blocks non-empty),
        // the sub-block stays inside `self`'s block, and `self` is consumed,
        // transferring its exclusive access.
        unsafe { MatMut::from_raw_parts(self.ptr.add(r0 * self.stride + c0), nr, nc, self.stride) }
    }

    /// A shorter-lived mutable sub-view that leaves `self` usable afterwards
    /// (shorthand for `reborrow().subview_mut(..)`).
    #[inline]
    pub fn submat_mut(&mut self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatMut<'_> {
        self.reborrow().subview_mut(r0, c0, nr, nc)
    }

    /// Split into the rows above `r` and the rows from `r` down.
    pub fn split_rows_at_mut(self, r: usize) -> (MatMut<'a>, MatMut<'a>) {
        assert!(r <= self.rows, "split_rows_at_mut out of bounds");
        let stride = self.stride;
        let (rows, cols) = (self.rows, self.cols);
        if r == 0 {
            return (MatMut::empty(0, cols, stride), self);
        }
        if r == rows {
            return (self, MatMut::empty(0, cols, stride));
        }
        // SAFETY: both halves are non-empty in-bounds sub-blocks of `self`
        // covering disjoint row ranges (`0..r` and `r..rows`), so handing
        // each half exclusive access splits — never duplicates — `self`'s
        // exclusive access.
        unsafe {
            (
                MatMut::from_raw_parts(self.ptr, r, cols, stride),
                MatMut::from_raw_parts(self.ptr.add(r * stride), rows - r, cols, stride),
            )
        }
    }

    /// Split into the columns left of `c` and the columns from `c` right.
    ///
    /// The two views interleave in memory (each row of the right view sits
    /// between two rows of the left one), which is exactly what a
    /// slice-backed view could not express; with the raw-pointer
    /// representation they are still provably element-disjoint.  This is the
    /// split the right-side blocked TRSM updates and the parallel GEMM's
    /// column partitioning are built on.
    pub fn split_cols_at_mut(self, c: usize) -> (MatMut<'a>, MatMut<'a>) {
        assert!(c <= self.cols, "split_cols_at_mut out of bounds");
        let stride = self.stride;
        let (rows, cols) = (self.rows, self.cols);
        if c == 0 {
            return (MatMut::empty(rows, 0, stride), self);
        }
        if c == cols {
            return (self, MatMut::empty(rows, 0, stride));
        }
        // SAFETY: both halves are non-empty in-bounds sub-blocks of `self`
        // covering disjoint column ranges (`0..c` and `c..cols`) of the same
        // rows: element (i, j) of the left half is `ptr + i*stride + j` with
        // `j < c`, of the right half `ptr + i*stride + c + j'` with
        // `j' < cols - c <= stride - c` — the index sets are disjoint, so
        // `self`'s exclusive access is split, never duplicated.
        unsafe {
            (
                MatMut::from_raw_parts(self.ptr, rows, c, stride),
                MatMut::from_raw_parts(self.ptr.add(c), rows, cols - c, stride),
            )
        }
    }

    /// Borrow row `i` mutably and row `j` immutably at the same time
    /// (`i != j`) — the split borrow the substitution kernels need for
    /// `row_i -= a · row_j` updates.
    pub fn row_pair_mut(&mut self, i: usize, j: usize) -> (&mut [f64], &[f64]) {
        assert!(
            i != j && i < self.rows && j < self.rows,
            "row_pair_mut: bad rows {i}, {j}"
        );
        // SAFETY: rows `i` and `j` are distinct, so with `cols <= stride`
        // the two `cols`-long ranges cannot overlap; `&mut self` makes the
        // mutable half unique.
        unsafe {
            (
                std::slice::from_raw_parts_mut(self.ptr.add(i * self.stride), self.cols),
                std::slice::from_raw_parts(self.ptr.add(j * self.stride), self.cols),
            )
        }
    }

    /// Set every element of the viewed block to zero.
    pub fn fill_zero(&mut self) {
        for i in 0..self.rows {
            self.row_mut(i).fill(0.0);
        }
    }

    /// Scale every element of the viewed block in place.
    pub fn scale_in_place(&mut self, alpha: f64) {
        for i in 0..self.rows {
            for v in self.row_mut(i) {
                *v *= alpha;
            }
        }
    }

    /// In-place `self += alpha * other` over the viewed block.
    pub fn axpy(&mut self, alpha: f64, other: MatRef<'_>) {
        assert_eq!(self.dims(), other.dims(), "axpy: dimension mismatch");
        for i in 0..self.rows {
            let src = other.row(i);
            for (d, s) in self.row_mut(i).iter_mut().zip(src) {
                *d += alpha * s;
            }
        }
    }

    /// Overwrite the viewed block with `other`.
    pub fn copy_from(&mut self, other: MatRef<'_>) {
        assert_eq!(self.dims(), other.dims(), "copy_from: dimension mismatch");
        for i in 0..self.rows {
            self.row_mut(i).copy_from_slice(other.row(i));
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_show = 8;
        for i in 0..self.rows.min(max_show) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(max_show) {
                write!(f, "{:10.4}", self[(i, j)])?;
                if j + 1 < self.cols.min(max_show) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > max_show {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_show {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_dims() {
        let m = Matrix::zeros(3, 5);
        assert_eq!(m.dims(), (3, 5));
        assert_eq!(m.len(), 15);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        assert!(!m.is_empty());
        assert!(Matrix::zeros(0, 0).is_empty());
    }

    #[test]
    fn identity_is_identity() {
        let m = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
        assert!(m.is_square());
    }

    #[test]
    fn from_fn_and_index() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(1, 2)], 12.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
        assert_eq!(m.col(2), vec![2.0, 12.0]);
    }

    #[test]
    fn from_row_major_checks_length() {
        assert!(Matrix::from_row_major(2, 2, &[1.0, 2.0, 3.0]).is_err());
        let m = Matrix::from_row_major(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 3, vec![0.0; 5]).is_err());
        assert!(Matrix::from_vec(2, 3, vec![0.0; 6]).is_ok());
    }

    #[test]
    fn get_set_checked() {
        let mut m = Matrix::zeros(2, 2);
        assert!(m.get(2, 0).is_err());
        assert!(m.set(0, 2, 1.0).is_err());
        m.set(1, 1, 5.0).unwrap();
        assert_eq!(m.get(1, 1).unwrap(), 5.0);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 7 + j * 3) as f64);
        let t = m.transpose();
        assert_eq!(t.dims(), (5, 3));
        assert_eq!(t.transpose(), m);
        for i in 0..3 {
            for j in 0..5 {
                assert_eq!(m[(i, j)], t[(j, i)]);
            }
        }
    }

    #[test]
    fn block_extract_insert_round_trip() {
        let m = Matrix::from_fn(6, 6, |i, j| (i * 6 + j) as f64);
        let b = m.block(2, 3, 3, 2);
        assert_eq!(b.dims(), (3, 2));
        assert_eq!(b[(0, 0)], m[(2, 3)]);
        assert_eq!(b[(2, 1)], m[(4, 4)]);

        let mut m2 = Matrix::zeros(6, 6);
        m2.set_block(2, 3, &b);
        assert_eq!(m2[(2, 3)], m[(2, 3)]);
        assert_eq!(m2[(4, 4)], m[(4, 4)]);
        assert_eq!(m2[(0, 0)], 0.0);
    }

    #[test]
    fn add_block_accumulates() {
        let mut m = Matrix::filled(4, 4, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        m.add_block(1, 1, &b);
        assert_eq!(m[(1, 1)], 3.0);
        assert_eq!(m[(2, 2)], 3.0);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(3, 3)], 1.0);
    }

    #[test]
    fn strided_block_matches_cyclic_ownership() {
        // 6x6 matrix, 2x3 processor grid, processor (1, 2) owns rows 1,3,5 and cols 2,5.
        let m = Matrix::from_fn(6, 6, |i, j| (i * 6 + j) as f64);
        let b = m.strided_block(1, 2, 2, 3);
        assert_eq!(b.dims(), (3, 2));
        assert_eq!(b[(0, 0)], m[(1, 2)]);
        assert_eq!(b[(1, 1)], m[(3, 5)]);
        assert_eq!(b[(2, 0)], m[(5, 2)]);
    }

    #[test]
    fn strided_block_round_trip() {
        let m = Matrix::from_fn(8, 8, |i, j| (i * 8 + j) as f64 + 1.0);
        let mut rebuilt = Matrix::zeros(8, 8);
        for r0 in 0..2 {
            for c0 in 0..4 {
                let b = m.strided_block(r0, 2, c0, 4);
                rebuilt.set_strided_block(r0, 2, c0, 4, &b);
            }
        }
        assert_eq!(rebuilt, m);
    }

    #[test]
    fn strided_block_uneven_dims() {
        // 5 rows over stride 2 starting at 0 -> 3 rows; starting at 1 -> 2 rows.
        let m = Matrix::from_fn(5, 5, |i, j| (i + j) as f64);
        assert_eq!(m.strided_block(0, 2, 0, 2).dims(), (3, 3));
        assert_eq!(m.strided_block(1, 2, 1, 2).dims(), (2, 2));
        assert_eq!(m.strided_block(4, 5, 4, 5).dims(), (1, 1));
        assert_eq!(m.strided_block(5, 5, 0, 1).dims(), (0, 5));
    }

    #[test]
    fn add_sub_axpy_scale() {
        let a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Matrix::filled(2, 2, 1.0);
        let s = a.add(&b).unwrap();
        assert_eq!(s[(1, 1)], 3.0);
        let d = s.sub(&b).unwrap();
        assert_eq!(d, a);
        let mut c = a.clone();
        c.axpy(2.0, &b).unwrap();
        assert_eq!(c[(0, 0)], 2.0);
        assert_eq!(a.scale(3.0)[(1, 1)], 6.0);
        let mut e = a.clone();
        e.scale_in_place(0.0);
        assert!(e.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn mismatched_dims_error() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(3, 3);
        assert!(a.add(&b).is_err());
        assert!(a.sub(&b).is_err());
        assert!(a.clone().axpy(1.0, &b).is_err());
        assert!(a.max_abs_diff(&b).is_none());
    }

    #[test]
    fn triangular_predicates() {
        let l = Matrix::from_fn(4, 4, |i, j| if j <= i { 1.0 } else { 0.0 });
        assert!(l.is_lower_triangular());
        assert!(!l.is_upper_triangular());
        let u = l.transpose();
        assert!(u.is_upper_triangular());
        assert!(!u.is_lower_triangular());
        let full = Matrix::filled(3, 3, 1.0);
        assert_eq!(
            full.lower_triangular_part(),
            Matrix::from_fn(3, 3, |i, j| if j <= i { 1.0 } else { 0.0 })
        );
        assert_eq!(
            full.upper_triangular_part(),
            Matrix::from_fn(3, 3, |i, j| if j >= i { 1.0 } else { 0.0 })
        );
    }

    #[test]
    fn concatenation() {
        let a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 3, 2.0);
        let h = a.hcat(&b).unwrap();
        assert_eq!(h.dims(), (2, 5));
        assert_eq!(h[(0, 4)], 2.0);
        let c = Matrix::filled(3, 2, 4.0);
        let v = a.vcat(&c).unwrap();
        assert_eq!(v.dims(), (5, 2));
        assert_eq!(v[(4, 0)], 4.0);
        assert!(a.hcat(&c).is_err());
        assert!(a.vcat(&b).is_err());
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Matrix::filled(2, 2, 1.0);
        let mut b = a.clone();
        b[(1, 0)] = 1.5;
        assert_eq!(a.max_abs_diff(&b), Some(0.5));
        assert_eq!(a.max_abs_diff(&a), Some(0.0));
    }

    #[test]
    fn split_cols_at_mut_yields_disjoint_strided_views() {
        let mut m = Matrix::from_fn(5, 8, |i, j| (i * 8 + j) as f64);
        let orig = m.clone();
        {
            let (mut left, mut right) = m.as_view_mut().split_cols_at_mut(3);
            assert_eq!(left.dims(), (5, 3));
            assert_eq!(right.dims(), (5, 5));
            assert_eq!(left.stride(), 8);
            assert_eq!(right.stride(), 8);
            // Both halves see the elements of the original matrix…
            assert_eq!(left.at(4, 2), orig[(4, 2)]);
            assert_eq!(right.at(4, 0), orig[(4, 3)]);
            // …and can be written simultaneously.
            *left.at_mut(1, 2) = -1.0;
            *right.at_mut(1, 0) = -2.0;
        }
        assert_eq!(m[(1, 2)], -1.0);
        assert_eq!(m[(1, 3)], -2.0);
        assert_eq!(m[(1, 1)], orig[(1, 1)]);
        assert_eq!(m[(1, 4)], orig[(1, 4)]);
    }

    #[test]
    fn split_cols_at_mut_boundaries() {
        let mut m = Matrix::from_fn(3, 4, |i, j| (i + j) as f64);
        let (left, right) = m.as_view_mut().split_cols_at_mut(0);
        assert_eq!(left.dims(), (3, 0));
        assert_eq!(right.dims(), (3, 4));
        let (left, right) = m.as_view_mut().split_cols_at_mut(4);
        assert_eq!(left.dims(), (3, 4));
        assert_eq!(right.dims(), (3, 0));
    }

    #[test]
    fn split_rows_at_mut_yields_disjoint_views() {
        let mut m = Matrix::from_fn(6, 4, |i, j| (i * 4 + j) as f64);
        let orig = m.clone();
        {
            let (mut top, mut bottom) = m.as_view_mut().split_rows_at_mut(2);
            assert_eq!(top.dims(), (2, 4));
            assert_eq!(bottom.dims(), (4, 4));
            assert_eq!(bottom.at(0, 0), orig[(2, 0)]);
            *top.at_mut(1, 3) = -7.0;
            *bottom.at_mut(0, 3) = -8.0;
        }
        assert_eq!(m[(1, 3)], -7.0);
        assert_eq!(m[(2, 3)], -8.0);
    }

    #[test]
    fn nested_col_and_row_splits_compose() {
        // Quarter a matrix with one row split and two column splits, write a
        // distinct sentinel through each quadrant, and check placement.
        let mut m = Matrix::zeros(4, 6);
        {
            let (top, bottom) = m.as_view_mut().split_rows_at_mut(2);
            let (mut tl, mut tr) = top.split_cols_at_mut(3);
            let (mut bl, mut br) = bottom.split_cols_at_mut(3);
            tl.fill_zero();
            *tl.at_mut(0, 0) = 1.0;
            *tr.at_mut(0, 0) = 2.0;
            *bl.at_mut(0, 0) = 3.0;
            *br.at_mut(0, 0) = 4.0;
        }
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 3)], 2.0);
        assert_eq!(m[(2, 0)], 3.0);
        assert_eq!(m[(2, 3)], 4.0);
    }

    #[test]
    fn submat_mut_reborrows_without_consuming() {
        let mut m = Matrix::from_fn(5, 5, |i, j| (i * 5 + j) as f64);
        let mut v = m.as_view_mut();
        *v.submat_mut(1, 1, 2, 2).at_mut(0, 0) = -1.0;
        // `v` is still usable after the sub-borrow ends.
        *v.at_mut(0, 0) = -2.0;
        assert_eq!(m[(1, 1)], -1.0);
        assert_eq!(m[(0, 0)], -2.0);
    }

    #[test]
    fn mat_mut_row_pair_and_rb_round_trip() {
        let mut m = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
        let orig = m.clone();
        let mut v = m.view_mut(1, 0, 3, 3);
        {
            let (row_i, row_j) = v.row_pair_mut(2, 0);
            row_i[0] = row_j[0] + 100.0;
        }
        assert_eq!(v.rb().at(2, 0), orig[(1, 0)] + 100.0);
        assert_eq!(v.rb().to_matrix().dims(), (3, 3));
        assert_eq!(m[(3, 0)], orig[(1, 0)] + 100.0);
    }

    #[test]
    fn empty_views_are_harmless() {
        let mut m = Matrix::zeros(3, 3);
        let v = m.view_mut(1, 1, 0, 2);
        assert_eq!(v.dims(), (0, 2));
        assert_eq!(v.rb().dims(), (0, 2));
        let v2 = m.view_mut(0, 0, 2, 0);
        assert_eq!(v2.dims(), (2, 0));
        let mut whole = m.as_view_mut();
        whole.reborrow().subview_mut(3, 3, 0, 0).fill_zero();
    }

    #[test]
    fn debug_format_is_bounded() {
        let m = Matrix::zeros(100, 100);
        let s = format!("{m:?}");
        assert!(s.len() < 4000);
        assert!(s.contains("100x100"));
    }
}
