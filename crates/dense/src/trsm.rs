//! Local triangular solves.
//!
//! [`trsm`] solves `L · X = B` (or the upper/right/unit variants) for a dense
//! block of right-hand sides.  The solve is *blocked*: the triangular matrix
//! is processed in `NB`-wide panels, the substitution runs only on the small
//! diagonal blocks, and all off-diagonal work is delegated to the packed
//! GEMM ([`crate::gemm::gemm_views`] / the microkernel), so the O(n²k)
//! update — which is where almost all the flops are — runs at GEMM speed.
//! This is the base-case kernel of both the recursive TRSM of Section IV and
//! the iterative inversion-based TRSM of Section VI of the paper.

use crate::error::DenseError;
use crate::flops::{trsm_flops, FlopCount};
use crate::gemm::{gemm_views, gemm_views_a_bt, gemm_views_at};
use crate::matrix::{MatMut, MatRef, Matrix};
use crate::Result;

/// Which side of the unknown the triangular matrix is on: `A·X = B` (left) or
/// `X·A = B` (right).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Solve `A · X = B`.
    Left,
    /// Solve `X · A = B`.
    Right,
}

/// Whether the triangular operand is lower or upper triangular.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Triangle {
    /// Lower triangular (the paper's main case).
    Lower,
    /// Upper triangular.
    Upper,
}

/// Whether the diagonal of the triangular operand is taken to be all ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Diag {
    /// Use the stored diagonal entries.
    NonUnit,
    /// Assume an implicit unit diagonal (the stored diagonal is ignored).
    Unit,
}

/// Whether the triangular operand is applied as stored or transposed
/// (`op(A) = A` or `op(A) = Aᵀ`).
///
/// Transposed solves never materialize `Aᵀ` — not even panel-sized pieces:
/// the substitution base cases read `A` by rows in outer-product order, and
/// the blocked drivers' GEMM updates fold the panel transpose into the
/// micro-panel packing itself ([`crate::gemm::gemm_views_at`] /
/// [`crate::gemm::gemm_views_a_bt`]), reading `A` with swapped strides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transpose {
    /// Solve with `A` as stored.
    #[default]
    No,
    /// Solve with `Aᵀ` (e.g. `Lᵀ·X = B` for a stored lower-triangular `L`).
    Yes,
}

/// Options of a triangular solve: which side the triangular operand is on,
/// which triangle it occupies, whether it is applied transposed, and whether
/// its diagonal is implicit ones.
///
/// This is the single options vocabulary shared by the dense kernels
/// ([`trsm_opts`], [`trsv_opts`]), the sparse executors and the distributed
/// algorithms (through `catrsm::SolveRequest`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveOpts {
    /// Side of the unknown the triangular operand is on.
    pub side: Side,
    /// Triangle of the *stored* operand (before any transposition).
    pub triangle: Triangle,
    /// Whether the operand is applied transposed.
    pub transpose: Transpose,
    /// Whether the diagonal is implicit ones.
    pub diag: Diag,
    /// Run a pre-solve health scan rejecting NaN/Inf entries in the operand
    /// triangle and the right-hand side (off by default: the scan is O(n²)
    /// and most callers feed data they generated themselves).
    pub check_finite: bool,
}

impl SolveOpts {
    /// Left-side solve with a stored triangular operand: defaults to
    /// non-transposed, non-unit diagonal.
    pub fn new(triangle: Triangle) -> SolveOpts {
        SolveOpts {
            side: Side::Left,
            triangle,
            transpose: Transpose::No,
            diag: Diag::NonUnit,
            check_finite: false,
        }
    }

    /// `A·X = B` with lower-triangular `A` (the paper's main case).
    pub fn lower() -> SolveOpts {
        SolveOpts::new(Triangle::Lower)
    }

    /// `A·X = B` with upper-triangular `A`.
    pub fn upper() -> SolveOpts {
        SolveOpts::new(Triangle::Upper)
    }

    /// Put the triangular operand on the given side (`A·X = B` or `X·A = B`).
    pub fn side(mut self, side: Side) -> SolveOpts {
        self.side = side;
        self
    }

    /// Apply the operand transposed (`op(A) = Aᵀ`).
    pub fn transposed(mut self) -> SolveOpts {
        self.transpose = Transpose::Yes;
        self
    }

    /// Set the transpose flag explicitly.
    pub fn transpose(mut self, transpose: Transpose) -> SolveOpts {
        self.transpose = transpose;
        self
    }

    /// Treat the diagonal as implicit ones.
    pub fn unit_diagonal(mut self) -> SolveOpts {
        self.diag = Diag::Unit;
        self
    }

    /// Set the diagonal kind explicitly.
    pub fn diag(mut self, diag: Diag) -> SolveOpts {
        self.diag = diag;
        self
    }

    /// Enable the pre-solve NaN/Inf scan of the operand triangle and the
    /// right-hand side ([`DenseError::NonFiniteEntry`] on failure).
    pub fn validate_finite(mut self) -> SolveOpts {
        self.check_finite = true;
        self
    }

    /// Set the NaN/Inf pre-scan flag explicitly.
    pub fn check_finite(mut self, on: bool) -> SolveOpts {
        self.check_finite = on;
        self
    }

    /// The triangle `op(A)` effectively occupies: transposition flips it.
    pub fn op_triangle(&self) -> Triangle {
        match (self.triangle, self.transpose) {
            (t, Transpose::No) => t,
            (Triangle::Lower, Transpose::Yes) => Triangle::Upper,
            (Triangle::Upper, Transpose::Yes) => Triangle::Lower,
        }
    }
}

/// Pivots (or explicit diagonal entries, in the `sparse` crate) smaller
/// than this in absolute value are treated as singular.
pub const PIVOT_TOL: f64 = 1e-300;

/// Panel width of the blocked solve: the substitution runs on `NB×NB`
/// diagonal blocks and everything else is GEMM.  Public so solver plans can
/// report the blocking they will execute with.
pub const TRSM_BLOCK: usize = 64;

/// Internal alias for the panel width.
const NB: usize = TRSM_BLOCK;

/// Pre-solve health scan of the entries a solve will actually read: the
/// stored triangle of `a` plus its diagonal when it is not implicit ones.
/// `a` must already be known square.
fn check_triangle_finite(opts: &SolveOpts, a: &Matrix) -> Result<()> {
    let n = a.rows();
    for i in 0..n {
        let (lo, hi) = match opts.triangle {
            Triangle::Lower => (0, i),
            Triangle::Upper => (i + 1, n),
        };
        for j in lo..hi {
            let v = a[(i, j)];
            if !v.is_finite() {
                return Err(DenseError::NonFiniteEntry {
                    operand: "matrix",
                    index: (i, j),
                    value: v,
                });
            }
        }
        if opts.diag == Diag::NonUnit && !a[(i, i)].is_finite() {
            return Err(DenseError::NonFiniteEntry {
                operand: "matrix",
                index: (i, i),
                value: a[(i, i)],
            });
        }
    }
    Ok(())
}

/// Pre-solve health scan of a right-hand-side block.
fn check_rhs_finite(b: &Matrix) -> Result<()> {
    for i in 0..b.rows() {
        for (j, &v) in b.row(i).iter().enumerate() {
            if !v.is_finite() {
                return Err(DenseError::NonFiniteEntry {
                    operand: "rhs",
                    index: (i, j),
                    value: v,
                });
            }
        }
    }
    Ok(())
}

/// Solve `A · X = B` where `A` is triangular, returning `X` as a new matrix.
///
/// * `tri` selects lower or upper triangular `A`.
/// * `diag` selects whether the diagonal is implicit ones.
/// * `a` must be square `n×n`, `b` must be `n×k`.
pub fn trsm(tri: Triangle, diag: Diag, a: &Matrix, b: &Matrix) -> Result<Matrix> {
    trsm_opts(&SolveOpts::new(tri).diag(diag), a, b)
}

/// Solve a triangular system described by a [`SolveOpts`], returning the
/// solution as a new matrix.
pub fn trsm_opts(opts: &SolveOpts, a: &Matrix, b: &Matrix) -> Result<Matrix> {
    let mut x = b.clone();
    trsm_in_place_opts(opts, a, &mut x)?;
    Ok(x)
}

/// Solve a triangular system in place, overwriting `b` with the solution.
///
/// Supports both `A·X = B` (`Side::Left`) and `X·A = B` (`Side::Right`).
/// Returns the flop count of the substitution.  Shorthand for
/// [`trsm_in_place_opts`] with `Transpose::No`.
pub fn trsm_in_place(
    side: Side,
    tri: Triangle,
    diag: Diag,
    a: &Matrix,
    b: &mut Matrix,
) -> Result<FlopCount> {
    trsm_in_place_opts(&SolveOpts::new(tri).side(side).diag(diag), a, b)
}

/// Solve `op(A)·X = B` (or `X·op(A) = B`) in place, where every aspect of
/// the solve — side, triangle, transposition, diagonal kind — comes from the
/// [`SolveOpts`].  Overwrites `b` with the solution and returns the flop
/// count of the substitution.
///
/// The transposed cases solve against `Aᵀ` **without materializing it**:
/// the blocked drivers' GEMM updates pack transposed micro-panels straight
/// out of `A` (no scratch copies) and the substitution base cases read `A`
/// by rows in outer-product order.
pub fn trsm_in_place_opts(opts: &SolveOpts, a: &Matrix, b: &mut Matrix) -> Result<FlopCount> {
    if !a.is_square() {
        return Err(DenseError::NotSquare {
            op: "trsm",
            dims: a.dims(),
        });
    }
    let n = a.rows();
    match opts.side {
        Side::Left => {
            if b.rows() != n {
                return Err(DenseError::DimensionMismatch {
                    op: "trsm (left)",
                    lhs: a.dims(),
                    rhs: b.dims(),
                });
            }
        }
        Side::Right => {
            if b.cols() != n {
                return Err(DenseError::DimensionMismatch {
                    op: "trsm (right)",
                    lhs: b.dims(),
                    rhs: a.dims(),
                });
            }
        }
    }
    if opts.check_finite {
        check_triangle_finite(opts, a)?;
        check_rhs_finite(b)?;
    }
    if opts.diag == Diag::NonUnit {
        for i in 0..n {
            if a[(i, i)].abs() < PIVOT_TOL {
                return Err(DenseError::SingularPivot {
                    index: i,
                    value: a[(i, i)],
                });
            }
        }
    }

    let k = match opts.side {
        Side::Left => b.cols(),
        Side::Right => b.rows(),
    };
    let diag = opts.diag;

    match (opts.side, opts.triangle, opts.transpose) {
        (Side::Left, Triangle::Lower, Transpose::No) => solve_left_lower_blocked(diag, a, b),
        (Side::Left, Triangle::Upper, Transpose::No) => solve_left_upper_blocked(diag, a, b),
        (Side::Right, Triangle::Lower, Transpose::No) => solve_right_lower_blocked(diag, a, b),
        (Side::Right, Triangle::Upper, Transpose::No) => solve_right_upper_blocked(diag, a, b),
        (Side::Left, Triangle::Lower, Transpose::Yes) => solve_left_lower_t_blocked(diag, a, b),
        (Side::Left, Triangle::Upper, Transpose::Yes) => solve_left_upper_t_blocked(diag, a, b),
        (Side::Right, Triangle::Lower, Transpose::Yes) => solve_right_lower_t_blocked(diag, a, b),
        (Side::Right, Triangle::Upper, Transpose::Yes) => solve_right_upper_t_blocked(diag, a, b),
    }

    Ok(trsm_flops(n, k))
}

/// Triangular solve with a single right-hand side vector: `A · x = b`.
pub fn trsv(tri: Triangle, diag: Diag, a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let mut x = b.to_vec();
    trsv_in_place(tri, diag, a, &mut x)?;
    Ok(x)
}

/// Single-RHS triangular solve described by a [`SolveOpts`]: `op(A)·x = b`.
///
/// The side must be [`Side::Left`] (a single right-hand side has no
/// meaningful right-side form distinct from the transposed left solve).
pub fn trsv_opts(opts: &SolveOpts, a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let mut x = b.to_vec();
    trsv_in_place_opts(opts, a, &mut x)?;
    Ok(x)
}

/// [`trsv_opts`] in place: `x` holds `b` on entry and the solution of
/// `op(A)·x = b` on exit, allocating nothing.
pub fn trsv_in_place_opts(opts: &SolveOpts, a: &Matrix, x: &mut [f64]) -> Result<FlopCount> {
    if opts.side == Side::Right {
        return Err(DenseError::DimensionMismatch {
            op: "trsv (right side unsupported)",
            lhs: a.dims(),
            rhs: (x.len(), 1),
        });
    }
    if opts.check_finite {
        if !a.is_square() {
            return Err(DenseError::NotSquare {
                op: "trsv",
                dims: a.dims(),
            });
        }
        check_triangle_finite(opts, a)?;
        for (i, &v) in x.iter().enumerate() {
            if !v.is_finite() {
                return Err(DenseError::NonFiniteEntry {
                    operand: "rhs",
                    index: (i, 0),
                    value: v,
                });
            }
        }
    }
    match opts.transpose {
        Transpose::No => trsv_in_place(opts.triangle, opts.diag, a, x),
        Transpose::Yes => trsv_in_place_transposed(opts.triangle, opts.diag, a, x),
    }
}

/// `Aᵀ·x = b` in place without materializing `Aᵀ`: outer-product
/// substitution reading `A` by rows (contiguous in the row-major layout).
fn trsv_in_place_transposed(
    tri: Triangle,
    diag: Diag,
    a: &Matrix,
    x: &mut [f64],
) -> Result<FlopCount> {
    if !a.is_square() {
        return Err(DenseError::NotSquare {
            op: "trsv",
            dims: a.dims(),
        });
    }
    let n = a.rows();
    if x.len() != n {
        return Err(DenseError::DimensionMismatch {
            op: "trsv",
            lhs: a.dims(),
            rhs: (x.len(), 1),
        });
    }
    if diag == Diag::NonUnit {
        for i in 0..n {
            if a[(i, i)].abs() < PIVOT_TOL {
                return Err(DenseError::SingularPivot {
                    index: i,
                    value: a[(i, i)],
                });
            }
        }
    }
    match tri {
        // Lᵀ·x = b: Σ_i L[i,j]·x[i] = b[j]; sweep i downward, scatter row i.
        Triangle::Lower => {
            for i in (0..n).rev() {
                let row = a.row(i);
                if diag == Diag::NonUnit {
                    x[i] /= row[i];
                }
                let xi = x[i];
                for (xj, aij) in x[..i].iter_mut().zip(&row[..i]) {
                    *xj -= aij * xi;
                }
            }
        }
        // Uᵀ·x = b: sweep i upward, scatter row i's tail.
        Triangle::Upper => {
            for i in 0..n {
                let row = a.row(i);
                if diag == Diag::NonUnit {
                    x[i] /= row[i];
                }
                let xi = x[i];
                for (xj, aij) in x[(i + 1)..].iter_mut().zip(&row[(i + 1)..]) {
                    *xj -= aij * xi;
                }
            }
        }
    }
    Ok(trsm_flops(n, 1))
}

/// Single-RHS triangular solve in place: overwrites `x` (holding `b` on
/// entry) with the solution of `A · x = b`, allocating nothing.
///
/// With one right-hand side the blocked [`trsm_in_place`] machinery buys
/// nothing — the GEMM updates degenerate to dot products — so this runs a
/// plain substitution over `A`'s rows.  It is the kernel behind [`trsv`] and
/// the dense-fallback path of the `sparse` crate's triangular solver, both
/// of which sit on hot iterative-solver loops where a per-call `Matrix`
/// allocation would dominate.
pub fn trsv_in_place(tri: Triangle, diag: Diag, a: &Matrix, x: &mut [f64]) -> Result<FlopCount> {
    if !a.is_square() {
        return Err(DenseError::NotSquare {
            op: "trsv",
            dims: a.dims(),
        });
    }
    let n = a.rows();
    if x.len() != n {
        return Err(DenseError::DimensionMismatch {
            op: "trsv",
            lhs: a.dims(),
            rhs: (x.len(), 1),
        });
    }
    if diag == Diag::NonUnit {
        for i in 0..n {
            if a[(i, i)].abs() < PIVOT_TOL {
                return Err(DenseError::SingularPivot {
                    index: i,
                    value: a[(i, i)],
                });
            }
        }
    }
    match tri {
        Triangle::Lower => {
            for i in 0..n {
                let row = a.row(i);
                let mut v = x[i];
                for (aij, xj) in row[..i].iter().zip(x[..i].iter()) {
                    v -= aij * xj;
                }
                x[i] = if diag == Diag::NonUnit { v / row[i] } else { v };
            }
        }
        Triangle::Upper => {
            for i in (0..n).rev() {
                let row = a.row(i);
                let mut v = x[i];
                for (aij, xj) in row[(i + 1)..].iter().zip(x[(i + 1)..].iter()) {
                    v -= aij * xj;
                }
                x[i] = if diag == Diag::NonUnit { v / row[i] } else { v };
            }
        }
    }
    Ok(trsm_flops(n, 1))
}

// ---------------------------------------------------------------------------
// Blocked drivers: substitution on NB×NB diagonal blocks, GEMM off-diagonal.
// ---------------------------------------------------------------------------

fn solve_left_lower_blocked(diag: Diag, a: &Matrix, b: &mut Matrix) {
    let n = a.rows();
    let k = b.cols();
    let mut i0 = 0;
    while i0 < n {
        let i1 = (i0 + NB).min(n);
        if i0 > 0 {
            // B[i0..i1] -= L[i0..i1, 0..i0] · X[0..i0]
            let (solved, rest) = b.as_view_mut().split_rows_at_mut(i0);
            let mut target = rest.subview_mut(0, 0, i1 - i0, k);
            gemm_views(
                -1.0,
                a.view(i0, 0, i1 - i0, i0),
                solved.rb(),
                1.0,
                &mut target,
            )
            .expect("blocked trsm: update dims");
        }
        solve_left_lower_base(
            diag,
            a.view(i0, i0, i1 - i0, i1 - i0),
            b.view_mut(i0, 0, i1 - i0, k),
        );
        i0 = i1;
    }
}

fn solve_left_upper_blocked(diag: Diag, a: &Matrix, b: &mut Matrix) {
    let n = a.rows();
    let k = b.cols();
    let mut i1 = n;
    while i1 > 0 {
        let i0 = i1.saturating_sub(NB);
        if i1 < n {
            // B[i0..i1] -= U[i0..i1, i1..n] · X[i1..n]
            let (head, solved) = b.as_view_mut().split_rows_at_mut(i1);
            let mut target = head.subview_mut(i0, 0, i1 - i0, k);
            gemm_views(
                -1.0,
                a.view(i0, i1, i1 - i0, n - i1),
                solved.rb(),
                1.0,
                &mut target,
            )
            .expect("blocked trsm: update dims");
        }
        solve_left_upper_base(
            diag,
            a.view(i0, i0, i1 - i0, i1 - i0),
            b.view_mut(i0, 0, i1 - i0, k),
        );
        i1 = i0;
    }
}

fn solve_right_lower_blocked(diag: Diag, a: &Matrix, b: &mut Matrix) {
    // X · L = B: columns are solved from last to first; the trailing update
    // reads already-solved columns of B while writing the current block, so
    // the two column ranges are separated with `split_cols_at_mut` and the
    // update runs through the same safe `gemm_views` path as the left-side
    // cases.
    let n = a.rows();
    let m = b.rows();
    let mut j1 = n;
    while j1 > 0 {
        let j0 = j1.saturating_sub(NB);
        if j1 < n {
            // B[:, j0..j1] -= X[:, j1..n] · L[j1..n, j0..j1]
            let (head, solved) = b.as_view_mut().split_cols_at_mut(j1);
            let mut target = head.subview_mut(0, j0, m, j1 - j0);
            gemm_views(
                -1.0,
                solved.rb(),
                a.view(j1, j0, n - j1, j1 - j0),
                1.0,
                &mut target,
            )
            .expect("blocked trsm: update dims");
        }
        solve_right_lower_base(
            diag,
            a.view(j0, j0, j1 - j0, j1 - j0),
            b.view_mut(0, j0, m, j1 - j0),
        );
        j1 = j0;
    }
}

fn solve_right_upper_blocked(diag: Diag, a: &Matrix, b: &mut Matrix) {
    // X · U = B: columns are solved first to last; same column split as the
    // lower case, mirrored.
    let n = a.rows();
    let m = b.rows();
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + NB).min(n);
        if j0 > 0 {
            // B[:, j0..j1] -= X[:, 0..j0] · U[0..j0, j0..j1]
            let (solved, tail) = b.as_view_mut().split_cols_at_mut(j0);
            let mut target = tail.subview_mut(0, 0, m, j1 - j0);
            gemm_views(
                -1.0,
                solved.rb(),
                a.view(0, j0, j0, j1 - j0),
                1.0,
                &mut target,
            )
            .expect("blocked trsm: update dims");
        }
        solve_right_upper_base(
            diag,
            a.view(j0, j0, j1 - j0, j1 - j0),
            b.view_mut(0, j0, m, j1 - j0),
        );
        j0 = j1;
    }
}

// ---------------------------------------------------------------------------
// Transposed blocked drivers: op(A) = Aᵀ.  The GEMM updates run through the
// pack-transposed entry points (`gemm_views_at` / `gemm_views_a_bt`): the
// panel transpose is folded into the micro-panel packing itself, so neither
// the full Aᵀ nor any per-update scratch panel is ever materialized.  The
// diagonal blocks run outer-product substitution reading A by rows.
// ---------------------------------------------------------------------------

fn solve_left_lower_t_blocked(diag: Diag, a: &Matrix, b: &mut Matrix) {
    // Lᵀ·X = B: Lᵀ is upper triangular, so blocks run bottom-up; the update
    // of block [i0, i1) reads already-solved rows below it through the
    // pack-transposed panel (L[i1.., i0..i1])ᵀ.
    let n = a.rows();
    let k = b.cols();
    let mut i1 = n;
    while i1 > 0 {
        let i0 = i1.saturating_sub(NB);
        if i1 < n {
            // B[i0..i1] -= (L[i1..n, i0..i1])ᵀ · X[i1..n]
            let (head, solved) = b.as_view_mut().split_rows_at_mut(i1);
            let mut target = head.subview_mut(i0, 0, i1 - i0, k);
            gemm_views_at(
                -1.0,
                a.view(i1, i0, n - i1, i1 - i0),
                solved.rb(),
                1.0,
                &mut target,
            )
            .expect("blocked trsm: transposed update dims");
        }
        solve_left_lower_t_base(
            diag,
            a.view(i0, i0, i1 - i0, i1 - i0),
            b.view_mut(i0, 0, i1 - i0, k),
        );
        i1 = i0;
    }
}

fn solve_left_upper_t_blocked(diag: Diag, a: &Matrix, b: &mut Matrix) {
    // Uᵀ·X = B: Uᵀ is lower triangular, so blocks run top-down.
    let n = a.rows();
    let k = b.cols();
    let mut i0 = 0;
    while i0 < n {
        let i1 = (i0 + NB).min(n);
        if i0 > 0 {
            // B[i0..i1] -= (U[0..i0, i0..i1])ᵀ · X[0..i0]
            let (solved, rest) = b.as_view_mut().split_rows_at_mut(i0);
            let mut target = rest.subview_mut(0, 0, i1 - i0, k);
            gemm_views_at(
                -1.0,
                a.view(0, i0, i0, i1 - i0),
                solved.rb(),
                1.0,
                &mut target,
            )
            .expect("blocked trsm: transposed update dims");
        }
        solve_left_upper_t_base(
            diag,
            a.view(i0, i0, i1 - i0, i1 - i0),
            b.view_mut(i0, 0, i1 - i0, k),
        );
        i0 = i1;
    }
}

fn solve_right_lower_t_blocked(diag: Diag, a: &Matrix, b: &mut Matrix) {
    // X·Lᵀ = B: Lᵀ is upper triangular on the right, so columns run first to
    // last (mirror of the right-upper case).
    let n = a.rows();
    let m = b.rows();
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + NB).min(n);
        if j0 > 0 {
            // B[:, j0..j1] -= X[:, 0..j0] · (L[j0..j1, 0..j0])ᵀ
            let (solved, tail) = b.as_view_mut().split_cols_at_mut(j0);
            let mut target = tail.subview_mut(0, 0, m, j1 - j0);
            gemm_views_a_bt(
                -1.0,
                solved.rb(),
                a.view(j0, 0, j1 - j0, j0),
                1.0,
                &mut target,
            )
            .expect("blocked trsm: transposed update dims");
        }
        solve_right_lower_t_base(
            diag,
            a.view(j0, j0, j1 - j0, j1 - j0),
            b.view_mut(0, j0, m, j1 - j0),
        );
        j0 = j1;
    }
}

fn solve_right_upper_t_blocked(diag: Diag, a: &Matrix, b: &mut Matrix) {
    // X·Uᵀ = B: Uᵀ is lower triangular on the right, so columns run last to
    // first (mirror of the right-lower case).
    let n = a.rows();
    let m = b.rows();
    let mut j1 = n;
    while j1 > 0 {
        let j0 = j1.saturating_sub(NB);
        if j1 < n {
            // B[:, j0..j1] -= X[:, j1..n] · (U[j0..j1, j1..n])ᵀ
            let (head, solved) = b.as_view_mut().split_cols_at_mut(j1);
            let mut target = head.subview_mut(0, j0, m, j1 - j0);
            gemm_views_a_bt(
                -1.0,
                solved.rb(),
                a.view(j0, j1, j1 - j0, n - j1),
                1.0,
                &mut target,
            )
            .expect("blocked trsm: transposed update dims");
        }
        solve_right_upper_t_base(
            diag,
            a.view(j0, j0, j1 - j0, j1 - j0),
            b.view_mut(0, j0, m, j1 - j0),
        );
        j1 = j0;
    }
}

// ---------------------------------------------------------------------------
// Unblocked base cases on the NB×NB diagonal blocks.
// ---------------------------------------------------------------------------

fn solve_left_lower_base(diag: Diag, a: MatRef<'_>, mut b: MatMut<'_>) {
    let n = a.rows();
    for i in 0..n {
        for j in 0..i {
            let aij = a.at(i, j);
            if aij == 0.0 {
                continue;
            }
            let (row_i, row_j) = b.row_pair_mut(i, j);
            for (ri, rj) in row_i.iter_mut().zip(row_j) {
                *ri -= aij * rj;
            }
        }
        if diag == Diag::NonUnit {
            let inv = 1.0 / a.at(i, i);
            for v in b.row_mut(i) {
                *v *= inv;
            }
        }
    }
}

fn solve_left_upper_base(diag: Diag, a: MatRef<'_>, mut b: MatMut<'_>) {
    let n = a.rows();
    for i in (0..n).rev() {
        for j in (i + 1)..n {
            let aij = a.at(i, j);
            if aij == 0.0 {
                continue;
            }
            let (row_i, row_j) = b.row_pair_mut(i, j);
            for (ri, rj) in row_i.iter_mut().zip(row_j) {
                *ri -= aij * rj;
            }
        }
        if diag == Diag::NonUnit {
            let inv = 1.0 / a.at(i, i);
            for v in b.row_mut(i) {
                *v *= inv;
            }
        }
    }
}

fn solve_right_lower_base(diag: Diag, a: MatRef<'_>, mut b: MatMut<'_>) {
    // Per row r: solve x · L = b over the block, columns last to first.
    let n = a.rows();
    let m = b.rows();
    for r in 0..m {
        let row = b.row_mut(r);
        for j in (0..n).rev() {
            let mut v = row[j];
            for (rv, i) in row[(j + 1)..n].iter().zip((j + 1)..n) {
                v -= rv * a.at(i, j);
            }
            row[j] = if diag == Diag::NonUnit {
                v / a.at(j, j)
            } else {
                v
            };
        }
    }
}

fn solve_right_upper_base(diag: Diag, a: MatRef<'_>, mut b: MatMut<'_>) {
    // Per row r: solve x · U = b over the block, columns first to last.
    let n = a.rows();
    let m = b.rows();
    for r in 0..m {
        let row = b.row_mut(r);
        for j in 0..n {
            let mut v = row[j];
            for (rv, i) in row[..j].iter().zip(0..j) {
                v -= rv * a.at(i, j);
            }
            row[j] = if diag == Diag::NonUnit {
                v / a.at(j, j)
            } else {
                v
            };
        }
    }
}

// Transposed base cases: outer-product substitution on the diagonal block,
// reading `a` by rows (Σ_i a[i,j]·x[i] = b[j] for op(A) = Aᵀ).

fn solve_left_lower_t_base(diag: Diag, a: MatRef<'_>, mut b: MatMut<'_>) {
    let n = a.rows();
    for i in (0..n).rev() {
        if diag == Diag::NonUnit {
            let inv = 1.0 / a.at(i, i);
            for v in b.row_mut(i) {
                *v *= inv;
            }
        }
        for j in 0..i {
            let aij = a.at(i, j);
            if aij == 0.0 {
                continue;
            }
            let (row_j, row_i) = b.row_pair_mut(j, i);
            for (rj, ri) in row_j.iter_mut().zip(row_i) {
                *rj -= aij * ri;
            }
        }
    }
}

fn solve_left_upper_t_base(diag: Diag, a: MatRef<'_>, mut b: MatMut<'_>) {
    let n = a.rows();
    for i in 0..n {
        if diag == Diag::NonUnit {
            let inv = 1.0 / a.at(i, i);
            for v in b.row_mut(i) {
                *v *= inv;
            }
        }
        for j in (i + 1)..n {
            let aij = a.at(i, j);
            if aij == 0.0 {
                continue;
            }
            let (row_j, row_i) = b.row_pair_mut(j, i);
            for (rj, ri) in row_j.iter_mut().zip(row_i) {
                *rj -= aij * ri;
            }
        }
    }
}

fn solve_right_lower_t_base(diag: Diag, a: MatRef<'_>, mut b: MatMut<'_>) {
    // Per row r: x·Lᵀ = b over the block ⟺ Σ_i x[i]·L[j,i] = b[j];
    // columns first to last, reading row j of L contiguously.
    let n = a.rows();
    let m = b.rows();
    for r in 0..m {
        let row = b.row_mut(r);
        for j in 0..n {
            let aj = a.row(j);
            let mut v = row[j];
            for (rv, av) in row[..j].iter().zip(&aj[..j]) {
                v -= rv * av;
            }
            row[j] = if diag == Diag::NonUnit { v / aj[j] } else { v };
        }
    }
}

fn solve_right_upper_t_base(diag: Diag, a: MatRef<'_>, mut b: MatMut<'_>) {
    // Per row r: x·Uᵀ = b over the block ⟺ Σ_i x[i]·U[j,i] = b[j];
    // columns last to first, reading row j of U contiguously.
    let n = a.rows();
    let m = b.rows();
    for r in 0..m {
        let row = b.row_mut(r);
        for j in (0..n).rev() {
            let aj = a.row(j);
            let mut v = row[j];
            for (rv, av) in row[(j + 1)..n].iter().zip(&aj[(j + 1)..n]) {
                v -= rv * av;
            }
            row[j] = if diag == Diag::NonUnit { v / aj[j] } else { v };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::reference;

    fn lower(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            if j < i {
                ((i * 7 + j * 3) % 5) as f64 * 0.1 - 0.2
            } else if j == i {
                2.0 + (i % 3) as f64
            } else {
                0.0
            }
        })
    }

    fn near(a: &Matrix, b: &Matrix, tol: f64) -> bool {
        a.max_abs_diff(b).map(|d| d < tol).unwrap_or(false)
    }

    #[test]
    fn left_lower_solves() {
        let n = 24;
        let k = 5;
        let l = lower(n);
        let x_true = Matrix::from_fn(n, k, |i, j| ((i + j) % 7) as f64 - 3.0);
        let b = matmul(&l, &x_true);
        let x = trsm(Triangle::Lower, Diag::NonUnit, &l, &b).unwrap();
        assert!(near(&x, &x_true, 1e-9));
    }

    #[test]
    fn left_upper_solves() {
        let n = 17;
        let k = 3;
        let u = lower(n).transpose();
        let x_true = Matrix::from_fn(n, k, |i, j| (i as f64 - j as f64) / 10.0);
        let b = matmul(&u, &x_true);
        let x = trsm(Triangle::Upper, Diag::NonUnit, &u, &b).unwrap();
        assert!(near(&x, &x_true, 1e-9));
    }

    #[test]
    fn right_lower_solves() {
        let n = 12;
        let m = 4;
        let l = lower(n);
        let x_true = Matrix::from_fn(m, n, |i, j| ((i * 3 + j) % 5) as f64 / 5.0);
        let b = matmul(&x_true, &l);
        let mut x = b.clone();
        trsm_in_place(Side::Right, Triangle::Lower, Diag::NonUnit, &l, &mut x).unwrap();
        assert!(near(&x, &x_true, 1e-9));
    }

    #[test]
    fn right_upper_solves() {
        let n = 12;
        let m = 4;
        let u = lower(n).transpose();
        let x_true = Matrix::from_fn(m, n, |i, j| ((i * 3 + j) % 5) as f64 / 5.0 - 0.3);
        let b = matmul(&x_true, &u);
        let mut x = b.clone();
        trsm_in_place(Side::Right, Triangle::Upper, Diag::NonUnit, &u, &mut x).unwrap();
        assert!(near(&x, &x_true, 1e-9));
    }

    #[test]
    fn blocked_matches_unblocked_reference_across_nb_boundaries() {
        // Sizes straddling the NB=64 panel boundary, every side/triangle.
        for &n in &[1usize, 63, 64, 65, 130, 200] {
            let l = lower(n);
            let u = l.transpose();
            for &k in &[1usize, 3, 17] {
                let b_left = Matrix::from_fn(n, k, |i, j| ((i * 5 + j * 11) % 13) as f64 - 6.0);
                let b_right = Matrix::from_fn(k, n, |i, j| ((i * 5 + j * 11) % 13) as f64 - 6.0);
                for diag in [Diag::NonUnit, Diag::Unit] {
                    let cases: [(Side, Triangle, &Matrix, &Matrix); 4] = [
                        (Side::Left, Triangle::Lower, &l, &b_left),
                        (Side::Left, Triangle::Upper, &u, &b_left),
                        (Side::Right, Triangle::Lower, &l, &b_right),
                        (Side::Right, Triangle::Upper, &u, &b_right),
                    ];
                    for (side, tri, a, b) in cases {
                        let mut fast = b.clone();
                        let f1 = trsm_in_place(side, tri, diag, a, &mut fast).unwrap();
                        let mut slow = b.clone();
                        let f2 = reference::trsm_unblocked(side, tri, diag, a, &mut slow);
                        assert!(
                            near(&fast, &slow, 1e-8),
                            "mismatch at n={n} k={k} {side:?} {tri:?} {diag:?}"
                        );
                        assert_eq!(f1, f2, "flop accounting must match the reference");
                    }
                }
            }
        }
    }

    #[test]
    fn transposed_solves_match_explicit_transpose_every_variant() {
        // op(A) = Aᵀ without materializing Aᵀ must agree with solving the
        // explicitly transposed matrix through the non-transposed kernels,
        // across NB boundaries, both sides, both triangles, both diagonals.
        for &n in &[1usize, 2, 63, 64, 65, 130] {
            let l = lower(n);
            let u = l.transpose();
            for &k in &[1usize, 4, 9] {
                let b_left = Matrix::from_fn(n, k, |i, j| ((i * 3 + j * 7) % 11) as f64 - 5.0);
                let b_right = Matrix::from_fn(k, n, |i, j| ((i * 3 + j * 7) % 11) as f64 - 5.0);
                for diag in [Diag::NonUnit, Diag::Unit] {
                    for (side, tri, a, b) in [
                        (Side::Left, Triangle::Lower, &l, &b_left),
                        (Side::Left, Triangle::Upper, &u, &b_left),
                        (Side::Right, Triangle::Lower, &l, &b_right),
                        (Side::Right, Triangle::Upper, &u, &b_right),
                    ] {
                        let opts = SolveOpts::new(tri).side(side).diag(diag).transposed();
                        let mut fast = b.clone();
                        let f1 = trsm_in_place_opts(&opts, a, &mut fast).unwrap();
                        // Reference: solve against the materialized transpose
                        // with the opposite triangle.
                        let at = a.transpose();
                        let mut slow = b.clone();
                        let f2 =
                            trsm_in_place(side, opts.op_triangle(), diag, &at, &mut slow).unwrap();
                        assert!(
                            near(&fast, &slow, 1e-8),
                            "transpose mismatch at n={n} k={k} {side:?} {tri:?} {diag:?}"
                        );
                        assert_eq!(f1, f2, "flop accounting must match");
                    }
                }
            }
        }
    }

    #[test]
    fn transposed_trsv_matches_transposed_trsm() {
        for &n in &[1usize, 5, 40, 70] {
            let l = lower(n);
            let u = l.transpose();
            let b: Vec<f64> = (0..n).map(|i| ((i * 5) % 7) as f64 - 3.0).collect();
            let rhs = Matrix::from_vec(n, 1, b.clone()).unwrap();
            for diag in [Diag::NonUnit, Diag::Unit] {
                for (tri, a) in [(Triangle::Lower, &l), (Triangle::Upper, &u)] {
                    let opts = SolveOpts::new(tri).diag(diag).transposed();
                    let mut x = b.clone();
                    let f = trsv_in_place_opts(&opts, a, &mut x).unwrap();
                    assert_eq!(f, trsm_flops(n, 1));
                    let xm = trsm_opts(&opts, a, &rhs).unwrap();
                    for (got, want) in x.iter().zip(xm.as_slice()) {
                        assert!(
                            (got - want).abs() < 1e-9,
                            "trsv transposed diverged at n={n} {tri:?} {diag:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn op_triangle_flips_under_transpose() {
        assert_eq!(SolveOpts::lower().op_triangle(), Triangle::Lower);
        assert_eq!(
            SolveOpts::lower().transposed().op_triangle(),
            Triangle::Upper
        );
        assert_eq!(
            SolveOpts::upper().transposed().op_triangle(),
            Triangle::Lower
        );
        let o = SolveOpts::lower()
            .side(Side::Right)
            .unit_diagonal()
            .transpose(Transpose::Yes);
        assert_eq!(o.side, Side::Right);
        assert_eq!(o.diag, Diag::Unit);
        assert_eq!(o.transpose, Transpose::Yes);
    }

    #[test]
    fn trsv_opts_rejects_right_side() {
        let l = lower(3);
        let mut x = vec![1.0; 3];
        let opts = SolveOpts::lower().side(Side::Right);
        assert!(trsv_in_place_opts(&opts, &l, &mut x).is_err());
    }

    #[test]
    fn unit_diagonal_ignores_stored_diagonal() {
        let n = 10;
        let mut l = lower(n);
        // Solve with an implicit unit diagonal.
        let x_true = Matrix::from_fn(n, 2, |i, j| (i + j) as f64 / 5.0);
        let mut l_unit = l.clone();
        for i in 0..n {
            l_unit[(i, i)] = 1.0;
        }
        let b = matmul(&l_unit, &x_true);
        // Put garbage on the stored diagonal; Diag::Unit must ignore it.
        for i in 0..n {
            l[(i, i)] = 1.0e9;
        }
        let mut l_garbage = l_unit.clone();
        for i in 0..n {
            l_garbage[(i, i)] = 123.0;
        }
        let x = trsm(Triangle::Lower, Diag::Unit, &l_garbage, &b).unwrap();
        assert!(near(&x, &x_true, 1e-9));
    }

    #[test]
    fn trsv_single_rhs() {
        let n = 9;
        let l = lower(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) * 0.25 - 1.0).collect();
        let xt = Matrix::from_vec(n, 1, x_true.clone()).unwrap();
        let b = matmul(&l, &xt).into_vec();
        let x = trsv(Triangle::Lower, Diag::NonUnit, &l, &b).unwrap();
        for (a, b) in x.iter().zip(x_true.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn trsv_in_place_matches_trsm_every_variant() {
        for &n in &[1usize, 2, 9, 40] {
            let l = lower(n);
            let u = l.transpose();
            let b: Vec<f64> = (0..n).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
            let rhs = Matrix::from_vec(n, 1, b.clone()).unwrap();
            for diag in [Diag::NonUnit, Diag::Unit] {
                for (tri, a) in [(Triangle::Lower, &l), (Triangle::Upper, &u)] {
                    let mut x = b.clone();
                    let f = trsv_in_place(tri, diag, a, &mut x).unwrap();
                    assert_eq!(f, trsm_flops(n, 1));
                    let xm = trsm(tri, diag, a, &rhs).unwrap();
                    for (got, want) in x.iter().zip(xm.as_slice()) {
                        assert!(
                            (got - want).abs() < 1e-9,
                            "trsv_in_place diverged at n={n} {tri:?} {diag:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn trsv_in_place_rejects_bad_inputs() {
        let l = lower(4);
        let mut short = vec![1.0; 3];
        assert!(trsv_in_place(Triangle::Lower, Diag::NonUnit, &l, &mut short).is_err());
        let rect = Matrix::zeros(3, 4);
        let mut x = vec![1.0; 3];
        assert!(trsv_in_place(Triangle::Lower, Diag::NonUnit, &rect, &mut x).is_err());
        let mut sing = l.clone();
        sing[(2, 2)] = 0.0;
        let mut x4 = vec![1.0; 4];
        match trsv_in_place(Triangle::Lower, Diag::NonUnit, &sing, &mut x4) {
            Err(DenseError::SingularPivot { index, .. }) => assert_eq!(index, 2),
            other => panic!("expected SingularPivot, got {other:?}"),
        }
    }

    #[test]
    fn singular_pivot_is_detected() {
        let mut l = lower(5);
        l[(3, 3)] = 0.0;
        let b = Matrix::filled(5, 2, 1.0);
        match trsm(Triangle::Lower, Diag::NonUnit, &l, &b) {
            Err(DenseError::SingularPivot { index, .. }) => assert_eq!(index, 3),
            other => panic!("expected SingularPivot, got {other:?}"),
        }
    }

    #[test]
    fn dimension_checks() {
        let l = lower(4);
        let b = Matrix::zeros(5, 2);
        assert!(trsm(Triangle::Lower, Diag::NonUnit, &l, &b).is_err());
        let rect = Matrix::zeros(3, 4);
        assert!(trsm(Triangle::Lower, Diag::NonUnit, &rect, &b).is_err());
        let mut r = Matrix::zeros(2, 5);
        assert!(trsm_in_place(Side::Right, Triangle::Lower, Diag::NonUnit, &l, &mut r).is_err());
    }

    #[test]
    fn finite_scan_rejects_nan_matrix_entry() {
        let mut l = lower(6);
        l[(4, 2)] = f64::NAN;
        let b = Matrix::filled(6, 2, 1.0);
        // Off by default: the solve runs (and propagates the NaN).
        assert!(trsm(Triangle::Lower, Diag::NonUnit, &l, &b).is_ok());
        match trsm_opts(&SolveOpts::lower().validate_finite(), &l, &b) {
            Err(DenseError::NonFiniteEntry { operand, index, .. }) => {
                assert_eq!(operand, "matrix");
                assert_eq!(index, (4, 2));
            }
            other => panic!("expected NonFiniteEntry, got {other:?}"),
        }
    }

    #[test]
    fn finite_scan_rejects_inf_rhs_and_diag() {
        let l = lower(5);
        let mut b = Matrix::filled(5, 2, 1.0);
        b[(2, 1)] = f64::INFINITY;
        match trsm_opts(&SolveOpts::lower().validate_finite(), &l, &b) {
            Err(DenseError::NonFiniteEntry { operand, index, .. }) => {
                assert_eq!(operand, "rhs");
                assert_eq!(index, (2, 1));
            }
            other => panic!("expected NonFiniteEntry, got {other:?}"),
        }
        let mut ld = lower(5);
        ld[(3, 3)] = f64::NAN;
        let ok = Matrix::filled(5, 1, 1.0);
        match trsm_opts(&SolveOpts::lower().validate_finite(), &ld, &ok) {
            Err(DenseError::NonFiniteEntry { index, .. }) => assert_eq!(index, (3, 3)),
            other => panic!("expected NonFiniteEntry, got {other:?}"),
        }
        // Unit diagonal: the stored diagonal is never read, so a NaN there
        // passes the scan.
        let opts = SolveOpts::lower().unit_diagonal().validate_finite();
        assert!(trsm_opts(&opts, &ld, &ok).is_ok());
    }

    #[test]
    fn finite_scan_ignores_unread_triangle() {
        // Garbage strictly above the diagonal of a lower solve is never read.
        let mut l = lower(6);
        l[(1, 4)] = f64::NAN;
        let b = Matrix::filled(6, 2, 1.0);
        assert!(trsm_opts(&SolveOpts::lower().validate_finite(), &l, &b).is_ok());
    }

    #[test]
    fn finite_scan_covers_trsv() {
        let mut l = lower(5);
        l[(2, 0)] = f64::NEG_INFINITY;
        let x = vec![1.0; 5];
        match trsv_opts(&SolveOpts::lower().validate_finite(), &l, &x) {
            Err(DenseError::NonFiniteEntry { operand, index, .. }) => {
                assert_eq!(operand, "matrix");
                assert_eq!(index, (2, 0));
            }
            other => panic!("expected NonFiniteEntry, got {other:?}"),
        }
        let good = lower(5);
        let mut bad_rhs = vec![1.0; 5];
        bad_rhs[3] = f64::NAN;
        match trsv_opts(&SolveOpts::lower().validate_finite(), &good, &bad_rhs) {
            Err(DenseError::NonFiniteEntry { operand, index, .. }) => {
                assert_eq!(operand, "rhs");
                assert_eq!(index, (3, 0));
            }
            other => panic!("expected NonFiniteEntry, got {other:?}"),
        }
    }

    #[test]
    fn flop_count_matches_formula() {
        let l = lower(8);
        let mut b = Matrix::filled(8, 3, 1.0);
        let f = trsm_in_place(Side::Left, Triangle::Lower, Diag::NonUnit, &l, &mut b).unwrap();
        assert_eq!(f, trsm_flops(8, 3));
    }

    #[test]
    fn solving_identity_returns_rhs() {
        let id = Matrix::identity(6);
        let b = Matrix::from_fn(6, 4, |i, j| (i * 4 + j) as f64);
        let x = trsm(Triangle::Lower, Diag::NonUnit, &id, &b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn large_blocked_solve_is_accurate() {
        let n = 200;
        let k = 33;
        let l = crate::gen::well_conditioned_lower(n, 5);
        let x_true = crate::gen::rhs(n, k, 6);
        let b = matmul(&l, &x_true);
        let x = trsm(Triangle::Lower, Diag::NonUnit, &l, &b).unwrap();
        assert!(crate::norms::rel_diff(&x, &x_true) < 1e-9);
    }
}
