//! Local triangular solves.
//!
//! [`trsm`] solves `L · X = B` (or the upper/right/unit variants) for a dense
//! block of right-hand sides by forward/backward substitution, which is the
//! base-case kernel of both the recursive TRSM of Section IV and the
//! iterative inversion-based TRSM of Section VI of the paper.

use crate::error::DenseError;
use crate::flops::{trsm_flops, FlopCount};
use crate::matrix::Matrix;
use crate::Result;

/// Which side of the unknown the triangular matrix is on: `A·X = B` (left) or
/// `X·A = B` (right).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Solve `A · X = B`.
    Left,
    /// Solve `X · A = B`.
    Right,
}

/// Whether the triangular operand is lower or upper triangular.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Triangle {
    /// Lower triangular (the paper's main case).
    Lower,
    /// Upper triangular.
    Upper,
}

/// Whether the diagonal of the triangular operand is taken to be all ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Diag {
    /// Use the stored diagonal entries.
    NonUnit,
    /// Assume an implicit unit diagonal (the stored diagonal is ignored).
    Unit,
}

const PIVOT_TOL: f64 = 1e-300;

/// Solve `A · X = B` where `A` is triangular, returning `X` as a new matrix.
///
/// * `tri` selects lower or upper triangular `A`.
/// * `diag` selects whether the diagonal is implicit ones.
/// * `a` must be square `n×n`, `b` must be `n×k`.
pub fn trsm(tri: Triangle, diag: Diag, a: &Matrix, b: &Matrix) -> Result<Matrix> {
    let mut x = b.clone();
    trsm_in_place(Side::Left, tri, diag, a, &mut x)?;
    Ok(x)
}

/// Solve a triangular system in place, overwriting `b` with the solution.
///
/// Supports both `A·X = B` (`Side::Left`) and `X·A = B` (`Side::Right`).
/// Returns the flop count of the substitution.
pub fn trsm_in_place(
    side: Side,
    tri: Triangle,
    diag: Diag,
    a: &Matrix,
    b: &mut Matrix,
) -> Result<FlopCount> {
    if !a.is_square() {
        return Err(DenseError::NotSquare {
            op: "trsm",
            dims: a.dims(),
        });
    }
    let n = a.rows();
    match side {
        Side::Left => {
            if b.rows() != n {
                return Err(DenseError::DimensionMismatch {
                    op: "trsm (left)",
                    lhs: a.dims(),
                    rhs: b.dims(),
                });
            }
        }
        Side::Right => {
            if b.cols() != n {
                return Err(DenseError::DimensionMismatch {
                    op: "trsm (right)",
                    lhs: b.dims(),
                    rhs: a.dims(),
                });
            }
        }
    }
    if diag == Diag::NonUnit {
        for i in 0..n {
            if a[(i, i)].abs() < PIVOT_TOL {
                return Err(DenseError::SingularPivot {
                    index: i,
                    value: a[(i, i)],
                });
            }
        }
    }

    let k = match side {
        Side::Left => b.cols(),
        Side::Right => b.rows(),
    };

    match (side, tri) {
        (Side::Left, Triangle::Lower) => solve_left_lower(diag, a, b),
        (Side::Left, Triangle::Upper) => solve_left_upper(diag, a, b),
        (Side::Right, Triangle::Lower) => solve_right_lower(diag, a, b),
        (Side::Right, Triangle::Upper) => solve_right_upper(diag, a, b),
    }

    Ok(trsm_flops(n, k))
}

/// Triangular solve with a single right-hand side vector: `A · x = b`.
pub fn trsv(tri: Triangle, diag: Diag, a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    if b.len() != a.rows() {
        return Err(DenseError::DimensionMismatch {
            op: "trsv",
            lhs: a.dims(),
            rhs: (b.len(), 1),
        });
    }
    let rhs = Matrix::from_vec(b.len(), 1, b.to_vec())?;
    let x = trsm(tri, diag, a, &rhs)?;
    Ok(x.into_vec())
}

fn solve_left_lower(diag: Diag, a: &Matrix, b: &mut Matrix) {
    let n = a.rows();
    let k = b.cols();
    for i in 0..n {
        // b[i, :] -= sum_{j<i} a[i,j] * b[j, :]
        for j in 0..i {
            let aij = a[(i, j)];
            if aij == 0.0 {
                continue;
            }
            let (head, tail) = b.as_mut_slice().split_at_mut(i * k);
            let row_j = &head[j * k..(j + 1) * k];
            let row_i = &mut tail[..k];
            for c in 0..k {
                row_i[c] -= aij * row_j[c];
            }
        }
        if diag == Diag::NonUnit {
            let inv = 1.0 / a[(i, i)];
            for c in 0..k {
                b[(i, c)] *= inv;
            }
        }
    }
}

fn solve_left_upper(diag: Diag, a: &Matrix, b: &mut Matrix) {
    let n = a.rows();
    let k = b.cols();
    for i in (0..n).rev() {
        for j in (i + 1)..n {
            let aij = a[(i, j)];
            if aij == 0.0 {
                continue;
            }
            for c in 0..k {
                let v = b[(j, c)];
                b[(i, c)] -= aij * v;
            }
        }
        if diag == Diag::NonUnit {
            let inv = 1.0 / a[(i, i)];
            for c in 0..k {
                b[(i, c)] *= inv;
            }
        }
    }
}

fn solve_right_lower(diag: Diag, a: &Matrix, b: &mut Matrix) {
    // X * L = B  =>  process columns from last to first:
    // x[:, j] = (b[:, j] - sum_{i > j} x[:, i] * l[i, j]) / l[j, j]
    let n = a.rows();
    let m = b.rows();
    for j in (0..n).rev() {
        for i in (j + 1)..n {
            let lij = a[(i, j)];
            if lij == 0.0 {
                continue;
            }
            for r in 0..m {
                let v = b[(r, i)];
                b[(r, j)] -= v * lij;
            }
        }
        if diag == Diag::NonUnit {
            let inv = 1.0 / a[(j, j)];
            for r in 0..m {
                b[(r, j)] *= inv;
            }
        }
    }
}

fn solve_right_upper(diag: Diag, a: &Matrix, b: &mut Matrix) {
    // X * U = B  =>  process columns from first to last:
    // x[:, j] = (b[:, j] - sum_{i < j} x[:, i] * u[i, j]) / u[j, j]
    let n = a.rows();
    let m = b.rows();
    for j in 0..n {
        for i in 0..j {
            let uij = a[(i, j)];
            if uij == 0.0 {
                continue;
            }
            for r in 0..m {
                let v = b[(r, i)];
                b[(r, j)] -= v * uij;
            }
        }
        if diag == Diag::NonUnit {
            let inv = 1.0 / a[(j, j)];
            for r in 0..m {
                b[(r, j)] *= inv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    fn lower(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            if j < i {
                ((i * 7 + j * 3) % 5) as f64 * 0.1 - 0.2
            } else if j == i {
                2.0 + (i % 3) as f64
            } else {
                0.0
            }
        })
    }

    fn near(a: &Matrix, b: &Matrix, tol: f64) -> bool {
        a.max_abs_diff(b).map(|d| d < tol).unwrap_or(false)
    }

    #[test]
    fn left_lower_solves() {
        let n = 24;
        let k = 5;
        let l = lower(n);
        let x_true = Matrix::from_fn(n, k, |i, j| ((i + j) % 7) as f64 - 3.0);
        let b = matmul(&l, &x_true);
        let x = trsm(Triangle::Lower, Diag::NonUnit, &l, &b).unwrap();
        assert!(near(&x, &x_true, 1e-9));
    }

    #[test]
    fn left_upper_solves() {
        let n = 17;
        let k = 3;
        let u = lower(n).transpose();
        let x_true = Matrix::from_fn(n, k, |i, j| (i as f64 - j as f64) / 10.0);
        let b = matmul(&u, &x_true);
        let x = trsm(Triangle::Upper, Diag::NonUnit, &u, &b).unwrap();
        assert!(near(&x, &x_true, 1e-9));
    }

    #[test]
    fn right_lower_solves() {
        let n = 12;
        let m = 4;
        let l = lower(n);
        let x_true = Matrix::from_fn(m, n, |i, j| ((i * 3 + j) % 5) as f64 / 5.0);
        let b = matmul(&x_true, &l);
        let mut x = b.clone();
        trsm_in_place(Side::Right, Triangle::Lower, Diag::NonUnit, &l, &mut x).unwrap();
        assert!(near(&x, &x_true, 1e-9));
    }

    #[test]
    fn right_upper_solves() {
        let n = 12;
        let m = 4;
        let u = lower(n).transpose();
        let x_true = Matrix::from_fn(m, n, |i, j| ((i * 3 + j) % 5) as f64 / 5.0 - 0.3);
        let b = matmul(&x_true, &u);
        let mut x = b.clone();
        trsm_in_place(Side::Right, Triangle::Upper, Diag::NonUnit, &u, &mut x).unwrap();
        assert!(near(&x, &x_true, 1e-9));
    }

    #[test]
    fn unit_diagonal_ignores_stored_diagonal() {
        let n = 10;
        let mut l = lower(n);
        // Solve with an implicit unit diagonal.
        let x_true = Matrix::from_fn(n, 2, |i, j| (i + j) as f64 / 5.0);
        let mut l_unit = l.clone();
        for i in 0..n {
            l_unit[(i, i)] = 1.0;
        }
        let b = matmul(&l_unit, &x_true);
        // Put garbage on the stored diagonal; Diag::Unit must ignore it.
        for i in 0..n {
            l[(i, i)] = 1.0e9;
        }
        let mut l_garbage = l_unit.clone();
        for i in 0..n {
            l_garbage[(i, i)] = 123.0;
        }
        let x = trsm(Triangle::Lower, Diag::Unit, &l_garbage, &b).unwrap();
        assert!(near(&x, &x_true, 1e-9));
    }

    #[test]
    fn trsv_single_rhs() {
        let n = 9;
        let l = lower(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) * 0.25 - 1.0).collect();
        let xt = Matrix::from_vec(n, 1, x_true.clone()).unwrap();
        let b = matmul(&l, &xt).into_vec();
        let x = trsv(Triangle::Lower, Diag::NonUnit, &l, &b).unwrap();
        for (a, b) in x.iter().zip(x_true.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn singular_pivot_is_detected() {
        let mut l = lower(5);
        l[(3, 3)] = 0.0;
        let b = Matrix::filled(5, 2, 1.0);
        match trsm(Triangle::Lower, Diag::NonUnit, &l, &b) {
            Err(DenseError::SingularPivot { index, .. }) => assert_eq!(index, 3),
            other => panic!("expected SingularPivot, got {other:?}"),
        }
    }

    #[test]
    fn dimension_checks() {
        let l = lower(4);
        let b = Matrix::zeros(5, 2);
        assert!(trsm(Triangle::Lower, Diag::NonUnit, &l, &b).is_err());
        let rect = Matrix::zeros(3, 4);
        assert!(trsm(Triangle::Lower, Diag::NonUnit, &rect, &b).is_err());
        let mut r = Matrix::zeros(2, 5);
        assert!(trsm_in_place(Side::Right, Triangle::Lower, Diag::NonUnit, &l, &mut r).is_err());
    }

    #[test]
    fn flop_count_matches_formula() {
        let l = lower(8);
        let mut b = Matrix::filled(8, 3, 1.0);
        let f = trsm_in_place(Side::Left, Triangle::Lower, Diag::NonUnit, &l, &mut b).unwrap();
        assert_eq!(f, trsm_flops(8, 3));
    }

    #[test]
    fn solving_identity_returns_rhs() {
        let id = Matrix::identity(6);
        let b = Matrix::from_fn(6, 4, |i, j| (i * 4 + j) as f64);
        let x = trsm(Triangle::Lower, Diag::NonUnit, &id, &b).unwrap();
        assert_eq!(x, b);
    }
}
