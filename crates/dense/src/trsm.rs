//! Local triangular solves.
//!
//! [`trsm`] solves `L · X = B` (or the upper/right/unit variants) for a dense
//! block of right-hand sides.  The solve is *blocked*: the triangular matrix
//! is processed in `NB`-wide panels, the substitution runs only on the small
//! diagonal blocks, and all off-diagonal work is delegated to the packed
//! GEMM ([`crate::gemm::gemm_views`] / the microkernel), so the O(n²k)
//! update — which is where almost all the flops are — runs at GEMM speed.
//! This is the base-case kernel of both the recursive TRSM of Section IV and
//! the iterative inversion-based TRSM of Section VI of the paper.

use crate::error::DenseError;
use crate::flops::{trsm_flops, FlopCount};
use crate::gemm::gemm_views;
use crate::matrix::{MatMut, MatRef, Matrix};
use crate::Result;

/// Which side of the unknown the triangular matrix is on: `A·X = B` (left) or
/// `X·A = B` (right).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Solve `A · X = B`.
    Left,
    /// Solve `X · A = B`.
    Right,
}

/// Whether the triangular operand is lower or upper triangular.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Triangle {
    /// Lower triangular (the paper's main case).
    Lower,
    /// Upper triangular.
    Upper,
}

/// Whether the diagonal of the triangular operand is taken to be all ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Diag {
    /// Use the stored diagonal entries.
    NonUnit,
    /// Assume an implicit unit diagonal (the stored diagonal is ignored).
    Unit,
}

/// Pivots (or explicit diagonal entries, in the `sparse` crate) smaller
/// than this in absolute value are treated as singular.
pub const PIVOT_TOL: f64 = 1e-300;

/// Panel width of the blocked solve: the substitution runs on `NB×NB`
/// diagonal blocks and everything else is GEMM.
const NB: usize = 64;

/// Solve `A · X = B` where `A` is triangular, returning `X` as a new matrix.
///
/// * `tri` selects lower or upper triangular `A`.
/// * `diag` selects whether the diagonal is implicit ones.
/// * `a` must be square `n×n`, `b` must be `n×k`.
pub fn trsm(tri: Triangle, diag: Diag, a: &Matrix, b: &Matrix) -> Result<Matrix> {
    let mut x = b.clone();
    trsm_in_place(Side::Left, tri, diag, a, &mut x)?;
    Ok(x)
}

/// Solve a triangular system in place, overwriting `b` with the solution.
///
/// Supports both `A·X = B` (`Side::Left`) and `X·A = B` (`Side::Right`).
/// Returns the flop count of the substitution.
pub fn trsm_in_place(
    side: Side,
    tri: Triangle,
    diag: Diag,
    a: &Matrix,
    b: &mut Matrix,
) -> Result<FlopCount> {
    if !a.is_square() {
        return Err(DenseError::NotSquare {
            op: "trsm",
            dims: a.dims(),
        });
    }
    let n = a.rows();
    match side {
        Side::Left => {
            if b.rows() != n {
                return Err(DenseError::DimensionMismatch {
                    op: "trsm (left)",
                    lhs: a.dims(),
                    rhs: b.dims(),
                });
            }
        }
        Side::Right => {
            if b.cols() != n {
                return Err(DenseError::DimensionMismatch {
                    op: "trsm (right)",
                    lhs: b.dims(),
                    rhs: a.dims(),
                });
            }
        }
    }
    if diag == Diag::NonUnit {
        for i in 0..n {
            if a[(i, i)].abs() < PIVOT_TOL {
                return Err(DenseError::SingularPivot {
                    index: i,
                    value: a[(i, i)],
                });
            }
        }
    }

    let k = match side {
        Side::Left => b.cols(),
        Side::Right => b.rows(),
    };

    match (side, tri) {
        (Side::Left, Triangle::Lower) => solve_left_lower_blocked(diag, a, b),
        (Side::Left, Triangle::Upper) => solve_left_upper_blocked(diag, a, b),
        (Side::Right, Triangle::Lower) => solve_right_lower_blocked(diag, a, b),
        (Side::Right, Triangle::Upper) => solve_right_upper_blocked(diag, a, b),
    }

    Ok(trsm_flops(n, k))
}

/// Triangular solve with a single right-hand side vector: `A · x = b`.
pub fn trsv(tri: Triangle, diag: Diag, a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let mut x = b.to_vec();
    trsv_in_place(tri, diag, a, &mut x)?;
    Ok(x)
}

/// Single-RHS triangular solve in place: overwrites `x` (holding `b` on
/// entry) with the solution of `A · x = b`, allocating nothing.
///
/// With one right-hand side the blocked [`trsm_in_place`] machinery buys
/// nothing — the GEMM updates degenerate to dot products — so this runs a
/// plain substitution over `A`'s rows.  It is the kernel behind [`trsv`] and
/// the dense-fallback path of the `sparse` crate's triangular solver, both
/// of which sit on hot iterative-solver loops where a per-call `Matrix`
/// allocation would dominate.
pub fn trsv_in_place(tri: Triangle, diag: Diag, a: &Matrix, x: &mut [f64]) -> Result<FlopCount> {
    if !a.is_square() {
        return Err(DenseError::NotSquare {
            op: "trsv",
            dims: a.dims(),
        });
    }
    let n = a.rows();
    if x.len() != n {
        return Err(DenseError::DimensionMismatch {
            op: "trsv",
            lhs: a.dims(),
            rhs: (x.len(), 1),
        });
    }
    if diag == Diag::NonUnit {
        for i in 0..n {
            if a[(i, i)].abs() < PIVOT_TOL {
                return Err(DenseError::SingularPivot {
                    index: i,
                    value: a[(i, i)],
                });
            }
        }
    }
    match tri {
        Triangle::Lower => {
            for i in 0..n {
                let row = a.row(i);
                let mut v = x[i];
                for (aij, xj) in row[..i].iter().zip(x[..i].iter()) {
                    v -= aij * xj;
                }
                x[i] = if diag == Diag::NonUnit { v / row[i] } else { v };
            }
        }
        Triangle::Upper => {
            for i in (0..n).rev() {
                let row = a.row(i);
                let mut v = x[i];
                for (aij, xj) in row[(i + 1)..].iter().zip(x[(i + 1)..].iter()) {
                    v -= aij * xj;
                }
                x[i] = if diag == Diag::NonUnit { v / row[i] } else { v };
            }
        }
    }
    Ok(trsm_flops(n, 1))
}

// ---------------------------------------------------------------------------
// Blocked drivers: substitution on NB×NB diagonal blocks, GEMM off-diagonal.
// ---------------------------------------------------------------------------

fn solve_left_lower_blocked(diag: Diag, a: &Matrix, b: &mut Matrix) {
    let n = a.rows();
    let k = b.cols();
    let mut i0 = 0;
    while i0 < n {
        let i1 = (i0 + NB).min(n);
        if i0 > 0 {
            // B[i0..i1] -= L[i0..i1, 0..i0] · X[0..i0]
            let (solved, rest) = b.as_view_mut().split_rows_at_mut(i0);
            let mut target = rest.subview_mut(0, 0, i1 - i0, k);
            gemm_views(
                -1.0,
                a.view(i0, 0, i1 - i0, i0),
                solved.rb(),
                1.0,
                &mut target,
            )
            .expect("blocked trsm: update dims");
        }
        solve_left_lower_base(
            diag,
            a.view(i0, i0, i1 - i0, i1 - i0),
            b.view_mut(i0, 0, i1 - i0, k),
        );
        i0 = i1;
    }
}

fn solve_left_upper_blocked(diag: Diag, a: &Matrix, b: &mut Matrix) {
    let n = a.rows();
    let k = b.cols();
    let mut i1 = n;
    while i1 > 0 {
        let i0 = i1.saturating_sub(NB);
        if i1 < n {
            // B[i0..i1] -= U[i0..i1, i1..n] · X[i1..n]
            let (head, solved) = b.as_view_mut().split_rows_at_mut(i1);
            let mut target = head.subview_mut(i0, 0, i1 - i0, k);
            gemm_views(
                -1.0,
                a.view(i0, i1, i1 - i0, n - i1),
                solved.rb(),
                1.0,
                &mut target,
            )
            .expect("blocked trsm: update dims");
        }
        solve_left_upper_base(
            diag,
            a.view(i0, i0, i1 - i0, i1 - i0),
            b.view_mut(i0, 0, i1 - i0, k),
        );
        i1 = i0;
    }
}

fn solve_right_lower_blocked(diag: Diag, a: &Matrix, b: &mut Matrix) {
    // X · L = B: columns are solved from last to first; the trailing update
    // reads already-solved columns of B while writing the current block, so
    // the two column ranges are separated with `split_cols_at_mut` and the
    // update runs through the same safe `gemm_views` path as the left-side
    // cases.
    let n = a.rows();
    let m = b.rows();
    let mut j1 = n;
    while j1 > 0 {
        let j0 = j1.saturating_sub(NB);
        if j1 < n {
            // B[:, j0..j1] -= X[:, j1..n] · L[j1..n, j0..j1]
            let (head, solved) = b.as_view_mut().split_cols_at_mut(j1);
            let mut target = head.subview_mut(0, j0, m, j1 - j0);
            gemm_views(
                -1.0,
                solved.rb(),
                a.view(j1, j0, n - j1, j1 - j0),
                1.0,
                &mut target,
            )
            .expect("blocked trsm: update dims");
        }
        solve_right_lower_base(
            diag,
            a.view(j0, j0, j1 - j0, j1 - j0),
            b.view_mut(0, j0, m, j1 - j0),
        );
        j1 = j0;
    }
}

fn solve_right_upper_blocked(diag: Diag, a: &Matrix, b: &mut Matrix) {
    // X · U = B: columns are solved first to last; same column split as the
    // lower case, mirrored.
    let n = a.rows();
    let m = b.rows();
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + NB).min(n);
        if j0 > 0 {
            // B[:, j0..j1] -= X[:, 0..j0] · U[0..j0, j0..j1]
            let (solved, tail) = b.as_view_mut().split_cols_at_mut(j0);
            let mut target = tail.subview_mut(0, 0, m, j1 - j0);
            gemm_views(
                -1.0,
                solved.rb(),
                a.view(0, j0, j0, j1 - j0),
                1.0,
                &mut target,
            )
            .expect("blocked trsm: update dims");
        }
        solve_right_upper_base(
            diag,
            a.view(j0, j0, j1 - j0, j1 - j0),
            b.view_mut(0, j0, m, j1 - j0),
        );
        j0 = j1;
    }
}

// ---------------------------------------------------------------------------
// Unblocked base cases on the NB×NB diagonal blocks.
// ---------------------------------------------------------------------------

fn solve_left_lower_base(diag: Diag, a: MatRef<'_>, mut b: MatMut<'_>) {
    let n = a.rows();
    for i in 0..n {
        for j in 0..i {
            let aij = a.at(i, j);
            if aij == 0.0 {
                continue;
            }
            let (row_i, row_j) = b.row_pair_mut(i, j);
            for (ri, rj) in row_i.iter_mut().zip(row_j) {
                *ri -= aij * rj;
            }
        }
        if diag == Diag::NonUnit {
            let inv = 1.0 / a.at(i, i);
            for v in b.row_mut(i) {
                *v *= inv;
            }
        }
    }
}

fn solve_left_upper_base(diag: Diag, a: MatRef<'_>, mut b: MatMut<'_>) {
    let n = a.rows();
    for i in (0..n).rev() {
        for j in (i + 1)..n {
            let aij = a.at(i, j);
            if aij == 0.0 {
                continue;
            }
            let (row_i, row_j) = b.row_pair_mut(i, j);
            for (ri, rj) in row_i.iter_mut().zip(row_j) {
                *ri -= aij * rj;
            }
        }
        if diag == Diag::NonUnit {
            let inv = 1.0 / a.at(i, i);
            for v in b.row_mut(i) {
                *v *= inv;
            }
        }
    }
}

fn solve_right_lower_base(diag: Diag, a: MatRef<'_>, mut b: MatMut<'_>) {
    // Per row r: solve x · L = b over the block, columns last to first.
    let n = a.rows();
    let m = b.rows();
    for r in 0..m {
        let row = b.row_mut(r);
        for j in (0..n).rev() {
            let mut v = row[j];
            for (rv, i) in row[(j + 1)..n].iter().zip((j + 1)..n) {
                v -= rv * a.at(i, j);
            }
            row[j] = if diag == Diag::NonUnit {
                v / a.at(j, j)
            } else {
                v
            };
        }
    }
}

fn solve_right_upper_base(diag: Diag, a: MatRef<'_>, mut b: MatMut<'_>) {
    // Per row r: solve x · U = b over the block, columns first to last.
    let n = a.rows();
    let m = b.rows();
    for r in 0..m {
        let row = b.row_mut(r);
        for j in 0..n {
            let mut v = row[j];
            for (rv, i) in row[..j].iter().zip(0..j) {
                v -= rv * a.at(i, j);
            }
            row[j] = if diag == Diag::NonUnit {
                v / a.at(j, j)
            } else {
                v
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::reference;

    fn lower(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            if j < i {
                ((i * 7 + j * 3) % 5) as f64 * 0.1 - 0.2
            } else if j == i {
                2.0 + (i % 3) as f64
            } else {
                0.0
            }
        })
    }

    fn near(a: &Matrix, b: &Matrix, tol: f64) -> bool {
        a.max_abs_diff(b).map(|d| d < tol).unwrap_or(false)
    }

    #[test]
    fn left_lower_solves() {
        let n = 24;
        let k = 5;
        let l = lower(n);
        let x_true = Matrix::from_fn(n, k, |i, j| ((i + j) % 7) as f64 - 3.0);
        let b = matmul(&l, &x_true);
        let x = trsm(Triangle::Lower, Diag::NonUnit, &l, &b).unwrap();
        assert!(near(&x, &x_true, 1e-9));
    }

    #[test]
    fn left_upper_solves() {
        let n = 17;
        let k = 3;
        let u = lower(n).transpose();
        let x_true = Matrix::from_fn(n, k, |i, j| (i as f64 - j as f64) / 10.0);
        let b = matmul(&u, &x_true);
        let x = trsm(Triangle::Upper, Diag::NonUnit, &u, &b).unwrap();
        assert!(near(&x, &x_true, 1e-9));
    }

    #[test]
    fn right_lower_solves() {
        let n = 12;
        let m = 4;
        let l = lower(n);
        let x_true = Matrix::from_fn(m, n, |i, j| ((i * 3 + j) % 5) as f64 / 5.0);
        let b = matmul(&x_true, &l);
        let mut x = b.clone();
        trsm_in_place(Side::Right, Triangle::Lower, Diag::NonUnit, &l, &mut x).unwrap();
        assert!(near(&x, &x_true, 1e-9));
    }

    #[test]
    fn right_upper_solves() {
        let n = 12;
        let m = 4;
        let u = lower(n).transpose();
        let x_true = Matrix::from_fn(m, n, |i, j| ((i * 3 + j) % 5) as f64 / 5.0 - 0.3);
        let b = matmul(&x_true, &u);
        let mut x = b.clone();
        trsm_in_place(Side::Right, Triangle::Upper, Diag::NonUnit, &u, &mut x).unwrap();
        assert!(near(&x, &x_true, 1e-9));
    }

    #[test]
    fn blocked_matches_unblocked_reference_across_nb_boundaries() {
        // Sizes straddling the NB=64 panel boundary, every side/triangle.
        for &n in &[1usize, 63, 64, 65, 130, 200] {
            let l = lower(n);
            let u = l.transpose();
            for &k in &[1usize, 3, 17] {
                let b_left = Matrix::from_fn(n, k, |i, j| ((i * 5 + j * 11) % 13) as f64 - 6.0);
                let b_right = Matrix::from_fn(k, n, |i, j| ((i * 5 + j * 11) % 13) as f64 - 6.0);
                for diag in [Diag::NonUnit, Diag::Unit] {
                    let cases: [(Side, Triangle, &Matrix, &Matrix); 4] = [
                        (Side::Left, Triangle::Lower, &l, &b_left),
                        (Side::Left, Triangle::Upper, &u, &b_left),
                        (Side::Right, Triangle::Lower, &l, &b_right),
                        (Side::Right, Triangle::Upper, &u, &b_right),
                    ];
                    for (side, tri, a, b) in cases {
                        let mut fast = b.clone();
                        let f1 = trsm_in_place(side, tri, diag, a, &mut fast).unwrap();
                        let mut slow = b.clone();
                        let f2 = reference::trsm_unblocked(side, tri, diag, a, &mut slow);
                        assert!(
                            near(&fast, &slow, 1e-8),
                            "mismatch at n={n} k={k} {side:?} {tri:?} {diag:?}"
                        );
                        assert_eq!(f1, f2, "flop accounting must match the reference");
                    }
                }
            }
        }
    }

    #[test]
    fn unit_diagonal_ignores_stored_diagonal() {
        let n = 10;
        let mut l = lower(n);
        // Solve with an implicit unit diagonal.
        let x_true = Matrix::from_fn(n, 2, |i, j| (i + j) as f64 / 5.0);
        let mut l_unit = l.clone();
        for i in 0..n {
            l_unit[(i, i)] = 1.0;
        }
        let b = matmul(&l_unit, &x_true);
        // Put garbage on the stored diagonal; Diag::Unit must ignore it.
        for i in 0..n {
            l[(i, i)] = 1.0e9;
        }
        let mut l_garbage = l_unit.clone();
        for i in 0..n {
            l_garbage[(i, i)] = 123.0;
        }
        let x = trsm(Triangle::Lower, Diag::Unit, &l_garbage, &b).unwrap();
        assert!(near(&x, &x_true, 1e-9));
    }

    #[test]
    fn trsv_single_rhs() {
        let n = 9;
        let l = lower(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) * 0.25 - 1.0).collect();
        let xt = Matrix::from_vec(n, 1, x_true.clone()).unwrap();
        let b = matmul(&l, &xt).into_vec();
        let x = trsv(Triangle::Lower, Diag::NonUnit, &l, &b).unwrap();
        for (a, b) in x.iter().zip(x_true.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn trsv_in_place_matches_trsm_every_variant() {
        for &n in &[1usize, 2, 9, 40] {
            let l = lower(n);
            let u = l.transpose();
            let b: Vec<f64> = (0..n).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
            let rhs = Matrix::from_vec(n, 1, b.clone()).unwrap();
            for diag in [Diag::NonUnit, Diag::Unit] {
                for (tri, a) in [(Triangle::Lower, &l), (Triangle::Upper, &u)] {
                    let mut x = b.clone();
                    let f = trsv_in_place(tri, diag, a, &mut x).unwrap();
                    assert_eq!(f, trsm_flops(n, 1));
                    let xm = trsm(tri, diag, a, &rhs).unwrap();
                    for (got, want) in x.iter().zip(xm.as_slice()) {
                        assert!(
                            (got - want).abs() < 1e-9,
                            "trsv_in_place diverged at n={n} {tri:?} {diag:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn trsv_in_place_rejects_bad_inputs() {
        let l = lower(4);
        let mut short = vec![1.0; 3];
        assert!(trsv_in_place(Triangle::Lower, Diag::NonUnit, &l, &mut short).is_err());
        let rect = Matrix::zeros(3, 4);
        let mut x = vec![1.0; 3];
        assert!(trsv_in_place(Triangle::Lower, Diag::NonUnit, &rect, &mut x).is_err());
        let mut sing = l.clone();
        sing[(2, 2)] = 0.0;
        let mut x4 = vec![1.0; 4];
        match trsv_in_place(Triangle::Lower, Diag::NonUnit, &sing, &mut x4) {
            Err(DenseError::SingularPivot { index, .. }) => assert_eq!(index, 2),
            other => panic!("expected SingularPivot, got {other:?}"),
        }
    }

    #[test]
    fn singular_pivot_is_detected() {
        let mut l = lower(5);
        l[(3, 3)] = 0.0;
        let b = Matrix::filled(5, 2, 1.0);
        match trsm(Triangle::Lower, Diag::NonUnit, &l, &b) {
            Err(DenseError::SingularPivot { index, .. }) => assert_eq!(index, 3),
            other => panic!("expected SingularPivot, got {other:?}"),
        }
    }

    #[test]
    fn dimension_checks() {
        let l = lower(4);
        let b = Matrix::zeros(5, 2);
        assert!(trsm(Triangle::Lower, Diag::NonUnit, &l, &b).is_err());
        let rect = Matrix::zeros(3, 4);
        assert!(trsm(Triangle::Lower, Diag::NonUnit, &rect, &b).is_err());
        let mut r = Matrix::zeros(2, 5);
        assert!(trsm_in_place(Side::Right, Triangle::Lower, Diag::NonUnit, &l, &mut r).is_err());
    }

    #[test]
    fn flop_count_matches_formula() {
        let l = lower(8);
        let mut b = Matrix::filled(8, 3, 1.0);
        let f = trsm_in_place(Side::Left, Triangle::Lower, Diag::NonUnit, &l, &mut b).unwrap();
        assert_eq!(f, trsm_flops(8, 3));
    }

    #[test]
    fn solving_identity_returns_rhs() {
        let id = Matrix::identity(6);
        let b = Matrix::from_fn(6, 4, |i, j| (i * 4 + j) as f64);
        let x = trsm(Triangle::Lower, Diag::NonUnit, &id, &b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn large_blocked_solve_is_accurate() {
        let n = 200;
        let k = 33;
        let l = crate::gen::well_conditioned_lower(n, 5);
        let x_true = crate::gen::rhs(n, k, 6);
        let b = matmul(&l, &x_true);
        let x = trsm(Triangle::Lower, Diag::NonUnit, &l, &b).unwrap();
        assert!(crate::norms::rel_diff(&x, &x_true) < 1e-9);
    }
}
